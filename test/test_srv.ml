(* Daemon-layer tests: jobspec parsing and model-cache keys, the
   newline-JSON protocol, the bounded two-lane admission queue, and
   end-to-end icvd runs over a real Unix socket — verdict parity with
   one-shot runs, explicit overload rejection, and crash + checkpoint
   resume under the supervisor. *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let parse_job line =
  match Srv.Protocol.request_of_line line with
  | Ok (Srv.Protocol.Submit j) -> j
  | Ok _ -> Alcotest.fail (Printf.sprintf "not a submit: %s" line)
  | Error why -> Alcotest.fail (Printf.sprintf "parse failed (%s): %s" why line)

(* --- jobspec --------------------------------------------------------- *)

let test_jobspec_defaults () =
  let j = parse_job {|{"id":"a","model":{"family":"fifo"}}|} in
  Alcotest.(check string) "id" "a" j.Srv.Jobspec.id;
  Alcotest.(check string) "family" "fifo" j.Srv.Jobspec.model.Srv.Jobspec.family;
  Alcotest.(check int) "default depth" Srv.Jobspec.default_model.Srv.Jobspec.depth
    j.Srv.Jobspec.model.Srv.Jobspec.depth;
  Alcotest.(check string) "default method is xici" "xici"
    (String.lowercase_ascii (Srv.Jobspec.meth_name j.Srv.Jobspec.meth));
  Alcotest.(check bool) "no fault by default" true
    (j.Srv.Jobspec.fault = None);
  (* to_json round-trips through of_json. *)
  match Srv.Jobspec.of_json (Srv.Jobspec.to_json j) with
  | Ok j' ->
    Alcotest.(check string) "roundtrip id" j.Srv.Jobspec.id j'.Srv.Jobspec.id;
    Alcotest.(check string) "roundtrip canonical"
      (Srv.Jobspec.canonical j.Srv.Jobspec.model)
      (Srv.Jobspec.canonical j'.Srv.Jobspec.model)
  | Error why -> Alcotest.fail ("roundtrip rejected: " ^ why)

let test_jobspec_rejections () =
  let rejects label line =
    match Srv.Protocol.request_of_line line with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (label ^ ": bad job accepted")
  in
  rejects "missing id" {|{"model":{"family":"fifo"}}|};
  rejects "missing model" {|{"id":"a"}|};
  rejects "missing family" {|{"id":"a","model":{}}|};
  rejects "unknown method" {|{"id":"a","model":{"family":"fifo"},"method":"magic"}|};
  rejects "triggerless fault"
    {|{"id":"a","model":{"family":"fifo"},"fault":{"action":"crash"}}|};
  rejects "unknown fault action"
    {|{"id":"a","model":{"family":"fifo"},"fault":{"after_steps":1,"action":"melt"}}|};
  rejects "unparseable line" "{not json";
  rejects "batch portfolio"
    {|{"id":"a","model":{"family":"fifo"},"method":"portfolio","batch":true}|}

let test_jobspec_batch_roundtrip () =
  let j =
    parse_job {|{"id":"b","model":{"family":"network","procs":3},"batch":true}|}
  in
  Alcotest.(check bool) "batch flag parsed" true j.Srv.Jobspec.batch;
  (match Srv.Jobspec.of_json (Srv.Jobspec.to_json j) with
  | Ok j' ->
    Alcotest.(check bool) "batch flag roundtrips" true j'.Srv.Jobspec.batch
  | Error why -> Alcotest.fail ("batch roundtrip rejected: " ^ why));
  let plain = parse_job {|{"id":"p","model":{"family":"fifo"}}|} in
  Alcotest.(check bool) "batch defaults to false" false plain.Srv.Jobspec.batch

let test_model_key () =
  let j1 = parse_job {|{"id":"a","model":{"family":"fifo","procs":2}}|} in
  let j2 = parse_job {|{"id":"b","model":{"family":"fifo","procs":9}}|} in
  let j3 = parse_job {|{"id":"c","model":{"family":"fifo","depth":3}}|} in
  (* [procs] is not a FIFO parameter: same cache slot.  [depth] is. *)
  Alcotest.(check string) "ignored field shares the cache key"
    (Srv.Jobspec.model_key j1.Srv.Jobspec.model)
    (Srv.Jobspec.model_key j2.Srv.Jobspec.model);
  Alcotest.(check bool) "meaningful field splits the cache key" true
    (Srv.Jobspec.model_key j1.Srv.Jobspec.model
    <> Srv.Jobspec.model_key j3.Srv.Jobspec.model);
  Alcotest.(check bool) "unknown family fails to build" true
    (try
       ignore (Srv.Jobspec.build { j1.Srv.Jobspec.model with family = "nope" });
       false
     with Failure _ -> true)

(* --- protocol -------------------------------------------------------- *)

let test_requests () =
  let check_req label line expected =
    match Srv.Protocol.request_of_line line with
    | Ok r -> Alcotest.(check bool) label true (r = expected)
    | Error why -> Alcotest.fail (label ^ ": " ^ why)
  in
  check_req "ping" {|{"type":"ping"}|} Srv.Protocol.Ping;
  check_req "stats" {|{"type":"stats"}|} (Srv.Protocol.Stats Srv.Protocol.Json);
  check_req "stats prom" {|{"type":"stats","format":"prom"}|}
    (Srv.Protocol.Stats Srv.Protocol.Prom);
  check_req "health" {|{"type":"health"}|} Srv.Protocol.Health;
  check_req "watch default interval" {|{"type":"watch"}|}
    (Srv.Protocol.Watch 2.0);
  check_req "watch custom interval" {|{"type":"watch","interval_s":0.5}|}
    (Srv.Protocol.Watch 0.5);
  check_req "unwatch" {|{"type":"unwatch"}|} Srv.Protocol.Unwatch;
  (match Srv.Protocol.request_of_line {|{"type":"watch","interval_s":-1}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative watch interval accepted");
  check_req "shutdown" {|{"type":"shutdown"}|} Srv.Protocol.Shutdown;
  (match Srv.Protocol.request_of_line {|{"type":"submit","id":"x","model":{"family":"abp"}}|} with
  | Ok (Srv.Protocol.Submit j) ->
    Alcotest.(check string) "explicit submit" "x" j.Srv.Jobspec.id
  | _ -> Alcotest.fail "explicit submit refused");
  match Srv.Protocol.request_of_line {|{"type":"frobnicate"}|} with
  | Error why ->
    Alcotest.(check bool) "unknown type named in error" true
      (contains ~sub:"frobnicate" why)
  | Ok _ -> Alcotest.fail "unknown request type accepted"

let test_event_shape () =
  let reparse ev =
    let line = Srv.Protocol.to_line ev in
    Alcotest.(check bool) "line ends with newline" true
      (String.length line > 0 && line.[String.length line - 1] = '\n');
    Obs.Json.of_string (String.sub line 0 (String.length line - 1))
  in
  let tag j =
    Option.value ~default:"?"
      (Option.bind (Obs.Json.member "type" j) Obs.Json.to_str)
  in
  let acc = reparse (Srv.Protocol.accepted ~id:"a" ~trace_id:"t-0" ~queue_depth:3) in
  Alcotest.(check string) "accepted tag" "accepted" (tag acc);
  Alcotest.(check bool) "accepted carries the trace id" true
    (Obs.Json.member "trace_id" acc = Some (Obs.Json.String "t-0"));
  Alcotest.(check string) "rejected tag" "rejected"
    (tag (reparse (Srv.Protocol.rejected ~id:"a" ~reason:"queue full")));
  let report =
    {
      Mc.Report.model = "m";
      method_name = "xici";
      status = Mc.Report.Proved;
      iterations = 4;
      peak_set_nodes = 10;
      peak_conjuncts = [ 10 ];
      nodes_created = 100;
      peak_live_nodes = 50;
      time_s = 0.1;
    }
  in
  let r =
    reparse
      (Srv.Protocol.result ~id:"a" ~trace_id:"t-0" ~trace:"/tmp/t.jsonl"
         ~queue_s:0.25 ~e2e_s:1.5 ~worker:1 ~resumed_at:2 report)
  in
  Alcotest.(check string) "result tag" "result" (tag r);
  Alcotest.(check bool) "resumed flag follows resumed_at" true
    (Option.bind (Obs.Json.member "resumed" r) (function
       | Obs.Json.Bool b -> Some b
       | _ -> None)
    = Some true);
  Alcotest.(check bool) "result carries the trace path" true
    (Obs.Json.member "trace" r = Some (Obs.Json.String "/tmp/t.jsonl"));
  Alcotest.(check bool) "result carries the latency split" true
    (Obs.Json.member "queue_s" r <> None && Obs.Json.member "e2e_s" r <> None);
  let fresh =
    reparse
      (Srv.Protocol.result ~id:"a" ~trace_id:"t-0" ~queue_s:0.0 ~e2e_s:0.1
         ~worker:1 ~resumed_at:0 report)
  in
  Alcotest.(check bool) "cold run is not resumed" true
    (Obs.Json.member "resumed" fresh = Some (Obs.Json.Bool false));
  Alcotest.(check bool) "untraced result omits the trace field" true
    (Obs.Json.member "trace" fresh = None)

(* --- admission queue ------------------------------------------------- *)

let test_admission_bounds () =
  let q = Srv.Admission.create ~capacity:2 in
  Alcotest.(check bool) "first push" true (Srv.Admission.try_push q 1 = Ok 1);
  Alcotest.(check bool) "second push" true (Srv.Admission.try_push q 2 = Ok 2);
  (match Srv.Admission.try_push q 3 with
  | Error why ->
    Alcotest.(check bool) "overflow names the capacity" true
      (contains ~sub:"full" why)
  | Ok _ -> Alcotest.fail "queue exceeded its capacity");
  Alcotest.(check int) "depth" 2 (Srv.Admission.depth q);
  Alcotest.(check bool) "pop fifo" true (Srv.Admission.pop q = Some 1);
  Alcotest.(check bool) "freed a slot" true (Srv.Admission.try_push q 3 = Ok 2);
  Srv.Admission.close q;
  (match Srv.Admission.try_push q 4 with
  | Error why ->
    Alcotest.(check bool) "closed queue refuses" true
      (contains ~sub:"closed" why)
  | Ok _ -> Alcotest.fail "closed queue accepted a push");
  Alcotest.(check bool) "drains after close" true (Srv.Admission.pop q = Some 2);
  Alcotest.(check bool) "drains after close (2)" true
    (Srv.Admission.pop q = Some 3);
  Alcotest.(check bool) "then signals exit" true (Srv.Admission.pop q = None)

let test_admission_urgent_lane () =
  let q = Srv.Admission.create ~capacity:1 in
  Alcotest.(check bool) "normal lane fills" true
    (Srv.Admission.try_push q `Normal = Ok 1);
  (match Srv.Admission.try_push q `Normal with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cap not enforced");
  (* Requeues must never bounce: urgent bypasses the cap and pops
     first. *)
  Srv.Admission.push_urgent q `Urgent;
  Alcotest.(check int) "urgent counted in depth" 2 (Srv.Admission.depth q);
  Alcotest.(check bool) "urgent pops first" true
    (Srv.Admission.pop q = Some `Urgent);
  Alcotest.(check bool) "then the normal lane" true
    (Srv.Admission.pop q = Some `Normal)

(* --- end-to-end daemon over a Unix socket ---------------------------- *)

let tmp_sock () =
  let p = Filename.temp_file "icvd" ".sock" in
  Sys.remove p;
  p

let send_shutdown sock =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception _ -> ()
  | fd -> (
    try
      Unix.connect fd (Unix.ADDR_UNIX sock);
      let line = {|{"type":"shutdown"}|} ^ "\n" in
      ignore (Unix.write_substring fd line 0 (String.length line));
      Unix.close fd
    with _ -> ( try Unix.close fd with _ -> ()))

let with_daemon cfg f =
  let ready = Atomic.make false in
  let dom =
    Domain.spawn (fun () ->
        Srv.Daemon.run ~on_ready:(fun () -> Atomic.set ready true) cfg)
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  if not (Atomic.get ready) then begin
    Domain.join dom;
    Alcotest.fail "daemon never became ready"
  end;
  Fun.protect
    ~finally:(fun () ->
      (* Belt and braces: if [f] raised before requesting shutdown,
         ask for one so the join below terminates. *)
      Option.iter send_shutdown cfg.Srv.Daemon.socket_path;
      Domain.join dom)
    f

(* Connect, send every line, then read events until the daemon drains
   and closes the connection.  The last line sent is expected to be a
   shutdown request (otherwise this blocks until the test times out). *)
let talk sock lines =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  flush oc;
  let events = ref [] in
  (try
     while true do
       events := Obs.Json.of_string (input_line ic) :: !events
     done
   with End_of_file -> ());
  (try Unix.close fd with _ -> ());
  List.rev !events

let ev_type j =
  Option.value ~default:"?"
    (Option.bind (Obs.Json.member "type" j) Obs.Json.to_str)

let ev_id j = Option.bind (Obs.Json.member "id" j) Obs.Json.to_str

let ev_str field j = Option.bind (Obs.Json.member field j) Obs.Json.to_str

let find_result id events =
  List.find_opt (fun j -> ev_type j = "result" && ev_id j = Some id) events

let base_cfg sock =
  {
    Srv.Daemon.default_config with
    Srv.Daemon.socket_path = Some sock;
    tick_s = 0.01;
    default_deadline_s = Some 60.0;
  }

let test_daemon_verdict_parity () =
  let jobs =
    [
      {|{"id":"fifo-ok","model":{"family":"fifo"}}|};
      {|{"id":"fifo-bug","model":{"family":"fifo","bug":true}}|};
      {|{"id":"net-ok","model":{"family":"network"}}|};
    ]
  in
  let sock = tmp_sock () in
  let events =
    with_daemon (base_cfg sock) (fun () ->
        talk sock (jobs @ [ {|{"type":"ping"}|}; {|{"type":"shutdown"}|} ]))
  in
  Alcotest.(check bool) "pong answered" true
    (List.exists (fun j -> ev_type j = "pong") events);
  Alcotest.(check bool) "draining announced" true
    (List.exists (fun j -> ev_type j = "draining") events);
  List.iter
    (fun line ->
      let spec = parse_job line in
      let id = spec.Srv.Jobspec.id in
      match find_result id events with
      | None -> Alcotest.fail (Printf.sprintf "no result for %s" id)
      | Some r ->
        (* The daemon's verdict must match a one-shot run of the very
           same declaration. *)
        let oneshot =
          Mc.Runner.run Mc.Runner.Xici
            (Srv.Jobspec.build spec.Srv.Jobspec.model)
        in
        Alcotest.(check (option string))
          (Printf.sprintf "%s verdict parity" id)
          (Some (Mc.Report.status_string oneshot))
          (ev_str "verdict" r))
    jobs

let test_daemon_overload () =
  (* One worker, queue of one: a burst of three slow jobs must yield at
     least one explicit rejection, and every job must get exactly one
     terminal answer — overload is an answer, never a silent drop. *)
  let cfg sock =
    { (base_cfg sock) with Srv.Daemon.workers = 1; queue_capacity = 1 }
  in
  let jobs =
    List.init 3 (fun i ->
        Printf.sprintf {|{"id":"burst-%d","model":{"family":"filter","depth":8}}|} i)
  in
  let sock = tmp_sock () in
  let events =
    with_daemon (cfg sock) (fun () ->
        talk sock (jobs @ [ {|{"type":"shutdown"}|} ]))
  in
  let rejected =
    List.filter (fun j -> ev_type j = "rejected") events
  in
  let results = List.filter (fun j -> ev_type j = "result") events in
  Alcotest.(check bool) "overload rejected explicitly" true
    (List.length rejected >= 1);
  List.iter
    (fun j ->
      match ev_str "reason" j with
      | Some why ->
        Alcotest.(check bool)
          (Printf.sprintf "rejection names the queue (%s)" why)
          true (contains ~sub:"full" why)
      | None -> Alcotest.fail "rejection without a reason")
    rejected;
  Alcotest.(check int) "every job answered exactly once" 3
    (List.length rejected + List.length results);
  List.iter
    (fun r ->
      Alcotest.(check (option string)) "admitted jobs still prove"
        (Some "proved") (ev_str "verdict" r))
    results

let test_daemon_portfolio_liveness () =
  (* Portfolio jobs run in child domains; their heartbeats must reach
     the slot through the portfolio's liveness callbacks.  With a hang
     timeout shorter than the job, a pool that loses those beats
     falsely declares the worker hung, burns every attempt and fails
     the job (regression: portfolio jobs never updated the slot
     heartbeat, so any portfolio run longer than the timeout died). *)
  let cfg sock =
    { (base_cfg sock) with Srv.Daemon.workers = 1; hang_timeout_s = 1.5 }
  in
  let job =
    {|{"id":"pf","model":{"family":"filter","depth":8},"method":"portfolio"}|}
  in
  let sock = tmp_sock () in
  let events =
    with_daemon (cfg sock) (fun () ->
        talk sock [ job; {|{"type":"shutdown"}|} ])
  in
  Alcotest.(check int) "never declared hung" 0
    (List.length
       (List.filter
          (fun j -> ev_type j = "retry" && ev_id j = Some "pf")
          events));
  match find_result "pf" events with
  | None -> Alcotest.fail "no result for the portfolio job"
  | Some r ->
    Alcotest.(check (option string)) "portfolio verdict" (Some "proved")
      (ev_str "verdict" r)

let test_daemon_manager_reuse () =
  (* Consecutive jobs naming the same declaration must reuse the
     worker's scratch manager (counted under srv.manager_reuses), and
     the reuse must not leak state between jobs: every verdict still
     matches a one-shot run on a fresh manager, including a buggy
     variant of the same family submitted right after the reused
     pair. *)
  let reuses =
    Obs.Registry.counter Obs.Registry.default "srv.manager_reuses"
  in
  let before = Obs.Registry.count reuses in
  let jobs =
    [
      {|{"id":"warm-1","model":{"family":"fifo"}}|};
      {|{"id":"warm-2","model":{"family":"fifo"}}|};
      {|{"id":"warm-3","model":{"family":"fifo"},"method":"forward"}|};
      {|{"id":"cold-bug","model":{"family":"fifo","bug":true}}|};
    ]
  in
  let cfg sock = { (base_cfg sock) with Srv.Daemon.workers = 1 } in
  let sock = tmp_sock () in
  let events =
    with_daemon (cfg sock) (fun () ->
        talk sock (jobs @ [ {|{"type":"shutdown"}|} ]))
  in
  (* Jobs 2 and 3 share job 1's declaration: one worker, so at least
     two reuses (job 3 also proves the reused manager serves a
     different method without cross-talk). *)
  Alcotest.(check bool) "scratch manager reused" true
    (Obs.Registry.count reuses - before >= 2);
  List.iter
    (fun line ->
      let spec = parse_job line in
      let id = spec.Srv.Jobspec.id in
      match find_result id events with
      | None -> Alcotest.fail (Printf.sprintf "no result for %s" id)
      | Some r ->
        let meth =
          match spec.Srv.Jobspec.meth with
          | Srv.Jobspec.Method m -> m
          | Srv.Jobspec.Portfolio -> Alcotest.fail "unexpected portfolio"
        in
        let oneshot =
          Mc.Runner.run meth (Srv.Jobspec.build spec.Srv.Jobspec.model)
        in
        Alcotest.(check (option string))
          (Printf.sprintf "%s verdict parity through the reused manager" id)
          (Some (Mc.Report.status_string oneshot))
          (ev_str "verdict" r))
    jobs

let test_daemon_batch_job () =
  (* A batch:true job verifies each conjunct of the model's property
     as its own property; the single result event carries the
     aggregate verdict plus a per-property array and the sharing
     counters. *)
  let jobs =
    [
      {|{"id":"batch-net","model":{"family":"network","procs":3},"batch":true}|};
      {|{"id":"batch-bug","model":{"family":"fifo","bug":true},"batch":true}|};
    ]
  in
  let sock = tmp_sock () in
  let events =
    with_daemon (base_cfg sock) (fun () ->
        talk sock (jobs @ [ {|{"type":"shutdown"}|} ]))
  in
  let batch_items r =
    match Obs.Json.member "batch" r with
    | Some (Obs.Json.List items) -> items
    | _ -> Alcotest.fail "result carries no batch array"
  in
  let item_verdicts r =
    List.map
      (fun it -> Option.value ~default:"?" (ev_str "verdict" it))
      (batch_items r)
  in
  (match find_result "batch-net" events with
  | None -> Alcotest.fail "no result for batch-net"
  | Some r ->
    let model =
      Srv.Jobspec.build
        (parse_job (List.nth jobs 0)).Srv.Jobspec.model
    in
    Alcotest.(check int) "one item per good conjunct"
      (List.length model.Mc.Model.good)
      (List.length (batch_items r));
    Alcotest.(check (option string)) "aggregate proved" (Some "proved")
      (ev_str "verdict" r);
    List.iter
      (fun v -> Alcotest.(check string) "every property proved" "proved" v)
      (item_verdicts r);
    Alcotest.(check bool) "sharing counters present" true
      (Obs.Json.member "batch_stats" r <> None));
  match find_result "batch-bug" events with
  | None -> Alcotest.fail "no result for batch-bug"
  | Some r ->
    Alcotest.(check bool) "aggregate violated" true
      (match ev_str "verdict" r with
      | Some v -> contains ~sub:"violated" v
      | None -> false);
    Alcotest.(check bool) "some property violated" true
      (List.exists (fun v -> contains ~sub:"violated" v) (item_verdicts r))

let test_daemon_introspection () =
  (* stats (JSON and Prometheus), health and watch round-trips over a
     real socket, with work inflight so the numbers are live. *)
  let jobs =
    [
      {|{"id":"introspect-1","model":{"family":"filter","depth":8}}|};
      {|{"id":"introspect-2","model":{"family":"filter","depth":8}}|};
    ]
  in
  let sock = tmp_sock () in
  let events =
    with_daemon (base_cfg sock) (fun () ->
        talk sock
          (jobs
          @ [
              {|{"type":"watch","interval_s":0.05}|};
              {|{"type":"stats"}|};
              {|{"type":"stats","format":"prom"}|};
              {|{"type":"health"}|};
              {|{"type":"unwatch"}|};
              {|{"type":"shutdown"}|};
            ]))
  in
  let stats_events = List.filter (fun j -> ev_type j = "stats") events in
  let plain =
    List.filter (fun j -> Obs.Json.member "prom" j = None) stats_events
  in
  let prom =
    List.filter_map
      (fun j -> Option.bind (Obs.Json.member "prom" j) Obs.Json.to_str)
      stats_events
  in
  (match plain with
  | [] -> Alcotest.fail "no JSON stats event"
  | s :: _ ->
    Alcotest.(check bool) "stats has queue_depth" true
      (Obs.Json.member "queue_depth" s <> None);
    (match Obs.Json.member "latency" s with
    | Some (Obs.Json.Obj rows) ->
      Alcotest.(check bool) "latency covers the e2e histogram" true
        (List.mem_assoc "srv.e2e_ms" rows)
    | _ -> Alcotest.fail "stats carries no latency object"));
  (match prom with
  | [] -> Alcotest.fail "no Prometheus stats event"
  | text :: _ ->
    Alcotest.(check bool) "prom text has TYPE lines" true
      (contains ~sub:"# TYPE" text);
    Alcotest.(check bool) "prom names are prefixed" true
      (contains ~sub:"icv_" text);
    Alcotest.(check bool) "latency histograms exported" true
      (contains ~sub:"icv_srv_e2e_ms_bucket" text
      || contains ~sub:"icv_srv_e2e_ms_count" text));
  (match List.find_opt (fun j -> ev_type j = "health") events with
  | None -> Alcotest.fail "no health event"
  | Some h ->
    Alcotest.(check bool) "health reports uptime" true
      (match Option.bind (Obs.Json.member "uptime_s" h) Obs.Json.to_float with
      | Some u -> u >= 0.0
      | None -> false);
    Alcotest.(check bool) "health reports inflight" true
      (Obs.Json.member "inflight" h <> None);
    (match Obs.Json.member "slots" h with
    | Some (Obs.Json.List slots) ->
      Alcotest.(check int) "one slot entry per worker"
        Srv.Daemon.default_config.Srv.Daemon.workers (List.length slots)
    | _ -> Alcotest.fail "health carries no slots array"));
  (* The watch stream produced at least its immediate baseline frame. *)
  Alcotest.(check bool) "watch streamed a metrics frame" true
    (List.exists (fun j -> ev_type j = "metrics") events);
  List.iter
    (fun line ->
      let id = (parse_job line).Srv.Jobspec.id in
      if find_result id events = None then
        Alcotest.fail (Printf.sprintf "no result for %s" id))
    jobs

let rm_rf_dir dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with _ -> ()
  end

let test_daemon_crash_resume () =
  (* A worker domain killed mid-fixpoint: the supervisor must respawn
     it, requeue the job, resume it from its checkpoint, and still
     deliver the one-shot verdict. *)
  let ckpt_dir = tmp_sock () ^ ".ckpt.d" in
  let cfg sock =
    {
      (base_cfg sock) with
      Srv.Daemon.workers = 1;
      checkpoint_dir = Some ckpt_dir;
      hang_timeout_s = 5.0;
    }
  in
  let job =
    {|{"id":"crashy","model":{"family":"filter","depth":8},"fault":{"after_iterations":1,"action":"crash"}}|}
  in
  let sock = tmp_sock () in
  let events =
    with_daemon (cfg sock) (fun () ->
        talk sock [ job; {|{"type":"shutdown"}|} ])
  in
  let retries =
    List.filter
      (fun j -> ev_type j = "retry" && ev_id j = Some "crashy")
      events
  in
  Alcotest.(check bool) "crash produced a retry event" true
    (List.length retries >= 1);
  (match find_result "crashy" events with
  | None -> Alcotest.fail "no result after crash recovery"
  | Some r ->
    Alcotest.(check bool) "retry resumed from the checkpoint" true
      (Obs.Json.member "resumed" r = Some (Obs.Json.Bool true));
    Alcotest.(check bool) "resumed mid-fixpoint" true
      (match Option.bind (Obs.Json.member "resumed_at" r) Obs.Json.to_int with
      | Some i -> i >= 1
      | None -> false);
    let spec = parse_job job in
    let oneshot =
      Mc.Runner.run Mc.Runner.Xici (Srv.Jobspec.build spec.Srv.Jobspec.model)
    in
    Alcotest.(check (option string)) "verdict parity after recovery"
      (Some (Mc.Report.status_string oneshot))
      (ev_str "verdict" r));
  (* Flight-recorder dumps share the directory; only checkpoints must
     be gone once every job resolved. *)
  let leftover_ckpts =
    if Sys.file_exists ckpt_dir then
      List.filter
        (fun f -> Filename.check_suffix f ".ckpt")
        (Array.to_list (Sys.readdir ckpt_dir))
    else []
  in
  Alcotest.(check (list string)) "checkpoint file deleted on resolution" []
    leftover_ckpts;
  rm_rf_dir ckpt_dir

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

let test_daemon_flight_dump () =
  (* A worker crash must leave a parseable flight-recorder dump whose
     last entry is the crash itself, and the retry reason must point at
     the dump file. *)
  let dir = tmp_sock () ^ ".flight.d" in
  let cfg sock =
    {
      (base_cfg sock) with
      Srv.Daemon.workers = 1;
      checkpoint_dir = Some dir;
      hang_timeout_s = 5.0;
    }
  in
  let job =
    {|{"id":"boom","model":{"family":"filter","depth":8},"fault":{"after_iterations":1,"action":"crash"}}|}
  in
  let sock = tmp_sock () in
  let events =
    with_daemon (cfg sock) (fun () ->
        talk sock [ job; {|{"type":"shutdown"}|} ])
  in
  let retry =
    List.find_opt
      (fun j -> ev_type j = "retry" && ev_id j = Some "boom")
      events
  in
  (match retry with
  | None -> Alcotest.fail "crash produced no retry event"
  | Some r ->
    Alcotest.(check bool) "retry reason references the flight dump" true
      (match ev_str "reason" r with
      | Some why -> contains ~sub:"flight" why
      | None -> false));
  let dumps =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f >= 7 && String.sub f 0 7 = "flight-")
    |> List.map (Filename.concat dir)
  in
  Alcotest.(check bool) "a flight dump was written" true (dumps <> []);
  let crash_dump =
    List.find_opt
      (fun path ->
        let lines = read_lines path in
        lines <> []
        &&
        let last = Obs.Json.of_string (List.nth lines (List.length lines - 1)) in
        Option.bind (Obs.Json.member "kind" last) Obs.Json.to_str
        = Some "worker_crash")
      dumps
  in
  (match crash_dump with
  | None -> Alcotest.fail "no dump ends with the worker_crash trigger"
  | Some path ->
    let lines = read_lines path in
    (* Every line parses, and the file saw the job's life before the
       crash: admission and dispatch precede the trigger. *)
    let entries = List.map Obs.Json.of_string lines in
    let kinds =
      List.filter_map
        (fun j -> Option.bind (Obs.Json.member "kind" j) Obs.Json.to_str)
        entries
    in
    Alcotest.(check int) "every entry carries a kind" (List.length lines)
      (List.length kinds);
    Alcotest.(check bool) "dump records the admission" true
      (List.mem "admit" kinds);
    Alcotest.(check bool) "dump records the dispatch" true
      (List.mem "dispatch" kinds);
    let last = List.nth entries (List.length entries - 1) in
    Alcotest.(check bool) "crash entry names the job" true
      (Obs.Json.member "job" last = Some (Obs.Json.String "boom")));
  rm_rf_dir dir

let test_daemon_trace_stability () =
  (* A traced job that crashes and resumes must keep one trace id
     across attempts, and its span file must be one coherent tree:
     every span carries the trace id, both attempts' spans land in the
     same file on the same timeline, and the queue-wait/thaw/solve
     phases are all present. *)
  let dir = tmp_sock () ^ ".trace.d" in
  let cfg sock =
    {
      (base_cfg sock) with
      Srv.Daemon.workers = 1;
      checkpoint_dir = Some dir;
      hang_timeout_s = 5.0;
    }
  in
  let job =
    {|{"id":"traced","model":{"family":"filter","depth":8},"trace":true,"fault":{"after_iterations":1,"action":"crash"}}|}
  in
  let sock = tmp_sock () in
  let events =
    with_daemon (cfg sock) (fun () ->
        talk sock [ job; {|{"type":"shutdown"}|} ])
  in
  let tid_of ev = ev_str "trace_id" ev in
  let accepted =
    List.find_opt
      (fun j -> ev_type j = "accepted" && ev_id j = Some "traced")
      events
  in
  let retry =
    List.find_opt
      (fun j -> ev_type j = "retry" && ev_id j = Some "traced")
      events
  in
  let result =
    match find_result "traced" events with
    | Some r -> r
    | None -> Alcotest.fail "no result for the traced job"
  in
  let trace_id =
    match tid_of result with
    | Some t -> t
    | None -> Alcotest.fail "result carries no trace id"
  in
  Alcotest.(check (option string)) "accepted and result share the trace id"
    (Some trace_id)
    (Option.bind accepted tid_of);
  Alcotest.(check (option string)) "retry keeps the trace id"
    (Some trace_id)
    (Option.bind retry tid_of);
  let path =
    match ev_str "trace" result with
    | Some p -> p
    | None -> Alcotest.fail "result carries no trace path"
  in
  Alcotest.(check bool) "trace file exists" true (Sys.file_exists path);
  let spans =
    List.filter_map
      (fun line ->
        let j = Obs.Json.of_string line in
        if Option.bind (Obs.Json.member "type" j) Obs.Json.to_str = Some "span"
        then Some j
        else None)
      (read_lines path)
  in
  Alcotest.(check bool) "trace contains spans" true (spans <> []);
  let span_attr field s =
    Option.bind (Obs.Json.member "args" s) (Obs.Json.member field)
  in
  List.iter
    (fun s ->
      if span_attr "trace_id" s <> Some (Obs.Json.String trace_id) then
        Alcotest.fail "a span is missing the trace id")
    spans;
  let named n = List.filter (fun s -> ev_str "name" s = Some n) spans in
  Alcotest.(check bool) "queue wait span present" true
    (named "job.queue_wait" <> []);
  Alcotest.(check bool) "thaw span present" true (named "job.thaw" <> []);
  Alcotest.(check bool) "per-iteration image spans present" true
    (named "xici.iteration" <> []);
  let attempts =
    List.sort_uniq compare
      (List.filter_map
         (fun s ->
           match span_attr "attempt" s with
           | Some (Obs.Json.Int a) -> Some a
           | _ -> None)
         (named "job.solve"))
  in
  Alcotest.(check bool) "both attempts traced into one file" true
    (List.length attempts >= 2);
  rm_rf_dir dir

let () =
  Alcotest.run "srv"
    [
      ( "jobspec",
        [
          Alcotest.test_case "defaults and roundtrip" `Quick
            test_jobspec_defaults;
          Alcotest.test_case "rejections" `Quick test_jobspec_rejections;
          Alcotest.test_case "batch flag roundtrip" `Quick
            test_jobspec_batch_roundtrip;
          Alcotest.test_case "model cache key" `Quick test_model_key;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "requests" `Quick test_requests;
          Alcotest.test_case "event shape" `Quick test_event_shape;
        ] );
      ( "admission",
        [
          Alcotest.test_case "bounded queue" `Quick test_admission_bounds;
          Alcotest.test_case "urgent lane" `Quick test_admission_urgent_lane;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "verdict parity" `Quick test_daemon_verdict_parity;
          Alcotest.test_case "overload rejects explicitly" `Quick
            test_daemon_overload;
          Alcotest.test_case "portfolio jobs stay live under supervision"
            `Quick test_daemon_portfolio_liveness;
          Alcotest.test_case "scratch managers reused without leakage" `Quick
            test_daemon_manager_reuse;
          Alcotest.test_case "batch job end to end" `Quick
            test_daemon_batch_job;
          Alcotest.test_case "crash, respawn, resume" `Quick
            test_daemon_crash_resume;
          Alcotest.test_case "stats, health and watch round-trips" `Quick
            test_daemon_introspection;
          Alcotest.test_case "flight recorder dumps on crash" `Quick
            test_daemon_flight_dump;
          Alcotest.test_case "trace id stable across checkpoint retry" `Quick
            test_daemon_trace_stability;
        ] );
    ]
