(* Test suite for the BDD package: unit tests for each operation plus
   qcheck properties checked against brute-force truth tables. *)

let nvars = 5

let print_expr e = Format.asprintf "%a" Testutil.pp_expr e

let qtest ?(count = 300) name prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ~print:print_expr
       (Testutil.gen_expr ~nvars) prop)

let qtest2 ?(count = 200) name prop =
  let gen = QCheck2.Gen.pair (Testutil.gen_expr ~nvars) (Testutil.gen_expr ~nvars) in
  let print (a, b) = print_expr a ^ " // " ^ print_expr b in
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen prop)

(* --- Unit tests ------------------------------------------------------ *)

let test_constants () =
  let man = Bdd.create () in
  Alcotest.(check bool) "true is true" true (Bdd.is_true (Bdd.tru man));
  Alcotest.(check bool) "false is false" true (Bdd.is_false (Bdd.fls man));
  Alcotest.(check bool) "not true = false" true
    (Bdd.equal (Bdd.bnot man (Bdd.tru man)) (Bdd.fls man));
  Alcotest.(check int) "size of constants" 1 (Bdd.size (Bdd.tru man))

let test_var_basic () =
  let man, vars = Testutil.fresh_man 3 in
  let x = Bdd.var man vars.(0) in
  Alcotest.(check int) "size of a variable" 2 (Bdd.size x);
  Alcotest.(check bool) "x and not x" true
    (Bdd.is_false (Bdd.band man x (Bdd.bnot man x)));
  Alcotest.(check bool) "x or not x" true
    (Bdd.is_true (Bdd.bor man x (Bdd.bnot man x)));
  Alcotest.(check bool) "double negation physical" true
    (Bdd.equal x (Bdd.bnot man (Bdd.bnot man x)))

let test_canonicity_hashcons () =
  let man, vars = Testutil.fresh_man 4 in
  let x = Bdd.var man vars.(0) and y = Bdd.var man vars.(1) in
  let a = Bdd.band man x y in
  let b = Bdd.bnot man (Bdd.bor man (Bdd.bnot man x) (Bdd.bnot man y)) in
  Alcotest.(check bool) "De Morgan physically equal" true (Bdd.equal a b)

let test_type_constraint_size () =
  (* The 8-bit "value <= 128" type constraint of the FIFO example must
     need 9 nodes (8 internal + terminal), matching the paper's
     "(5 x 9 nodes)" annotation in Table 1. *)
  let man = Bdd.create () in
  let bits = Array.init 8 (fun i -> Bdd.new_var ~name:(Printf.sprintf "b%d" i) man) in
  (* bits.(7) is the MSB (weight 128): v <= 128 iff b7 => all others 0. *)
  let low_zero =
    Bdd.conj man (List.init 7 (fun i -> Bdd.nvar man bits.(i)))
  in
  let constr = Bdd.bimp man (Bdd.var man bits.(7)) low_zero in
  Alcotest.(check int) "nodes for v<=128" 9 (Bdd.size constr)

let test_exists_unit () =
  let man, vars = Testutil.fresh_man 3 in
  let x = Bdd.var man vars.(0)
  and y = Bdd.var man vars.(1)
  and z = Bdd.var man vars.(2) in
  let f = Bdd.band man x (Bdd.bor man y z) in
  let vs = Bdd.varset man [ vars.(1) ] in
  (* exists y. x /\ (y \/ z) = x *)
  Alcotest.(check bool) "exists drops y" true
    (Bdd.equal (Bdd.exists man vs f) x);
  (* forall y. x /\ (y \/ z) = x /\ z *)
  Alcotest.(check bool) "forall keeps z" true
    (Bdd.equal (Bdd.forall man vs f) (Bdd.band man x z))

let test_rename_unit () =
  let man, vars = Testutil.fresh_man 6 in
  let x = Bdd.var man vars.(1) and y = Bdd.var man vars.(3) in
  let f = Bdd.band man x y in
  let perm = Array.init 6 (fun i -> i) in
  perm.(1) <- 0;
  perm.(3) <- 2;
  let g = Bdd.rename man perm f in
  let expect = Bdd.band man (Bdd.var man vars.(0)) (Bdd.var man vars.(2)) in
  Alcotest.(check bool) "renamed conjunction" true (Bdd.equal g expect)

let test_rename_not_monotone () =
  let man, vars = Testutil.fresh_man 4 in
  let f = Bdd.band man (Bdd.var man vars.(0)) (Bdd.var man vars.(2)) in
  let perm = Array.init 4 (fun i -> i) in
  perm.(0) <- 3;
  (* maps level 0 above level 2: order not preserved on the support *)
  Alcotest.check_raises "non-monotone rename rejected" Bdd.Not_monotone
    (fun () -> ignore (Bdd.rename man perm f))

let test_restrict_unit () =
  let man, vars = Testutil.fresh_man 2 in
  let x = Bdd.var man vars.(0) and y = Bdd.var man vars.(1) in
  let f = Bdd.band man x y in
  (* With care set x, f simplifies to y. *)
  Alcotest.(check bool) "restrict(x&y, x) = y" true
    (Bdd.equal (Bdd.restrict man f x) y);
  Alcotest.check_raises "empty care set rejected"
    (Invalid_argument "Bdd.restrict: empty care set") (fun () ->
      ignore (Bdd.restrict man f (Bdd.fls man)))

let test_sat_count_unit () =
  let man, vars = Testutil.fresh_man 3 in
  let x = Bdd.var man vars.(0) and y = Bdd.var man vars.(1) in
  let f = Bdd.bor man x y in
  Alcotest.(check (float 1e-9)) "sat_count (x|y) over 3 vars" 6.0
    (Bdd.sat_count ~nvars:3 f)

let test_pick_minterm_unit () =
  let man, vars = Testutil.fresh_man 3 in
  let f =
    Bdd.band man
      (Bdd.bnot man (Bdd.var man vars.(0)))
      (Bdd.var man vars.(2))
  in
  let env = Bdd.pick_minterm man ~vars:(Array.to_list vars) f in
  Alcotest.(check bool) "picked minterm satisfies f" true (Bdd.eval man env f);
  Alcotest.check_raises "pick on false" Not_found (fun () ->
      ignore (Bdd.pick_minterm man ~vars:[ 0 ] (Bdd.fls man)))

let test_stats () =
  let man, vars = Testutil.fresh_man 4 in
  let f = Bdd.conj man (List.init 4 (fun i -> Bdd.var man vars.(i))) in
  ignore f;
  Alcotest.(check bool) "created nodes counted" true (Bdd.created_nodes man >= 4);
  Alcotest.(check bool) "live <= created" true
    (Bdd.live_nodes man <= Bdd.created_nodes man);
  Bdd.gc man;
  Alcotest.(check bool) "peak recorded" true (Bdd.peak_live_nodes man >= 4)

(* Repeating an operation must hit its memo cache: the second run of
   each op re-asks the cache questions the first run answered. *)
let test_cache_stats () =
  let man, vars = Testutil.fresh_man 8 in
  let v i = Bdd.var man vars.(i) in
  let parity = List.init 8 v |> List.fold_left (Bdd.bxor man) (Bdd.fls man) in
  let vs = Bdd.varset man [ vars.(0); vars.(1) ] in
  let care = Bdd.bor man (v 2) (v 3) in
  let workload () =
    ignore (Bdd.band man parity (v 5));
    ignore (Bdd.exists man vs parity);
    ignore (Bdd.and_exists man vs parity (v 6));
    ignore (Bdd.restrict man parity care);
    ignore (Bdd.constrain man parity care);
    ignore (Bdd.cofactor man ~lvl:vars.(4) ~value:true parity)
  in
  workload ();
  workload ();
  let stats = Bdd.cache_stats man in
  Alcotest.(check int) "eight caches" 8 (List.length stats);
  List.iter
    (fun name ->
      let _, hits, misses = List.find (fun (n, _, _) -> n = name) stats in
      Alcotest.(check bool)
        (Printf.sprintf "%s cache hit (h=%d m=%d)" name hits misses)
        true (hits > 0))
    [ "ite"; "exists"; "and_exists"; "restrict"; "constrain"; "cofactor" ];
  (* The repeated ops themselves answer from cache without a miss. *)
  let hits_of n =
    let _, h, _ = List.find (fun (n', _, _) -> n' = n) stats in
    h
  in
  let before = hits_of "ite" in
  ignore (Bdd.band man parity (v 5));
  let _, after, _ =
    List.find (fun (n, _, _) -> n = "ite") (Bdd.cache_stats man)
  in
  Alcotest.(check bool) "repeat is pure hits" true (after > before)

let test_dot_output () =
  let man, vars = Testutil.fresh_man 2 in
  let f = Bdd.bxor man (Bdd.var man vars.(0)) (Bdd.var man vars.(1)) in
  let buf = Filename.temp_file "bdd" ".dot" in
  Bdd.Dot.to_file man buf [ f ];
  let ic = open_in buf in
  let line = input_line ic in
  close_in ic;
  Sys.remove buf;
  Alcotest.(check bool) "dot header" true
    (String.length line >= 7 && String.sub line 0 7 = "digraph")

let test_serialize_roundtrip () =
  let man, vars = Testutil.fresh_man 4 in
  let f =
    Bdd.bor man
      (Bdd.band man (Bdd.var man vars.(0)) (Bdd.var man vars.(2)))
      (Bdd.bxor man (Bdd.var man vars.(1)) (Bdd.var man vars.(3)))
  in
  let g = Bdd.bnot man f in
  let path = Filename.temp_file "bdd" ".txt" in
  Bdd.Serialize.to_file man path [ f; g; Bdd.fls man ];
  let man2 = Bdd.create () in
  let _ = List.init 4 (fun _ -> Bdd.new_var man2) in
  (match Bdd.Serialize.of_file man2 path with
  | [ f2; g2; z2 ] ->
    Alcotest.(check bool) "constant root" true (Bdd.is_false z2);
    Alcotest.(check bool) "complement preserved" true
      (Bdd.equal g2 (Bdd.bnot man2 f2));
    List.iter
      (fun env ->
        let by_level = Testutil.env_by_level vars env in
        Alcotest.(check bool) "semantics preserved"
          (Bdd.eval man by_level f)
          (Bdd.eval man2 by_level f2))
      (Testutil.all_envs 4)
  | _ -> Alcotest.fail "wrong number of roots");
  (* Reading into the SAME manager must reproduce physically equal
     BDDs (hash-consing through mk). *)
  (match Bdd.Serialize.of_file man path with
  | [ f2; g2; _ ] ->
    Alcotest.(check bool) "same-manager identity f" true (Bdd.equal f f2);
    Alcotest.(check bool) "same-manager identity g" true (Bdd.equal g g2)
  | _ -> Alcotest.fail "wrong number of roots");
  Sys.remove path

let test_serialize_relocation () =
  (* Reading with an order-preserving level map relocates the BDD. *)
  let man, vars = Testutil.fresh_man 3 in
  let f =
    Bdd.band man (Bdd.var man vars.(0)) (Bdd.bnot man (Bdd.var man vars.(2)))
  in
  let path = Filename.temp_file "bdd" ".txt" in
  Bdd.Serialize.to_file man path [ f ];
  let man2 = Bdd.create () in
  let _ = List.init 10 (fun _ -> Bdd.new_var man2) in
  (match Bdd.Serialize.of_file ~map:(fun l -> (2 * l) + 1) man2 path with
  | [ f2 ] ->
    let expect =
      Bdd.band man2 (Bdd.var man2 1) (Bdd.bnot man2 (Bdd.var man2 5))
    in
    Alcotest.(check bool) "relocated" true (Bdd.equal f2 expect)
  | _ -> Alcotest.fail "one root expected");
  Sys.remove path

let test_serialize_rejects_garbage () =
  let man = Bdd.create () in
  let path = Filename.temp_file "bdd" ".txt" in
  let oc = open_out path in
  output_string oc "not a bdd file\n";
  close_out oc;
  Alcotest.(check bool) "parse error raised" true
    (try
       ignore (Bdd.Serialize.of_file man path);
       false
     with Bdd.Serialize.Parse_error _ -> true);
  Sys.remove path

let test_serialize_error_paths () =
  (* Every malformed input must surface as [Parse_error] -- never as a
     leaked [End_of_file] or [Failure] -- so checkpoint recovery can
     rely on one exception to detect corruption. *)
  let man, _ = Testutil.fresh_man 2 in
  let path = Filename.temp_file "bdd" ".txt" in
  let rejects label contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Alcotest.(check bool) label true
      (try
         ignore (Bdd.Serialize.of_file man path);
         false
       with
      | Bdd.Serialize.Parse_error _ -> true
      | End_of_file -> false)
  in
  rejects "empty file" "";
  rejects "non-integer counts" "bdd x 1\n";
  rejects "negative counts" "bdd -1 0\n";
  rejects "truncated node section" "bdd 3 1\n1 0 0 0 0\n";
  rejects "missing roots" "bdd 1 1\n1 0 0 0 0\n";
  rejects "dangling node reference" "bdd 1 1\n1 0 7 0 0\nroot 1 0\n";
  rejects "dangling root reference" "bdd 0 1\nroot 3 0\n";
  Sys.remove path

let test_fault_hook () =
  (* The fault hook is consulted on every node creation, so a hook keyed
     on [created_nodes] fires at an exact, reproducible point. *)
  let man, vars = Testutil.fresh_man 8 in
  let target = Bdd.created_nodes man + 3 in
  Bdd.set_fault_hook man
    (Some
       (fun m -> if Bdd.created_nodes m >= target then raise Exit));
  let conj () =
    Bdd.conj man (Array.to_list (Array.map (Bdd.var man) vars))
  in
  Alcotest.(check bool) "fault raised" true
    (try
       ignore (conj ());
       false
     with Exit -> true);
  Alcotest.(check int) "raised at the exact creation count" target
    (Bdd.created_nodes man);
  Bdd.set_fault_hook man None;
  Alcotest.(check bool) "clean after hook removal" true
    (Bdd.size (conj ()) = 9)

let test_node_budget_nesting () =
  (* An enclosing progress hook must keep running inside a
     [with_node_budget] region and be restored after the region aborts. *)
  let man, vars = Testutil.fresh_man 12 in
  let xor_of lvls =
    Array.fold_left
      (fun acc l -> Bdd.bxor man acc (Bdd.var man l))
      (Bdd.fls man) lvls
  in
  let f = xor_of (Array.sub vars 0 6) in
  let g = xor_of (Array.sub vars 6 6) in
  (* Clearing memo caches each pass forces real recursion steps on a
     recomputation, so the 64K-step progress cadence is reached. *)
  let churn target =
    let start = Bdd.steps man in
    let passes = ref 0 in
    while Bdd.steps man - start < target && !passes < 1_000_000 do
      incr passes;
      Bdd.clear_caches man;
      ignore (Bdd.band man f g)
    done
  in
  let fired = ref 0 in
  let outer (_ : Bdd.man) = incr fired in
  Bdd.set_progress_hook man (Some outer);
  let inner =
    Bdd.with_node_budget man ~max_steps:1 ~max_new_nodes:max_int (fun () ->
        churn 200_000)
  in
  Alcotest.(check bool) "inner budget aborted" true (inner = None);
  Alcotest.(check bool) "enclosing hook ran inside the region" true
    (!fired >= 1);
  (match Bdd.progress_hook man with
  | Some h ->
    Alcotest.(check bool) "enclosing hook restored after abort" true
      (h == outer)
  | None -> Alcotest.fail "progress hook dropped by with_node_budget");
  let before = !fired in
  churn 131_072;
  Alcotest.(check bool) "enclosing hook still fires after abort" true
    (!fired > before);
  Bdd.set_progress_hook man None

let test_cubes_unit () =
  let man, vars = Testutil.fresh_man 3 in
  let x = Bdd.var man vars.(0) and z = Bdd.var man vars.(2) in
  let f = Bdd.bor man x z in
  (* Paths: x=1 | x=0,z=1. *)
  Alcotest.(check int) "two cubes" 2 (Bdd.count_cubes f);
  Alcotest.(check int) "no cube of false" 0 (Bdd.count_cubes (Bdd.fls man));
  Alcotest.(check int) "one empty cube of true" 1
    (Bdd.count_cubes (Bdd.tru man))

let test_sift_recovers_grouped_order () =
  (* From a fully interleaved order, sifting must recover a grouped
     order for the two-word equality (adjacent swaps cannot: every
     single swap is size-neutral or worse). *)
  let man = Bdd.create () in
  let bits = List.init 8 (fun _ -> Bdd.new_var man) in
  let a = List.filteri (fun i _ -> i mod 2 = 0) bits in
  let b = List.filteri (fun i _ -> i mod 2 = 1) bits in
  (* equality of word a and word b with bits interleaved: 3w+2ish nodes;
     grouped order costs exponential... other way round: interleaved is
     GOOD for equality.  Use the FIFO-style conjunction instead: two
     slot constraints with bit-slice interleaving. *)
  ignore (a, b);
  let slot offset =
    (* v <= 8 over bits offset, offset+2, ... (MSB = last) *)
    let bs = List.filteri (fun i _ -> i mod 2 = offset) bits in
    match List.rev bs with
    | msb :: rest ->
      Bdd.bimp man (Bdd.var man msb)
        (Bdd.conj man (List.map (Bdd.nvar man) rest))
    | [] -> assert false
  in
  let g = Bdd.band man (slot 0) (slot 1) in
  let before = Bdd.size g in
  let perm = Bdd.Reorder.sift man [ g ] in
  let dst = Bdd.create () in
  let _ = List.init 8 (fun _ -> Bdd.new_var dst) in
  match Bdd.Reorder.apply ~dst man [ g ] perm with
  | [ g' ] ->
    Alcotest.(check bool)
      (Printf.sprintf "sift shrinks conjunction (%d -> %d)" before
         (Bdd.size g'))
      true
      (Bdd.size g' < before)
  | _ -> Alcotest.fail "one root expected"

let test_weak_table_gc () =
  (* The unique table is weak: after dropping references and forcing a
     GC, dead nodes disappear, live roots stay canonical, and
     re-building a collected function yields a BDD equal to a retained
     twin.  This is the torture test for hash-consing across
     collections. *)
  let man, vars = Testutil.fresh_man 8 in
  let build k =
    (* a k-dependent function over all 8 variables *)
    List.fold_left
      (fun acc i ->
        let v = Bdd.var man vars.(i) in
        let v = if (k lsr i) land 1 = 1 then Bdd.bnot man v else v in
        Bdd.bxor man acc (Bdd.band man v (Bdd.var man vars.((i + 1) mod 8))))
      (Bdd.of_bool man (k land 1 = 1))
      (List.init 8 Fun.id)
  in
  let keep = build 0xA5 in
  let keep_size = Bdd.size keep in
  (* Create a lot of garbage. *)
  for k = 0 to 499 do
    ignore (build k)
  done;
  let live_before = Bdd.live_nodes man in
  Bdd.gc man;
  let live_after = Bdd.live_nodes man in
  Alcotest.(check bool)
    (Printf.sprintf "gc reclaims garbage (%d -> %d)" live_before live_after)
    true
    (live_after < live_before);
  Alcotest.(check int) "retained root intact" keep_size (Bdd.size keep);
  (* Rebuilding after collection must hash-cons back onto the root. *)
  Alcotest.(check bool) "rebuild is canonical" true
    (Bdd.equal keep (build 0xA5));
  (* And semantics survive. *)
  Alcotest.(check bool) "semantics survive gc" true
    (Bdd.is_true (Bdd.biff man keep (build 0xA5)))

(* --- computed / unique table internals ------------------------------- *)

(* Basic integrity of the lossy computed table: a find answers with the
   exact value stored under that exact packed key or with [absent] --
   never with a value stored under a different key, however many
   collisions and evictions happened in between. *)
let test_computed_table_integrity () =
  let man, vars = Testutil.fresh_man 8 in
  let module C = Bdd.Computed_table in
  let tbl = C.create ~budget:64 in
  Alcotest.(check int) "budget caps slots" 64 (C.slots tbl);
  (* Overfill: 200 distinct keys into 64 slots, each with a distinct
     recognisable value. *)
  let value i = Bdd.var man vars.(i mod 8) in
  for i = 0 to 199 do
    C.store tbl 0 i (i * 7) (i * 13) (value i)
  done;
  let survivors = ref 0 in
  for i = 0 to 199 do
    let r = C.find tbl 0 i (i * 7) (i * 13) in
    if r != C.absent then begin
      incr survivors;
      Alcotest.(check bool)
        (Printf.sprintf "key %d answers with its own value" i)
        true
        (Bdd.equal r (value i))
    end
  done;
  Alcotest.(check bool) "some entries survive" true (!survivors > 0);
  Alcotest.(check bool) "lossy: some entries evicted" true (!survivors < 200);
  let stat n = List.assoc n (C.stats tbl) in
  Alcotest.(check bool) "evictions counted" true (stat "evictions" > 0);
  Alcotest.(check bool) "occupancy bounded by slots" true
    (stat "occupied" <= C.slots tbl);
  (* Distinct op tags index disjoint key spaces: op 1 with the same
     operand triple is a miss. *)
  C.store tbl 0 1000 1001 1002 (value 0);
  Alcotest.(check bool) "same operands, other op misses" true
    (C.find tbl 1 1000 1001 1002 == C.absent)

let test_computed_table_generations () =
  let man, vars = Testutil.fresh_man 4 in
  let module C = Bdd.Computed_table in
  let tbl = C.create ~budget:256 in
  let v = Bdd.var man vars.(0) in
  C.store tbl 2 10 20 30 v;
  Alcotest.(check bool) "stored entry found" true
    (Bdd.equal (C.find tbl 2 10 20 30) v);
  C.trim tbl;
  Alcotest.(check bool) "trim invalidates" true
    (C.find tbl 2 10 20 30 == C.absent);
  (* Re-storing in the new generation works, and a dead-generation slot
     is recycled without an eviction having to be counted as data loss. *)
  C.store tbl 2 10 20 30 v;
  Alcotest.(check bool) "restore after trim" true
    (Bdd.equal (C.find tbl 2 10 20 30) v);
  C.clear tbl;
  Alcotest.(check bool) "clear invalidates" true
    (C.find tbl 2 10 20 30 == C.absent);
  Alcotest.(check int) "clear empties occupancy" 0
    (List.assoc "occupied" (C.stats tbl));
  Alcotest.(check bool) "trims counted" true
    (List.assoc "trims" (C.stats tbl) >= 1)

let test_computed_table_resize () =
  let man, vars = Testutil.fresh_man 2 in
  let module C = Bdd.Computed_table in
  (* Budget far above the 8192-slot starting size, then enough distinct
     keys to push occupancy past half: the table must double (possibly
     repeatedly) rather than thrash. *)
  let tbl = C.create ~budget:100_000 in
  Alcotest.(check int) "starts small" 8192 (C.slots tbl);
  let v = Bdd.var man vars.(0) in
  for i = 0 to 9_999 do
    C.store tbl 0 i (i lxor 0x5A5A) (i * 3) v
  done;
  let stat n = List.assoc n (C.stats tbl) in
  Alcotest.(check bool) "resized at least once" true (stat "resizes" >= 1);
  Alcotest.(check bool) "grew" true (C.slots tbl > 8192);
  Alcotest.(check bool)
    (Printf.sprintf "stays within budget (%d slots)" (C.slots tbl))
    true
    (C.slots tbl <= 100_000);
  (* Current-generation survivors must still answer correctly. *)
  let r = C.find tbl 0 9_999 (9_999 lxor 0x5A5A) (9_999 * 3) in
  Alcotest.(check bool) "last store survives the resizes" true
    (r != C.absent && Bdd.equal r v)

(* A manager on a tiny computed table evicts constantly; canonicity
   must make recomputed results physically identical, so semantics
   never change. *)
let test_tiny_cache_semantics () =
  let big = Bdd.create () in
  let tiny = Bdd.create ~cache_budget:64 () in
  let build man =
    let vars = Array.init 10 (fun _ -> Bdd.new_var man) in
    let v i = Bdd.var man vars.(i) in
    let parity =
      List.init 10 v |> List.fold_left (Bdd.bxor man) (Bdd.fls man)
    in
    let majority_ish =
      Bdd.disj man
        (List.init 8 (fun i -> Bdd.band man (v i) (v ((i + 3) mod 10))))
    in
    let vs = Bdd.varset man [ vars.(0); vars.(4); vars.(7) ] in
    Bdd.sat_count ~nvars:10
      (Bdd.band man
         (Bdd.exists man vs (Bdd.band man parity majority_ish))
         (Bdd.restrict man majority_ish parity))
  in
  Alcotest.(check (float 0.0)) "tiny cache computes the same function"
    (build big) (build tiny);
  let evictions = List.assoc "evictions" (Bdd.computed_table_stats tiny) in
  Alcotest.(check bool)
    (Printf.sprintf "tiny cache actually evicted (%d)" evictions)
    true (evictions > 0)

(* Regression: the peak-live sample used to be taken only every 64K
   creations, so short runs reported a peak of 0.  The O(1) live
   counter now seeds it on every creation. *)
let test_peak_seeded_on_short_runs () =
  let man, vars = Testutil.fresh_man 4 in
  let f = Bdd.conj man (List.init 4 (fun i -> Bdd.var man vars.(i))) in
  ignore f;
  (* No gc, no live_nodes query: the peak must already be non-zero. *)
  Alcotest.(check bool)
    (Printf.sprintf "peak seeded without a scan (%d)" (Bdd.peak_live_nodes man))
    true
    (Bdd.peak_live_nodes man >= 4)

(* The unique table's O(1) counter vs. reality: exact right after a
   sweep, and never an undercount in between. *)
let test_unique_table_counters () =
  let man, vars = Testutil.fresh_man 6 in
  let v i = Bdd.var man vars.(i) in
  let keep = List.fold_left (Bdd.band man) (Bdd.tru man) (List.init 6 v) in
  for k = 1 to 100 do
    ignore
      (Bdd.bxor man keep
         (Bdd.band man (v (k mod 6)) (Bdd.of_bool man (k land 1 = 0))))
  done;
  let counted = Bdd.live_nodes man in
  Bdd.gc man;
  let exact = Bdd.live_nodes man in
  Alcotest.(check bool)
    (Printf.sprintf "pre-sweep count is an upper bound (%d >= %d)" counted
       exact)
    true (counted >= exact);
  Alcotest.(check int) "stats agree with live_nodes" exact
    (List.assoc "live" (Bdd.unique_table_stats man));
  Alcotest.(check bool) "sweeps counted" true
    (List.assoc "sweeps" (Bdd.unique_table_stats man) >= 1)

let test_reorder_interleaves () =
  (* Equality of two 4-bit words declared far apart costs ~2^w nodes;
     a good order interleaves them and costs ~3w.  The greedy search
     must find a strictly (and substantially) better order. *)
  let man = Bdd.create () in
  let a = List.init 4 (fun _ -> Bdd.new_var man) in
  let b = List.init 4 (fun _ -> Bdd.new_var man) in
  let eq =
    Bdd.conj man
      (List.map2 (fun x y -> Bdd.biff man (Bdd.var man x) (Bdd.var man y)) a b)
  in
  let before = Bdd.size eq in
  let perm = Bdd.Reorder.greedy_adjacent ~passes:4 man [ eq ] in
  let dst = Bdd.create () in
  let _ = List.init 8 (fun _ -> Bdd.new_var dst) in
  (match Bdd.Reorder.apply ~dst man [ eq ] perm with
  | [ eq' ] ->
    Alcotest.(check bool)
      (Printf.sprintf "reorder shrinks equality (%d -> %d)" before
         (Bdd.size eq'))
      true
      (Bdd.size eq' < before)
  | _ -> Alcotest.fail "one root expected")

let test_reorder_apply_validates () =
  (* [apply] checks the permutation against the SOURCE manager (the
     formerly unused parameter): every source level must map to an
     allocated, distinct target level, instead of failing deep inside
     node construction or silently aliasing two levels. *)
  let man, vars = Testutil.fresh_man 4 in
  let f = Bdd.band man (Bdd.var man vars.(0)) (Bdd.var man vars.(3)) in
  let small = Bdd.create () in
  let _ = List.init 2 (fun _ -> Bdd.new_var small) in
  Alcotest.check_raises "unallocated target level"
    (Invalid_argument "Reorder.apply: level 2 maps to 2, not allocated in dst")
    (fun () ->
      ignore (Bdd.Reorder.apply ~dst:small man [ f ] (Array.init 4 Fun.id)));
  let dst = Bdd.create () in
  let _ = List.init 4 (fun _ -> Bdd.new_var dst) in
  Alcotest.check_raises "non-injective permutation"
    (Invalid_argument
       "Reorder.apply: permutation not injective (levels 0 and 1 both map \
        to 0)")
    (fun () -> ignore (Bdd.Reorder.apply ~dst man [ f ] [| 0; 0; 2; 3 |]));
  (* A valid non-monotone (reversing) permutation passes validation and
     preserves semantics. *)
  let rev = Array.init 4 (fun i -> 3 - i) in
  match Bdd.Reorder.apply ~dst man [ f ] rev with
  | [ f' ] ->
    Alcotest.(check bool) "reversal preserves semantics" true
      (List.for_all
         (fun env ->
           let permuted = Array.make 4 false in
           Array.iteri (fun l v -> permuted.(rev.(l)) <- v) env;
           Bdd.eval dst permuted f'
           = (env.(vars.(0)) && env.(vars.(3))))
         (List.map Array.of_list
            [
              [ false; false; false; false ]; [ true; false; false; false ];
              [ true; false; false; true ]; [ false; true; true; false ];
              [ true; true; true; true ]; [ false; true; false; true ];
            ]))
  | _ -> Alcotest.fail "one root expected"

(* --- Properties ------------------------------------------------------ *)

let with_expr e k =
  let man, vars = Testutil.fresh_man nvars in
  k man vars (Testutil.build_bdd man vars e)

let prop_semantics e =
  with_expr e (fun man vars f -> Testutil.semantically_equal man nvars f e vars)

let prop_negation e =
  with_expr e (fun man _ f -> Bdd.equal f (Bdd.bnot man (Bdd.bnot man f)))

let prop_canonical (a, b) =
  (* If two expressions agree on all assignments their BDDs must be
     physically equal (and conversely). *)
  let man, vars = Testutil.fresh_man nvars in
  let fa = Testutil.build_bdd man vars a in
  let fb = Testutil.build_bdd man vars b in
  let same_sem =
    List.for_all
      (fun env -> Testutil.eval_expr env a = Testutil.eval_expr env b)
      (Testutil.all_envs nvars)
  in
  Bdd.equal fa fb = same_sem

let prop_exists (a, _) =
  let man, vars = Testutil.fresh_man nvars in
  let f = Testutil.build_bdd man vars a in
  let lvl = vars.(1) in
  let vs = Bdd.varset man [ lvl ] in
  let quant = Bdd.exists man vs f in
  let expect =
    Bdd.bor man
      (Bdd.cofactor man ~lvl ~value:true f)
      (Bdd.cofactor man ~lvl ~value:false f)
  in
  Bdd.equal quant expect

let prop_and_exists (a, b) =
  let man, vars = Testutil.fresh_man nvars in
  let f = Testutil.build_bdd man vars a in
  let g = Testutil.build_bdd man vars b in
  let vs = Bdd.varset man [ vars.(0); vars.(2) ] in
  Bdd.equal (Bdd.and_exists man vs f g) (Bdd.exists man vs (Bdd.band man f g))

let prop_restrict_care (a, b) =
  (* restrict(f, c) agrees with f wherever c holds. *)
  let man, vars = Testutil.fresh_man nvars in
  let f = Testutil.build_bdd man vars a in
  let c = Testutil.build_bdd man vars b in
  Bdd.is_false c
  || begin
       let r = Bdd.restrict man f c in
       List.for_all
         (fun env ->
           let env' = Testutil.env_by_level vars env in
           (not (Bdd.eval man env' c))
           || Bdd.eval man env' r = Bdd.eval man env' f)
         (Testutil.all_envs nvars)
     end

let prop_constrain_algebra (a, b) =
  (* constrain(f,c) /\ c = f /\ c -- the defining property. *)
  let man, vars = Testutil.fresh_man nvars in
  let f = Testutil.build_bdd man vars a in
  let c = Testutil.build_bdd man vars b in
  Bdd.is_false c
  || Bdd.equal
       (Bdd.band man (Bdd.constrain man f c) c)
       (Bdd.band man f c)

let prop_multi_restrict_care (a, b) =
  (* multi_restrict agrees with f wherever every care conjunct holds;
     exercised with the care set split into two conjuncts. *)
  let man, vars = Testutil.fresh_man nvars in
  let f = Testutil.build_bdd man vars a in
  let c = Testutil.build_bdd man vars b in
  let c1 = Bdd.bor man c (Bdd.var man vars.(0)) in
  let c2 = Bdd.bor man c (Bdd.bnot man (Bdd.var man vars.(0))) in
  (* c1 /\ c2 = c *)
  Bdd.is_false c1 || Bdd.is_false c2
  || begin
       let r = Bdd.multi_restrict man f [ c1; c2 ] in
       List.for_all
         (fun env ->
           let env' = Testutil.env_by_level vars env in
           (not (Bdd.eval man env' c1 && Bdd.eval man env' c2))
           || Bdd.eval man env' r = Bdd.eval man env' f)
         (Testutil.all_envs nvars)
     end

let prop_multi_restrict_single (a, b) =
  (* With a single care conjunct multi_restrict specialises to a sound
     simplification under the same care set as Restrict. *)
  let man, vars = Testutil.fresh_man nvars in
  let f = Testutil.build_bdd man vars a in
  let c = Testutil.build_bdd man vars b in
  Bdd.is_false c
  || begin
       let r = Bdd.multi_restrict man f [ c ] in
       List.for_all
         (fun env ->
           let env' = Testutil.env_by_level vars env in
           (not (Bdd.eval man env' c)) || Bdd.eval man env' r = Bdd.eval man env' f)
         (Testutil.all_envs nvars)
     end

let prop_theorem3 (a, b) =
  (* Theorem 3 of the paper: a \/ b tautology iff restrict(a, ~b) is. *)
  let man, vars = Testutil.fresh_man nvars in
  let fa = Testutil.build_bdd man vars a in
  let fb = Testutil.build_bdd man vars b in
  Bdd.is_true fb
  || Bdd.is_true (Bdd.bor man fa fb)
     = Bdd.is_true (Bdd.restrict man fa (Bdd.bnot man fb))

let prop_sat_count e =
  with_expr e (fun _man vars f ->
      let expect =
        List.length
          (List.filter (fun env -> Testutil.eval_expr env e)
             (Testutil.all_envs nvars))
      in
      ignore vars;
      abs_float (Bdd.sat_count ~nvars f -. float_of_int expect) < 1e-6)

let prop_size_list_sharing (a, b) =
  (* Shared size is bounded by the sum and at least the max. *)
  let man, vars = Testutil.fresh_man nvars in
  let f = Testutil.build_bdd man vars a in
  let g = Testutil.build_bdd man vars b in
  let s = Bdd.size_list [ f; g ] in
  s <= Bdd.size f + Bdd.size g && s >= max (Bdd.size f) (Bdd.size g)

let prop_support e =
  with_expr e (fun man vars f ->
      (* A variable is in the support iff the cofactors differ. *)
      List.for_all
        (fun lvl ->
          let dependent =
            not
              (Bdd.equal
                 (Bdd.cofactor man ~lvl ~value:true f)
                 (Bdd.cofactor man ~lvl ~value:false f))
          in
          List.mem lvl (Bdd.support f) = dependent)
        (Array.to_list vars))

let prop_compose (a, b) =
  (* compose x<-g f has the semantics of substitution. *)
  let man, vars = Testutil.fresh_man nvars in
  let f = Testutil.build_bdd man vars a in
  let g = Testutil.build_bdd man vars b in
  let lvl = vars.(2) in
  let h = Bdd.compose man ~lvl ~by:g f in
  List.for_all
    (fun env ->
      let env' = Testutil.env_by_level vars env in
      let env2 = Array.copy env' in
      env2.(lvl) <- Bdd.eval man env' g;
      Bdd.eval man env' h = Bdd.eval man env2 f)
    (Testutil.all_envs nvars)

let prop_transfer_semantics e =
  (* Transfer under a random-ish permutation preserves semantics. *)
  let man, vars = Testutil.fresh_man nvars in
  let f = Testutil.build_bdd man vars e in
  (* reverse the variable order: a maximally non-monotone permutation *)
  let perm = Array.init nvars (fun i -> nvars - 1 - i) in
  let dst = Bdd.create () in
  let _ = List.init nvars (fun _ -> Bdd.new_var dst) in
  match Bdd.Reorder.transfer ~dst ~perm [ f ] with
  | [ f' ] ->
    List.for_all
      (fun env ->
        let direct = Testutil.eval_expr env e in
        let permuted = Array.make nvars false in
        Array.iteri (fun i lvl -> permuted.(perm.(lvl)) <- env.(i)) vars;
        Bdd.eval dst permuted f' = direct)
      (Testutil.all_envs nvars)
  | _ -> false

let prop_minterms e =
  (* minterms enumerates exactly the satisfying assignments. *)
  let man, vars = Testutil.fresh_man nvars in
  let f = Testutil.build_bdd man vars e in
  let got =
    Bdd.minterms man ~vars:(Array.to_list vars) f
    |> Seq.map Array.to_list |> List.of_seq
    |> List.sort_uniq compare
  in
  let expect =
    Testutil.all_envs nvars
    |> List.filter (fun env -> Testutil.eval_expr env e)
    |> List.map (fun env -> Array.to_list (Testutil.env_by_level vars env))
    |> List.sort_uniq compare
  in
  got = expect

let prop_serialize e =
  let man, vars = Testutil.fresh_man nvars in
  let f = Testutil.build_bdd man vars e in
  let path = Filename.temp_file "bdd" ".txt" in
  Bdd.Serialize.to_file man path [ f ];
  let man2 = Bdd.create () in
  let _ = List.init nvars (fun _ -> Bdd.new_var man2) in
  let ok =
    match Bdd.Serialize.of_file man2 path with
    | [ f2 ] ->
      List.for_all
        (fun env ->
          let by_level = Testutil.env_by_level vars env in
          Bdd.eval man2 by_level f2 = Testutil.eval_expr env e)
        (Testutil.all_envs nvars)
    | _ -> false
  in
  Sys.remove path;
  ok

let prop_serialize_structural (ea, eb) =
  (* The structural half of the round trip, beyond semantics: reading
     into the SAME manager reproduces the original nodes (canonicity
     through the unique table), a fresh manager reproduces the same
     sizes, and re-serializing from the fresh manager is byte-identical
     (the dense bottom-up renumbering is manager- and GC-independent). *)
  let man, vars = Testutil.fresh_man nvars in
  let f = Testutil.build_bdd man vars ea in
  let g = Testutil.build_bdd man vars eb in
  let read_file p =
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let path = Filename.temp_file "bdd" ".txt" in
  let path2 = Filename.temp_file "bdd" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Sys.remove path2)
    (fun () ->
      Bdd.Serialize.to_file man path [ f; g ];
      let same_manager =
        match Bdd.Serialize.of_file man path with
        | [ f2; g2 ] -> Bdd.equal f f2 && Bdd.equal g g2
        | _ -> false
      in
      let man2 = Bdd.create () in
      let _ = List.init nvars (fun _ -> Bdd.new_var man2) in
      match Bdd.Serialize.of_file man2 path with
      | [ f2; g2 ] ->
        let fresh_manager =
          Bdd.size f2 = Bdd.size f
          && Bdd.size g2 = Bdd.size g
          && Testutil.semantically_equal man2 nvars f2 ea vars
          && Testutil.semantically_equal man2 nvars g2 eb vars
        in
        Bdd.Serialize.to_file man2 path2 [ f2; g2 ];
        same_manager && fresh_manager && read_file path = read_file path2
      | _ -> false)

let prop_implies (a, b) =
  let man, vars = Testutil.fresh_man nvars in
  let f = Testutil.build_bdd man vars a in
  let g = Testutil.build_bdd man vars b in
  let expect =
    List.for_all
      (fun env ->
        (not (Testutil.eval_expr env a)) || Testutil.eval_expr env b)
      (Testutil.all_envs nvars)
  in
  Bdd.implies man f g = expect

let () =
  Alcotest.run "bdd"
    [
      ( "unit",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "variables" `Quick test_var_basic;
          Alcotest.test_case "hash-consing canonicity" `Quick
            test_canonicity_hashcons;
          Alcotest.test_case "fifo type constraint is 9 nodes" `Quick
            test_type_constraint_size;
          Alcotest.test_case "exists/forall" `Quick test_exists_unit;
          Alcotest.test_case "rename" `Quick test_rename_unit;
          Alcotest.test_case "rename rejects non-monotone" `Quick
            test_rename_not_monotone;
          Alcotest.test_case "restrict" `Quick test_restrict_unit;
          Alcotest.test_case "sat_count" `Quick test_sat_count_unit;
          Alcotest.test_case "pick_minterm" `Quick test_pick_minterm_unit;
          Alcotest.test_case "stats counters" `Quick test_stats;
          Alcotest.test_case "cache hit/miss counters" `Quick
            test_cache_stats;
          Alcotest.test_case "dot export" `Quick test_dot_output;
          Alcotest.test_case "serialize roundtrip" `Quick
            test_serialize_roundtrip;
          Alcotest.test_case "serialize rejects garbage" `Quick
            test_serialize_rejects_garbage;
          Alcotest.test_case "serialize level relocation" `Quick
            test_serialize_relocation;
          Alcotest.test_case "serialize error paths" `Quick
            test_serialize_error_paths;
          Alcotest.test_case "fault hook fires exactly" `Quick
            test_fault_hook;
          Alcotest.test_case "node budget nests" `Quick
            test_node_budget_nesting;
          Alcotest.test_case "cube counting" `Quick test_cubes_unit;
          Alcotest.test_case "reorder finds interleaving" `Quick
            test_reorder_interleaves;
          Alcotest.test_case "weak unique table survives GC" `Quick
            test_weak_table_gc;
          Alcotest.test_case "sifting recovers grouped order" `Quick
            test_sift_recovers_grouped_order;
          Alcotest.test_case "apply validates against the source manager"
            `Quick test_reorder_apply_validates;
          Alcotest.test_case "computed table integrity under eviction"
            `Quick test_computed_table_integrity;
          Alcotest.test_case "computed table generation invalidation"
            `Quick test_computed_table_generations;
          Alcotest.test_case "computed table resize" `Quick
            test_computed_table_resize;
          Alcotest.test_case "tiny cache preserves semantics" `Quick
            test_tiny_cache_semantics;
          Alcotest.test_case "peak seeded on short runs" `Quick
            test_peak_seeded_on_short_runs;
          Alcotest.test_case "unique table counters" `Quick
            test_unique_table_counters;
        ] );
      ( "properties",
        [
          qtest "semantics vs truth table" prop_semantics;
          qtest "double negation" prop_negation;
          qtest2 "canonicity" prop_canonical;
          qtest2 "exists = or of cofactors" prop_exists;
          qtest2 "and_exists = exists of and" prop_and_exists;
          qtest2 "restrict agrees on care set" prop_restrict_care;
          qtest2 "constrain defining identity" prop_constrain_algebra;
          qtest2 "theorem 3 (restrict tautology)" prop_theorem3;
          qtest2 "multi_restrict care agreement" prop_multi_restrict_care;
          qtest2 "multi_restrict single conjunct" prop_multi_restrict_single;
          qtest "sat_count" prop_sat_count;
          qtest2 "size_list sharing bounds" prop_size_list_sharing;
          qtest "support = dependent vars" prop_support;
          qtest2 "compose substitution" prop_compose;
          qtest2 "implies decision" prop_implies;
          qtest "minterm enumeration" prop_minterms;
          qtest ~count:150 "transfer preserves semantics" prop_transfer_semantics;
          qtest ~count:150 "serialization semantics" prop_serialize;
          qtest2 ~count:150 "serialization structural round trip"
            prop_serialize_structural;
        ] );
    ]
