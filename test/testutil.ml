(* Shared helpers for the test suites.  The expression AST, reference
   evaluator and generators now live in the fuzz library (the single
   source shared with the fuzzing targets); this module re-exports them
   under their historical names. *)

include Fuzz.Expr
