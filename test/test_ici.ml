(* Tests for the implicit-conjunction engine: list normalisation, the
   evaluation/simplification policy (semantics preservation under every
   configuration), the Theorem-2 cover, and the exact termination test
   checked against explicitly built disjunctions. *)

let nvars = 5

let gen_list =
  QCheck2.Gen.(list_size (int_range 1 6) (Testutil.gen_expr ~nvars))

let print_list es =
  String.concat " /\\ " (List.map (Format.asprintf "%a" Testutil.pp_expr) es)

let qtest ?(count = 200) name prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ~print:print_list gen_list prop)

let build_all es =
  let man, vars = Testutil.fresh_man nvars in
  (man, vars, List.map (Testutil.build_bdd man vars) es)

(* --- Clist ------------------------------------------------------------ *)

let test_clist_normalise () =
  let man, vars = Testutil.fresh_man 2 in
  let x = Bdd.var man vars.(0) in
  let xs = Ici.Clist.of_list man [ Bdd.tru man; x; x ] in
  Alcotest.(check int) "true and dup dropped" 1 (Ici.Clist.length xs);
  let ys = Ici.Clist.of_list man [ x; Bdd.fls man ] in
  Alcotest.(check bool) "false collapses" true (Ici.Clist.is_false ys);
  Alcotest.(check bool) "empty list is true" true
    (Ici.Clist.is_true (Ici.Clist.of_list man [ Bdd.tru man ]))

let test_clist_eval () =
  let man, vars = Testutil.fresh_man 3 in
  let xs =
    Ici.Clist.of_list man [ Bdd.var man vars.(0); Bdd.nvar man vars.(2) ]
  in
  Alcotest.(check bool) "eval true case" true
    (Ici.Clist.eval man [| true; false; false |] xs);
  Alcotest.(check bool) "eval false case" false
    (Ici.Clist.eval man [| true; false; true |] xs)

let test_clist_implied_by () =
  let man, vars = Testutil.fresh_man 3 in
  let x = Bdd.var man vars.(0) and y = Bdd.var man vars.(1) in
  let xs = Ici.Clist.of_list man [ x; y ] in
  Alcotest.(check bool) "x&y implies list" true
    (Ici.Clist.implied_by man (Bdd.band man x y) xs);
  Alcotest.(check bool) "x alone does not" false
    (Ici.Clist.implied_by man x xs);
  (match Ici.Clist.find_unimplied man x xs with
  | Some w -> Alcotest.(check bool) "witness is y" true (Bdd.equal w y)
  | None -> Alcotest.fail "expected a witness")

(* --- Policy ------------------------------------------------------------ *)

let improve_preserves cfg es =
  let man, _, xs = build_all es in
  let before = Bdd.conj man xs in
  let after = Ici.Policy.improve man cfg (Ici.Clist.of_list man xs) in
  Bdd.equal before (Ici.Clist.force man after)

let prop_improve_default es = improve_preserves Ici.Policy.default es

let prop_improve_constrain es =
  improve_preserves
    { Ici.Policy.default with simplifier = Ici.Policy.Constrain }
    es

let prop_improve_cover es =
  improve_preserves
    { Ici.Policy.default with evaluation = Ici.Policy.Optimal_cover }
    es

let prop_improve_multi es =
  improve_preserves
    { Ici.Policy.default with simplifier = Ici.Policy.Multi_restrict }
    es

let prop_improve_no_simplify es =
  improve_preserves
    { Ici.Policy.default with simplifier = Ici.Policy.No_simplify }
    es

let all_configs =
  (* The full simplifier x evaluation cross product, at the default
     threshold and with the pair-step budget both on and off. *)
  List.concat_map
    (fun simplifier ->
      List.concat_map
        (fun evaluation ->
          [
            { Ici.Policy.default with simplifier; evaluation };
            { Ici.Policy.default with simplifier; evaluation;
              pair_step_factor = None };
          ])
        [ Ici.Policy.Greedy; Ici.Policy.Optimal_cover;
          Ici.Policy.No_evaluation ])
    [ Ici.Policy.Restrict; Ici.Policy.Constrain; Ici.Policy.Multi_restrict;
      Ici.Policy.No_simplify ]

let prop_improve_all_configs es =
  (* Soundness across the whole configuration space: the implied
     conjunction never changes. *)
  List.for_all (fun cfg -> improve_preserves cfg es) all_configs

let prop_greedy_size_guarantee es =
  (* The per-step acceptance test (Figure 1) bounds each accepted
     replacement: size(xi /\ xj) <= t * shared_size(xi, xj), and the
     pair's shared size is at most the whole list's.  So across k
     accepted steps the total shared size grows by at most (1 + t) per
     step (the new conjunct adds at most t * before nodes on top of
     what is already shared):

       shared_size(after) <= shared_size(before) * (1 + t)^k

     with k = length(before) - length(after).  A violation means the
     greedy loop accepted a pair the threshold should have rejected. *)
  let man, _, xs = build_all es in
  List.for_all
    (fun grow_threshold ->
      let before = Ici.Clist.of_list man xs in
      let after =
        Ici.Policy.greedy_evaluate man ~grow_threshold before
      in
      let steps = Ici.Clist.length before - Ici.Clist.length after in
      steps >= 0
      && float_of_int (Ici.Clist.shared_size after)
         <= (float_of_int (Ici.Clist.shared_size before)
             *. ((1.0 +. grow_threshold) ** float_of_int steps))
            +. 1e-9)
    [ 0.5; 1.0; 1.5; 3.0 ]

let prop_simplify_pass es =
  let man, _, xs = build_all es in
  let before = Bdd.conj man xs in
  let after =
    Ici.Policy.simplify_pass man Ici.Policy.default (Ici.Clist.of_list man xs)
  in
  Bdd.equal before (Ici.Clist.force man after)

let prop_huge_threshold_collapses es =
  (* With an unbounded threshold the greedy loop must fully evaluate the
     list down to (at most) one conjunct. *)
  let man, _, xs = build_all es in
  let after =
    Ici.Policy.greedy_evaluate man ~grow_threshold:infinity
      (Ici.Clist.of_list man xs)
  in
  Ici.Clist.length after <= 1

let prop_threshold_zero_keeps es =
  (* A threshold below any possible ratio performs no evaluation. *)
  let man, _, xs = build_all es in
  let normalised = Ici.Clist.of_list man xs in
  let after = Ici.Policy.greedy_evaluate man ~grow_threshold:0.0 normalised in
  Ici.Clist.length after = Ici.Clist.length normalised

let test_pair_cache_persists () =
  (* The Figure-1 pair table is caller-held state: scores computed in
     one [improve] call (one traversal iteration) must be reused by the
     next call when the conjuncts did not change -- and must be dropped
     after a gc moves the manager's generation, since cached BDD values
     may be dead. *)
  let man, vars = Testutil.fresh_man 4 in
  let xs = List.init 4 (fun i -> Bdd.var man vars.(i)) in
  let before_conj = Bdd.conj man xs in
  (* Threshold 0: every pair gets scored, none merged, so the list is
     stable across iterations and every pair key recurs. *)
  let cfg = { Ici.Policy.default with grow_threshold = 0.0 } in
  let st = Ici.Policy.create_state () in
  let hits =
    Obs.Registry.counter Obs.Registry.default "policy.pair_cache_hits"
  in
  let run () =
    Ici.Policy.improve man ~state:st cfg (Ici.Clist.of_list man xs)
  in
  let r1 = run () in
  let h0 = Obs.Registry.count hits in
  let r2 = run () in
  let h1 = Obs.Registry.count hits in
  Alcotest.(check bool) "second improve hits the persisted pair cache" true
    (h1 > h0);
  Alcotest.(check bool) "semantics preserved" true
    (Bdd.equal before_conj (Ici.Clist.force man r1)
    && Bdd.equal before_conj (Ici.Clist.force man r2));
  (* After a gc the cached BDDs may be dead: the table must invalidate,
     so the next call re-scores instead of hitting. *)
  Bdd.gc man;
  ignore (run ());
  let h2 = Obs.Registry.count hits in
  Alcotest.(check int) "gc invalidates the pair cache" h1 h2

(* --- Matching ----------------------------------------------------------- *)

(* Brute-force reference written independently of the DP. *)
let rec brute_cover n covered single_cost pair_cost =
  match List.find_opt (fun i -> not (List.mem i covered)) (List.init n Fun.id) with
  | None -> 0
  | Some i ->
    let best = ref (single_cost i + brute_cover n (i :: covered) single_cost pair_cost) in
    for j = 0 to n - 1 do
      if j <> i then begin
        let c =
          pair_cost (min i j) (max i j)
          + brute_cover n (i :: j :: covered) single_cost pair_cost
        in
        if c < !best then best := c
      end
    done;
    !best

let prop_matching_optimal (costs : (int * int list) list) =
  let n = min (List.length costs) 5 in
  n >= 1
  && begin
       let arr = Array.of_list costs in
       let single_cost i = 1 + abs (fst arr.(i)) mod 50 in
       let pair_cost i j =
         let row = snd arr.(i) in
         let v = try List.nth row (j mod max 1 (List.length row)) with _ -> 7 in
         1 + abs v mod 50
       in
       let pair_cost i j = pair_cost (min i j) (max i j) in
       let cover = Ici.Matching.min_cost_pair_cover ~n ~single_cost ~pair_cost in
       (* Validity: all covered. *)
       let covered = Hashtbl.create 8 in
       List.iter
         (function
           | Ici.Matching.Single i -> Hashtbl.replace covered i ()
           | Ici.Matching.Pair (i, j) ->
             Hashtbl.replace covered i ();
             Hashtbl.replace covered j ())
         cover;
       List.for_all (Hashtbl.mem covered) (List.init n Fun.id)
       && Ici.Matching.cover_cost ~single_cost ~pair_cost cover
          = brute_cover n [] single_cost pair_cost
     end

(* --- Tautology ----------------------------------------------------------- *)

let tautology_reference man ds = Bdd.is_true (Bdd.disj man ds)

let prop_tautology_exact es =
  let man, _, ds = build_all es in
  List.for_all
    (fun var_choice ->
      List.for_all
        (fun simplify ->
          List.for_all
            (fun memo ->
              Ici.Tautology.check ~var_choice ~simplify ~memo man ds
              = tautology_reference man ds)
            [ true; false ])
        [ true; false ])
    [ Ici.Tautology.First_top; Ici.Tautology.Lowest_level;
      Ici.Tautology.Most_common ]

let prop_implies_exact (es1, es2) =
  let man, vars = Testutil.fresh_man nvars in
  let xs = List.map (Testutil.build_bdd man vars) es1 in
  let ys = List.map (Testutil.build_bdd man vars) es2 in
  let expect = Bdd.implies man (Bdd.conj man xs) (Bdd.conj man ys) in
  Ici.Tautology.implies man xs ys = expect

let prop_equal_exact (es1, es2) =
  let man, vars = Testutil.fresh_man nvars in
  let xs = List.map (Testutil.build_bdd man vars) es1 in
  let ys = List.map (Testutil.build_bdd man vars) es2 in
  let expect = Bdd.equal (Bdd.conj man xs) (Bdd.conj man ys) in
  Ici.Tautology.equal man xs ys = expect

let test_tautology_units () =
  let man, vars = Testutil.fresh_man 3 in
  let x = Bdd.var man vars.(0) in
  Alcotest.(check bool) "x or ~x" true
    (Ici.Tautology.check man [ x; Bdd.bnot man x ]);
  Alcotest.(check bool) "x alone" false (Ici.Tautology.check man [ x ]);
  Alcotest.(check bool) "empty disjunction" false (Ici.Tautology.check man []);
  Alcotest.(check bool) "true member" true
    (Ici.Tautology.check man [ x; Bdd.tru man ])

let test_tautology_fuel () =
  let man, vars = Testutil.fresh_man 4 in
  (* A disjunction that is a tautology but needs expansions when the
     Theorem-3 step is disabled: pairwise ors of xors. *)
  let x = Bdd.var man vars.(0)
  and y = Bdd.var man vars.(1)
  and z = Bdd.var man vars.(2) in
  let ds =
    [ Bdd.band man x y; Bdd.band man x (Bdd.bnot man y); Bdd.bnot man x;
      Bdd.band man y z ]
  in
  let stats = Ici.Tautology.fresh_stats () in
  let r = Ici.Tautology.check ~simplify:false ~stats man ds in
  Alcotest.(check bool) "tautology detected" true r;
  Alcotest.(check bool) "expansions counted" true (stats.expansions >= 1);
  Alcotest.check_raises "fuel exhausts" Ici.Tautology.Out_of_fuel (fun () ->
      ignore (Ici.Tautology.check ~simplify:false ~fuel:0 man ds))

let test_stats_simplifications () =
  let man, vars = Testutil.fresh_man 3 in
  let x = Bdd.var man vars.(0) and y = Bdd.var man vars.(1) in
  let stats = Ici.Tautology.fresh_stats () in
  ignore (Ici.Tautology.check ~stats man [ x; y; Bdd.bnot man (Bdd.band man x y) ]);
  Alcotest.(check bool) "theorem-3 restricts counted" true
    (stats.simplifications >= 1)

let test_memo_survives_fuel_retry () =
  (* Caller-held memo table across fuel retries: verdicts settled by a
     starved attempt must survive its [Out_of_fuel] escape, so a retry
     at the SAME fuel converges (a fresh table at that fuel provably
     cannot) and its stats record hits on the survived entries.

     The "staircase" family makes that deterministic: block i is a
     2-variable tautology guarded by "x_i is the first true x", so the
     Shannon recursion burns one expansion per x going down, then
     completes (and memoises) one staircase tail per expansion coming
     back up.  Cold cost is 2k expansions; a starved attempt at k+2
     stores the deepest tails, and the retry hits them instead of
     re-descending. *)
  let man = Bdd.create () in
  let k = 6 in
  let blocks =
    List.init k (fun _ ->
        let x = Bdd.new_var man in
        let u = Bdd.new_var man in
        let v = Bdd.new_var man in
        (x, u, v))
  in
  let members =
    let rec go prefix = function
      | [] -> [ prefix ] (* the all-x-false leftover *)
      | (x, u, v) :: rest ->
        let xi = Bdd.var man x and ui = Bdd.var man u and vi = Bdd.var man v in
        let here = Bdd.band man prefix xi in
        [ Bdd.band man here (Bdd.band man ui vi);
          Bdd.band man here (Bdd.band man ui (Bdd.bnot man vi));
          Bdd.band man here (Bdd.bnot man ui) ]
        @ go (Bdd.band man prefix (Bdd.bnot man xi)) rest
    in
    go (Bdd.tru man) blocks
  in
  let starved = k + 2 in
  Alcotest.check_raises "fresh table at starved fuel dies"
    Ici.Tautology.Out_of_fuel (fun () ->
      ignore (Ici.Tautology.check ~simplify:false ~fuel:starved man members));
  let table = Ici.Tautology.create_memo () in
  let exhausted = ref 0 in
  let rec retry rounds =
    if rounds > 50 then
      Alcotest.fail "shared memo table never accumulated enough progress"
    else begin
      (* Fresh stats per attempt: [fuel] bounds a single attempt's
         expansions, and we want the converging attempt's own hits. *)
      let stats = Ici.Tautology.fresh_stats () in
      match
        Ici.Tautology.check ~simplify:false ~fuel:starved ~memo_table:table
          ~stats man members
      with
      | v -> (v, stats)
      | exception Ici.Tautology.Out_of_fuel ->
        incr exhausted;
        retry (rounds + 1)
    end
  in
  let verdict, stats = retry 0 in
  Alcotest.(check bool) "verdict correct" true verdict;
  Alcotest.(check bool) "at least one starved attempt preceded" true
    (!exhausted >= 1);
  Alcotest.(check bool) "memo hits grew across the retry" true
    (stats.Ici.Tautology.memo_hits > 0)

let qtest2 ?(count = 150) name prop =
  let gen = QCheck2.Gen.pair gen_list gen_list in
  let print (a, b) = print_list a ^ " // " ^ print_list b in
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen prop)

let qtest_costs name prop =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 5)
        (pair small_int (list_size (int_range 1 5) small_int)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name gen prop)

let () =
  Alcotest.run "ici"
    [
      ( "clist",
        [
          Alcotest.test_case "normalisation" `Quick test_clist_normalise;
          Alcotest.test_case "eval" `Quick test_clist_eval;
          Alcotest.test_case "implied_by / witness" `Quick
            test_clist_implied_by;
        ] );
      ( "policy",
        [
          qtest "improve preserves conjunction (default)" prop_improve_default;
          qtest "improve preserves conjunction (constrain)"
            prop_improve_constrain;
          qtest "improve preserves conjunction (optimal cover)"
            prop_improve_cover;
          qtest "improve preserves conjunction (no simplify)"
            prop_improve_no_simplify;
          qtest "improve preserves conjunction (multi-restrict)"
            prop_improve_multi;
          qtest ~count:100 "improve preserves conjunction (all 24 configs)"
            prop_improve_all_configs;
          qtest "greedy evaluation respects the growth bound"
            prop_greedy_size_guarantee;
          qtest "simplify_pass preserves conjunction" prop_simplify_pass;
          qtest "infinite threshold collapses to one conjunct"
            prop_huge_threshold_collapses;
          qtest "zero threshold evaluates nothing" prop_threshold_zero_keeps;
          Alcotest.test_case "pair cache persists across improve calls"
            `Quick test_pair_cache_persists;
        ] );
      ( "matching",
        [ qtest_costs "optimal pairwise cover vs brute force"
            prop_matching_optimal ] );
      ( "tautology",
        [
          Alcotest.test_case "unit cases" `Quick test_tautology_units;
          Alcotest.test_case "fuel and stats" `Quick test_tautology_fuel;
          Alcotest.test_case "simplification stats" `Quick
            test_stats_simplifications;
          Alcotest.test_case "memo survives fuel retries" `Quick
            test_memo_survives_fuel_retry;
          qtest "exact vs built disjunction (all strategies)"
            prop_tautology_exact;
          qtest2 "implication exact" prop_implies_exact;
          qtest2 "equality exact" prop_equal_exact;
        ] );
    ]
