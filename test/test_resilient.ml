(* Resilience-layer tests: monotonic clock, budget-guard chaining,
   checkpoint save/load/corruption handling, fault-injected kill +
   resume, and the resilient driver's escalating budgets and portfolio
   fallback.

   The vehicle is a 4-bit saturating chain: 0 is a fixed point, any
   nonzero value marches deterministically up to 15 and sticks there.
   Reachable = {0}, so "never 15" holds -- but the backward fixpoint
   must peel one value per iteration, giving a run long enough that
   killing it mid-fixpoint and resuming from its checkpoint is
   observable in the iteration counts. *)

let chain_width = 4
let chain_top = (1 lsl chain_width) - 1

let chain_model () =
  let sp = Fsm.Space.create () in
  let w = Fsm.Space.state_word ~name:"c" sp ~width:chain_width in
  let man = Fsm.Space.man sp in
  let c = Fsm.Space.cur_vec sp w in
  let konst k = Bvec.const man ~width:chain_width k in
  let inc = Bvec.add man c (konst 1) in
  let nextv =
    Bvec.mux man
      (Bvec.eq man c (konst 0))
      (konst 0)
      (Bvec.mux man (Bvec.eq man c (konst chain_top)) (konst chain_top) inc)
  in
  let assigns = Array.to_list (Array.mapi (fun i l -> (l, nextv.(i))) w) in
  let trans = Fsm.Trans.make sp ~assigns in
  let init = Bvec.eq man c (konst 0) in
  let good = [ Bdd.bnot man (Bvec.eq man c (konst chain_top)) ] in
  Mc.Model.make ~name:"chain" ~space:sp ~trans ~init ~good ()

let limits man =
  Mc.Limits.start ~max_iterations:100 ~max_created_nodes:2_000_000 man

let run_xici ?checkpoint_path ?resume_from model =
  Mc.Xici.run ~limits ?checkpoint_path ?resume_from model

(* A fresh path that does not exist yet (checkpoint saves create it). *)
let temp_path () =
  let path = Filename.temp_file "icv-test" ".ckpt" in
  Sys.remove path;
  path

let cleanup path = if Sys.file_exists path then Sys.remove path

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let is_exceeded (r : Mc.Report.t) =
  match r.Mc.Report.status with
  | Mc.Report.Exceeded _ -> true
  | Mc.Report.Proved | Mc.Report.Violated _ -> false

(* --- monotonic clock ------------------------------------------------ *)

let test_monotonic () =
  let prev = ref (Mc.Monotonic.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Mc.Monotonic.now_ns () in
    Alcotest.(check bool) "now_ns never decreases" true
      (Int64.compare t !prev >= 0);
    prev := t
  done;
  let t0 = Mc.Monotonic.now () in
  let t1 = Mc.Monotonic.now () in
  Alcotest.(check bool) "now never decreases" true (t1 >= t0)

let test_limits_elapsed () =
  let model = chain_model () in
  let lim = Mc.Limits.start (Mc.Model.man model) in
  let e0 = Mc.Limits.elapsed lim in
  Alcotest.(check bool) "elapsed non-negative" true (e0 >= 0.0);
  Alcotest.(check bool) "elapsed non-decreasing" true
    (Mc.Limits.elapsed lim >= e0)

(* --- with_guard hook chaining and restoration ----------------------- *)

let test_with_guard_restores () =
  let model = chain_model () in
  let man = Mc.Model.man model in
  let calls = ref 0 in
  let outer (_ : Bdd.man) = incr calls in
  Bdd.set_progress_hook man (Some outer);
  (* A zero time budget blows on the first check; busy-wait one clock
     tick so elapsed is strictly positive. *)
  let lim = Mc.Limits.start ~max_seconds:0.0 man in
  let t0 = Mc.Monotonic.now () in
  while Mc.Monotonic.now () <= t0 do () done;
  let raised =
    try
      Mc.Limits.with_guard lim man (fun () ->
          match Bdd.progress_hook man with
          | Some hook ->
            hook man;
            false (* the chained guard hook must have raised *)
          | None -> false)
    with Mc.Limits.Exceeded _ -> true
  in
  Alcotest.(check bool) "guard raised through chained hook" true raised;
  Alcotest.(check bool) "enclosing hook still called" true (!calls >= 1);
  (match Bdd.progress_hook man with
  | Some h ->
    Alcotest.(check bool) "enclosing hook restored after raise" true
      (h == outer)
  | None -> Alcotest.fail "progress hook dropped by with_guard");
  Bdd.set_progress_hook man None

(* --- checkpoint save/load ------------------------------------------- *)

let same_clist a b =
  List.length a = List.length b && List.for_all2 Bdd.equal a b

let test_checkpoint_roundtrip () =
  let model = chain_model () in
  let man = Mc.Model.man model in
  let l0 = Ici.Clist.of_list man (Mc.Model.property model) in
  let init = model.Mc.Model.init in
  let cp =
    {
      Mc.Checkpoint.model_name = model.Mc.Model.name;
      nvars = Bdd.num_vars man;
      iterations = 7;
      cfg = { Ici.Policy.default with grow_threshold = 1.25 };
      termination = `Exact_implication;
      current = Ici.Clist.of_list man (init :: l0);
      gs = [ l0; Ici.Clist.of_list man [ init ] ];
    }
  in
  let path = temp_path () in
  Mc.Checkpoint.save man path cp;
  let cp' = Mc.Checkpoint.load man path in
  cleanup path;
  Alcotest.(check string)
    "model name" cp.Mc.Checkpoint.model_name cp'.Mc.Checkpoint.model_name;
  Alcotest.(check int) "nvars" cp.Mc.Checkpoint.nvars cp'.Mc.Checkpoint.nvars;
  Alcotest.(check int) "iterations" 7 cp'.Mc.Checkpoint.iterations;
  Alcotest.(check bool) "termination" true
    (cp'.Mc.Checkpoint.termination = `Exact_implication);
  Alcotest.(check (float 1e-9))
    "grow threshold" 1.25
    cp'.Mc.Checkpoint.cfg.Ici.Policy.grow_threshold;
  Alcotest.(check bool) "current round-trips" true
    (same_clist cp.Mc.Checkpoint.current cp'.Mc.Checkpoint.current);
  Alcotest.(check bool) "gs round-trips" true
    (List.length cp.Mc.Checkpoint.gs = List.length cp'.Mc.Checkpoint.gs
    && List.for_all2 same_clist cp.Mc.Checkpoint.gs cp'.Mc.Checkpoint.gs);
  (* Compatibility: accepted against its own model, rejected against a
     differently named one. *)
  Mc.Checkpoint.check_compatible cp' model;
  Alcotest.(check bool) "wrong model name rejected" true
    (try
       Mc.Checkpoint.check_compatible
         { cp' with Mc.Checkpoint.model_name = "other" }
         model;
       false
     with Mc.Checkpoint.Corrupt _ -> true)

let test_checkpoint_corruption () =
  let model = chain_model () in
  let man = Mc.Model.man model in
  let path = temp_path () in
  Alcotest.(check bool) "absent file loads as None" true
    (Mc.Checkpoint.load_opt man path = None);
  let l0 = Ici.Clist.of_list man (Mc.Model.property model) in
  Mc.Checkpoint.save man path
    {
      Mc.Checkpoint.model_name = model.Mc.Model.name;
      nvars = Bdd.num_vars man;
      iterations = 2;
      cfg = Ici.Policy.default;
      termination = `Exact_equal;
      current = l0;
      gs = [ l0 ];
    };
  let text = In_channel.with_open_bin path In_channel.input_all in
  cleanup path;
  let corrupt_raises label contents =
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc contents);
    let got =
      try
        ignore (Mc.Checkpoint.load man path);
        false
      with Mc.Checkpoint.Corrupt _ -> true
    in
    cleanup path;
    Alcotest.(check bool) label true got
  in
  let body =
    let i = String.index text '\n' + 1 in
    String.sub text i (String.length text - i)
  in
  corrupt_raises "empty file" "";
  corrupt_raises "bad magic" ("not-a-checkpoint 1\n" ^ body);
  corrupt_raises "unknown version" ("icv-checkpoint 99\n" ^ body);
  corrupt_raises "truncated body"
    (String.sub text 0 (String.length text / 2));
  (* Drop the trailing end marker: the missing-tail case a plain
     [input_line] loop would silently accept. *)
  let no_end =
    let marker = "\nend\n" in
    let n = String.length text - String.length marker in
    String.sub text 0 n
  in
  corrupt_raises "missing end marker" no_end

(* Opportunistic loading must degrade every corruption mode to a cold
   start ([None]), including byte-level truncation anywhere in the
   file -- the shape left by a crash mid-write or a torn copy. *)
let test_load_opt_tolerates_corruption () =
  let model = chain_model () in
  let man = Mc.Model.man model in
  let l0 = Ici.Clist.of_list man (Mc.Model.property model) in
  let path = temp_path () in
  Mc.Checkpoint.save man path
    {
      Mc.Checkpoint.model_name = model.Mc.Model.name;
      nvars = Bdd.num_vars man;
      iterations = 2;
      cfg = Ici.Policy.default;
      termination = `Exact_equal;
      current = l0;
      gs = [ l0 ];
    };
  let text = In_channel.with_open_bin path In_channel.input_all in
  (match Mc.Checkpoint.load_opt man path with
  | Some cp ->
    Alcotest.(check int) "intact file loads" 2 cp.Mc.Checkpoint.iterations
  | None -> Alcotest.fail "intact checkpoint refused");
  let total = String.length text in
  List.iter
    (fun keep ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub text 0 keep));
      Alcotest.(check bool)
        (Printf.sprintf "truncated to %d/%d bytes -> None" keep total)
        true
        (Mc.Checkpoint.load_opt man path = None))
    (* [total - 3] cuts into the trailing "end\n" marker; losing only
       the final newline is benign (the marker line is still intact),
       so the nearest interesting truncation is inside the marker. *)
    [ 0; 1; total / 4; total / 2; total - 3 ];
  cleanup path;
  Alcotest.(check bool) "absent -> None" true
    (Mc.Checkpoint.load_opt man path = None)

(* --- fault-injected kill + checkpoint resume ------------------------ *)

let test_kill_and_resume () =
  (* Cold run: baseline iteration count and node cost. *)
  let cold = chain_model () in
  let man_cold = Mc.Model.man cold in
  let before = Bdd.created_nodes man_cold in
  let r_cold = run_xici cold in
  Alcotest.(check bool) "cold run proves" true (Mc.Report.is_proved r_cold);
  let cold_iters = r_cold.Mc.Report.iterations in
  Alcotest.(check bool) "fixpoint is nontrivial" true (cold_iters >= 3);
  let cost = Bdd.created_nodes man_cold - before in
  (* Same model, fresh manager: inject a fault halfway through the
     node-creation budget the cold run needed, checkpointing every
     iteration. *)
  let victim = chain_model () in
  let man = Mc.Model.man victim in
  let path = temp_path () in
  let kill_at = Bdd.created_nodes man + (cost / 2) in
  Bdd.set_fault_hook man
    (Some
       (fun m ->
         if Bdd.created_nodes m >= kill_at then
           raise (Mc.Limits.Exceeded "injected fault")));
  let r_killed = run_xici ~checkpoint_path:path victim in
  Bdd.set_fault_hook man None;
  (match r_killed.Mc.Report.status with
  | Mc.Report.Exceeded why ->
    Alcotest.(check string) "killed by the injected fault" "injected fault"
      why
  | Mc.Report.Proved | Mc.Report.Violated _ ->
    Alcotest.fail "fault injection did not kill the run");
  (* Resume from the snapshot: the same property is proved with
     strictly fewer post-resume iterations than the cold run needed. *)
  let cp = Mc.Checkpoint.load man path in
  cleanup path;
  Alcotest.(check bool) "checkpoint is mid-fixpoint" true
    (cp.Mc.Checkpoint.iterations >= 1
    && cp.Mc.Checkpoint.iterations < cold_iters);
  let r = run_xici ~resume_from:cp victim in
  Alcotest.(check bool) "resumed run proves" true (Mc.Report.is_proved r);
  Alcotest.(check int) "resume preserves the total iteration count"
    cold_iters r.Mc.Report.iterations;
  let post_resume = r.Mc.Report.iterations - cp.Mc.Checkpoint.iterations in
  Alcotest.(check bool) "strictly fewer post-resume iterations" true
    (post_resume >= 0 && post_resume < cold_iters)

(* --- deadlines fire inside a single image computation ---------------- *)

(* A model whose very first backward pre-image is astronomically large:
   state bits x_i with next-state x_i' = u_i XOR u_{n-1-i}.  Every
   next-state function is three BDD nodes, so building the model is
   linear -- but substituting them into good = /\ not x_i yields the
   "palindrome" function over u_0 < ... < u_{n-1}, whose BDD must
   remember the first half of the inputs: 2^(n/2) nodes.  With n = 60
   the image needs >= 2^30 node creations and can never complete. *)
let tangle_model n =
  let sp = Fsm.Space.create () in
  let x = Fsm.Space.state_word ~name:"x" sp ~width:n in
  let u = Fsm.Space.input_word ~name:"u" sp ~width:n in
  let man = Fsm.Space.man sp in
  let assigns =
    Array.to_list
      (Array.mapi
         (fun i l ->
           (l, Bdd.bxor man (Bdd.var man u.(i)) (Bdd.var man u.(n - 1 - i))))
         x)
  in
  let trans = Fsm.Trans.make sp ~assigns in
  let xv = Fsm.Space.cur_vec sp x in
  let init = Bvec.eq man xv (Bvec.const man ~width:n 0) in
  let good = List.init n (fun i -> Bdd.bnot man (Bvec.get xv i)) in
  Mc.Model.make ~name:"tangle" ~space:sp ~trans ~init ~good ()

let test_deadline_fires_mid_image () =
  let n = 60 in
  let model = tangle_model n in
  let man = Mc.Model.man model in
  let before = Bdd.created_nodes man in
  let r =
    Mc.Backward.run ~image_via:`Compose
      ~limits:(fun man -> Mc.Limits.start ~max_seconds:0.05 man)
      model
  in
  let created = Bdd.created_nodes man - before in
  (match r.Mc.Report.status with
  | Mc.Report.Exceeded why ->
    Alcotest.(check bool)
      (Printf.sprintf "deadline verdict mentions seconds (%s)" why)
      true
      (contains ~sub:"seconds" why)
  | Mc.Report.Proved | Mc.Report.Violated _ ->
    Alcotest.fail "a 2^30-node image cannot have completed");
  (* The first iteration-boundary check runs microseconds after the
     clock starts, far under the 50ms budget, so the only place the
     deadline can have fired is the kernel progress hook inside the
     blown-up BackImage.  Node count seals it: completing the image
     needs >= 2^30 creations, yet the run died after a tiny fraction. *)
  Alcotest.(check bool)
    (Printf.sprintf "aborted mid-image (%d nodes created)" created)
    true
    (created < 1 lsl 24)

(* --- resilient driver ----------------------------------------------- *)

let test_resilient_first_try () =
  let model = chain_model () in
  let outcome = Mc.Resilient.run ~fallback:[ Mc.Runner.Xici ] model in
  Alcotest.(check bool) "proved" true
    (Mc.Report.is_proved outcome.Mc.Resilient.final);
  Alcotest.(check int) "single attempt" 1
    (List.length outcome.Mc.Resilient.attempts)

let test_escalating_budget_recovery () =
  let cold = chain_model () in
  let man_cold = Mc.Model.man cold in
  let before = Bdd.created_nodes man_cold in
  let r_cold = run_xici cold in
  Alcotest.(check bool) "cold run proves" true (Mc.Report.is_proved r_cold);
  let cost = Bdd.created_nodes man_cold - before in
  (* Under-budget the first attempt to a quarter of the real cost; the
     driver must escalate (and resume from the checkpoint) to a proof. *)
  let model = chain_model () in
  let path = temp_path () in
  let outcome =
    Mc.Resilient.run ~retries:8 ~budget_escalation:2.0
      ~max_created_nodes:(max 1 (cost / 4))
      ~fallback:[ Mc.Runner.Xici ] ~checkpoint:path model
  in
  cleanup path;
  Alcotest.(check bool) "recovered to proved" true
    (Mc.Report.is_proved outcome.Mc.Resilient.final);
  let attempts = outcome.Mc.Resilient.attempts in
  Alcotest.(check bool) "took more than one attempt" true
    (List.length attempts >= 2);
  (match attempts with
  | first :: _ ->
    Alcotest.(check bool) "first attempt exceeded its budget" true
      (is_exceeded first.Mc.Resilient.report)
  | [] -> Alcotest.fail "no attempts recorded");
  let budgets =
    List.filter_map (fun a -> a.Mc.Resilient.max_created_nodes) attempts
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "budgets strictly escalate" true (increasing budgets);
  Alcotest.(check bool) "a retry resumed from the checkpoint" true
    (List.exists (fun a -> a.Mc.Resilient.resumed_at <> None) attempts)

let test_portfolio_fallback () =
  let model = chain_model () in
  let man = Mc.Model.man model in
  (* One-shot fault: kills XICI's first attempt, disarms itself, so the
     Forward fallback runs clean. *)
  let armed = ref true in
  Bdd.set_fault_hook man
    (Some
       (fun _ ->
         if !armed then begin
           armed := false;
           raise (Mc.Limits.Exceeded "injected fault")
         end));
  let outcome =
    Mc.Resilient.run ~retries:1
      ~fallback:[ Mc.Runner.Xici; Mc.Runner.Forward ]
      model
  in
  Bdd.set_fault_hook man None;
  Alcotest.(check bool) "fault fired" true (not !armed);
  (match outcome.Mc.Resilient.attempts with
  | [ a1; a2 ] ->
    Alcotest.(check bool) "XICI attempt exceeded" true
      (a1.Mc.Resilient.meth = Mc.Runner.Xici
      && is_exceeded a1.Mc.Resilient.report);
    Alcotest.(check bool) "Forward fallback proves" true
      (a2.Mc.Resilient.meth = Mc.Runner.Forward
      && Mc.Report.is_proved a2.Mc.Resilient.report)
  | attempts ->
    Alcotest.fail
      (Printf.sprintf "expected exactly two attempts, got %d"
         (List.length attempts)));
  Alcotest.(check bool) "outcome proved via fallback" true
    (Mc.Report.is_proved outcome.Mc.Resilient.final)

let test_node_budget_fault_caught () =
  (* A Node_budget_exhausted escaping a method (fault hook firing
     outside any with_node_budget region) must be converted into an
     Exceeded attempt, not kill the job. *)
  let model = chain_model () in
  let man = Mc.Model.man model in
  let armed = ref true in
  Bdd.set_fault_hook man
    (Some
       (fun _ ->
         if !armed then begin
           armed := false;
           raise Bdd.Node_budget_exhausted
         end));
  let outcome =
    Mc.Resilient.run ~retries:1
      ~fallback:[ Mc.Runner.Xici; Mc.Runner.Forward ]
      model
  in
  Bdd.set_fault_hook man None;
  Alcotest.(check bool) "fault fired" true (not !armed);
  Alcotest.(check bool) "outcome proved despite the fault" true
    (Mc.Report.is_proved outcome.Mc.Resilient.final);
  match outcome.Mc.Resilient.attempts with
  | a1 :: _ ->
    Alcotest.(check bool) "first attempt recorded as exceeded" true
      (is_exceeded a1.Mc.Resilient.report)
  | [] -> Alcotest.fail "no attempts recorded"

let test_portfolio_crash_containment () =
  (* A worker dying of an arbitrary exception (not a budget trip) must
     surface as a structured per-config "worker crashed" report while
     the remaining configs run to a verdict. *)
  let model = chain_model () in
  let armed = Atomic.make true in
  let configs =
    [
      Mc.Parallel.config ~label:"victim" Mc.Runner.Xici;
      Mc.Parallel.config ~label:"survivor" Mc.Runner.Forward;
    ]
  in
  (* The limits builder is the only per-worker entry point we control:
     its first invocation (the victim, on one domain configs run in
     order) plants a fault hook that raises a non-budget exception. *)
  let crashing_limits man =
    if Atomic.compare_and_set armed true false then
      Bdd.set_fault_hook man
        (Some (fun _ -> raise (Failure "injected crash")));
    limits man
  in
  let res =
    Mc.Parallel.portfolio ~domains:1 ~configs ~limits:crashing_limits model
  in
  Alcotest.(check bool) "crash fired" true (not (Atomic.get armed));
  (match res.Mc.Parallel.winner with
  | Some (c, r) ->
    Alcotest.(check string) "survivor wins" "survivor"
      c.Mc.Parallel.label;
    Alcotest.(check bool) "survivor proves" true (Mc.Report.is_proved r)
  | None -> Alcotest.fail "no winner despite a healthy config");
  match
    List.find_opt
      (fun (c, _) -> c.Mc.Parallel.label = "victim")
      res.Mc.Parallel.reports
  with
  | Some (_, r) -> (
    match r.Mc.Report.status with
    | Mc.Report.Exceeded why ->
      Alcotest.(check bool)
        (Printf.sprintf "victim reported as crashed (%s)" why)
        true
        (contains ~sub:"crashed" why)
    | Mc.Report.Proved | Mc.Report.Violated _ ->
      Alcotest.fail "victim config survived its own crash")
  | None -> Alcotest.fail "victim config missing from reports"

let test_resilient_invalid_args () =
  let model = chain_model () in
  let rejects label f =
    Alcotest.(check bool) label true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  rejects "empty portfolio" (fun () -> Mc.Resilient.run ~fallback:[] model);
  rejects "retries < 1" (fun () -> Mc.Resilient.run ~retries:0 model);
  rejects "escalation < 1" (fun () ->
      Mc.Resilient.run ~budget_escalation:0.5 model)

let () =
  Alcotest.run "resilient"
    [
      ( "clock",
        [
          Alcotest.test_case "monotonic non-decreasing" `Quick test_monotonic;
          Alcotest.test_case "limits elapsed" `Quick test_limits_elapsed;
        ] );
      ( "limits",
        [
          Alcotest.test_case "with_guard chains and restores" `Quick
            test_with_guard_restores;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "save/load roundtrip" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "corruption detection" `Quick
            test_checkpoint_corruption;
          Alcotest.test_case "load_opt tolerates truncation" `Quick
            test_load_opt_tolerates_corruption;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "deadline fires mid-image" `Quick
            test_deadline_fires_mid_image;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "fault kill + checkpoint resume" `Quick
            test_kill_and_resume;
          Alcotest.test_case "clean first try" `Quick test_resilient_first_try;
          Alcotest.test_case "escalating budgets recover" `Quick
            test_escalating_budget_recovery;
          Alcotest.test_case "portfolio falls back" `Quick
            test_portfolio_fallback;
          Alcotest.test_case "node-budget fault caught" `Quick
            test_node_budget_fault_caught;
          Alcotest.test_case "portfolio contains a worker crash" `Quick
            test_portfolio_crash_containment;
          Alcotest.test_case "invalid arguments rejected" `Quick
            test_resilient_invalid_args;
        ] );
    ]
