(* Model-checker tests.

   The load-bearing checks are the agreement properties: on random small
   machines every method's verdict must equal the explicit-state
   reference, and every Violated verdict must come with a validated
   counterexample trace. *)

let limits man =
  Mc.Limits.start ~max_iterations:100 ~max_created_nodes:2_000_000 man

let qtest ?(count = 120) name prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ~print:Testmachines.print_spec
       Testmachines.gen_spec prop)

let verdict_matches spec (report : Mc.Report.t) =
  let model_ok = Testmachines.reference_verdict spec in
  match report.status with
  | Mc.Report.Proved -> model_ok
  | Mc.Report.Violated _ -> not model_ok
  | Mc.Report.Exceeded _ -> false

let trace_valid model (report : Mc.Report.t) =
  match report.status with
  | Mc.Report.Violated tr ->
    let man = Mc.Model.man model in
    Mc.Trace.validate model.Mc.Model.trans ~init:model.Mc.Model.init
      ~good:(Ici.Clist.of_list man (Mc.Model.property model))
      tr
    (* ...and independently of any BDD image computation: every step
       must be realisable by some concrete legal input. *)
    && Fuzz.Oracle.replay model tr = Ok ()
  | Mc.Report.Proved | Mc.Report.Exceeded _ -> true

let check_method ?(allow_nonconvergence = false) meth spec =
  let model = Testmachines.build_model spec in
  let report = Mc.Runner.run ~limits meth model in
  (match report.status with
  | Mc.Report.Exceeded _ when allow_nonconvergence -> true
  | _ -> verdict_matches spec report)
  && trace_valid model report

let prop_forward spec = check_method Mc.Runner.Forward spec
let prop_backward spec = check_method Mc.Runner.Backward spec
let prop_fd spec = check_method Mc.Runner.Fd spec

let prop_ici spec =
  (* The original ICI termination test is not guaranteed to detect
     convergence; nonconvergence (reported as Exceeded) is acceptable,
     a wrong verdict is not. *)
  check_method ~allow_nonconvergence:true Mc.Runner.Ici spec

let prop_xici spec = check_method Mc.Runner.Xici spec

let prop_idi spec = check_method Mc.Runner.Idi spec

let prop_explicit spec = check_method Mc.Runner.Explicit spec

let prop_explicit_state_count spec =
  (* The hash-table search must visit exactly the reference's reachable
     state count. *)
  let model = Testmachines.build_model spec in
  let _, states = Mc.Explicit.run_full ~limits model in
  let expected = Testmachines.reference_reachable_count spec in
  (not (Testmachines.reference_verdict spec)) || states = expected

let prop_xici_variants spec =
  let model = Testmachines.build_model spec in
  let expected = Testmachines.reference_verdict spec in
  List.for_all
    (fun termination ->
      let report = Mc.Xici.run ~limits ~termination model in
      match report.status with
      | Mc.Report.Proved -> expected
      | Mc.Report.Violated _ -> not expected
      | Mc.Report.Exceeded _ -> termination = `Pointwise)
    [ `Exact_equal; `Exact_implication; `Pointwise ]

let prop_xici_configs spec =
  let expected = Testmachines.reference_verdict spec in
  List.for_all
    (fun cfg ->
      let model = Testmachines.build_model spec in
      let report = Mc.Xici.run ~limits ~cfg model in
      match report.status with
      | Mc.Report.Proved -> expected
      | Mc.Report.Violated _ -> not expected
      | Mc.Report.Exceeded _ -> false)
    [
      Ici.Policy.default;
      { Ici.Policy.default with simplifier = Ici.Policy.Constrain };
      { Ici.Policy.default with evaluation = Ici.Policy.Optimal_cover };
      { Ici.Policy.default with evaluation = Ici.Policy.No_evaluation };
      { Ici.Policy.default with grow_threshold = 1.0 };
      { Ici.Policy.default with simplifier = Ici.Policy.Multi_restrict };
      { Ici.Policy.default with pair_step_factor = None };
    ]

(* --- unit tests on a 2-bit counter ------------------------------------- *)

(* Counter increments when the input ticks; init = 0. *)
let counter_model ~good_limit =
  let sp = Fsm.Space.create () in
  let w = Fsm.Space.state_word ~name:"c" sp ~width:2 in
  let tick = Fsm.Space.input_bit ~name:"tick" sp in
  let man = Fsm.Space.man sp in
  let c = Fsm.Space.cur_vec sp w in
  let t = Bdd.var man tick in
  let inc = Bvec.add man c (Bvec.const man ~width:2 1) in
  let nextv = Bvec.mux man t inc c in
  let assigns = [ (w.(0), nextv.(0)); (w.(1), nextv.(1)) ] in
  let trans = Fsm.Trans.make sp ~assigns in
  let init = Bvec.eq man c (Bvec.const man ~width:2 0) in
  let good = [ Bvec.ule_const man c good_limit ] in
  Mc.Model.make ~name:"counter" ~space:sp ~trans ~init ~good ()

let test_counter_proved () =
  let model = counter_model ~good_limit:3 in
  List.iter
    (fun meth ->
      let r = Mc.Runner.run ~limits meth model in
      Alcotest.(check bool)
        (Mc.Runner.name meth ^ " proves c<=3")
        true (Mc.Report.is_proved r))
    Mc.Runner.all

let test_counter_violated () =
  let model = counter_model ~good_limit:2 in
  List.iter
    (fun meth ->
      let r = Mc.Runner.run ~limits meth model in
      match r.Mc.Report.status with
      | Mc.Report.Violated tr ->
        let man = Mc.Model.man model in
        Alcotest.(check bool)
          (Mc.Runner.name meth ^ " trace validates")
          true
          (Mc.Trace.validate model.Mc.Model.trans ~init:model.Mc.Model.init
             ~good:(Ici.Clist.of_list man (Mc.Model.property model))
             tr);
        (* Shortest violation: 0 -> 1 -> 2 -> 3, four states. *)
        Alcotest.(check int)
          (Mc.Runner.name meth ^ " trace length")
          4 (List.length tr)
      | Mc.Report.Proved | Mc.Report.Exceeded _ ->
        Alcotest.fail (Mc.Runner.name meth ^ " should find the violation"))
    Mc.Runner.all

let test_counter_iterations () =
  (* Forward reaches the fixpoint in 3 image steps (counter saturates
     its 4 values after 3 increments). *)
  let model = counter_model ~good_limit:3 in
  let r = Mc.Forward.run ~limits model in
  Alcotest.(check int) "forward iterations" 3 r.Mc.Report.iterations;
  (* Backward: G_0 = true (property covers all states) is inductive. *)
  let r = Mc.Backward.run ~limits model in
  Alcotest.(check bool) "backward converges fast" true
    (r.Mc.Report.iterations <= 1)

let test_limits_node_budget () =
  let model = counter_model ~good_limit:3 in
  let tight man = Mc.Limits.start ~max_created_nodes:1 man in
  let r = Mc.Forward.run ~limits:tight model in
  match r.Mc.Report.status with
  | Mc.Report.Exceeded _ -> ()
  | Mc.Report.Proved | Mc.Report.Violated _ ->
    Alcotest.fail "node budget should trip"

let test_report_strings () =
  let model = counter_model ~good_limit:3 in
  let r = Mc.Forward.run ~limits model in
  Alcotest.(check string) "status string" "proved" (Mc.Report.status_string r);
  Alcotest.(check string) "uniform conjunct annotation" " (3 x 9 nodes)"
    (Mc.Report.conjuncts_string [ 9; 9; 9 ]);
  Alcotest.(check string) "mixed conjunct annotation" " (102, 45)"
    (Mc.Report.conjuncts_string [ 102; 45 ]);
  Alcotest.(check string) "singleton not annotated" ""
    (Mc.Report.conjuncts_string [ 42 ])

let test_induction () =
  (* The counter's property c <= 3 is trivially inductive (it is TRUE
     over 2 bits); c <= 2 is implied initially but not preserved; and
     c >= 1 is not even implied by init. *)
  let model = counter_model ~good_limit:2 in
  let man = Mc.Model.man model in
  let full = Mc.Model.property (counter_model ~good_limit:3) in
  (match Mc.Induction.check model full with
  | Mc.Induction.Inductive -> ()
  | Mc.Induction.Not_implied_by_init _ | Mc.Induction.Not_preserved _ ->
    Alcotest.fail "c<=3 should be inductive");
  (match Mc.Induction.check model (Mc.Model.property model) with
  | Mc.Induction.Not_preserved [ f ] ->
    (* The CTI must satisfy the invariant and step outside it. *)
    Alcotest.(check bool) "cti state inside" true
      (Bdd.eval man f.Mc.Induction.state f.Mc.Induction.conjunct);
    Alcotest.(check bool) "cti successor outside" false
      (Bdd.eval man f.Mc.Induction.successor f.Mc.Induction.conjunct)
  | Mc.Induction.Inductive | Mc.Induction.Not_implied_by_init _
  | Mc.Induction.Not_preserved _ ->
    Alcotest.fail "c<=2 should fail induction with one CTI");
  let c_ge_1 =
    Bdd.bnot man
      (Bdd.band man
         (Bdd.bnot man (Bdd.var man 0))
         (Bdd.bnot man (Bdd.var man 2)))
  in
  (match Mc.Induction.check model [ c_ge_1 ] with
  | Mc.Induction.Not_implied_by_init [ _ ] -> ()
  | Mc.Induction.Inductive | Mc.Induction.Not_implied_by_init _
  | Mc.Induction.Not_preserved _ ->
    Alcotest.fail "c>=1 should fail the init check");
  (* Derived XICI invariants establish the property (by construction). *)
  let proved = counter_model ~good_limit:3 in
  (match Mc.Xici.run_full ~limits proved with
  | _, Some derived ->
    Alcotest.(check bool) "derived list establishes property" true
      (Mc.Induction.establishes proved derived)
  | _, None -> Alcotest.fail "expected a derived fixpoint")

let test_concrete_replay_on_models () =
  (* Every method that finds a planted bug in the library models must
     report a trace that replays concretely through [Fsm.Trans.step]:
     starting in an initial state, each step realisable by some legal
     input, ending in a bad state. *)
  let limits man =
    (* The cpu model's forward run needs more node headroom than the
       random-machine default (same budget as test_models). *)
    Mc.Limits.start ~max_iterations:60 ~max_created_nodes:4_000_000 man
  in
  let cases =
    [
      ( "fifo",
        (fun () ->
          Models.Typed_fifo.make
            { Models.Typed_fifo.depth = 3; width = 4; bound = 9; bug = true }),
        Mc.Runner.all );
      ( "network",
        (fun () -> Models.Network.make { Models.Network.procs = 2; bug = true }),
        [ Mc.Runner.Forward; Mc.Runner.Backward; Mc.Runner.Xici ] );
      ( "filter",
        (fun () ->
          Models.Avg_filter.make
            { Models.Avg_filter.depth = 2; sample_width = 3; assisted = false;
              bug = true }),
        [ Mc.Runner.Forward; Mc.Runner.Xici ] );
      ( "cpu",
        (fun () ->
          Models.Pipeline_cpu.make
            { Models.Pipeline_cpu.regs = 2; width = 1; assisted = false;
              bug = true }),
        [ Mc.Runner.Forward; Mc.Runner.Xici ] );
      ( "abp",
        (fun () -> Models.Abp.make { Models.Abp.width = 2; bug = true }),
        [ Mc.Runner.Forward; Mc.Runner.Backward; Mc.Runner.Xici;
          Mc.Runner.Idi ] );
    ]
  in
  List.iter
    (fun (name, make, meths) ->
      List.iter
        (fun meth ->
          let model = make () in
          let label = name ^ "/" ^ Mc.Runner.name meth in
          let r = Mc.Runner.run ~limits meth model in
          match r.Mc.Report.status with
          | Mc.Report.Violated tr -> (
            match Fuzz.Oracle.replay model tr with
            | Ok () -> ()
            | Error e -> Alcotest.fail (label ^ ": " ^ e))
          | Mc.Report.Proved | Mc.Report.Exceeded _ ->
            Alcotest.fail (label ^ " should find the violation"))
        meths)
    cases

(* --- good set collapsing to [false] (xici.ml's empty-core branch) ---- *)

(* One state bit that toggles every step; init and the property are both
   "b".  The first back image is ~b, so improve([b; ~b]) collapses the
   good set to [false] while init is nonempty: the reconstruction branch
   under test must synthesise a violation trace, and that trace must
   replay concretely through [Fsm.Trans.step]. *)
let toggle_model () =
  let sp = Fsm.Space.create () in
  let b = Fsm.Space.state_bit ~name:"b" sp in
  let man = Fsm.Space.man sp in
  let cur = Fsm.Space.cur sp b in
  let trans = Fsm.Trans.make sp ~assigns:[ (b, Bdd.bnot man cur) ] in
  Mc.Model.make ~name:"toggle" ~space:sp ~trans ~init:cur ~good:[ cur ] ()

let test_collapse_counterexample () =
  List.iter
    (fun termination ->
      let model = toggle_model () in
      let man = Mc.Model.man model in
      let r = Mc.Xici.run ~limits ~termination model in
      match r.Mc.Report.status with
      | Mc.Report.Violated tr ->
        Alcotest.(check bool) "trace validates" true
          (Mc.Trace.validate model.Mc.Model.trans ~init:model.Mc.Model.init
             ~good:(Ici.Clist.of_list man (Mc.Model.property model))
             tr);
        (match Fuzz.Oracle.replay model tr with
        | Ok () -> ()
        | Error e -> Alcotest.fail ("trace does not replay: " ^ e));
        (* Shortest violation: b=1 then b=0, two states. *)
        Alcotest.(check int) "trace length" 2 (List.length tr)
      | Mc.Report.Proved | Mc.Report.Exceeded _ ->
        Alcotest.fail "collapsed good set should yield a violation")
    [ `Exact_equal; `Exact_implication; `Pointwise ]

(* --- batch verification ----------------------------------------------- *)

(* Counter with one good conjunct per limit, so [Mc.Batch.of_goods]
   yields one property per limit. *)
let multi_counter_model limits_list =
  let sp = Fsm.Space.create () in
  let w = Fsm.Space.state_word ~name:"c" sp ~width:2 in
  let tick = Fsm.Space.input_bit ~name:"tick" sp in
  let man = Fsm.Space.man sp in
  let c = Fsm.Space.cur_vec sp w in
  let t = Bdd.var man tick in
  let inc = Bvec.add man c (Bvec.const man ~width:2 1) in
  let nextv = Bvec.mux man t inc c in
  let assigns = [ (w.(0), nextv.(0)); (w.(1), nextv.(1)) ] in
  let trans = Fsm.Trans.make sp ~assigns in
  let init = Bvec.eq man c (Bvec.const man ~width:2 0) in
  let good = List.map (fun l -> Bvec.ule_const man c l) limits_list in
  Mc.Model.make ~name:"counter" ~space:sp ~trans ~init ~good ()

let batch_item_replays model (it : Mc.Batch.item) =
  (* Validate each counterexample against a model holding only that
     property's goods: batch traces must be genuine for the original,
     untransformed property, realisable step by step through
     [Fsm.Trans.step]. *)
  match it.Mc.Batch.report.Mc.Report.status with
  | Mc.Report.Violated tr ->
    let sub =
      Mc.Model.make ~name:model.Mc.Model.name ~space:model.Mc.Model.space
        ~trans:model.Mc.Model.trans ~init:model.Mc.Model.init
        ~good:it.Mc.Batch.prop.Mc.Batch.goods ()
    in
    (match Fuzz.Oracle.replay sub tr with
    | Ok () -> true
    | Error _ -> false)
  | Mc.Report.Proved | Mc.Report.Exceeded _ -> true

let test_batch_recheck_flip () =
  (* p0 = c<=2 runs first and speculatively assumes p1 = c<=1, making
     its transformed good (c<=1 => c<=2) a tautology: p0 proves
     conditionally.  p1 is then refuted (c reaches 2), which taints p0;
     the recheck must flip p0's verdict to its true Violated. *)
  let model = multi_counter_model [ 2; 1 ] in
  let props = Mc.Batch.of_goods model in
  let res = Mc.Batch.run ~limits ~speculate:true model props in
  let p0 = List.nth res.Mc.Batch.items 0
  and p1 = List.nth res.Mc.Batch.items 1 in
  Alcotest.(check bool) "p0 was rechecked" true p0.Mc.Batch.rechecked;
  Alcotest.(check (list int)) "p0 assumed p1" [ 1 ] p0.Mc.Batch.assumed;
  (match p0.Mc.Batch.speculative with
  | Some r ->
    Alcotest.(check bool) "speculative verdict was Proved" true
      (Mc.Report.is_proved r)
  | None -> Alcotest.fail "p0 should retain its speculative report");
  (match p0.Mc.Batch.report.Mc.Report.status with
  | Mc.Report.Violated tr ->
    Alcotest.(check int) "p0 flips to its true shortest violation" 4
      (List.length tr)
  | Mc.Report.Proved | Mc.Report.Exceeded _ ->
    Alcotest.fail "recheck should flip p0 to Violated");
  Alcotest.(check bool) "p1 refuted without recheck" false
    p1.Mc.Batch.rechecked;
  Alcotest.(check bool) "p1 is Violated" false
    (Mc.Report.is_proved p1.Mc.Batch.report);
  Alcotest.(check bool) "at least one recheck counted" true
    (res.Mc.Batch.stats.Mc.Batch.rechecks >= 1);
  Alcotest.(check bool) "refuted speculation counted" true
    (res.Mc.Batch.stats.Mc.Batch.speculations_refuted >= 1);
  List.iter
    (fun it ->
      Alcotest.(check bool)
        (it.Mc.Batch.prop.Mc.Batch.pname ^ " trace replays concretely")
        true (batch_item_replays model it))
    res.Mc.Batch.items

let test_batch_discharge () =
  (* Both properties hold: the first proves conditionally on the
     second, whose unconditional proof then discharges it -- no recheck
     may run. *)
  let model = multi_counter_model [ 3; 3 ] in
  let res =
    Mc.Batch.run ~limits ~speculate:true model (Mc.Batch.of_goods model)
  in
  List.iter
    (fun it ->
      Alcotest.(check bool)
        (it.Mc.Batch.prop.Mc.Batch.pname ^ " proved")
        true
        (Mc.Report.is_proved it.Mc.Batch.report);
      Alcotest.(check bool)
        (it.Mc.Batch.prop.Mc.Batch.pname ^ " not rechecked")
        false it.Mc.Batch.rechecked)
    res.Mc.Batch.items;
  Alcotest.(check int) "no rechecks" 0 res.Mc.Batch.stats.Mc.Batch.rechecks

let batch_matches_sequential ?(domains = 1) meth limits_list =
  let model = multi_counter_model limits_list in
  let props = Mc.Batch.of_goods model in
  let res = Mc.Batch.run ~limits ~meth ~domains ~speculate:true model props in
  List.iteri
    (fun i (it : Mc.Batch.item) ->
      let sub =
        Mc.Model.make ~name:model.Mc.Model.name ~space:model.Mc.Model.space
          ~trans:model.Mc.Model.trans ~init:model.Mc.Model.init
          ~good:(List.nth props i).Mc.Batch.goods ()
      in
      let seq = Mc.Runner.run ~limits meth sub in
      Alcotest.(check string)
        (Printf.sprintf "%s/p%d verdict" (Mc.Runner.name meth) i)
        (Mc.Report.status_string seq)
        (Mc.Report.status_string it.Mc.Batch.report);
      Alcotest.(check bool)
        (Printf.sprintf "%s/p%d trace replays" (Mc.Runner.name meth) i)
        true (batch_item_replays model it))
    res.Mc.Batch.items

let test_batch_matches_sequential_all_methods () =
  List.iter
    (fun meth ->
      batch_matches_sequential meth [ 2; 1 ];
      batch_matches_sequential meth [ 3; 3 ];
      batch_matches_sequential meth [ 3; 1; 2 ])
    Mc.Runner.all

let test_batch_parallel_domains () =
  let model = multi_counter_model [ 3; 1; 2; 3 ] in
  let res =
    Mc.Batch.run ~limits ~domains:2 ~speculate:true model
      (Mc.Batch.of_goods model)
  in
  Alcotest.(check int) "two domains used" 2 res.Mc.Batch.domains_used;
  batch_matches_sequential ~domains:2 Mc.Runner.Xici [ 3; 1; 2; 3 ]

(* --- freeze / thaw ---------------------------------------------------- *)

let test_freeze_thaw_roundtrip () =
  List.iter
    (fun good_limit ->
      let model = counter_model ~good_limit in
      let copy = Mc.Parallel.thaw (Mc.Parallel.freeze model) in
      Alcotest.(check string) "name survives" model.Mc.Model.name
        copy.Mc.Model.name;
      Alcotest.(check (list int))
        "state levels survive"
        (Fsm.Space.current_levels model.Mc.Model.space)
        (Fsm.Space.current_levels copy.Mc.Model.space);
      let r0 = Mc.Runner.run ~limits Mc.Runner.Xici model in
      let r1 = Mc.Runner.run ~limits Mc.Runner.Xici copy in
      Alcotest.(check string) "verdict survives"
        (Mc.Report.status_string r0) (Mc.Report.status_string r1);
      Alcotest.(check int) "iteration count survives" r0.Mc.Report.iterations
        r1.Mc.Report.iterations;
      match r1.Mc.Report.status with
      | Mc.Report.Violated tr -> (
        match Fuzz.Oracle.replay copy tr with
        | Ok () -> ()
        | Error e -> Alcotest.fail ("thawed trace does not replay: " ^ e))
      | Mc.Report.Proved | Mc.Report.Exceeded _ -> ())
    [ 2; 3 ]

let test_freeze_thaw_corrupt () =
  let frozen = Mc.Parallel.freeze (counter_model ~good_limit:3) in
  Alcotest.(check bool) "corrupt input raises" true
    (match Mc.Parallel.thaw ("garbage " ^ frozen) with
    | (_ : Mc.Model.t) -> false
    | exception Mc.Parallel.Corrupt _ -> true)

(* --- portfolio vs sequential ------------------------------------------ *)

let test_portfolio_matches_sequential () =
  List.iter
    (fun good_limit ->
      let seq = Mc.Runner.run ~limits Mc.Runner.Xici (counter_model ~good_limit) in
      let res =
        Mc.Parallel.portfolio ~domains:2 ~limits (counter_model ~good_limit)
      in
      Alcotest.(check bool) "at least two domains" true
        (res.Mc.Parallel.domains_used = 2);
      match res.Mc.Parallel.winner with
      | None -> Alcotest.fail "portfolio should decide"
      | Some (_, r) ->
        Alcotest.(check bool) "winner is decided" true (Mc.Parallel.decided r);
        Alcotest.(check bool) "verdict agrees with sequential" true
          (Mc.Report.is_proved r = Mc.Report.is_proved seq))
    [ 2; 3 ]

let prop_portfolio_agreement spec =
  (* The racing configs are all sound, so whichever wins must agree with
     the explicit-state reference. *)
  let model = Testmachines.build_model spec in
  let res = Mc.Parallel.portfolio ~domains:2 ~limits model in
  match res.Mc.Parallel.winner with
  | Some (_, r) -> (
    let expected = Testmachines.reference_verdict spec in
    match r.Mc.Report.status with
    | Mc.Report.Proved -> expected
    | Mc.Report.Violated _ -> not expected
    | Mc.Report.Exceeded _ -> false)
  | None -> false

let test_portfolio_liveness_hooks () =
  (* All portfolio work happens on private managers in child domains,
     so hooks a supervised caller installed on its own manager never
     fire.  The optional callbacks are how a supervisor's heartbeat
     reaches the run -- they must actually be invoked from the worker
     domains, else every long portfolio job reads as hung. *)
  let rows = Atomic.make 0 in
  let res =
    Mc.Parallel.portfolio ~domains:2 ~limits
      ~on_progress:(fun ~live:_ -> ())
      ~iter_sink:(fun _ -> Atomic.incr rows)
      (counter_model ~good_limit:3)
  in
  (match res.Mc.Parallel.winner with
  | Some (_, r) ->
    Alcotest.(check bool) "hooks do not perturb the verdict" true
      (Mc.Parallel.decided r)
  | None -> Alcotest.fail "portfolio should still decide");
  Alcotest.(check bool) "iteration rows streamed from worker domains" true
    (Atomic.get rows > 0)

let test_portfolio_external_cancel () =
  (* A caller-supplied cancel must stop the run: no new config starts
     and no verdict is produced, mirroring how a pool supervisor aborts
     a job it has declared hung. *)
  let res =
    Mc.Parallel.portfolio ~domains:2 ~limits
      ~should_cancel:(fun () -> true)
      (counter_model ~good_limit:3)
  in
  Alcotest.(check bool) "no winner under external cancel" true
    (res.Mc.Parallel.winner = None);
  List.iter
    (fun (_, r) ->
      Alcotest.(check bool) "nothing decided under external cancel" true
        (not (Mc.Parallel.decided r)))
    res.Mc.Parallel.reports

(* --- parallel pair scoring -------------------------------------------- *)

let test_pair_evaluator_equivalence () =
  (* The parallel evaluator's lex-min (ratio, i, j) rule matches the
     sequential first-minimum rule, so the whole fixpoint trajectory --
     not just the verdict -- must be identical. *)
  List.iter
    (fun good_limit ->
      let seq = Mc.Runner.run ~limits Mc.Runner.Xici (counter_model ~good_limit) in
      let evaluator = Mc.Parallel.pair_evaluator ~min_conjuncts:2 ~domains:2 () in
      let par =
        Mc.Runner.run ~limits ~evaluator Mc.Runner.Xici
          (counter_model ~good_limit)
      in
      Alcotest.(check string) "same verdict" (Mc.Report.status_string seq)
        (Mc.Report.status_string par);
      Alcotest.(check int) "same iteration count" seq.Mc.Report.iterations
        par.Mc.Report.iterations)
    [ 2; 3 ]

let prop_pair_evaluator_agreement spec =
  let model = Testmachines.build_model spec in
  let evaluator = Mc.Parallel.pair_evaluator ~min_conjuncts:2 ~domains:2 () in
  let report = Mc.Runner.run ~limits ~evaluator Mc.Runner.Xici model in
  verdict_matches spec report && trace_valid model report

let test_validate_rejects_bogus () =
  let model = counter_model ~good_limit:2 in
  let man = Mc.Model.man model in
  let good = Ici.Clist.of_list man (Mc.Model.property model) in
  let nv = Bdd.num_vars man in
  (* A "trace" that starts outside init. *)
  let bogus = [ Array.make nv true ] in
  Alcotest.(check bool) "bogus trace rejected" false
    (Mc.Trace.validate model.Mc.Model.trans ~init:model.Mc.Model.init ~good
       bogus);
  Alcotest.(check bool) "empty trace rejected" false
    (Mc.Trace.validate model.Mc.Model.trans ~init:model.Mc.Model.init ~good [])

let () =
  Alcotest.run "mc"
    [
      ( "counter",
        [
          Alcotest.test_case "all methods prove" `Quick test_counter_proved;
          Alcotest.test_case "all methods find violation + valid traces"
            `Quick test_counter_violated;
          Alcotest.test_case "iteration counts" `Quick
            test_counter_iterations;
          Alcotest.test_case "node budget" `Quick test_limits_node_budget;
          Alcotest.test_case "report formatting" `Quick test_report_strings;
          Alcotest.test_case "trace validation rejects bogus" `Quick
            test_validate_rejects_bogus;
          Alcotest.test_case "bug-model traces replay concretely" `Quick
            test_concrete_replay_on_models;
          Alcotest.test_case "inductiveness checker" `Quick test_induction;
          Alcotest.test_case "collapsed good set reconstructs a trace" `Quick
            test_collapse_counterexample;
        ] );
      ( "batch",
        [
          Alcotest.test_case "refuted speculation forces a recheck flip"
            `Quick test_batch_recheck_flip;
          Alcotest.test_case "conditional proofs discharge without recheck"
            `Quick test_batch_discharge;
          Alcotest.test_case "batch matches sequential for every method"
            `Quick test_batch_matches_sequential_all_methods;
          Alcotest.test_case "parallel batch matches sequential" `Quick
            test_batch_parallel_domains;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "freeze/thaw round-trip" `Quick
            test_freeze_thaw_roundtrip;
          Alcotest.test_case "thaw rejects corrupt input" `Quick
            test_freeze_thaw_corrupt;
          Alcotest.test_case "portfolio verdict matches sequential" `Quick
            test_portfolio_matches_sequential;
          Alcotest.test_case "portfolio liveness hooks reach workers" `Quick
            test_portfolio_liveness_hooks;
          Alcotest.test_case "portfolio external cancel" `Quick
            test_portfolio_external_cancel;
          Alcotest.test_case "pair evaluator preserves the trajectory" `Quick
            test_pair_evaluator_equivalence;
          qtest ~count:20 "portfolio agrees with explicit-state reference"
            prop_portfolio_agreement;
          qtest ~count:20 "parallel pair scoring agrees with reference"
            prop_pair_evaluator_agreement;
        ] );
      ( "agreement with explicit-state reference",
        [
          qtest "forward" prop_forward;
          qtest "backward" prop_backward;
          qtest "functional dependencies" prop_fd;
          qtest "original ICI" prop_ici;
          qtest "XICI" prop_xici;
          qtest "implicitly disjoined forward (IDI)" prop_idi;
          qtest "explicit-state (hash table)" prop_explicit;
          qtest ~count:80 "explicit-state reachable count"
            prop_explicit_state_count;
          qtest ~count:60 "XICI termination variants" prop_xici_variants;
          qtest ~count:60 "XICI policy configurations" prop_xici_configs;
        ] );
    ]
