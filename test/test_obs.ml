(* Tests for the obs telemetry subsystem: JSON round-trips, the metrics
   registry, the span tracer's two sinks, the iteration log, and an
   end-to-end run of a real model with the global tracer installed. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- Json ------------------------------------------------------------ *)

let roundtrip j = Obs.Json.of_string (Obs.Json.to_string j)

let test_json_roundtrip () =
  let cases =
    Obs.Json.
      [
        Null;
        Bool true;
        Bool false;
        Int 0;
        Int (-42);
        Int max_int;
        Float 0.0;
        Float 1.5;
        Float (-0.0001);
        Float 1e300;
        Float 0.1;
        String "";
        String "plain";
        String "esc \" \\ \n \t \r \b \012 \x00 end";
        String "unicode: \xc3\xa9\xe2\x82\xac";
        List [];
        List [ Int 1; String "two"; Null ];
        Obj [];
        Obj [ ("a", Int 1); ("b", List [ Bool false ]); ("c", Obj []) ];
      ]
  in
  List.iter
    (fun j ->
      check
        (Printf.sprintf "round-trip %s" (Obs.Json.to_string j))
        true
        (Obs.Json.equal j (roundtrip j)))
    cases;
  (* Int and Float must stay distinct through the trip. *)
  (match roundtrip (Obs.Json.Int 3) with
  | Obs.Json.Int 3 -> ()
  | _ -> Alcotest.fail "Int 3 did not come back as Int");
  match roundtrip (Obs.Json.Float 3.0) with
  | Obs.Json.Float 3.0 -> ()
  | _ -> Alcotest.fail "Float 3.0 did not come back as Float"

let test_json_parse_errors () =
  let bad = [ ""; "{"; "[1,"; "treu"; "1 2"; "{\"a\":}"; "\"unterminated" ] in
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | _ -> Alcotest.fail (Printf.sprintf "parsed malformed %S" s)
      | exception Obs.Json.Parse_error _ -> ())
    bad

let test_json_accessors () =
  let j =
    Obs.Json.of_string {|{"n": 7, "x": 2.5, "s": "hi", "l": [1,2], "z": null}|}
  in
  let member k = Option.get (Obs.Json.member k j) in
  check_int "n" 7 (Option.get (Obs.Json.to_int (member "n")));
  check "x" true (Obs.Json.to_float (member "x") = Some 2.5);
  (* to_float also accepts Int. *)
  check "n as float" true (Obs.Json.to_float (member "n") = Some 7.0);
  check_str "s" "hi" (Option.get (Obs.Json.to_str (member "s")));
  check_int "l len" 2 (List.length (Option.get (Obs.Json.to_list (member "l"))));
  check "missing" true (Obs.Json.member "nope" j = None)

(* --- Registry -------------------------------------------------------- *)

let test_registry_counters () =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg "test.count" in
  check_int "fresh" 0 (Obs.Registry.count c);
  Obs.Registry.incr c;
  Obs.Registry.add c 4;
  check_int "after" 5 (Obs.Registry.count c);
  (* Handles are interned by name. *)
  Obs.Registry.incr (Obs.Registry.counter reg "test.count");
  check_int "interned" 6 (Obs.Registry.count c);
  let g = Obs.Registry.gauge reg "test.gauge" in
  Obs.Registry.set g 2.0;
  Obs.Registry.set_max g 1.0;
  check "set_max keeps peak" true (Obs.Registry.value g = 2.0);
  Obs.Registry.set_max g 9.0;
  check "set_max raises" true (Obs.Registry.value g = 9.0);
  Obs.Registry.reset reg;
  check_int "reset counter" 0 (Obs.Registry.count c);
  check "reset gauge" true (Obs.Registry.value g = 0.0);
  Obs.Registry.incr c;
  check_int "handle valid after reset" 1 (Obs.Registry.count c)

let test_registry_histogram () =
  let reg = Obs.Registry.create () in
  let h = Obs.Registry.histogram reg "test.hist" in
  List.iter (Obs.Registry.observe h) [ 0; 1; 2; 3; 4; 1000; -5 ];
  check_int "count" 7 (Obs.Registry.histogram_count h);
  (* negative clamps to 0 *)
  check_int "sum" (0 + 1 + 2 + 3 + 4 + 1000 + 0) (Obs.Registry.histogram_sum h);
  check_int "max" 1000 (Obs.Registry.histogram_max h);
  let buckets = Obs.Registry.histogram_buckets h in
  check "buckets ascending" true
    (let uppers = List.map fst buckets in
     List.sort compare uppers = uppers);
  check_int "bucket total" 7 (List.fold_left (fun a (_, n) -> a + n) 0 buckets);
  (* log2 buckets: 1 lands in (upper 1), 2 and 3 in (upper 4)? — pin the
     documented rule instead: bucket i counts [2^(i-1), 2^i), so sample
     s>0 lands in the bucket whose upper bound is the smallest power of
     two strictly greater than s. *)
  List.iter
    (fun s ->
      let expected_upper =
        if s <= 0 then 0
        else begin
          let u = ref 1 in
          while !u <= s do
            u := !u * 2
          done;
          !u
        end
      in
      let found =
        List.exists (fun (upper, n) -> upper = expected_upper && n > 0) buckets
      in
      check (Printf.sprintf "sample %d bucketed at %d" s expected_upper) true
        found)
    [ 1; 2; 3; 4; 1000 ]

let test_registry_snapshot () =
  let reg = Obs.Registry.create () in
  Obs.Registry.incr (Obs.Registry.counter reg "b.second");
  Obs.Registry.incr (Obs.Registry.counter reg "a.first");
  Obs.Registry.set (Obs.Registry.gauge reg "c.gauge") 1.5;
  let names =
    List.map
      (function
        | Obs.Registry.Counter (n, _) -> n
        | Obs.Registry.Gauge (n, _) -> n
        | Obs.Registry.Histogram (n, _, _, _, _) -> n)
      (Obs.Registry.snapshot reg)
  in
  Alcotest.(check (list string))
    "first-registration order"
    [ "b.second"; "a.first"; "c.gauge" ]
    names;
  (* to_json must itself round-trip (bench artifacts embed it). *)
  let j = Obs.Registry.to_json reg in
  check "to_json round-trips" true (Obs.Json.equal j (roundtrip j))

(* --- Tracer ---------------------------------------------------------- *)

let with_temp_file f =
  let path = Filename.temp_file "icv-test-obs" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l -> go (l :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_tracer_disabled () =
  (* The sinkless fast path still runs the thunk and returns its value;
     args must not be evaluated. *)
  let evaluated = ref false in
  let r =
    Obs.Tracer.with_span Obs.Tracer.disabled
      ~args:(fun () ->
        evaluated := true;
        [])
      "noop"
      (fun () -> 41 + 1)
  in
  check_int "value through disabled span" 42 r;
  check "args not evaluated" false !evaluated;
  check "disabled is disabled" false (Obs.Tracer.enabled Obs.Tracer.disabled)

let test_tracer_jsonl () =
  with_temp_file (fun path ->
      let tracer = Obs.Tracer.create () in
      let oc = open_out path in
      Obs.Tracer.add_sink tracer (Obs.Tracer.jsonl_sink tracer oc);
      let r =
        Obs.Tracer.with_span tracer ~cat:"test"
          ~args:(fun () -> [ ("k", Obs.Json.Int 7) ])
          "outer"
          (fun () ->
            Obs.Tracer.instant tracer "tick";
            (* spans close even when the region raises *)
            (try
               Obs.Tracer.with_span tracer "raiser" (fun () ->
                   raise Exit)
             with Exit -> ());
            "done")
      in
      Obs.Tracer.flush tracer;
      close_out oc;
      check_str "span result" "done" r;
      let lines = read_lines path in
      check_int "three events" 3 (List.length lines);
      let parsed = List.map Obs.Json.of_string lines in
      List.iter
        (fun j -> check "line round-trips" true (Obs.Json.equal j (roundtrip j)))
        parsed;
      let name j = Option.get Obs.Json.(to_str (Option.get (member "name" j))) in
      let names = List.map name parsed in
      check "has tick" true (List.mem "tick" names);
      check "has raiser" true (List.mem "raiser" names);
      check "has outer" true (List.mem "outer" names);
      (* the outer span closes last, carries its args, and its duration
         covers the inner one *)
      let outer = List.find (fun j -> name j = "outer") parsed in
      let f k j = Option.get Obs.Json.(to_float (Option.get (member k j))) in
      let raiser = List.find (fun j -> name j = "raiser") parsed in
      check "outer dur >= raiser dur" true (f "dur_us" outer >= f "dur_us" raiser);
      check_int "outer args" 7
        Obs.Json.(
          Option.get
            (to_int
               (Option.get
                  (member "k" (Option.get (member "args" outer)))))))

let test_tracer_chrome () =
  with_temp_file (fun path ->
      let tracer = Obs.Tracer.create () in
      let oc = open_out path in
      Obs.Tracer.add_sink tracer (Obs.Tracer.chrome_sink tracer oc);
      Obs.Tracer.with_span tracer "a" (fun () ->
          Obs.Tracer.instant tracer "i");
      Obs.Tracer.with_span tracer "b" (fun () -> ());
      Obs.Tracer.flush tracer;
      close_out oc;
      let ic = open_in path in
      let len = in_channel_length ic in
      let content = really_input_string ic len in
      close_in ic;
      match Obs.Json.of_string content with
      | Obs.Json.List events ->
        check_int "three events" 3 (List.length events);
        List.iter
          (fun e ->
            let str k = Obs.Json.(to_str (Option.get (member k e))) in
            check "has ph" true (str "ph" = Some "X" || str "ph" = Some "i");
            check "has pid" true (Obs.Json.member "pid" e <> None);
            check "has ts" true (Obs.Json.member "ts" e <> None);
            if str "ph" = Some "X" then
              check "X has dur" true (Obs.Json.member "dur" e <> None))
          events
      | _ -> Alcotest.fail "chrome trace is not a JSON array")

(* --- Iterlog --------------------------------------------------------- *)

let test_iterlog () =
  Obs.Iterlog.clear ();
  Obs.Iterlog.record
    {
      Obs.Iterlog.meth = "XICI";
      iteration = 1;
      conjuncts = 3;
      nodes = 100;
      elapsed_s = 0.5;
      live_nodes = 200;
    };
  Obs.Iterlog.record
    {
      Obs.Iterlog.meth = "XICI";
      iteration = 2;
      conjuncts = 2;
      nodes = 80;
      elapsed_s = 0.9;
      live_nodes = 250;
    };
  check_int "two rows" 2 (List.length (Obs.Iterlog.rows ()));
  check_int "recording order" 1
    (List.hd (Obs.Iterlog.rows ())).Obs.Iterlog.iteration;
  let j = Obs.Iterlog.to_json () in
  check "json round-trips" true (Obs.Json.equal j (roundtrip j));
  (match j with
  | Obs.Json.List [ r1; _ ] ->
    check_int "iteration field" 1
      Obs.Json.(Option.get (to_int (Option.get (member "iteration" r1))))
  | _ -> Alcotest.fail "iterlog json shape");
  Obs.Iterlog.clear ();
  check_int "cleared" 0 (List.length (Obs.Iterlog.rows ()))

(* --- End-to-end: real verification run under the global tracer ------- *)

let test_end_to_end () =
  Obs.Iterlog.clear ();
  Obs.Registry.reset Obs.Registry.default;
  with_temp_file (fun path ->
      let tracer = Obs.Tracer.create () in
      let oc = open_out path in
      Obs.Tracer.add_sink tracer (Obs.Tracer.jsonl_sink tracer oc);
      Obs.Tracer.set_global tracer;
      let model =
        Models.Typed_fifo.make { Models.Typed_fifo.default with depth = 3 }
      in
      let r =
        Fun.protect
          ~finally:(fun () ->
            Obs.Tracer.set_global Obs.Tracer.disabled;
            Obs.Tracer.flush tracer;
            close_out_noerr oc)
          (fun () ->
            Mc.Runner.run
              ~limits:(Mc.Limits.start ~max_iterations:50)
              Mc.Runner.Xici model)
      in
      check "proved" true (Mc.Report.is_proved r);
      let names =
        List.map
          (fun l ->
            Option.get
              Obs.Json.(to_str (Option.get (member "name" (of_string l)))))
          (read_lines path)
      in
      check "xici iteration spans present" true
        (List.mem "xici.iteration" names);
      check "tautology spans present" true (List.mem "taut.check" names);
      (* registry picked up the same run *)
      check "taut.checks counted" true
        (Obs.Registry.count (Obs.Registry.counter Obs.Registry.default "taut.checks")
         > 0);
      check "iterlog fed" true (Obs.Iterlog.rows () <> []);
      (* and the run-level snapshot both publishes bdd gauges and
         round-trips *)
      let snap = Mc.Telemetry.snapshot_json (Mc.Model.man model) in
      check "snapshot round-trips" true (Obs.Json.equal snap (roundtrip snap));
      let hits =
        Obs.Json.(
          member "metrics" snap
          |> Option.get
          |> member "bdd.cache.ite.hits"
          |> Option.get |> to_float |> Option.get)
      in
      check "ite cache hits published" true (hits > 0.0));
  Obs.Iterlog.clear ();
  Obs.Registry.reset Obs.Registry.default

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "print/parse round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters and gauges" `Quick test_registry_counters;
          Alcotest.test_case "log2 histogram" `Quick test_registry_histogram;
          Alcotest.test_case "snapshot and json" `Quick test_registry_snapshot;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "disabled fast path" `Quick test_tracer_disabled;
          Alcotest.test_case "jsonl sink" `Quick test_tracer_jsonl;
          Alcotest.test_case "chrome sink" `Quick test_tracer_chrome;
        ] );
      ( "iterlog",
        [ Alcotest.test_case "record/rows/json" `Quick test_iterlog ] );
      ( "integration",
        [
          Alcotest.test_case "traced verification run" `Quick test_end_to_end;
        ] );
    ]
