(* Tests for the obs telemetry subsystem: JSON round-trips, the metrics
   registry, the span tracer's two sinks, the iteration log, and an
   end-to-end run of a real model with the global tracer installed. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- Json ------------------------------------------------------------ *)

let roundtrip j = Obs.Json.of_string (Obs.Json.to_string j)

let test_json_roundtrip () =
  let cases =
    Obs.Json.
      [
        Null;
        Bool true;
        Bool false;
        Int 0;
        Int (-42);
        Int max_int;
        Float 0.0;
        Float 1.5;
        Float (-0.0001);
        Float 1e300;
        Float 0.1;
        String "";
        String "plain";
        String "esc \" \\ \n \t \r \b \012 \x00 end";
        String "unicode: \xc3\xa9\xe2\x82\xac";
        List [];
        List [ Int 1; String "two"; Null ];
        Obj [];
        Obj [ ("a", Int 1); ("b", List [ Bool false ]); ("c", Obj []) ];
      ]
  in
  List.iter
    (fun j ->
      check
        (Printf.sprintf "round-trip %s" (Obs.Json.to_string j))
        true
        (Obs.Json.equal j (roundtrip j)))
    cases;
  (* Int and Float must stay distinct through the trip. *)
  (match roundtrip (Obs.Json.Int 3) with
  | Obs.Json.Int 3 -> ()
  | _ -> Alcotest.fail "Int 3 did not come back as Int");
  match roundtrip (Obs.Json.Float 3.0) with
  | Obs.Json.Float 3.0 -> ()
  | _ -> Alcotest.fail "Float 3.0 did not come back as Float"

let test_json_parse_errors () =
  let bad = [ ""; "{"; "[1,"; "treu"; "1 2"; "{\"a\":}"; "\"unterminated" ] in
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | _ -> Alcotest.fail (Printf.sprintf "parsed malformed %S" s)
      | exception Obs.Json.Parse_error _ -> ())
    bad

let test_json_accessors () =
  let j =
    Obs.Json.of_string {|{"n": 7, "x": 2.5, "s": "hi", "l": [1,2], "z": null}|}
  in
  let member k = Option.get (Obs.Json.member k j) in
  check_int "n" 7 (Option.get (Obs.Json.to_int (member "n")));
  check "x" true (Obs.Json.to_float (member "x") = Some 2.5);
  (* to_float also accepts Int. *)
  check "n as float" true (Obs.Json.to_float (member "n") = Some 7.0);
  check_str "s" "hi" (Option.get (Obs.Json.to_str (member "s")));
  check_int "l len" 2 (List.length (Option.get (Obs.Json.to_list (member "l"))));
  check "missing" true (Obs.Json.member "nope" j = None)

(* --- Registry -------------------------------------------------------- *)

let test_registry_counters () =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg "test.count" in
  check_int "fresh" 0 (Obs.Registry.count c);
  Obs.Registry.incr c;
  Obs.Registry.add c 4;
  check_int "after" 5 (Obs.Registry.count c);
  (* Handles are interned by name. *)
  Obs.Registry.incr (Obs.Registry.counter reg "test.count");
  check_int "interned" 6 (Obs.Registry.count c);
  let g = Obs.Registry.gauge reg "test.gauge" in
  Obs.Registry.set g 2.0;
  Obs.Registry.set_max g 1.0;
  check "set_max keeps peak" true (Obs.Registry.value g = 2.0);
  Obs.Registry.set_max g 9.0;
  check "set_max raises" true (Obs.Registry.value g = 9.0);
  Obs.Registry.reset reg;
  check_int "reset counter" 0 (Obs.Registry.count c);
  check "reset gauge" true (Obs.Registry.value g = 0.0);
  Obs.Registry.incr c;
  check_int "handle valid after reset" 1 (Obs.Registry.count c)

let test_registry_histogram () =
  let reg = Obs.Registry.create () in
  let h = Obs.Registry.histogram reg "test.hist" in
  List.iter (Obs.Registry.observe h) [ 0; 1; 2; 3; 4; 1000; -5 ];
  check_int "count" 7 (Obs.Registry.histogram_count h);
  (* negative clamps to 0 *)
  check_int "sum" (0 + 1 + 2 + 3 + 4 + 1000 + 0) (Obs.Registry.histogram_sum h);
  check_int "max" 1000 (Obs.Registry.histogram_max h);
  let buckets = Obs.Registry.histogram_buckets h in
  check "buckets ascending" true
    (let uppers = List.map fst buckets in
     List.sort compare uppers = uppers);
  check_int "bucket total" 7 (List.fold_left (fun a (_, n) -> a + n) 0 buckets);
  (* log2 buckets: 1 lands in (upper 1), 2 and 3 in (upper 4)? — pin the
     documented rule instead: bucket i counts [2^(i-1), 2^i), so sample
     s>0 lands in the bucket whose upper bound is the smallest power of
     two strictly greater than s. *)
  List.iter
    (fun s ->
      let expected_upper =
        if s <= 0 then 0
        else begin
          let u = ref 1 in
          while !u <= s do
            u := !u * 2
          done;
          !u
        end
      in
      let found =
        List.exists (fun (upper, n) -> upper = expected_upper && n > 0) buckets
      in
      check (Printf.sprintf "sample %d bucketed at %d" s expected_upper) true
        found)
    [ 1; 2; 3; 4; 1000 ]

let test_registry_percentile () =
  let reg = Obs.Registry.create () in
  let h = Obs.Registry.histogram reg "test.pct" in
  check "empty histogram is 0" true
    (Obs.Registry.histogram_percentile h 0.5 = 0.0);
  (* 100 samples of 1ms..100ms: the log2 estimate must stay within one
     bucket width of the true quantile, and the top is clamped to the
     observed max, never the bucket's upper bound. *)
  for v = 1 to 100 do
    Obs.Registry.observe h v
  done;
  let p50 = Obs.Registry.histogram_percentile h 0.5 in
  let p99 = Obs.Registry.histogram_percentile h 0.99 in
  check "p50 in its bucket" true (p50 >= 32.0 && p50 <= 64.0);
  check "p99 above p50" true (p99 > p50);
  check "p99 clamped to observed max" true (p99 <= 100.0);
  check "q=1 is the max" true (Obs.Registry.histogram_percentile h 1.0 <= 100.0);
  check "quantiles are monotone" true
    (let qs = [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99 ] in
     let vs = List.map (Obs.Registry.histogram_percentile h) qs in
     List.sort compare vs = vs);
  (* out-of-range q clamps instead of raising *)
  check "q<0 clamps" true (Obs.Registry.histogram_percentile h (-1.0) >= 0.0);
  check "q>1 clamps" true (Obs.Registry.histogram_percentile h 2.0 <= 100.0);
  (* a single-sample histogram reports that sample everywhere *)
  let h1 = Obs.Registry.histogram reg "test.pct.one" in
  Obs.Registry.observe h1 7;
  check "single sample p50" true (Obs.Registry.histogram_percentile h1 0.5 <= 7.0)

let test_registry_reset_hammer () =
  (* Two domains hammer observe/incr while this one alternates reset
     and snapshot reads: histogram_stats must never return a torn view
     (bucket total <> count, or sum inconsistent with count * max) no
     matter how resets interleave with observes. *)
  let reg = Obs.Registry.create () in
  let h = Obs.Registry.histogram reg "hammer.hist" in
  let c = Obs.Registry.counter reg "hammer.count" in
  let stop = Atomic.make false in
  let writers =
    List.init 2 (fun seed ->
        Domain.spawn (fun () ->
            let v = ref (seed + 1) in
            while not (Atomic.get stop) do
              Obs.Registry.observe h (!v land 1023);
              Obs.Registry.incr c;
              v := (!v * 7) + 13
            done))
  in
  let checks = 5_000 in
  for i = 1 to checks do
    if i mod 50 = 0 then Obs.Registry.reset reg;
    let count, sum, max_v, buckets = Obs.Registry.histogram_stats h in
    let bucket_total = List.fold_left (fun a (_, n) -> a + n) 0 buckets in
    if bucket_total <> count then
      Alcotest.fail
        (Printf.sprintf "torn stats: %d bucketed samples vs count %d"
           bucket_total count);
    if sum < 0 || count < 0 then Alcotest.fail "negative totals";
    if sum > count * max 1 max_v then
      Alcotest.fail
        (Printf.sprintf "sum %d exceeds count %d * max %d" sum count max_v)
  done;
  Atomic.set stop true;
  List.iter Domain.join writers;
  (* handles stay valid after the dust settles *)
  Obs.Registry.reset reg;
  Obs.Registry.observe h 3;
  let count, sum, _, _ = Obs.Registry.histogram_stats h in
  check_int "clean after hammer: count" 1 count;
  check_int "clean after hammer: sum" 3 sum

let test_registry_snapshot () =
  let reg = Obs.Registry.create () in
  Obs.Registry.incr (Obs.Registry.counter reg "b.second");
  Obs.Registry.incr (Obs.Registry.counter reg "a.first");
  Obs.Registry.set (Obs.Registry.gauge reg "c.gauge") 1.5;
  let names =
    List.map
      (function
        | Obs.Registry.Counter (n, _) -> n
        | Obs.Registry.Gauge (n, _) -> n
        | Obs.Registry.Histogram (n, _, _, _, _) -> n)
      (Obs.Registry.snapshot reg)
  in
  Alcotest.(check (list string))
    "first-registration order"
    [ "b.second"; "a.first"; "c.gauge" ]
    names;
  (* to_json must itself round-trip (bench artifacts embed it). *)
  let j = Obs.Registry.to_json reg in
  check "to_json round-trips" true (Obs.Json.equal j (roundtrip j))

(* --- Prometheus exposition ------------------------------------------- *)

let test_to_prometheus () =
  let reg = Obs.Registry.create () in
  Obs.Registry.add (Obs.Registry.counter reg "srv.jobs_done") 12;
  Obs.Registry.set (Obs.Registry.gauge reg "bdd.live-nodes") 42.5;
  let h = Obs.Registry.histogram reg "srv.e2e_ms" in
  List.iter (Obs.Registry.observe h) [ 1; 3; 3; 200 ];
  let text = Obs.Summary.to_prometheus reg in
  let lines = String.split_on_char '\n' text in
  let has sub = List.exists (fun l -> l = sub) lines in
  check "counter TYPE line" true (has "# TYPE icv_srv_jobs_done counter");
  check "counter sample" true (has "icv_srv_jobs_done 12");
  (* names are sanitized to [a-zA-Z0-9_] and prefixed *)
  check "gauge TYPE line" true (has "# TYPE icv_bdd_live_nodes gauge");
  check "histogram TYPE line" true (has "# TYPE icv_srv_e2e_ms histogram");
  (* buckets are cumulative and end at +Inf = count; upper bounds are
     the log2 bucket boundaries, so sample 1 lands under le="2" *)
  check "le=2 bucket" true (has {|icv_srv_e2e_ms_bucket{le="2"} 1|});
  check "le=4 bucket is cumulative" true
    (has {|icv_srv_e2e_ms_bucket{le="4"} 3|});
  check "+Inf equals count" true
    (has {|icv_srv_e2e_ms_bucket{le="+Inf"} 4|});
  check "sum line" true (has "icv_srv_e2e_ms_sum 207");
  check "count line" true (has "icv_srv_e2e_ms_count 4");
  (* every sample's base name has exactly one TYPE line (the CI lint
     enforces the same invariant on the live daemon's output) *)
  let type_names =
    List.filter_map
      (fun l ->
        match String.split_on_char ' ' l with
        | [ "#"; "TYPE"; name; _kind ] -> Some name
        | _ -> None)
      lines
  in
  check "no duplicate TYPE lines" true
    (List.sort_uniq compare type_names = List.sort compare type_names);
  List.iter
    (fun l ->
      if l <> "" && l.[0] <> '#' then begin
        let name = List.hd (String.split_on_char ' ' l) in
        let name = List.hd (String.split_on_char '{' name) in
        let base =
          List.fold_left
            (fun n suffix ->
              if Filename.check_suffix n suffix then
                Filename.chop_suffix n suffix
              else n)
            name
            [ "_bucket"; "_sum"; "_count" ]
        in
        check (Printf.sprintf "sample %s has a TYPE line" name) true
          (List.mem base type_names);
        String.iter
          (fun ch ->
            if
              not
                ((ch >= 'a' && ch <= 'z')
                || (ch >= 'A' && ch <= 'Z')
                || (ch >= '0' && ch <= '9')
                || ch = '_')
            then Alcotest.fail (Printf.sprintf "bad metric name %s" name))
          name
      end)
    lines

(* --- Tracer ---------------------------------------------------------- *)

let with_temp_file f =
  let path = Filename.temp_file "icv-test-obs" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l -> go (l :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_tracer_disabled () =
  (* The sinkless fast path still runs the thunk and returns its value;
     args must not be evaluated. *)
  let evaluated = ref false in
  let r =
    Obs.Tracer.with_span Obs.Tracer.disabled
      ~args:(fun () ->
        evaluated := true;
        [])
      "noop"
      (fun () -> 41 + 1)
  in
  check_int "value through disabled span" 42 r;
  check "args not evaluated" false !evaluated;
  check "disabled is disabled" false (Obs.Tracer.enabled Obs.Tracer.disabled)

let test_tracer_jsonl () =
  with_temp_file (fun path ->
      let tracer = Obs.Tracer.create () in
      let oc = open_out path in
      Obs.Tracer.add_sink tracer (Obs.Tracer.jsonl_sink tracer oc);
      let r =
        Obs.Tracer.with_span tracer ~cat:"test"
          ~args:(fun () -> [ ("k", Obs.Json.Int 7) ])
          "outer"
          (fun () ->
            Obs.Tracer.instant tracer "tick";
            (* spans close even when the region raises *)
            (try
               Obs.Tracer.with_span tracer "raiser" (fun () ->
                   raise Exit)
             with Exit -> ());
            "done")
      in
      Obs.Tracer.flush tracer;
      close_out oc;
      check_str "span result" "done" r;
      let lines = read_lines path in
      check_int "three events" 3 (List.length lines);
      let parsed = List.map Obs.Json.of_string lines in
      List.iter
        (fun j -> check "line round-trips" true (Obs.Json.equal j (roundtrip j)))
        parsed;
      let name j = Option.get Obs.Json.(to_str (Option.get (member "name" j))) in
      let names = List.map name parsed in
      check "has tick" true (List.mem "tick" names);
      check "has raiser" true (List.mem "raiser" names);
      check "has outer" true (List.mem "outer" names);
      (* the outer span closes last, carries its args, and its duration
         covers the inner one *)
      let outer = List.find (fun j -> name j = "outer") parsed in
      let f k j = Option.get Obs.Json.(to_float (Option.get (member k j))) in
      let raiser = List.find (fun j -> name j = "raiser") parsed in
      check "outer dur >= raiser dur" true (f "dur_us" outer >= f "dur_us" raiser);
      check_int "outer args" 7
        Obs.Json.(
          Option.get
            (to_int
               (Option.get
                  (member "k" (Option.get (member "args" outer)))))))

let test_tracer_chrome () =
  with_temp_file (fun path ->
      let tracer = Obs.Tracer.create () in
      let oc = open_out path in
      Obs.Tracer.add_sink tracer (Obs.Tracer.chrome_sink tracer oc);
      Obs.Tracer.with_span tracer "a" (fun () ->
          Obs.Tracer.instant tracer "i");
      Obs.Tracer.with_span tracer "b" (fun () -> ());
      Obs.Tracer.flush tracer;
      close_out oc;
      let ic = open_in path in
      let len = in_channel_length ic in
      let content = really_input_string ic len in
      close_in ic;
      match Obs.Json.of_string content with
      | Obs.Json.List events ->
        check_int "three events" 3 (List.length events);
        List.iter
          (fun e ->
            let str k = Obs.Json.(to_str (Option.get (member k e))) in
            check "has ph" true (str "ph" = Some "X" || str "ph" = Some "i");
            check "has pid" true (Obs.Json.member "pid" e <> None);
            check "has ts" true (Obs.Json.member "ts" e <> None);
            if str "ph" = Some "X" then
              check "X has dur" true (Obs.Json.member "dur" e <> None))
          events
      | _ -> Alcotest.fail "chrome trace is not a JSON array")

let test_tracer_ambient () =
  with_temp_file (fun path ->
      let tracer = Obs.Tracer.create () in
      let oc = open_out path in
      Obs.Tracer.add_sink tracer (Obs.Tracer.jsonl_sink tracer oc);
      Obs.Tracer.with_attrs
        [ ("trace_id", Obs.Json.String "t-9"); ("k", Obs.Json.Int 1) ]
        (fun () ->
          Obs.Tracer.with_span tracer "plain" (fun () -> ());
          (* explicit args shadow the ambient key (member returns the
             first binding) *)
          Obs.Tracer.with_span tracer
            ~args:(fun () -> [ ("k", Obs.Json.Int 2) ])
            "shadowed"
            (fun () -> ());
          Obs.Tracer.instant tracer "tick";
          (* nesting appends; the inner scope restores on exit *)
          Obs.Tracer.with_attrs
            [ ("inner", Obs.Json.Bool true) ]
            (fun () -> Obs.Tracer.with_span tracer "nested" (fun () -> ())));
      check "context restored outside the scope" true
        (Obs.Tracer.current_attrs () = []);
      Obs.Tracer.with_span tracer "outside" (fun () -> ());
      (* a span timed externally lands at the requested place *)
      Obs.Tracer.span_at tracer "external" ~ts_ns:0L ~dur_ns:5_000L;
      Obs.Tracer.flush tracer;
      close_out oc;
      let parsed = List.map Obs.Json.of_string (read_lines path) in
      let by_name n =
        List.find
          (fun j ->
            Option.bind (Obs.Json.member "name" j) Obs.Json.to_str = Some n)
          parsed
      in
      let arg n k =
        Option.bind (Obs.Json.member "args" (by_name n)) (Obs.Json.member k)
      in
      check "span carries the ambient id" true
        (arg "plain" "trace_id" = Some (Obs.Json.String "t-9"));
      check "explicit args shadow ambient" true
        (arg "shadowed" "k" = Some (Obs.Json.Int 2));
      check "instants carry ambient attrs" true
        (arg "tick" "trace_id" = Some (Obs.Json.String "t-9"));
      check "nested scopes compose" true
        (arg "nested" "inner" = Some (Obs.Json.Bool true)
        && arg "nested" "trace_id" = Some (Obs.Json.String "t-9"));
      check "outside the scope no attrs leak" true
        (Obs.Json.member "args" (by_name "outside") = None);
      let ext = by_name "external" in
      let f k =
        Option.bind (Obs.Json.member k ext) Obs.Json.to_float
      in
      check "span_at honors the given duration" true (f "dur_us" = Some 5.0))

let test_tracer_ambient_across_domains () =
  (* A child domain starts with an empty ambient context; re-installing
     the parent's captured attrs (the Mc.Parallel / Srv.Pool pattern)
     carries the correlation id across the spawn. *)
  Obs.Tracer.with_attrs
    [ ("trace_id", Obs.Json.String "t-dom") ]
    (fun () ->
      let captured = Obs.Tracer.current_attrs () in
      let child =
        Domain.spawn (fun () ->
            let fresh = Obs.Tracer.current_attrs () in
            let installed =
              Obs.Tracer.with_attrs captured Obs.Tracer.current_attrs
            in
            (fresh, installed))
      in
      let fresh, installed = Domain.join child in
      check "child domain starts clean" true (fresh = []);
      check "captured attrs reinstall in the child" true
        (List.assoc_opt "trace_id" installed
        = Some (Obs.Json.String "t-dom")))

(* --- Iterlog --------------------------------------------------------- *)

let test_iterlog () =
  Obs.Iterlog.clear ();
  Obs.Iterlog.record
    {
      Obs.Iterlog.meth = "XICI";
      iteration = 1;
      conjuncts = 3;
      nodes = 100;
      elapsed_s = 0.5;
      live_nodes = 200;
    };
  Obs.Iterlog.record
    {
      Obs.Iterlog.meth = "XICI";
      iteration = 2;
      conjuncts = 2;
      nodes = 80;
      elapsed_s = 0.9;
      live_nodes = 250;
    };
  check_int "two rows" 2 (List.length (Obs.Iterlog.rows ()));
  check_int "recording order" 1
    (List.hd (Obs.Iterlog.rows ())).Obs.Iterlog.iteration;
  let j = Obs.Iterlog.to_json () in
  check "json round-trips" true (Obs.Json.equal j (roundtrip j));
  (match j with
  | Obs.Json.List [ r1; _ ] ->
    check_int "iteration field" 1
      Obs.Json.(Option.get (to_int (Option.get (member "iteration" r1))))
  | _ -> Alcotest.fail "iterlog json shape");
  Obs.Iterlog.clear ();
  check_int "cleared" 0 (List.length (Obs.Iterlog.rows ()))

(* --- End-to-end: real verification run under the global tracer ------- *)

let test_end_to_end () =
  Obs.Iterlog.clear ();
  Obs.Registry.reset Obs.Registry.default;
  with_temp_file (fun path ->
      let tracer = Obs.Tracer.create () in
      let oc = open_out path in
      Obs.Tracer.add_sink tracer (Obs.Tracer.jsonl_sink tracer oc);
      Obs.Tracer.set_global tracer;
      let model =
        Models.Typed_fifo.make { Models.Typed_fifo.default with depth = 3 }
      in
      let r =
        Fun.protect
          ~finally:(fun () ->
            Obs.Tracer.set_global Obs.Tracer.disabled;
            Obs.Tracer.flush tracer;
            close_out_noerr oc)
          (fun () ->
            Mc.Runner.run
              ~limits:(Mc.Limits.start ~max_iterations:50)
              Mc.Runner.Xici model)
      in
      check "proved" true (Mc.Report.is_proved r);
      let names =
        List.map
          (fun l ->
            Option.get
              Obs.Json.(to_str (Option.get (member "name" (of_string l)))))
          (read_lines path)
      in
      check "xici iteration spans present" true
        (List.mem "xici.iteration" names);
      check "tautology spans present" true (List.mem "taut.check" names);
      (* registry picked up the same run *)
      check "taut.checks counted" true
        (Obs.Registry.count (Obs.Registry.counter Obs.Registry.default "taut.checks")
         > 0);
      check "iterlog fed" true (Obs.Iterlog.rows () <> []);
      (* and the run-level snapshot both publishes bdd gauges and
         round-trips *)
      let snap = Mc.Telemetry.snapshot_json (Mc.Model.man model) in
      check "snapshot round-trips" true (Obs.Json.equal snap (roundtrip snap));
      let hits =
        Obs.Json.(
          member "metrics" snap
          |> Option.get
          |> member "bdd.cache.ite.hits"
          |> Option.get |> to_float |> Option.get)
      in
      check "ite cache hits published" true (hits > 0.0));
  Obs.Iterlog.clear ();
  Obs.Registry.reset Obs.Registry.default

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "print/parse round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters and gauges" `Quick test_registry_counters;
          Alcotest.test_case "log2 histogram" `Quick test_registry_histogram;
          Alcotest.test_case "percentile estimator" `Quick
            test_registry_percentile;
          Alcotest.test_case "reset vs concurrent observe" `Quick
            test_registry_reset_hammer;
          Alcotest.test_case "snapshot and json" `Quick test_registry_snapshot;
          Alcotest.test_case "prometheus exposition" `Quick test_to_prometheus;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "disabled fast path" `Quick test_tracer_disabled;
          Alcotest.test_case "jsonl sink" `Quick test_tracer_jsonl;
          Alcotest.test_case "chrome sink" `Quick test_tracer_chrome;
          Alcotest.test_case "ambient attributes and span_at" `Quick
            test_tracer_ambient;
          Alcotest.test_case "ambient context across domains" `Quick
            test_tracer_ambient_across_domains;
        ] );
      ( "iterlog",
        [ Alcotest.test_case "record/rows/json" `Quick test_iterlog ] );
      ( "integration",
        [
          Alcotest.test_case "traced verification run" `Quick test_end_to_end;
        ] );
    ]
