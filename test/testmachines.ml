(* Random small verification problems with an explicit-state reference
   verdict.  The generator and reference now live in [Fuzz.Spec]; this
   wrapper pins the historical fixed shape (3 state bits, 2 input bits,
   all bits offered to FD, no corner-case mixing) so the seeded unit
   tests keep their original distribution. *)

let n_state = 3
let n_input = 2

type spec = Fuzz.Spec.t

let shape =
  {
    Fuzz.Spec.min_state_bits = n_state;
    max_state_bits = n_state;
    min_input_bits = n_input;
    max_input_bits = n_input;
    max_goods = 3;
    fd_subsets = false;
    constrain_inputs = true;
    corners = false;
  }

let gen_spec = Fuzz.Spec.gen ~shape ()
let print_spec = Fuzz.Spec.print_spec

let build_model ?(fd_all = true) (spec : spec) =
  Fuzz.Spec.build_model
    (if fd_all then spec else { spec with Fuzz.Spec.fd = [] })

let reference_verdict = Fuzz.Spec.reference_verdict
let reference_reachable_count = Fuzz.Spec.reference_reachable_count
