(* fuzz: the differential-fuzzing harness.

   Three modes, in priority order:

     fuzz --replay TARGET:SEED[:COUNT]   re-run one batch
     fuzz --corpus FILE                  re-run every batch in a corpus file
     fuzz --minutes N [--seed S]         timed round-robin fuzzing

   Every failure is printed as a `FAIL <target> <seed> <count>` corpus
   line followed by the shrunk counterexamples, and the same report is
   written to --out so CI can upload it as an artifact.  Exit status is
   1 when any batch failed, 2 on usage errors. *)

open Cmdliner

let parse_targets spec =
  List.map
    (fun s ->
      match Fuzz.Driver.target_of_string (String.trim s) with
      | Some t -> t
      | None -> failwith (Printf.sprintf "unknown fuzz target %S" s))
    (String.split_on_char ',' spec)

let parse_replay spec =
  let bad () =
    failwith (Printf.sprintf "bad --replay spec %S (TARGET:SEED[:COUNT])" spec)
  in
  let int s = match int_of_string_opt s with Some n -> n | None -> bad () in
  match String.split_on_char ':' spec with
  | [ target; seed ] | [ target; seed; "" ] ->
    { Fuzz.Corpus.target; seed = int seed; count = 1 }
  | [ target; seed; count ] ->
    { Fuzz.Corpus.target; seed = int seed; count = int count }
  | _ -> bad ()

let write_report path failures =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun f -> output_string oc (Fuzz.Driver.pp_failure f ^ "\n"))
        failures)

let finish ~out failures =
  if failures = [] then begin
    print_endline "no disagreements";
    0
  end
  else begin
    List.iter (fun f -> print_endline (Fuzz.Driver.pp_failure f)) failures;
    write_report out failures;
    Printf.printf "%d failing batch(es); report written to %s\n"
      (List.length failures) out;
    1
  end

let run_checked minutes seed batch targets_spec corpus replay out quiet =
  let log = if quiet then ignore else print_endline in
  match (replay, corpus) with
  | Some spec, _ ->
    let entry = parse_replay spec in
    log (Printf.sprintf "replaying %s" (Fuzz.Corpus.line entry));
    let failures =
      match Fuzz.Driver.run_entry entry with
      | Ok () -> []
      | Error f -> [ f ]
    in
    finish ~out failures
  | None, Some path ->
    let entries = Fuzz.Corpus.load path in
    log (Printf.sprintf "replaying %d corpus batch(es) from %s"
           (List.length entries) path);
    finish ~out (Fuzz.Driver.run_corpus ~log entries)
  | None, None ->
    let targets = parse_targets targets_spec in
    let seed =
      match seed with
      | Some s -> s
      | None -> int_of_float (Unix.time ()) land 0x3FFFFFFF
    in
    (* Always print the root seed: it is the whole run's replay key. *)
    Printf.printf "fuzzing %s for %.3g minute(s), root seed %d, batch %d\n%!"
      targets_spec minutes seed batch;
    let summary = Fuzz.Driver.run_timed ~targets ~log ~minutes ~seed ~batch () in
    Printf.printf
      "ran %d batch(es), %d case(s), %d method configs per diff case\n"
      summary.Fuzz.Driver.batches summary.Fuzz.Driver.cases
      Fuzz.Oracle.configs_per_spec;
    finish ~out summary.Fuzz.Driver.failures

let run minutes seed batch targets corpus replay out quiet =
  try run_checked minutes seed batch targets corpus replay out quiet with
  | Failure msg | Sys_error msg | Invalid_argument msg ->
    Format.eprintf "fuzz: %s@." msg;
    2

let () =
  let minutes =
    Arg.(
      value & opt float 1.0
      & info [ "minutes" ] ~doc:"Wall-clock fuzzing budget in minutes.")
  in
  let seed =
    Arg.(
      value & opt (some int) None
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Root seed; per-batch seeds derive from it deterministically. \
             Defaults to the current time, printed for replay.")
  in
  let batch =
    Arg.(
      value & opt int 5
      & info [ "batch" ] ~doc:"QCheck2 cases per batch.")
  in
  let targets =
    Arg.(
      value & opt string "diff,metamorph,taut,bddops"
      & info [ "targets" ] ~docv:"T1,T2,..."
          ~doc:"Comma-separated targets: diff, metamorph, taut, bddops.")
  in
  let corpus =
    Arg.(
      value & opt (some string) None
      & info [ "corpus" ] ~docv:"FILE"
          ~doc:"Replay every batch in a seed-corpus file instead of fuzzing.")
  in
  let replay =
    Arg.(
      value & opt (some string) None
      & info [ "replay" ] ~docv:"TARGET:SEED[:COUNT]"
          ~doc:"Replay a single batch (as printed in a FAIL line).")
  in
  let out =
    Arg.(
      value & opt string "fuzz-failures.txt"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Failure report for CI artifact upload.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No per-batch progress.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "fuzz"
         ~doc:"Differential fuzzing of the verification methods")
      Term.(
        const run $ minutes $ seed $ batch $ targets $ corpus $ replay $ out
        $ quiet)
  in
  exit (Cmd.eval' cmd)
