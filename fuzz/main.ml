(* fuzz: the differential-fuzzing harness.

   Three modes, in priority order:

     fuzz --replay TARGET:SEED[:COUNT]   re-run one batch
     fuzz --corpus FILE                  re-run every batch in a corpus file
     fuzz --minutes N [--seed S]         timed round-robin fuzzing

   Every failure is printed as a `FAIL <target> <seed> <count>` corpus
   line followed by the shrunk counterexamples, and the same report is
   written to --out so CI can upload it as an artifact.  Exit status is
   1 when any batch failed, 2 on usage errors. *)

open Cmdliner

let parse_targets spec =
  List.map
    (fun s ->
      match Fuzz.Driver.target_of_string (String.trim s) with
      | Some t -> t
      | None -> failwith (Printf.sprintf "unknown fuzz target %S" s))
    (String.split_on_char ',' spec)

let parse_replay spec =
  let bad () =
    failwith (Printf.sprintf "bad --replay spec %S (TARGET:SEED[:COUNT])" spec)
  in
  let int s = match int_of_string_opt s with Some n -> n | None -> bad () in
  match String.split_on_char ':' spec with
  | [ target; seed ] | [ target; seed; "" ] ->
    { Fuzz.Corpus.target; seed = int seed; count = 1 }
  | [ target; seed; count ] ->
    { Fuzz.Corpus.target; seed = int seed; count = int count }
  | _ -> bad ()

let write_report path failures =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun f -> output_string oc (Fuzz.Driver.pp_failure f ^ "\n"))
        failures)

(* Replay batches across worker domains.  Every batch builds its own
   managers and models from its seed, so batches are shared-nothing;
   the only cross-domain state is the atomic work index and the
   (domain-safe) Obs registry the instruments report into. *)
let run_parallel ~domains ~log entries =
  let arr = Array.of_list entries in
  let n = Array.length arr in
  let next = Atomic.make 0 in
  let failures : Fuzz.Driver.failure option array = Array.make n None in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match Fuzz.Driver.run_entry arr.(i) with
        | Ok () -> ()
        | Error f -> failures.(i) <- Some f);
        loop ()
      end
    in
    loop ()
  in
  log
    (Printf.sprintf "replaying %d batch(es) on %d domains" n
       (min domains n));
  let spawned =
    List.init (min domains n) (fun _ ->
        Domain.spawn (fun () -> try Ok (worker ()) with e -> Error e))
  in
  let outcomes = List.map Domain.join spawned in
  List.iter (function Error e -> raise e | Ok () -> ()) outcomes;
  List.filter_map Fun.id (Array.to_list failures)

let finish ~out failures =
  if failures = [] then begin
    print_endline "no disagreements";
    0
  end
  else begin
    List.iter (fun f -> print_endline (Fuzz.Driver.pp_failure f)) failures;
    write_report out failures;
    Printf.printf "%d failing batch(es); report written to %s\n"
      (List.length failures) out;
    1
  end

let run_checked minutes seed batch targets_spec corpus replay domains out
    quiet =
  let log = if quiet then ignore else print_endline in
  match (replay, corpus) with
  | Some spec, _ ->
    let entry = parse_replay spec in
    log (Printf.sprintf "replaying %s" (Fuzz.Corpus.line entry));
    let failures =
      if domains >= 2 then run_parallel ~domains ~log [ entry ]
      else
        match Fuzz.Driver.run_entry entry with
        | Ok () -> []
        | Error f -> [ f ]
    in
    finish ~out failures
  | None, Some path ->
    let entries = Fuzz.Corpus.load path in
    log (Printf.sprintf "replaying %d corpus batch(es) from %s"
           (List.length entries) path);
    let failures =
      if domains >= 2 then run_parallel ~domains ~log entries
      else Fuzz.Driver.run_corpus ~log entries
    in
    finish ~out failures
  | None, None ->
    let targets = parse_targets targets_spec in
    let seed =
      match seed with
      | Some s -> s
      | None -> int_of_float (Unix.time ()) land 0x3FFFFFFF
    in
    (* Always print the root seed: it is the whole run's replay key. *)
    Printf.printf "fuzzing %s for %.3g minute(s), root seed %d, batch %d\n%!"
      targets_spec minutes seed batch;
    let summary = Fuzz.Driver.run_timed ~targets ~log ~minutes ~seed ~batch () in
    Printf.printf
      "ran %d batch(es), %d case(s), %d method configs per diff case\n"
      summary.Fuzz.Driver.batches summary.Fuzz.Driver.cases
      Fuzz.Oracle.configs_per_spec;
    finish ~out summary.Fuzz.Driver.failures

let run minutes seed batch targets corpus replay domains out quiet =
  try run_checked minutes seed batch targets corpus replay domains out quiet
  with
  | Failure msg | Sys_error msg | Invalid_argument msg ->
    Format.eprintf "fuzz: %s@." msg;
    2

let () =
  let minutes =
    Arg.(
      value & opt float 1.0
      & info [ "minutes" ] ~doc:"Wall-clock fuzzing budget in minutes.")
  in
  let seed =
    Arg.(
      value & opt (some int) None
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Root seed; per-batch seeds derive from it deterministically. \
             Defaults to the current time, printed for replay.")
  in
  let batch =
    Arg.(
      value & opt int 5
      & info [ "batch" ] ~doc:"QCheck2 cases per batch.")
  in
  let targets =
    Arg.(
      value & opt string "diff,metamorph,taut,bddops,batch"
      & info [ "targets" ] ~docv:"T1,T2,..."
          ~doc:
            "Comma-separated targets: diff, metamorph, taut, bddops, \
             tinycache, batch.")
  in
  let corpus =
    Arg.(
      value & opt (some string) None
      & info [ "corpus" ] ~docv:"FILE"
          ~doc:"Replay every batch in a seed-corpus file instead of fuzzing.")
  in
  let replay =
    Arg.(
      value & opt (some string) None
      & info [ "replay" ] ~docv:"TARGET:SEED[:COUNT]"
          ~doc:"Replay a single batch (as printed in a FAIL line).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Replay corpus batches on $(docv) worker domains (corpus and \
             replay modes; batches are shared-nothing).")
  in
  let out =
    Arg.(
      value & opt string "fuzz-failures.txt"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Failure report for CI artifact upload.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No per-batch progress.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "fuzz"
         ~doc:"Differential fuzzing of the verification methods")
      Term.(
        const run $ minutes $ seed $ batch $ targets $ corpus $ replay
        $ domains $ out $ quiet)
  in
  exit (Cmd.eval' cmd)
