(* Model tests.

   Each paper example gets an independently written concrete reference
   simulator; random runs must agree state-for-state with the symbolic
   next-state functions (via [Fsm.Trans.step]).  On top of that the
   suite checks verification outcomes (including planted-bug variants
   with validated counterexample traces) and pins the node counts that
   reproduce the paper exactly (typed FIFO: 41 = "5 x 9 nodes" implicit
   vs 543 monolithic). *)

let seed = 0xC0FFEE

let limits man =
  Mc.Limits.start ~max_iterations:60 ~max_created_nodes:4_000_000 man

(* --- environment encoding helpers ------------------------------------- *)

let env_size man = max 1 (Bdd.num_vars man)

let set_word env (word : Fsm.Space.word) v =
  Array.iteri
    (fun i (b : Fsm.Space.bit) -> env.(b.cur) <- (v lsr i) land 1 = 1)
    word

let get_word env (word : Fsm.Space.word) =
  let v = ref 0 in
  Array.iteri
    (fun i (b : Fsm.Space.bit) -> if env.(b.cur) then v := !v lor (1 lsl i))
    word;
  !v

let set_input env levels v =
  Array.iteri (fun i l -> env.(l) <- (v lsr i) land 1 = 1) levels

let set_bit env (b : Fsm.Space.bit) v = env.(b.cur) <- v
let get_bit env (b : Fsm.Space.bit) = env.(b.cur)

(* --- typed FIFO -------------------------------------------------------- *)

let test_fifo_reference () =
  let p = { Models.Typed_fifo.default with depth = 4; width = 5; bound = 17 } in
  let model, h = Models.Typed_fifo.make_full p in
  let man = Mc.Model.man model in
  let trans = model.Mc.Model.trans in
  let rng = Random.State.make [| seed |] in
  let slots = Array.make p.depth 0 in
  for _ = 1 to 200 do
    let v = Random.State.int rng (p.bound + 1) in
    let env = Array.make (env_size man) false in
    Array.iteri (fun i w -> set_word env w slots.(i)) h.Models.Typed_fifo.slots;
    set_input env h.Models.Typed_fifo.input v;
    Alcotest.(check bool) "input legal" true (Fsm.Trans.legal_input trans env);
    let env' = Fsm.Trans.step trans env in
    (* Reference: shift. *)
    for i = p.depth - 1 downto 1 do
      slots.(i) <- slots.(i - 1)
    done;
    slots.(0) <- v;
    Array.iteri
      (fun i w ->
        Alcotest.(check int)
          (Printf.sprintf "slot %d" i)
          slots.(i) (get_word env' w))
      h.Models.Typed_fifo.slots
  done

let test_fifo_paper_numbers () =
  (* The exact Table-1 FIFO numbers: implicit conjunction "(5 x 9
     nodes)" sharing 41, monolithic 543 (and "(10 x 9)" / 32767 at
     depth 10, checked in the benchmark, not here, for time). *)
  let model = Models.Typed_fifo.make Models.Typed_fifo.default in
  let r = Mc.Ici_method.run ~limits model in
  Alcotest.(check bool) "ICI proves" true (Mc.Report.is_proved r);
  Alcotest.(check int) "ICI iterations" 1 r.Mc.Report.iterations;
  Alcotest.(check int) "implicit size 41" 41 r.Mc.Report.peak_set_nodes;
  Alcotest.(check (list int)) "5 x 9 nodes" [ 9; 9; 9; 9; 9 ]
    r.Mc.Report.peak_conjuncts;
  let r = Mc.Xici.run ~limits model in
  Alcotest.(check int) "XICI implicit size 41" 41 r.Mc.Report.peak_set_nodes;
  let r = Mc.Backward.run ~limits model in
  Alcotest.(check int) "monolithic size 543" 543 r.Mc.Report.peak_set_nodes

let test_fifo_all_methods () =
  let p = { Models.Typed_fifo.default with depth = 3; width = 4; bound = 9 } in
  let model = Models.Typed_fifo.make p in
  List.iter
    (fun meth ->
      let r = Mc.Runner.run ~limits meth model in
      Alcotest.(check bool)
        (Mc.Runner.name meth ^ " proves fifo")
        true (Mc.Report.is_proved r))
    Mc.Runner.all

let check_violated_with_trace model meth =
  let r = Mc.Runner.run ~limits meth model in
  match r.Mc.Report.status with
  | Mc.Report.Violated tr ->
    let man = Mc.Model.man model in
    Alcotest.(check bool)
      (Mc.Runner.name meth ^ " trace validates")
      true
      (Mc.Trace.validate model.Mc.Model.trans ~init:model.Mc.Model.init
         ~good:(Ici.Clist.of_list man (Mc.Model.property model))
         tr)
  | Mc.Report.Proved | Mc.Report.Exceeded _ ->
    Alcotest.fail (Mc.Runner.name meth ^ " should violate")

let test_fifo_bug () =
  let p = { Models.Typed_fifo.depth = 3; width = 4; bound = 9; bug = true } in
  let model = Models.Typed_fifo.make p in
  List.iter (check_violated_with_trace model) Mc.Runner.all

let test_fifo_explicit_count () =
  (* A depth-d delay line over values 0..bound reaches exactly
     (bound+1)^d states from the all-zero start. *)
  let p = { Models.Typed_fifo.depth = 3; width = 3; bound = 4; bug = false } in
  let model = Models.Typed_fifo.make p in
  let r, states = Mc.Explicit.run_full ~limits model in
  Alcotest.(check bool) "explicit proves" true (Mc.Report.is_proved r);
  Alcotest.(check int) "reachable count" (5 * 5 * 5) states;
  Alcotest.(check int) "BFS depth = fill depth" 3 r.Mc.Report.iterations

let test_fifo_conjunct_formula () =
  (* With an MSB-style bound (2^(w-1)) the per-slot constraint costs
     exactly w+1 nodes and the implicit conjunction shares only the
     terminal: depth x w internal nodes + 1.  This is the arithmetic
     behind the paper's "(5 x 9 nodes)" annotations, checked across a
     parameter sweep. *)
  List.iter
    (fun (depth, width) ->
      let p =
        { Models.Typed_fifo.depth; width; bound = 1 lsl (width - 1);
          bug = false }
      in
      let r = Mc.Ici_method.run ~limits (Models.Typed_fifo.make p) in
      Alcotest.(check bool)
        (Printf.sprintf "proves d=%d w=%d" depth width)
        true (Mc.Report.is_proved r);
      let expected_conjuncts =
        if depth = 1 then [] (* singletons are not annotated *)
        else List.init depth (fun _ -> width + 1)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "conjunct sizes d=%d w=%d" depth width)
        expected_conjuncts r.Mc.Report.peak_conjuncts;
      Alcotest.(check int)
        (Printf.sprintf "shared size d=%d w=%d" depth width)
        ((depth * width) + 1)
        r.Mc.Report.peak_set_nodes)
    [ (1, 4); (2, 3); (3, 5); (4, 4); (5, 8) ]

(* --- network ------------------------------------------------------------ *)

type net_ref = {
  mutable cnt : int array;
  slots : (bool * bool * int) array; (* valid, req, addr *)
}

let test_network_reference () =
  let p = { Models.Network.procs = 3; bug = false } in
  let model, h = Models.Network.make_full p in
  let man = Mc.Model.man model in
  let trans = model.Mc.Model.trans in
  let rng = Random.State.make [| seed + 1 |] in
  let n = p.procs in
  let state =
    { cnt = Array.make n 0; slots = Array.make n (false, false, 0) }
  in
  let encode () =
    let env = Array.make (env_size man) false in
    Array.iteri
      (fun q w -> set_word env w state.cnt.(q))
      h.Models.Network.counters;
    Array.iteri
      (fun s (v, r, a) ->
        set_bit env h.Models.Network.valids.(s) v;
        set_bit env h.Models.Network.reqs.(s) r;
        set_word env h.Models.Network.addrs.(s) a)
      state.slots;
    env
  in
  let encode_action env act sel preq =
    let code =
      match act with
      | Models.Network.Idle -> 0
      | Models.Network.Issue -> 1
      | Models.Network.Serve -> 2
      | Models.Network.Deliver -> 3
    in
    set_input env h.Models.Network.act code;
    set_input env h.Models.Network.sel sel;
    set_input env h.Models.Network.preq preq
  in
  for _ = 1 to 400 do
    (* Choose a random action; verify legality agrees with the
       reference, retry until a legal one is found (Idle always is). *)
    let act =
      match Random.State.int rng 4 with
      | 0 -> Models.Network.Idle
      | 1 -> Models.Network.Issue
      | 2 -> Models.Network.Serve
      | _ -> Models.Network.Deliver
    in
    let sel = Random.State.int rng n in
    let preq = Random.State.int rng n in
    let v, r, a = state.slots.(sel) in
    let legal_ref =
      match act with
      | Models.Network.Idle -> true
      | Models.Network.Issue -> not v
      | Models.Network.Serve -> v && r
      | Models.Network.Deliver -> v && (not r) && preq = a
    in
    let env = encode () in
    encode_action env act sel preq;
    Alcotest.(check bool) "legality agrees" legal_ref
      (Fsm.Trans.legal_input trans env);
    if legal_ref then begin
      let env' = Fsm.Trans.step trans env in
      (match act with
      | Models.Network.Idle -> ()
      | Models.Network.Issue ->
        state.slots.(sel) <- (true, true, preq);
        state.cnt.(preq) <- state.cnt.(preq) + 1
      | Models.Network.Serve -> state.slots.(sel) <- (true, false, a)
      | Models.Network.Deliver ->
        state.slots.(sel) <- (false, false, a);
        state.cnt.(preq) <- state.cnt.(preq) - 1);
      Array.iteri
        (fun q w ->
          Alcotest.(check int)
            (Printf.sprintf "counter %d" q)
            state.cnt.(q) (get_word env' w))
        h.Models.Network.counters;
      Array.iteri
        (fun s (v, r, a) ->
          Alcotest.(check bool) "valid" v
            (get_bit env' h.Models.Network.valids.(s));
          Alcotest.(check bool) "req" r
            (get_bit env' h.Models.Network.reqs.(s));
          if v then
            Alcotest.(check int) "addr" a
              (get_word env' h.Models.Network.addrs.(s)))
        state.slots
    end
  done

let test_network_all_methods () =
  let model = Models.Network.make { Models.Network.procs = 2; bug = false } in
  List.iter
    (fun meth ->
      let r = Mc.Runner.run ~limits meth model in
      Alcotest.(check bool)
        (Mc.Runner.name meth ^ " proves network")
        true (Mc.Report.is_proved r))
    Mc.Runner.all

let test_network_fd_reduction () =
  (* The FD method must exploit the counter dependencies: its peak
     representation must be smaller than plain forward's. *)
  let model = Models.Network.make { Models.Network.procs = 3; bug = false } in
  let fwd = Mc.Forward.run ~limits model in
  let fd = Mc.Fd.run ~limits model in
  Alcotest.(check bool) "both prove" true
    (Mc.Report.is_proved fwd && Mc.Report.is_proved fd);
  Alcotest.(check bool) "FD representation smaller" true
    (fd.Mc.Report.peak_set_nodes < fwd.Mc.Report.peak_set_nodes)

let test_network_bug () =
  let model = Models.Network.make { Models.Network.procs = 2; bug = true } in
  List.iter (check_violated_with_trace model)
    [ Mc.Runner.Forward; Mc.Runner.Backward; Mc.Runner.Xici ]

(* --- moving-average filter ---------------------------------------------- *)

let test_filter_reference () =
  let p = { Models.Avg_filter.depth = 4; sample_width = 4; assisted = true;
            bug = false } in
  let model, h = Models.Avg_filter.make_full p in
  let man = Mc.Model.man model in
  let trans = model.Mc.Model.trans in
  let rng = Random.State.make [| seed + 2 |] in
  let k = p.depth in
  let levels = 2 in
  let window = Array.make k 0 in
  let layers = Array.init levels (fun l0 -> Array.make (k lsr (l0 + 1)) 0) in
  let dfifo = Array.make levels 0 in
  for _ = 1 to 300 do
    let x = Random.State.int rng (1 lsl p.sample_width) in
    let env = Array.make (env_size man) false in
    Array.iteri (fun i w -> set_word env w window.(i)) h.Models.Avg_filter.window;
    Array.iteri
      (fun l0 arr ->
        Array.iteri
          (fun j v -> set_word env h.Models.Avg_filter.layers.(l0).(j) v)
          arr)
      layers;
    Array.iteri (fun l0 v -> set_word env h.Models.Avg_filter.dfifo.(l0) v) dfifo;
    set_input env h.Models.Avg_filter.x x;
    let env' = Fsm.Trans.step trans env in
    (* Reference update (all from old state). *)
    let old_window = Array.copy window in
    let old_layers = Array.map Array.copy layers in
    for i = k - 1 downto 1 do
      window.(i) <- window.(i - 1)
    done;
    window.(0) <- x;
    Array.iteri
      (fun l0 arr ->
        let prev j = if l0 = 0 then old_window.(j) else old_layers.(l0 - 1).(j) in
        Array.iteri (fun j _ -> arr.(j) <- prev (2 * j) + prev ((2 * j) + 1)) arr)
      layers;
    for l0 = levels - 1 downto 1 do
      dfifo.(l0) <- dfifo.(l0 - 1)
    done;
    dfifo.(0) <- Array.fold_left ( + ) 0 old_window;
    Array.iteri
      (fun i w ->
        Alcotest.(check int) "window" window.(i) (get_word env' w))
      h.Models.Avg_filter.window;
    Array.iteri
      (fun l0 arr ->
        Array.iteri
          (fun j v ->
            Alcotest.(check int) "layer" v
              (get_word env' h.Models.Avg_filter.layers.(l0).(j)))
          arr)
      layers;
    Array.iteri
      (fun l0 v ->
        Alcotest.(check int) "dfifo" v
          (get_word env' h.Models.Avg_filter.dfifo.(l0)))
      dfifo
  done

let test_filter_verification () =
  let base = { Models.Avg_filter.depth = 2; sample_width = 3;
               assisted = false; bug = false } in
  (* Unassisted: XICI proves. *)
  let model = Models.Avg_filter.make base in
  let r = Mc.Xici.run ~limits model in
  Alcotest.(check bool) "XICI unassisted" true (Mc.Report.is_proved r);
  (* Assisted: ICI and XICI prove. *)
  let model = Models.Avg_filter.make { base with assisted = true } in
  let r = Mc.Ici_method.run ~limits model in
  Alcotest.(check bool) "ICI assisted" true (Mc.Report.is_proved r);
  let r = Mc.Xici.run ~limits model in
  Alcotest.(check bool) "XICI assisted" true (Mc.Report.is_proved r);
  (* Forward agrees. *)
  let model = Models.Avg_filter.make base in
  let r = Mc.Forward.run ~limits model in
  Alcotest.(check bool) "forward" true (Mc.Report.is_proved r)

let test_filter_bug () =
  let p = { Models.Avg_filter.depth = 2; sample_width = 3; assisted = false;
            bug = true } in
  let model = Models.Avg_filter.make p in
  List.iter (check_violated_with_trace model)
    [ Mc.Runner.Forward; Mc.Runner.Xici ]

(* --- pipelined processor ------------------------------------------------ *)

type cpu_ref = {
  mutable rf : int array;
  mutable rfs : int array;
  mutable f : int;
  mutable b1 : int;
  mutable b2 : int;
  mutable e_we : bool;
  mutable e_isbr : bool;
  mutable e_dst : int;
  mutable e_val : int;
}

let cpu_reference_step p (st : cpu_ref) instr =
  let lay = Models.Pipeline_cpu.layout p in
  let mask = (1 lsl lay.b) - 1 in
  let opcode i = i land 7 in
  let src i = (i lsr 3) land ((1 lsl lay.r) - 1) in
  let dst i = (i lsr (3 + lay.r)) land ((1 lsl lay.r) - 1) in
  let imm i = (i lsr (3 + (2 * lay.r))) land mask in
  let we op =
    List.mem op
      [ Models.Pipeline_cpu.op_ld; Models.Pipeline_cpu.op_add;
        Models.Pipeline_cpu.op_sub; Models.Pipeline_cpu.op_mov;
        Models.Pipeline_cpu.op_sr ]
  in
  let exec op iv sv dv =
    (if op = Models.Pipeline_cpu.op_ld then iv
     else if op = Models.Pipeline_cpu.op_add then dv + sv
     else if op = Models.Pipeline_cpu.op_sub then dv - sv
     else if op = Models.Pipeline_cpu.op_mov then sv
     else if op = Models.Pipeline_cpu.op_sr then dv lsr 1
     else 0)
    land mask
  in
  let stall = opcode st.f = Models.Pipeline_cpu.op_br || st.e_isbr in
  let eff = if stall then 0 else instr in
  (* Execute stage reads the old register file with bypass from E. *)
  let read_bypassed idx =
    if (not p.Models.Pipeline_cpu.bug) && st.e_we && st.e_dst = idx then
      st.e_val
    else st.rf.(idx)
  in
  let fop = opcode st.f in
  let new_e_we = we fop in
  let new_e_isbr = fop = Models.Pipeline_cpu.op_br in
  let new_e_dst = dst st.f in
  let new_e_val =
    exec fop (imm st.f) (read_bypassed (src st.f)) (read_bypassed (dst st.f))
  in
  (* Writeback from the old E. *)
  let new_rf = Array.copy st.rf in
  if st.e_we then new_rf.(st.e_dst) <- st.e_val;
  (* Spec executes B2 atomically. *)
  let new_rfs = Array.copy st.rfs in
  let b2op = opcode st.b2 in
  if we b2op then
    new_rfs.(dst st.b2) <-
      exec b2op (imm st.b2) st.rfs.(src st.b2) st.rfs.(dst st.b2);
  st.rf <- new_rf;
  st.rfs <- new_rfs;
  st.b2 <- st.b1;
  st.b1 <- eff;
  st.f <- eff;
  st.e_we <- new_e_we;
  st.e_isbr <- new_e_isbr;
  st.e_dst <- new_e_dst;
  st.e_val <- new_e_val

let test_cpu_reference () =
  List.iter
    (fun bug ->
      let p = { Models.Pipeline_cpu.regs = 2; width = 2; assisted = false;
                bug } in
      let lay = Models.Pipeline_cpu.layout p in
      let model, h = Models.Pipeline_cpu.make_full p in
      let man = Mc.Model.man model in
      let trans = model.Mc.Model.trans in
      let rng = Random.State.make [| seed + 3 |] in
      let st =
        { rf = Array.make p.regs 0; rfs = Array.make p.regs 0; f = 0; b1 = 0;
          b2 = 0; e_we = false; e_isbr = false; e_dst = 0; e_val = 0 }
      in
      for _ = 1 to 400 do
        let instr = Random.State.int rng (1 lsl lay.iw) in
        let env = Array.make (env_size man) false in
        set_word env h.Models.Pipeline_cpu.f st.f;
        set_word env h.Models.Pipeline_cpu.b1 st.b1;
        set_word env h.Models.Pipeline_cpu.b2 st.b2;
        set_bit env h.Models.Pipeline_cpu.e_we st.e_we;
        set_bit env h.Models.Pipeline_cpu.e_isbr st.e_isbr;
        set_word env h.Models.Pipeline_cpu.e_dst st.e_dst;
        set_word env h.Models.Pipeline_cpu.e_val st.e_val;
        Array.iteri (fun i w -> set_word env w st.rf.(i))
          h.Models.Pipeline_cpu.rf;
        Array.iteri (fun i w -> set_word env w st.rfs.(i))
          h.Models.Pipeline_cpu.rfs;
        set_input env h.Models.Pipeline_cpu.instr_in instr;
        let env' = Fsm.Trans.step trans env in
        cpu_reference_step p st instr;
        Alcotest.(check int) "F" st.f (get_word env' h.Models.Pipeline_cpu.f);
        Alcotest.(check int) "B1" st.b1
          (get_word env' h.Models.Pipeline_cpu.b1);
        Alcotest.(check int) "B2" st.b2
          (get_word env' h.Models.Pipeline_cpu.b2);
        Alcotest.(check bool) "e_we" st.e_we
          (get_bit env' h.Models.Pipeline_cpu.e_we);
        Alcotest.(check bool) "e_isbr" st.e_isbr
          (get_bit env' h.Models.Pipeline_cpu.e_isbr);
        Alcotest.(check int) "e_dst" st.e_dst
          (get_word env' h.Models.Pipeline_cpu.e_dst);
        Alcotest.(check int) "e_val" st.e_val
          (get_word env' h.Models.Pipeline_cpu.e_val);
        Array.iteri
          (fun i w -> Alcotest.(check int) "rf" st.rf.(i) (get_word env' w))
          h.Models.Pipeline_cpu.rf;
        Array.iteri
          (fun i w -> Alcotest.(check int) "rfs" st.rfs.(i) (get_word env' w))
          h.Models.Pipeline_cpu.rfs
      done)
    [ false; true ]

let test_cpu_verification () =
  (* Forward traversal is intentionally omitted: the module-grouped
     variable order makes the monolithic reachable set blow up (that is
     Table 3's whole point) and the run takes minutes; forward/backward
     agreement on this machine shape is covered by the random-machine
     suite in test_mc. *)
  let p = { Models.Pipeline_cpu.regs = 2; width = 1; assisted = false;
            bug = false } in
  let model = Models.Pipeline_cpu.make p in
  List.iter
    (fun meth ->
      let r = Mc.Runner.run ~limits meth model in
      Alcotest.(check bool)
        (Mc.Runner.name meth ^ " proves cpu")
        true (Mc.Report.is_proved r))
    [ Mc.Runner.Backward; Mc.Runner.Ici; Mc.Runner.Xici ]

let test_cpu_assisted () =
  (* The footnote experiment: hand invariants make the problem inductive
     in very few iterations. *)
  let p = { Models.Pipeline_cpu.regs = 2; width = 1; assisted = true;
            bug = false } in
  let model = Models.Pipeline_cpu.make p in
  let r = Mc.Xici.run ~limits model in
  Alcotest.(check bool) "XICI assisted proves" true (Mc.Report.is_proved r);
  Alcotest.(check bool) "few iterations" true (r.Mc.Report.iterations <= 2)

let test_cpu_bug () =
  (* Without the bypass the classic LD/ADD hazard must surface. *)
  let p = { Models.Pipeline_cpu.regs = 2; width = 1; assisted = false;
            bug = true } in
  let model = Models.Pipeline_cpu.make p in
  List.iter (check_violated_with_trace model)
    [ Mc.Runner.Forward; Mc.Runner.Xici ]

(* --- alternating-bit protocol ------------------------------------------- *)

type abp_ref = {
  mutable smsg : int;
  mutable sseq : bool;
  mutable fval : bool;
  mutable fseq : bool;
  mutable fdata : int;
  mutable aval : bool;
  mutable aseq : bool;
  mutable rexp : bool;
  mutable rdata : int;
}

let test_abp_reference () =
  List.iter
    (fun bug ->
      let p = { Models.Abp.width = 3; bug } in
      let model, h = Models.Abp.make_full p in
      let man = Mc.Model.man model in
      let trans = model.Mc.Model.trans in
      let rng = Random.State.make [| seed + 4 |] in
      let st =
        { smsg = 0; sseq = false; fval = false; fseq = false; fdata = 0;
          aval = false; aseq = false; rexp = false; rdata = 0 }
      in
      for _ = 1 to 500 do
        let act = Random.State.int rng 6 in
        let fresh = Random.State.int rng 8 in
        let legal_ref =
          match act with
          | 2 | 3 -> st.fval
          | 4 | 5 -> st.aval
          | _ -> true
        in
        let env = Array.make (env_size man) false in
        set_word env h.Models.Abp.sender_msg st.smsg;
        set_bit env h.Models.Abp.sender_seq st.sseq;
        set_bit env h.Models.Abp.frame_valid st.fval;
        set_bit env h.Models.Abp.frame_seq st.fseq;
        set_word env h.Models.Abp.frame_data st.fdata;
        set_bit env h.Models.Abp.ack_valid st.aval;
        set_bit env h.Models.Abp.ack_seq st.aseq;
        set_bit env h.Models.Abp.recv_expected st.rexp;
        set_word env h.Models.Abp.recv_data st.rdata;
        set_input env h.Models.Abp.act act;
        set_input env h.Models.Abp.fresh fresh;
        Alcotest.(check bool) "legality" legal_ref
          (Fsm.Trans.legal_input trans env);
        if legal_ref then begin
          let env' = Fsm.Trans.step trans env in
          (match act with
          | 1 (* Send *) ->
            st.fval <- true;
            st.fseq <- st.sseq;
            st.fdata <- st.smsg
          | 2 (* DropF *) -> st.fval <- false
          | 3 (* Deliver *) ->
            let accept = bug || st.fseq = st.rexp in
            st.fval <- false;
            if accept then begin
              st.aval <- true;
              st.aseq <- st.fseq;
              st.rexp <- not st.rexp;
              st.rdata <- st.fdata
            end
          | 4 (* DropA *) -> st.aval <- false
          | 5 (* Ack *) ->
            let ok = st.aseq = st.sseq in
            st.aval <- false;
            if ok then begin
              st.smsg <- fresh;
              st.sseq <- not st.sseq
            end
          | _ (* Idle *) -> ());
          Alcotest.(check int) "smsg" st.smsg
            (get_word env' h.Models.Abp.sender_msg);
          Alcotest.(check bool) "sseq" st.sseq
            (get_bit env' h.Models.Abp.sender_seq);
          Alcotest.(check bool) "fval" st.fval
            (get_bit env' h.Models.Abp.frame_valid);
          Alcotest.(check bool) "aval" st.aval
            (get_bit env' h.Models.Abp.ack_valid);
          Alcotest.(check bool) "rexp" st.rexp
            (get_bit env' h.Models.Abp.recv_expected);
          Alcotest.(check int) "rdata" st.rdata
            (get_word env' h.Models.Abp.recv_data);
          if st.fval then begin
            Alcotest.(check bool) "fseq" st.fseq
              (get_bit env' h.Models.Abp.frame_seq);
            Alcotest.(check int) "fdata" st.fdata
              (get_word env' h.Models.Abp.frame_data)
          end;
          if st.aval then
            Alcotest.(check bool) "aseq" st.aseq
              (get_bit env' h.Models.Abp.ack_seq)
        end
      done)
    [ false; true ]

let test_abp_verification () =
  let model = Models.Abp.make { Models.Abp.width = 2; bug = false } in
  List.iter
    (fun meth ->
      let r = Mc.Runner.run ~limits meth model in
      Alcotest.(check bool)
        (Mc.Runner.name meth ^ " proves abp")
        true (Mc.Report.is_proved r))
    Mc.Runner.all

let test_abp_bug () =
  let model = Models.Abp.make { Models.Abp.width = 2; bug = true } in
  List.iter (check_violated_with_trace model)
    [ Mc.Runner.Forward; Mc.Runner.Backward; Mc.Runner.Xici; Mc.Runner.Idi ]

let () =
  Alcotest.run "models"
    [
      ( "typed-fifo",
        [
          Alcotest.test_case "reference simulation" `Quick
            test_fifo_reference;
          Alcotest.test_case "paper numbers (41 vs 543 nodes)" `Quick
            test_fifo_paper_numbers;
          Alcotest.test_case "all methods prove" `Quick test_fifo_all_methods;
          Alcotest.test_case "bug variant violated" `Quick test_fifo_bug;
          Alcotest.test_case "explicit-state reachable count" `Quick
            test_fifo_explicit_count;
          Alcotest.test_case "conjunct-size formula sweep" `Quick
            test_fifo_conjunct_formula;
        ] );
      ( "network",
        [
          Alcotest.test_case "reference simulation" `Quick
            test_network_reference;
          Alcotest.test_case "all methods prove" `Quick
            test_network_all_methods;
          Alcotest.test_case "FD exploits dependencies" `Quick
            test_network_fd_reduction;
          Alcotest.test_case "bug variant violated" `Quick test_network_bug;
        ] );
      ( "avg-filter",
        [
          Alcotest.test_case "reference simulation" `Quick
            test_filter_reference;
          Alcotest.test_case "verification outcomes" `Quick
            test_filter_verification;
          Alcotest.test_case "bug variant violated" `Quick test_filter_bug;
        ] );
      ( "abp",
        [
          Alcotest.test_case "reference simulation (with/without bug)"
            `Quick test_abp_reference;
          Alcotest.test_case "all methods prove" `Quick test_abp_verification;
          Alcotest.test_case "bug variant violated" `Quick test_abp_bug;
        ] );
      ( "pipeline-cpu",
        [
          Alcotest.test_case "reference simulation (with/without bypass)"
            `Quick test_cpu_reference;
          Alcotest.test_case "verification outcomes" `Quick
            test_cpu_verification;
          Alcotest.test_case "assisted invariants (footnote)" `Quick
            test_cpu_assisted;
          Alcotest.test_case "no-bypass bug violated" `Quick test_cpu_bug;
        ] );
    ]
