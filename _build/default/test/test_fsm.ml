(* FSM substrate tests.  The central check compares the symbolic image
   operators against explicit-state enumeration on randomly generated
   small machines, so Image / PreImage / BackImage semantics (paper
   Definition 1) are validated bit-for-bit. *)

let n_state = 3
let n_input = 2

(* A random machine: next-state expressions over 5 "variables"
   (3 current-state + 2 inputs), an input-constraint expression, and a
   target-set expression over the 3 state variables. *)
type machine_spec = {
  nexts : Testutil.expr array; (* length n_state *)
  constr : Testutil.expr;
  target : Testutil.expr; (* over state vars only *)
}

let gen_spec =
  let open QCheck2.Gen in
  let e = Testutil.gen_expr ~nvars:(n_state + n_input) in
  let es = Testutil.gen_expr ~nvars:n_state in
  map3
    (fun a (b, c) (d, t) ->
      { nexts = [| a; b; c |]; constr = d; target = t })
    e (pair e e) (pair e es)

let print_spec s =
  Format.asprintf "next0=%a next1=%a next2=%a constr=%a target=%a"
    Testutil.pp_expr s.nexts.(0) Testutil.pp_expr s.nexts.(1)
    Testutil.pp_expr s.nexts.(2) Testutil.pp_expr s.constr Testutil.pp_expr
    s.target

(* Build the symbolic machine.  Variable order: state bits first (their
   cur/next pairs), then inputs.  Expression variable i < n_state maps
   to state bit i's current level; i >= n_state maps to input i-n_state. *)
let build spec =
  let sp = Fsm.Space.create () in
  let bits = Array.init n_state (fun _ -> Fsm.Space.state_bit sp) in
  let inputs = Array.init n_input (fun _ -> Fsm.Space.input_bit sp) in
  let vars =
    Array.append
      (Array.map (fun (b : Fsm.Space.bit) -> b.cur) bits)
      inputs
  in
  let man = Fsm.Space.man sp in
  let assigns =
    List.init n_state (fun i ->
        (bits.(i), Testutil.build_bdd man vars spec.nexts.(i)))
  in
  let input_constraint = Testutil.build_bdd man vars spec.constr in
  let trans = Fsm.Trans.make ~input_constraint sp ~assigns in
  let state_vars = Array.sub vars 0 n_state in
  let target = Testutil.build_bdd man state_vars spec.target in
  (sp, man, bits, trans, target, vars)

(* Explicit-state reference semantics. *)
let explicit_successors spec s =
  let succs = ref [] in
  for inp = 0 to (1 lsl n_input) - 1 do
    let env =
      Array.init (n_state + n_input) (fun i ->
          if i < n_state then (s lsr i) land 1 = 1
          else (inp lsr (i - n_state)) land 1 = 1)
    in
    if Testutil.eval_expr env spec.constr then begin
      let s' = ref 0 in
      for b = 0 to n_state - 1 do
        if Testutil.eval_expr env spec.nexts.(b) then s' := !s' lor (1 lsl b)
      done;
      if not (List.mem !s' !succs) then succs := !s' :: !succs
    end
  done;
  !succs

let in_target spec s =
  let env = Array.init n_state (fun i -> (s lsr i) land 1 = 1) in
  Testutil.eval_expr env spec.target

(* Decode a symbolic state set over current levels into an int set. *)
let decode man bits set =
  List.filter
    (fun s ->
      let n = Bdd.num_vars man in
      let env = Array.make n false in
      Array.iteri
        (fun i (b : Fsm.Space.bit) -> env.(b.cur) <- (s lsr i) land 1 = 1)
        bits;
      Bdd.eval man env set)
    (List.init (1 lsl n_state) (fun s -> s))

let states_of_pred p = List.filter p (List.init (1 lsl n_state) (fun s -> s))

let prop_image spec =
  let _, man, bits, trans, target, _ = build spec in
  let z_states = states_of_pred (in_target spec) in
  let image = Fsm.Trans.image trans target in
  let expect =
    states_of_pred (fun s' ->
        List.exists (fun s -> List.mem s' (explicit_successors spec s)) z_states)
  in
  decode man bits image = expect

let prop_pre_image spec =
  let _, man, bits, trans, target, _ = build spec in
  let pre = Fsm.Trans.pre_image trans target in
  let expect =
    states_of_pred (fun s ->
        List.exists (in_target spec) (explicit_successors spec s))
  in
  decode man bits pre = expect

let prop_back_image spec =
  let _, man, bits, trans, target, _ = build spec in
  let back = Fsm.Trans.back_image trans target in
  let expect =
    states_of_pred (fun s ->
        List.for_all (in_target spec) (explicit_successors spec s))
  in
  decode man bits back = expect

let prop_image_methods_agree spec =
  (* The compose-based and relational backward images must coincide. *)
  let _, _, _, trans, target, _ = build spec in
  Bdd.equal
    (Fsm.Trans.pre_image ~via:`Compose trans target)
    (Fsm.Trans.pre_image ~via:`Relational trans target)
  && Bdd.equal
       (Fsm.Trans.back_image ~via:`Compose trans target)
       (Fsm.Trans.back_image ~via:`Relational trans target)

let prop_back_image_theorem1 spec =
  (* Theorem 1: BackImage distributes over conjunction. *)
  let _, man, _, trans, target, vars = build spec in
  let x0 = Bdd.var man vars.(0) in
  let a = Bdd.bor man target x0 in
  let b = Bdd.bor man target (Bdd.bnot man x0) in
  (* a /\ b = target \/ (x0 /\ ~x0) = target *)
  Bdd.equal
    (Fsm.Trans.back_image trans (Bdd.band man a b))
    (Bdd.band man (Fsm.Trans.back_image trans a) (Fsm.Trans.back_image trans b))

let prop_is_total spec =
  let _, _, _, trans, _, _ = build spec in
  let expect =
    List.for_all
      (fun s -> explicit_successors spec s <> [])
      (List.init (1 lsl n_state) (fun s -> s))
  in
  Fsm.Trans.is_total trans = expect

let prop_successors_of_state spec =
  let _, man, bits, trans, _, _ = build spec in
  List.for_all
    (fun s ->
      let n = Bdd.num_vars man in
      let env = Array.make n false in
      Array.iteri
        (fun i (b : Fsm.Space.bit) -> env.(b.cur) <- (s lsr i) land 1 = 1)
        bits;
      let succ = Fsm.Trans.successors_of_state trans env in
      List.sort compare (decode man bits succ)
      = List.sort compare (explicit_successors spec s))
    (List.init (1 lsl n_state) (fun s -> s))

let prop_step_in_image spec =
  (* Every concrete [Trans.step] successor lies in the symbolic image
     of its source state. *)
  let _, man, bits, trans, _, vars = build spec in
  List.for_all
    (fun s ->
      List.for_all
        (fun inp ->
          let env = Array.make (Bdd.num_vars man) false in
          Array.iteri
            (fun i (b : Fsm.Space.bit) -> env.(b.cur) <- (s lsr i) land 1 = 1)
            bits;
          for k = 0 to n_input - 1 do
            env.(vars.(n_state + k)) <- (inp lsr k) land 1 = 1
          done;
          (not (Fsm.Trans.legal_input trans env))
          ||
          let succ = Fsm.Trans.step trans env in
          let img = Fsm.Trans.successors_of_state trans env in
          Bdd.eval man succ img)
        (List.init (1 lsl n_input) Fun.id))
    (List.init (1 lsl n_state) Fun.id)

let prop_image_with_extra spec =
  (* image ~extra:[e] z = image (z /\ e) for constraints over current
     state -- the contract the FD method relies on. *)
  let _, man, _, trans, target, vars = build spec in
  let extra =
    Bdd.bor man (Bdd.var man vars.(1)) (Bdd.bnot man (Bdd.var man vars.(2)))
  in
  Bdd.equal
    (Fsm.Trans.image ~extra:[ extra ] trans target)
    (Fsm.Trans.image trans (Bdd.band man target extra))

(* --- unit tests on a tiny hand-built machine: a 2-bit counter that
   increments when the input says so. *)
let counter () =
  let sp = Fsm.Space.create () in
  let b0 = Fsm.Space.state_bit ~name:"c0" sp in
  let b1 = Fsm.Space.state_bit ~name:"c1" sp in
  let tick = Fsm.Space.input_bit ~name:"tick" sp in
  let man = Fsm.Space.man sp in
  let c0 = Bdd.var man b0.cur and c1 = Bdd.var man b1.cur in
  let t = Bdd.var man tick in
  let n0 = Bdd.bxor man c0 t in
  let n1 = Bdd.bxor man c1 (Bdd.band man c0 t) in
  let trans = Fsm.Trans.make sp ~assigns:[ (b0, n0); (b1, n1) ] in
  (sp, man, (b0, b1), trans)

let test_counter_image () =
  let _, man, (b0, b1), trans = counter () in
  (* From state 0 (c1c0=00) we can reach 0 (no tick) and 1 (tick). *)
  let zero =
    Bdd.band man (Bdd.nvar man b0.cur) (Bdd.nvar man b1.cur)
  in
  let img = Fsm.Trans.image trans zero in
  let expect =
    Bdd.bor man zero (Bdd.band man (Bdd.var man b0.cur) (Bdd.nvar man b1.cur))
  in
  Alcotest.(check bool) "image of {0} = {0,1}" true (Bdd.equal img expect)

let test_counter_total () =
  let _, _, _, trans = counter () in
  Alcotest.(check bool) "counter is total" true (Fsm.Trans.is_total trans)

let test_missing_assign_rejected () =
  let sp = Fsm.Space.create () in
  let b0 = Fsm.Space.state_bit sp in
  let _b1 = Fsm.Space.state_bit sp in
  let man = Fsm.Space.man sp in
  Alcotest.(check bool) "partial assignment rejected" true
    (try
       ignore (Fsm.Trans.make sp ~assigns:[ (b0, Bdd.tru man) ]);
       false
     with Invalid_argument _ -> true)

let test_interleaved_words () =
  let sp = Fsm.Space.create () in
  let words = Fsm.Space.interleaved_words sp ~count:3 ~width:2 in
  (* Bit 0 of all words allocated before bit 1 of any word. *)
  let max_bit0 =
    Array.fold_left (fun acc w -> max acc w.(0).Fsm.Space.cur) 0 words
  in
  let min_bit1 =
    Array.fold_left (fun acc w -> min acc w.(1).Fsm.Space.cur) max_int words
  in
  Alcotest.(check bool) "bit-slice major order" true (max_bit0 < min_bit1)

let test_cur_next_adjacent () =
  let sp = Fsm.Space.create () in
  let b = Fsm.Space.state_bit sp in
  Alcotest.(check int) "next level adjacent to cur" (b.cur + 1) b.next

let qtest name prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:150 ~name ~print:print_spec gen_spec prop)

let () =
  Alcotest.run "fsm"
    [
      ( "unit",
        [
          Alcotest.test_case "counter image" `Quick test_counter_image;
          Alcotest.test_case "counter totality" `Quick test_counter_total;
          Alcotest.test_case "partial assigns rejected" `Quick
            test_missing_assign_rejected;
          Alcotest.test_case "interleaved allocation" `Quick
            test_interleaved_words;
          Alcotest.test_case "cur/next adjacency" `Quick
            test_cur_next_adjacent;
        ] );
      ( "vs explicit-state",
        [
          qtest "image" prop_image;
          qtest "pre_image" prop_pre_image;
          qtest "back_image" prop_back_image;
          qtest "theorem 1 (backimage distributes)" prop_back_image_theorem1;
          qtest "compose vs relational images" prop_image_methods_agree;
          qtest "is_total" prop_is_total;
          qtest "successors_of_state" prop_successors_of_state;
          qtest "image with extra conjuncts" prop_image_with_extra;
          qtest "concrete step lies in symbolic image" prop_step_in_image;
        ] );
    ]
