(* Random small verification problems with an explicit-state reference
   verdict, used to cross-check all five verification methods. *)

let n_state = 3
let n_input = 2

type spec = {
  nexts : Testutil.expr array; (* over n_state + n_input vars *)
  constr : Testutil.expr; (* over n_state + n_input vars *)
  init : Testutil.expr; (* over n_state vars *)
  goods : Testutil.expr list; (* over n_state vars *)
}

let gen_spec =
  let open QCheck2.Gen in
  let e = Testutil.gen_expr ~nvars:(n_state + n_input) in
  let es = Testutil.gen_expr ~nvars:n_state in
  map3
    (fun a (b, c) (d, (i, gs)) ->
      { nexts = [| a; b; c |]; constr = d; init = i; goods = gs })
    e (pair e e)
    (pair e (pair es (list_size (int_range 1 3) es)))

let print_spec s =
  Format.asprintf "nexts=[%a;%a;%a] constr=%a init=%a goods=[%s]"
    Testutil.pp_expr s.nexts.(0) Testutil.pp_expr s.nexts.(1) Testutil.pp_expr
    s.nexts.(2) Testutil.pp_expr s.constr Testutil.pp_expr s.init
    (String.concat ";"
       (List.map (Format.asprintf "%a" Testutil.pp_expr) s.goods))

(* Symbolic model.  State bits first, then inputs; expression variable i
   maps to state bit i (current level) for i < n_state, else input. *)
let build_model ?(fd_all = true) spec =
  let sp = Fsm.Space.create () in
  let bits = Array.init n_state (fun _ -> Fsm.Space.state_bit sp) in
  let inputs = Array.init n_input (fun _ -> Fsm.Space.input_bit sp) in
  let vars =
    Array.append (Array.map (fun (b : Fsm.Space.bit) -> b.cur) bits) inputs
  in
  let man = Fsm.Space.man sp in
  let assigns =
    List.init n_state (fun i ->
        (bits.(i), Testutil.build_bdd man vars spec.nexts.(i)))
  in
  let input_constraint = Testutil.build_bdd man vars spec.constr in
  let trans = Fsm.Trans.make ~input_constraint sp ~assigns in
  let svars = Array.sub vars 0 n_state in
  let init = Testutil.build_bdd man svars spec.init in
  let good = List.map (Testutil.build_bdd man svars) spec.goods in
  let fd_candidates =
    if fd_all then Array.to_list (Array.map (fun (b : Fsm.Space.bit) -> b.cur) bits)
    else []
  in
  Mc.Model.make ~fd_candidates ~name:"random" ~space:sp ~trans ~init ~good ()

(* Explicit-state reference: true iff every reachable state is good. *)
let reference_verdict spec =
  let succs s =
    let out = ref [] in
    for inp = 0 to (1 lsl n_input) - 1 do
      let env =
        Array.init (n_state + n_input) (fun i ->
            if i < n_state then (s lsr i) land 1 = 1
            else (inp lsr (i - n_state)) land 1 = 1)
      in
      if Testutil.eval_expr env spec.constr then begin
        let s' = ref 0 in
        for b = 0 to n_state - 1 do
          if Testutil.eval_expr env spec.nexts.(b) then s' := !s' lor (1 lsl b)
        done;
        if not (List.mem !s' !out) then out := !s' :: !out
      end
    done;
    !out
  in
  let senv s = Array.init n_state (fun i -> (s lsr i) land 1 = 1) in
  let good s = List.for_all (Testutil.eval_expr (senv s)) spec.goods in
  let initial =
    List.filter
      (fun s -> Testutil.eval_expr (senv s) spec.init)
      (List.init (1 lsl n_state) Fun.id)
  in
  let rec bfs seen = function
    | [] -> true
    | s :: rest ->
      if List.mem s seen then bfs seen rest
      else if not (good s) then false
      else bfs (s :: seen) (succs s @ rest)
  in
  bfs [] initial

(* Number of reachable states per the explicit reference (only
   meaningful when the property holds everywhere reachable, since the
   checker stops at the first violation). *)
let reference_reachable_count spec =
  let succs s =
    let out = ref [] in
    for inp = 0 to (1 lsl n_input) - 1 do
      let env =
        Array.init (n_state + n_input) (fun i ->
            if i < n_state then (s lsr i) land 1 = 1
            else (inp lsr (i - n_state)) land 1 = 1)
      in
      if Testutil.eval_expr env spec.constr then begin
        let s' = ref 0 in
        for b = 0 to n_state - 1 do
          if Testutil.eval_expr env spec.nexts.(b) then s' := !s' lor (1 lsl b)
        done;
        if not (List.mem !s' !out) then out := !s' :: !out
      end
    done;
    !out
  in
  let senv s = Array.init n_state (fun i -> (s lsr i) land 1 = 1) in
  let initial =
    List.filter
      (fun s -> Testutil.eval_expr (senv s) spec.init)
      (List.init (1 lsl n_state) Fun.id)
  in
  let rec bfs seen = function
    | [] -> List.length seen
    | s :: rest ->
      if List.mem s seen then bfs seen rest
      else bfs (s :: seen) (succs s @ rest)
  in
  bfs [] initial
