(* Bit-vector layer tests: exhaustive comparison against machine-integer
   arithmetic for small widths, plus unit tests for the structural
   helpers. *)

let width = 4

(* Two vectors of fresh variables and an exhaustive environment sweep. *)
let setup () =
  let man = Bdd.create () in
  let a_levels = List.init width (fun _ -> Bdd.new_var man) in
  let b_levels = List.init width (fun _ -> Bdd.new_var man) in
  let a = Bvec.of_vars man a_levels in
  let b = Bvec.of_vars man b_levels in
  (man, a, b)

let each_env f =
  for va = 0 to (1 lsl width) - 1 do
    for vb = 0 to (1 lsl width) - 1 do
      let env =
        Array.init (2 * width) (fun l ->
            if l < width then (va lsr l) land 1 = 1
            else (vb lsr (l - width)) land 1 = 1)
      in
      f env va vb
    done
  done

let test_add () =
  let man, a, b = setup () in
  let sum = Bvec.add man a b in
  each_env (fun env va vb ->
      Alcotest.(check int) "modular sum"
        ((va + vb) land ((1 lsl width) - 1))
        (Bvec.eval man env sum))

let test_add_ext () =
  let man, a, b = setup () in
  let sum = Bvec.add_ext man a b in
  Alcotest.(check int) "extended width" (width + 1) (Bvec.width sum);
  each_env (fun env va vb ->
      Alcotest.(check int) "full sum" (va + vb) (Bvec.eval man env sum))

let test_sub () =
  let man, a, b = setup () in
  let diff = Bvec.sub man a b in
  each_env (fun env va vb ->
      Alcotest.(check int) "two's complement difference"
        ((va - vb) land ((1 lsl width) - 1))
        (Bvec.eval man env diff))

let test_compare () =
  let man, a, b = setup () in
  let lt = Bvec.ult man a b in
  let le = Bvec.ule man a b in
  let eq = Bvec.eq man a b in
  each_env (fun env va vb ->
      Alcotest.(check bool) "ult" (va < vb) (Bdd.eval man env lt);
      Alcotest.(check bool) "ule" (va <= vb) (Bdd.eval man env le);
      Alcotest.(check bool) "eq" (va = vb) (Bdd.eval man env eq))

let test_eq_bits () =
  let man, a, b = setup () in
  let conjuncts = Bvec.eq_bits man a b in
  Alcotest.(check int) "one conjunct per bit" width (List.length conjuncts);
  Alcotest.(check bool) "conjunction = eq" true
    (Bdd.equal (Bdd.conj man conjuncts) (Bvec.eq man a b))

let test_ule_const () =
  let man, a, _ = setup () in
  let le9 = Bvec.ule_const man a 9 in
  each_env (fun env va _ ->
      Alcotest.(check bool) "ule_const" (va <= 9) (Bdd.eval man env le9))

let test_mux () =
  let man, a, b = setup () in
  let c = Bdd.var man (Bdd.new_var man) in
  let m = Bvec.mux man c a b in
  each_env (fun env va vb ->
      let env_t = Array.append env [| true |] in
      let env_f = Array.append env [| false |] in
      Alcotest.(check int) "mux true" va (Bvec.eval man env_t m);
      Alcotest.(check int) "mux false" vb (Bvec.eval man env_f m))

let test_shift () =
  let man, a, _ = setup () in
  let shr = Bvec.shift_right_const man ~by:2 a in
  Alcotest.(check int) "width after discard" (width - 2) (Bvec.width shr);
  each_env (fun env va _ ->
      Alcotest.(check int) "discard low bits" (va lsr 2)
        (Bvec.eval man env shr))

let test_shift_left_in () =
  let man, a, _ = setup () in
  let low = Bdd.tru man in
  let s = Bvec.shift_left_in man ~low a in
  each_env (fun env va _ ->
      Alcotest.(check int) "shift register step"
        (((va lsl 1) lor 1) land ((1 lsl width) - 1))
        (Bvec.eval man env s))

let test_const_roundtrip () =
  let man = Bdd.create () in
  for n = 0 to 15 do
    let v = Bvec.const man ~width n in
    Alcotest.(check int) "const eval" n (Bvec.eval man [||] v)
  done

let test_zero_extend_is_zero () =
  let man, a, _ = setup () in
  let ext = Bvec.zero_extend man ~width:(width + 3) a in
  Alcotest.(check int) "extended width" (width + 3) (Bvec.width ext);
  let z = Bvec.is_zero man ext in
  each_env (fun env va _ ->
      Alcotest.(check int) "value preserved" va (Bvec.eval man env ext);
      Alcotest.(check bool) "is_zero" (va = 0) (Bdd.eval man env z))

(* Randomised cross-width property: arithmetic over random widths and
   values matches machine integers (the exhaustive tests above cover
   width 4 only). *)
let prop_random_arith (w, x, y) =
  let width = 1 + (abs w mod 10) in
  let mask = (1 lsl width) - 1 in
  let x = abs x land mask and y = abs y land mask in
  let man = Bdd.create () in
  let a = Bvec.const man ~width x in
  let b = Bvec.const man ~width y in
  Bvec.eval man [||] (Bvec.add man a b) = (x + y) land mask
  && Bvec.eval man [||] (Bvec.sub man a b) = (x - y) land mask
  && Bdd.is_true (Bvec.ule man a b) = (x <= y)
  && Bdd.is_true (Bvec.eq man a b) = (x = y)
  && Bvec.eval man [||] (Bvec.zero_extend man ~width:(width + 3) a) = x

let qcheck_arith =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"random width arithmetic"
       QCheck2.Gen.(triple small_int small_int small_int)
       prop_random_arith)

let () =
  Alcotest.run "bvec"
    [
      ( "arith",
        [
          Alcotest.test_case "add" `Quick test_add;
          Alcotest.test_case "add_ext" `Quick test_add_ext;
          Alcotest.test_case "sub" `Quick test_sub;
          Alcotest.test_case "comparisons" `Quick test_compare;
          Alcotest.test_case "eq_bits" `Quick test_eq_bits;
          Alcotest.test_case "ule_const" `Quick test_ule_const;
        ] );
      ("random", [ qcheck_arith ]);
      ( "structure",
        [
          Alcotest.test_case "mux" `Quick test_mux;
          Alcotest.test_case "shift_right_const" `Quick test_shift;
          Alcotest.test_case "shift_left_in" `Quick test_shift_left_in;
          Alcotest.test_case "const roundtrip" `Quick test_const_roundtrip;
          Alcotest.test_case "zero_extend / is_zero" `Quick
            test_zero_extend_is_zero;
        ] );
    ]
