(* Tests for the HDL description layer: a design built through the
   combinators must verify identically to the hand-built equivalent,
   and every elaboration check must fire on bad designs. *)

let limits man =
  Mc.Limits.start ~max_iterations:100 ~max_created_nodes:2_000_000 man

let counter_design good_limit =
  let module D = (val Hdl.design "hdl-counter") in
  let c = D.reg "c" ~width:2 () in
  let tick = D.input "tick" ~width:1 in
  D.(c <== ite tick (c +: const ~width:2 1) c);
  D.model ~good:[ D.(c <=: D.const ~width:2 good_limit) ] ()

let test_counter_proved () =
  let model = counter_design 3 in
  List.iter
    (fun meth ->
      let r = Mc.Runner.run ~limits meth model in
      Alcotest.(check bool)
        (Mc.Runner.name meth ^ " proves HDL counter")
        true (Mc.Report.is_proved r))
    Mc.Runner.all

let test_counter_violated () =
  let model = counter_design 2 in
  let r = Mc.Xici.run ~limits model in
  match r.Mc.Report.status with
  | Mc.Report.Violated tr ->
    Alcotest.(check int) "shortest trace" 4 (List.length tr);
    Alcotest.(check bool) "validated" true
      (Mc.Trace.validate model.Mc.Model.trans ~init:model.Mc.Model.init
         ~good:
           (Ici.Clist.of_list (Mc.Model.man model) (Mc.Model.property model))
         tr)
  | Mc.Report.Proved | Mc.Report.Exceeded _ -> Alcotest.fail "should violate"

(* The typed FIFO re-expressed in the HDL (grouped, not interleaved,
   allocation -- the point here is semantics, not node counts). *)
let fifo_design ~depth ~width ~bound ~bug =
  let module D = (val Hdl.design "hdl-fifo") in
  let inp = D.input "in" ~width in
  D.constrain D.(inp <=: const ~width (min bound ((1 lsl width) - 1)));
  let slots =
    List.init depth (fun i -> D.reg (Printf.sprintf "s%d" i) ~width ())
  in
  List.iteri
    (fun i s ->
      D.(s <== (if i = 0 then inp else List.nth slots (i - 1))))
    slots;
  let bound = if bug then bound / 2 else bound in
  D.model ~good:(List.map (fun s -> D.(s <=: const ~width bound)) slots) ()

let test_fifo_agrees () =
  let model = fifo_design ~depth:3 ~width:4 ~bound:9 ~bug:false in
  List.iter
    (fun meth ->
      let r = Mc.Runner.run ~limits meth model in
      Alcotest.(check bool)
        (Mc.Runner.name meth ^ " proves HDL fifo")
        true (Mc.Report.is_proved r))
    [ Mc.Runner.Forward; Mc.Runner.Ici; Mc.Runner.Xici; Mc.Runner.Explicit ];
  let buggy = fifo_design ~depth:3 ~width:4 ~bound:9 ~bug:true in
  let r = Mc.Xici.run ~limits buggy in
  Alcotest.(check bool) "bug found" false (Mc.Report.is_proved r)

let test_fd_candidates () =
  (* A register that mirrors another is functionally dependent. *)
  let module D = (val Hdl.design "hdl-mirror") in
  let x = D.reg "x" ~width:2 () in
  let shadow = D.reg "shadow" ~width:2 () in
  let inc = D.input "inc" ~width:1 in
  let next = D.(ite inc (x +: const ~width:2 1) x) in
  D.(x <== next);
  D.(shadow <== next);
  let model =
    D.model ~fd_candidates:[ shadow ] ~good:[ D.(x ==: shadow) ] ()
  in
  let r = Mc.Fd.run ~limits model in
  Alcotest.(check bool) "FD proves" true (Mc.Report.is_proved r)

let expect_error name f =
  Alcotest.(check bool) name true
    (try
       ignore (f ());
       false
     with Hdl.Elaboration_error _ -> true)

let test_elaboration_errors () =
  expect_error "missing assignment" (fun () ->
      let module D = (val Hdl.design "bad") in
      let _c = D.reg "c" ~width:2 () in
      D.model ~good:[ D.tt ] ());
  expect_error "double assignment" (fun () ->
      let module D = (val Hdl.design "bad") in
      let c = D.reg "c" ~width:2 () in
      D.(c <== c);
      D.(c <== c));
  expect_error "width mismatch in assignment" (fun () ->
      let module D = (val Hdl.design "bad") in
      let c = D.reg "c" ~width:2 () in
      D.(c <== const ~width:3 0));
  expect_error "width mismatch in operator" (fun () ->
      let module D = (val Hdl.design "bad") in
      D.(const ~width:2 1 +: const ~width:3 1));
  expect_error "assigning a non-register" (fun () ->
      let module D = (val Hdl.design "bad") in
      let c = D.reg "c" ~width:2 () in
      D.(c +: c <== c));
  expect_error "oversized initial value" (fun () ->
      let module D = (val Hdl.design "bad") in
      D.reg "c" ~width:2 ~init:4 ());
  expect_error "duplicate register name" (fun () ->
      let module D = (val Hdl.design "bad") in
      let _ = D.reg "c" ~width:1 () in
      D.reg "c" ~width:1 ());
  expect_error "multi-bit value where boolean expected" (fun () ->
      let module D = (val Hdl.design "bad") in
      let c = D.reg "c" ~width:2 () in
      D.(c <== c);
      D.model ~good:[ c ] ());
  expect_error "unsatisfiable input constraint" (fun () ->
      let module D = (val Hdl.design "bad") in
      let c = D.reg "c" ~width:1 () in
      D.(c <== c);
      D.constrain D.ff;
      D.model ~good:[ D.tt ] ());
  expect_error "use after elaboration" (fun () ->
      let module D = (val Hdl.design "bad") in
      let c = D.reg "c" ~width:1 () in
      D.(c <== c);
      let _ = D.model ~good:[ D.tt ] () in
      D.reg "d" ~width:1 ())

let test_combinators_semantics () =
  (* Spot-check the combinators against integers on all inputs. *)
  let module D = (val Hdl.design "comb") in
  let a = D.input "a" ~width:3 in
  let b = D.input "b" ~width:3 in
  let c = D.reg "c" ~width:1 () in
  D.(c <== c);
  let exprs =
    [
      ("add", D.(a +: b), fun x y -> (x + y) land 7);
      ("sub", D.(a -: b), fun x y -> (x - y) land 7);
      ("and", D.(a &&: b), fun x y -> x land y);
      ("or", D.(a ||: b), fun x y -> x lor y);
      ("xor", D.(a ^: b), fun x y -> x lxor y);
      ("not", D.(!:a), fun x _ -> lnot x land 7);
      ("eq", D.(a ==: b), fun x y -> Bool.to_int (x = y));
      ("lt", D.(a <: b), fun x y -> Bool.to_int (x < y));
      ("le", D.(a <=: b), fun x y -> Bool.to_int (x <= y));
      ("ite", D.(ite (a <: b) a b), min);
      ("shr", D.(zero_extend ~width:3 (shift_right ~by:1 a)),
       fun x _ -> x lsr 1);
    ]
  in
  let man = D.man in
  for x = 0 to 7 do
    for y = 0 to 7 do
      let env = Array.make (Bdd.num_vars man) false in
      (* Inputs were declared first: levels 0-2 for a, 3-5 for b. *)
      for i = 0 to 2 do
        env.(i) <- (x lsr i) land 1 = 1;
        env.(3 + i) <- (y lsr i) land 1 = 1
      done;
      List.iter
        (fun (nm, e, f) ->
          Alcotest.(check int)
            (Printf.sprintf "%s %d %d" nm x y)
            (f x y)
            (Bvec.eval man env (D.to_vec e)))
        exprs
    done
  done

let () =
  Alcotest.run "hdl"
    [
      ( "designs",
        [
          Alcotest.test_case "counter proves (all methods)" `Quick
            test_counter_proved;
          Alcotest.test_case "counter violation + trace" `Quick
            test_counter_violated;
          Alcotest.test_case "fifo agrees with hand-built" `Quick
            test_fifo_agrees;
          Alcotest.test_case "fd candidates" `Quick test_fd_candidates;
        ] );
      ( "elaboration",
        [
          Alcotest.test_case "all error checks fire" `Quick
            test_elaboration_errors;
          Alcotest.test_case "combinator semantics" `Quick
            test_combinators_semantics;
        ] );
    ]
