test/testmachines.ml: Array Format Fsm Fun List Mc QCheck2 String Testutil
