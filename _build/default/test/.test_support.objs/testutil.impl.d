test/testutil.ml: Array Bdd Format List QCheck2
