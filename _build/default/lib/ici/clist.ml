(* Implicitly conjoined lists of BDDs.

   A list [x1; ...; xn] denotes the conjunction x1 /\ ... /\ xn without
   building its (possibly huge) BDD.  The empty list denotes TRUE.
   Operations keep the list free of constant-true conjuncts; a conjunct
   equal to constant false collapses the whole list to [false]. *)

type t = Bdd.t list

let of_list man xs =
  if List.exists Bdd.is_false xs then [ Bdd.fls man ]
  else
    (* drop TRUE conjuncts and duplicates (cheap by canonicity) *)
    let seen = Hashtbl.create 16 in
    List.filter
      (fun x ->
        if Bdd.is_true x || Hashtbl.mem seen (Bdd.tag x) then false
        else begin
          Hashtbl.add seen (Bdd.tag x) ();
          true
        end)
      xs

let to_list xs = xs
let length = List.length

let is_false = function [ x ] -> Bdd.is_false x | _ -> false
let is_true xs = xs = []

(* Total size with sharing and the per-conjunct breakdown, the two node
   counts reported in the paper's tables. *)
let shared_size xs = Bdd.size_list xs
let conjunct_sizes xs = List.map Bdd.size xs

(* Build the explicit conjunction (only for small lists / tests). *)
let force man xs = Bdd.conj man xs

(* Does a concrete state satisfy the implied conjunction?  Linear-time
   per conjunct, no new nodes: used by counterexample extraction. *)
let eval man env xs = List.for_all (Bdd.eval man env) xs

(* f => (/\ xs), decided conjunct by conjunct (Section II.C: the
   violation check decomposes into individual checks). *)
let implied_by man f xs = List.for_all (fun x -> Bdd.implies man f x) xs

(* First conjunct not implied by [f], if any: the witness used to build
   counterexamples. *)
let find_unimplied man f xs =
  List.find_opt (fun x -> not (Bdd.implies man f x)) xs

let band_pointwise man xs ys =
  (* Pairwise AND of two equal-length lists (the original ICI policy's
     way of keeping the list length fixed). *)
  List.map2 (Bdd.band man) xs ys

let pp man fmt xs =
  Format.fprintf fmt "@[<hv>";
  List.iteri
    (fun i x ->
      if i > 0 then Format.fprintf fmt "@ /\\ ";
      Format.fprintf fmt "[%d]%a" (Bdd.size x) (Bdd.pp man) x)
    xs;
  Format.fprintf fmt "@]"
