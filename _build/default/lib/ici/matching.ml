(* Minimum-cost pairwise cover (Theorem 2 of the paper).

   The paper reduces the problem to minimum-weight perfect matching via
   a vertex-copying gadget; since the conjunct lists that occur in
   practice are short, we solve the cover exactly by dynamic programming
   over subsets instead, which is simpler to audit and exact for the
   same problem:

     dp(mask) = least total cost of a family of singletons and pairs
                covering every conjunct in mask (members outside mask
                are allowed in a pair: they are simply covered again).

   Complexity O(2^n * n); capped at [max_exact] conjuncts. *)

type part = Single of int | Pair of int * int

let max_exact = 16

let min_cost_pair_cover ~n ~single_cost ~pair_cost =
  assert (n >= 1 && n <= max_exact);
  let singles = Array.init n single_cost in
  let pairs = Array.make_matrix n n 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let c = pair_cost i j in
      pairs.(i).(j) <- c;
      pairs.(j).(i) <- c
    done
  done;
  let size = 1 lsl n in
  let dp = Array.make size max_int in
  let choice = Array.make size (Single (-1)) in
  dp.(0) <- 0;
  for mask = 1 to size - 1 do
    (* Lowest uncovered conjunct. *)
    let rec lowest i = if mask land (1 lsl i) <> 0 then i else lowest (i + 1) in
    let i = lowest 0 in
    let consider cost part rest =
      if dp.(rest) <> max_int && dp.(rest) + cost < dp.(mask) then begin
        dp.(mask) <- dp.(rest) + cost;
        choice.(mask) <- part
      end
    in
    consider singles.(i) (Single i) (mask lxor (1 lsl i));
    for j = 0 to n - 1 do
      if j <> i then begin
        let rest = mask land lnot ((1 lsl i) lor (1 lsl j)) in
        consider pairs.(i).(j) (Pair (min i j, max i j)) rest
      end
    done
  done;
  let rec rebuild mask acc =
    if mask = 0 then acc
    else begin
      let part = choice.(mask) in
      let rest =
        match part with
        | Single i -> mask lxor (1 lsl i)
        | Pair (i, j) -> mask land lnot ((1 lsl i) lor (1 lsl j))
      in
      rebuild rest (part :: acc)
    end
  in
  rebuild (size - 1) []

let cover_cost ~single_cost ~pair_cost cover =
  List.fold_left
    (fun acc part ->
      acc
      + (match part with Single i -> single_cost i | Pair (i, j) -> pair_cost i j))
    0 cover
