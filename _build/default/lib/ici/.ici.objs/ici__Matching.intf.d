lib/ici/matching.mli:
