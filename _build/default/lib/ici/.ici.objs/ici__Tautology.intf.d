lib/ici/tautology.mli: Bdd Clist
