lib/ici/clist.ml: Bdd Format Hashtbl List
