lib/ici/policy.ml: Array Bdd Clist Hashtbl List Matching
