lib/ici/policy.mli: Bdd Clist
