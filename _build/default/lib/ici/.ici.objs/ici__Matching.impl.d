lib/ici/matching.ml: Array List
