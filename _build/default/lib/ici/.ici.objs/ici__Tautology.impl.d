lib/ici/tautology.ml: Array Bdd Hashtbl List Option
