lib/ici/clist.mli: Bdd Format
