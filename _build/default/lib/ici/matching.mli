(** Exact minimum-cost pairwise cover (Theorem 2 of the paper).

    Cover n conjuncts by singletons and pairs, minimising total cost.
    The paper reduces this to minimum-weight perfect matching; for the
    short lists arising in practice we solve the same problem exactly by
    dynamic programming over subsets (documented substitution in
    DESIGN.md). *)

type part = Single of int | Pair of int * int

val max_exact : int
(** Largest [n] accepted (16). *)

val min_cost_pair_cover :
  n:int -> single_cost:(int -> int) -> pair_cost:(int -> int -> int) -> part list
(** An optimal cover of [{0..n-1}].  [pair_cost i j] may be queried for
    any [i <> j]; pairs may cover an element twice when cheaper. *)

val cover_cost :
  single_cost:(int -> int) -> pair_cost:(int -> int -> int) -> part list -> int
