(** Implicitly conjoined lists of BDDs.

    A list [x1; ...; xn] denotes [x1 /\ ... /\ xn] without building the
    conjunction's BDD.  The empty list denotes TRUE; a list containing
    the constant false denotes FALSE. *)

type t = Bdd.t list

val of_list : Bdd.man -> Bdd.t list -> t
(** Normalise: drop TRUE conjuncts and duplicates; collapse to
    [[false]] if any conjunct is FALSE. *)

val to_list : t -> Bdd.t list
val length : t -> int
val is_false : t -> bool
val is_true : t -> bool

val shared_size : t -> int
(** Total BDD nodes with cross-conjunct sharing (the parenthesised
    node counts of the paper's tables). *)

val conjunct_sizes : t -> int list

val force : Bdd.man -> t -> Bdd.t
(** Build the explicit conjunction (for tests and small lists only). *)

val eval : Bdd.man -> bool array -> t -> bool
(** Truth of the implied conjunction in one concrete state. *)

val implied_by : Bdd.man -> Bdd.t -> t -> bool
(** [implied_by man f xs]: does [f => /\ xs] hold?  Decided conjunct by
    conjunct (the decomposed violation check of Section II.C). *)

val find_unimplied : Bdd.man -> Bdd.t -> t -> Bdd.t option

val band_pointwise : Bdd.man -> t -> t -> t
(** Index-wise AND of two equal-length lists (the original ICI policy). *)

val pp : Bdd.man -> Format.formatter -> t -> unit
