(** The evaluation and simplification policy of Section III.A.

    [improve] transforms an implicitly conjoined list into an equivalent
    list of smaller overall size: cross-simplification with Restrict (or
    Constrain) followed by greedy evaluation of profitable pairwise
    conjunctions (Figure 1 of the paper). *)

type simplifier =
  | Restrict
  | Constrain
  | Multi_restrict
      (** simultaneous simplification by all other conjuncts at once
          (the Section-V future-work routine, via
          {!Bdd.multi_restrict}) *)
  | No_simplify

type evaluation =
  | Greedy  (** Figure 1: best-ratio pair until ratio > threshold *)
  | Optimal_cover  (** Theorem 2: exact min-cost pairwise cover *)
  | No_evaluation

type config = {
  grow_threshold : float;  (** the paper uses 1.5 *)
  simplifier : simplifier;
  evaluation : evaluation;
  pair_step_factor : int option;
      (** the paper's future-work size-bounded AND: give up on a
          pairwise conjunction after [factor * shared-size] recursion
          steps and treat the pair as unprofitable.  [None] builds
          every pair unconditionally (the paper's implementation). *)
}

val default : config
(** grow_threshold 1.5, Restrict, Greedy, pair budget 64x. *)

val simplify_pass : Bdd.man -> config -> Clist.t -> Clist.t
(** Cross-simplification only: each conjunct simplified by currently
    strictly smaller conjuncts, one individually-sound step at a time.
    Preserves the implied conjunction. *)

val greedy_evaluate :
  Bdd.man -> ?pair_step_factor:int -> grow_threshold:float -> Clist.t -> Clist.t
(** Figure 1.  Repeatedly replace the pair [xi, xj] minimising
    [size(xi /\ xj) / shared_size(xi, xj)] by its conjunction while the
    ratio is at most [grow_threshold]. *)

val cover_evaluate : Bdd.man -> Clist.t -> Clist.t
(** Theorem-2 baseline: evaluate the exact minimum-cost pairwise cover
    (identity on lists longer than {!Matching.max_exact}). *)

val improve : Bdd.man -> config -> Clist.t -> Clist.t
(** The full policy: simplify then evaluate.  Preserves the implied
    conjunction. *)
