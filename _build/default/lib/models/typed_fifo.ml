(* The typed FIFO queue of Section IV.A: a [depth]-slot delay line of
   [width]-bit items whose inputs obey a type constraint
   (value <= bound, 0..128 inclusive in the paper), with the bit-slices
   of the slots interleaved (the standard datapath ordering).  The
   property: every slot always obeys the type constraint -- one small
   conjunct per slot whose monolithic conjunction blows up exponentially
   in the depth under the interleaved ordering.

   [bug] widens the input constraint without widening the property,
   planting a real violation for counterexample exercises. *)

type params = { depth : int; width : int; bound : int; bug : bool }

let default = { depth = 5; width = 8; bound = 128; bug = false }

let name p =
  Printf.sprintf "typed-fifo(depth=%d,width=%d%s)" p.depth p.width
    (if p.bug then ",bug" else "")

type handles = {
  slots : Fsm.Space.word array; (* slot 0 is the input end *)
  input : int array; (* input word levels *)
}

let make_full p =
  assert (p.depth >= 1 && p.width >= 1);
  let sp = Fsm.Space.create () in
  (* Inputs first: composed images Z(f(s, input)) branch on the inputs,
     so placing them at the top of the order keeps those intermediates
     small; the state-only sets of the tables are unaffected. *)
  let input = Fsm.Space.input_word ~name:"in" sp ~width:p.width in
  let slots =
    Fsm.Space.interleaved_words ~name:"slot" sp ~count:p.depth ~width:p.width
  in
  let man = Fsm.Space.man sp in
  let in_vec = Fsm.Space.input_vec sp input in
  (* Shift-register update: slot 0 takes the input, slot i the previous
     slot's current value. *)
  let assigns =
    List.concat
      (List.init p.depth (fun i ->
           let source =
             if i = 0 then in_vec else Fsm.Space.cur_vec sp slots.(i - 1)
           in
           List.init p.width (fun b -> (slots.(i).(b), source.(b)))))
  in
  let input_bound = if p.bug then (2 * p.bound) + 1 else p.bound in
  let input_constraint =
    Bvec.ule_const man in_vec (min input_bound ((1 lsl p.width) - 1))
  in
  let trans = Fsm.Trans.make ~input_constraint sp ~assigns in
  let init =
    Bdd.conj man
      (Array.to_list slots
      |> List.map (fun w -> Bvec.is_zero man (Fsm.Space.cur_vec sp w)))
  in
  let good =
    Array.to_list slots
    |> List.map (fun w -> Bvec.ule_const man (Fsm.Space.cur_vec sp w) p.bound)
  in
  (Mc.Model.make ~name:(name p) ~space:sp ~trans ~init ~good (),
   { slots; input })

let make p = fst (make_full p)
