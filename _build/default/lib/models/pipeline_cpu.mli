(** The pipelined processor (Section IV.B, Figure 3): three-stage
    pipeline with register bypass and branch stall, against a
    non-pipelined specification fed through a two-deep instruction
    buffer.  Property: the register files always agree (one conjunct
    per register bit).  [assisted] adds the hand-constructed invariants
    of the paper's footnote experiment. *)

type params = { regs : int; width : int; assisted : bool; bug : bool }

val default : params
(** 2 registers, 1-bit datapath. *)

val name : params -> string

val op_nop : int
val op_br : int
val op_ld : int
val op_st : int
val op_add : int
val op_sub : int
val op_mov : int
val op_sr : int

type layout = { r : int; b : int; iw : int }
(** Instruction layout: register-field width, immediate width, total
    instruction width (opcode\[3\] src\[r\] dst\[r\] imm\[b\], LSB first). *)

val layout : params -> layout

val make : params -> Mc.Model.t
(** [bug] removes the register bypass path (the classic hazard bug:
    [LD r1, #1; ADD r0, r1] then misreads the stale r1). *)

type handles = {
  f : Fsm.Space.word;
  b1 : Fsm.Space.word;
  b2 : Fsm.Space.word;
  e_we : Fsm.Space.bit;
  e_isbr : Fsm.Space.bit;
  e_dst : Fsm.Space.word;
  e_val : Fsm.Space.word;
  rf : Fsm.Space.word array;
  rfs : Fsm.Space.word array;
  instr_in : int array;
}

val make_full : params -> Mc.Model.t * handles
(** [make] plus the variable handles, for reference simulators. *)
