(* Processors sending messages through a network (Section IV.A).

   [procs] processors non-deterministically issue requests into a
   non-message-order-preserving network, modelled as a [procs]-element
   array of messages carrying a valid bit, a req/ack flag and a 4-bit
   return address.  A server non-deterministically pulls any request and
   turns it into an acknowledgment; acknowledgments are delivered to the
   addressed processor in any order.  Each processor counts its
   outstanding messages.  The property: every counter equals the number
   of in-flight messages addressed to its processor -- one conjunct per
   processor.

   The counters are functionally determined by the network contents,
   which is what the FD method exploits (its candidate variables are the
   counter bits).

   [bug] makes the server drop a request instead of acknowledging it
   (counter never decremented), planting a real violation. *)

type params = { procs : int; bug : bool }

let default = { procs = 4; bug = false }

let addr_width = 4 (* the paper assumes n < 16: IDs are 4 bits *)

let rec bits_for n = if n <= 0 then 0 else 1 + bits_for (n / 2)

let name p =
  Printf.sprintf "network(procs=%d%s)" p.procs (if p.bug then ",bug" else "")

type action = Idle | Issue | Serve | Deliver

type handles = {
  counters : Fsm.Space.word array;
  valids : Fsm.Space.bit array;
  reqs : Fsm.Space.bit array;
  addrs : Fsm.Space.word array;
  act : int array;
  sel : int array;
  preq : int array;
}

let make_full p =
  assert (p.procs >= 1 && p.procs < 16);
  let n = p.procs in
  let cwidth = bits_for n in
  let swidth = max 1 (bits_for (n - 1)) in
  let sp = Fsm.Space.create () in
  (* Variable order: inputs at the top (composed images branch on
     them), then the network slots (valid, req/ack flag, address
     grouped per slot), then the counters.  The per-processor property
     conjunct scans the slots accumulating a bounded partial count and
     compares against the counter at the end, which keeps it small. *)
  let act_bits = Fsm.Space.input_word ~name:"act" sp ~width:2 in
  let sel_bits = Fsm.Space.input_word ~name:"sel" sp ~width:swidth in
  let preq_bits = Fsm.Space.input_word ~name:"preq" sp ~width:addr_width in
  let valids = Array.make n { Fsm.Space.cur = -1; next = -1 } in
  let reqs = Array.make n { Fsm.Space.cur = -1; next = -1 } in
  let addrs = Array.make n [||] in
  for s = 0 to n - 1 do
    valids.(s) <- Fsm.Space.state_bit ~name:(Printf.sprintf "val%d" s) sp;
    reqs.(s) <- Fsm.Space.state_bit ~name:(Printf.sprintf "req%d" s) sp;
    addrs.(s) <-
      Fsm.Space.state_word ~name:(Printf.sprintf "addr%d" s) sp
        ~width:addr_width
  done;
  let counters =
    Array.init n (fun i ->
        Fsm.Space.state_word ~name:(Printf.sprintf "cnt%d" i) sp
          ~width:cwidth)
  in
  let man = Fsm.Space.man sp in
  let act = Fsm.Space.input_vec sp act_bits in
  let sel = Fsm.Space.input_vec sp sel_bits in
  let preq = Fsm.Space.input_vec sp preq_bits in
  let is_act a =
    let code =
      match a with Idle -> 0 | Issue -> 1 | Serve -> 2 | Deliver -> 3
    in
    Bvec.eq man act (Bvec.const man ~width:2 code)
  in
  let sel_is s = Bvec.eq man sel (Bvec.const man ~width:swidth s) in
  let preq_is q = Bvec.eq man preq (Bvec.const man ~width:addr_width q) in
  let cur_valid s = Fsm.Space.cur sp valids.(s) in
  let cur_req s = Fsm.Space.cur sp reqs.(s) in
  let cur_addr s = Fsm.Space.cur_vec sp addrs.(s) in
  let issue = is_act Issue and serve = is_act Serve in
  let deliver = is_act Deliver in
  (* Legal inputs per state; Idle keeps the machine total. *)
  let legal_slot =
    if n = 1 lsl swidth then Bdd.tru man
    else Bvec.ult man sel (Bvec.const man ~width:swidth n)
  in
  let issue_ok s =
    Bdd.band man (sel_is s) (Bdd.bnot man (cur_valid s))
  in
  let serve_ok s =
    Bdd.band man (sel_is s) (Bdd.band man (cur_valid s) (cur_req s))
  in
  let deliver_ok s =
    Bdd.conj man
      [ sel_is s; cur_valid s; Bdd.bnot man (cur_req s);
        Bvec.eq man preq (cur_addr s) ]
  in
  let any f = Bdd.disj man (List.init n f) in
  let input_constraint =
    Bdd.conj man
      [
        Bdd.bimp man issue
          (Bdd.conj man
             [ legal_slot; any issue_ok;
               Bvec.ult man preq (Bvec.const man ~width:addr_width n) ]);
        Bdd.bimp man serve (Bdd.band man legal_slot (any serve_ok));
        Bdd.bimp man deliver (Bdd.band man legal_slot (any deliver_ok));
      ]
  in
  (* Per-slot updates. *)
  let slot_assigns s =
    let here = sel_is s in
    let v' =
      Bdd.ite man
        (Bdd.band man issue here)
        (Bdd.tru man)
        (Bdd.ite man (Bdd.band man deliver here) (Bdd.fls man) (cur_valid s))
    in
    let r' =
      Bdd.ite man
        (Bdd.band man issue here)
        (Bdd.tru man)
        (Bdd.ite man (Bdd.band man serve here)
           (if p.bug then
              (* BUG: the server silently drops the request. *)
              cur_req s
            else Bdd.fls man)
           (cur_req s))
    in
    let v' =
      if p.bug then
        (* BUG: dropping = clearing the valid bit on serve. *)
        Bdd.ite man (Bdd.band man serve here) (Bdd.fls man) v'
      else v'
    in
    let a' =
      Bvec.mux man (Bdd.band man issue here) preq (cur_addr s)
    in
    ((valids.(s), v') :: (reqs.(s), r')
    :: List.init addr_width (fun b -> (addrs.(s).(b), a'.(b))))
  in
  (* Per-processor counter updates. *)
  let counter_assigns q =
    let c = Fsm.Space.cur_vec sp counters.(q) in
    let inc = Bdd.band man issue (preq_is q) in
    let dec = Bdd.band man deliver (preq_is q) in
    let plus = Bvec.add man c (Bvec.const man ~width:cwidth 1) in
    let minus = Bvec.sub man c (Bvec.const man ~width:cwidth 1) in
    let c' = Bvec.mux man inc plus (Bvec.mux man dec minus c) in
    List.init cwidth (fun b -> (counters.(q).(b), c'.(b)))
  in
  let assigns =
    List.concat
      (List.init n slot_assigns @ List.init n counter_assigns)
  in
  let trans = Fsm.Trans.make ~input_constraint sp ~assigns in
  let init =
    Bdd.conj man
      (List.init n (fun s ->
           Bdd.conj man
             [ Bdd.bnot man (cur_valid s); Bdd.bnot man (cur_req s);
               Bvec.is_zero man (cur_addr s);
               Bvec.is_zero man (Fsm.Space.cur_vec sp counters.(s)) ]))
  in
  (* good_q: counter q equals the number of in-flight messages addressed
     to q (requests and acknowledgments both count as outstanding). *)
  let good_for q =
    let count =
      List.fold_left
        (fun acc s ->
          let here =
            Bdd.band man (cur_valid s)
              (Bvec.eq man (cur_addr s)
                 (Bvec.const man ~width:addr_width q))
          in
          let one = Bvec.zero_extend man ~width:cwidth [| here |] in
          Bvec.add man acc one)
        (Bvec.zero man ~width:cwidth)
        (List.init n Fun.id)
    in
    Bvec.eq man (Fsm.Space.cur_vec sp counters.(q)) count
  in
  let good = List.init n good_for in
  let fd_candidates =
    List.concat
      (List.init n (fun q ->
           Array.to_list counters.(q)
           |> List.map (fun (b : Fsm.Space.bit) -> b.cur)))
  in
  ( Mc.Model.make ~fd_candidates ~name:(name p) ~space:sp ~trans ~init ~good
      (),
    { counters; valids; reqs; addrs; act = act_bits; sel = sel_bits;
      preq = preq_bits } )

let make p = fst (make_full p)
