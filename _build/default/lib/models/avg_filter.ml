(* The moving-average filter of Section IV.A (Figure 2): a pipelined
   tree of adders compared against a direct combinational specification
   whose result is delayed to match the pipeline depth.

   Structure for window depth k = 2^L over [sample_width]-bit samples:

   - a shared input-sample shift register W_0..W_{k-1} (W_0 newest);
   - implementation: adder-tree layers A_l (l = 1..L), layer l holding
     k/2^l registers of width [sample_width]+l, with
     A_{l,j}' = A_{l-1,2j} + A_{l-1,2j+1} (layer 0 = the window);
     output = A_L >> L (the "L-bit discard");
   - specification: a delay FIFO D_1..D_L of full window sums,
     D_1' = sum of the window, D_l' = D_{l-1}; output = D_L >> L.

   Property: the two outputs agree (one conjunct per output bit).
   Assisting invariants (Section IV.A): for every layer l, the layer sum
   equals the corresponding delay-FIFO entry, sum_j A_{l,j} = D_l --
   exactly the lemmas the paper says users had to supply and the new
   policy derives automatically.

   All datapath words are allocated with bit-slices interleaved.

   [bug] makes the first layer-1 adder double W_0 instead of adding
   W_1, planting a real violation. *)

type params = { depth : int; sample_width : int; assisted : bool; bug : bool }

let default = { depth = 4; sample_width = 8; assisted = false; bug = false }

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2)

let name p =
  Printf.sprintf "avg-filter(depth=%d%s%s)" p.depth
    (if p.assisted then ",assisted" else "")
    (if p.bug then ",bug" else "")

type handles = {
  window : Fsm.Space.word array;
  layers : Fsm.Space.word array array; (* layers.(l-1) = layer l *)
  dfifo : Fsm.Space.word array;
  x : int array;
  lemmas : Bdd.t list;
      (* the per-layer assisting invariants, always computed so callers
         can compare them with automatically derived ones *)
}

let make_full p =
  let k = p.depth and w = p.sample_width in
  let levels = log2 k in
  assert (k = 1 lsl levels && levels >= 1);
  let sum_width = w + levels in
  let sp = Fsm.Space.create ~cache_budget:8_000_000 () in
  (* Input sample at the top of the order, then one interleaved
     allocation covering every datapath word. *)
  let x_bits = Fsm.Space.input_word ~name:"x" sp ~width:w in
  let specs =
    List.init k (fun i -> (Printf.sprintf "W%d" i, w))
    @ List.concat
        (List.init levels (fun l0 ->
             let l = l0 + 1 in
             List.init (k lsr l) (fun j ->
                 (Printf.sprintf "A%d_%d" l j, w + l))))
    @ List.init levels (fun l0 -> (Printf.sprintf "D%d" (l0 + 1), sum_width))
  in
  let words = Fsm.Space.interleaved_words_mixed sp specs in
  let window = Array.sub words 0 k in
  let layer l =
    (* words index of A_{l,0}: k + sum_{m<l} k/2^m words. *)
    let rec offset m acc = if m = l then acc else offset (m + 1) (acc + (k lsr m)) in
    let base = k + offset 1 0 in
    Array.sub words base (k lsr l)
  in
  let dfifo = Array.sub words (Array.length words - levels) levels in
  let man = Fsm.Space.man sp in
  let x = Fsm.Space.input_vec sp x_bits in
  let cur = Fsm.Space.cur_vec sp in
  let word_assigns word value =
    assert (Array.length word = Bvec.width value);
    List.init (Array.length word) (fun b -> (word.(b), Bvec.get value b))
  in
  (* Window shift. *)
  let window_assigns =
    List.concat
      (List.init k (fun i ->
           let src = if i = 0 then x else cur window.(i - 1) in
           word_assigns window.(i) src))
  in
  (* Adder tree. *)
  let tree_assigns =
    List.concat
      (List.init levels (fun l0 ->
           let l = l0 + 1 in
           let prev j =
             if l = 1 then cur window.(j) else cur (layer (l - 1)).(j)
           in
           List.concat
             (List.init (k lsr l) (fun j ->
                  let a = prev (2 * j) in
                  let b =
                    if p.bug && l = 1 && j = 0 then prev 0 (* BUG: doubles W0 *)
                    else prev ((2 * j) + 1)
                  in
                  word_assigns (layer l).(j) (Bvec.add_ext man a b)))))
  in
  (* Specification delay FIFO. *)
  let window_sum =
    Array.fold_left
      (fun acc wd ->
        Bvec.add man acc (Bvec.zero_extend man ~width:sum_width (cur wd)))
      (Bvec.zero man ~width:sum_width)
      window
  in
  let dfifo_assigns =
    List.concat
      (List.init levels (fun l0 ->
           let src = if l0 = 0 then window_sum else cur dfifo.(l0 - 1) in
           word_assigns dfifo.(l0) src))
  in
  let assigns = window_assigns @ tree_assigns @ dfifo_assigns in
  let trans = Fsm.Trans.make sp ~assigns in
  let init =
    Bdd.conj man
      (Array.to_list words |> List.map (fun wd -> Bvec.is_zero man (cur wd)))
  in
  let out_impl =
    Bvec.shift_right_const man ~by:levels (cur (layer levels).(0))
  in
  let out_spec =
    Bvec.shift_right_const man ~by:levels (cur dfifo.(levels - 1))
  in
  (* One output-equality conjunct.  The paper's Table 2 shows ICI's node
     count coinciding with Bkwd's at depth 4 (both 490) and Table 1c
     lists a 45-node conjunct: the property was supplied as a single
     (small, interleaved) equality BDD, which is also what makes the
     automatic policy derive the per-layer lemmas rather than drown in
     per-bit fragments. *)
  let good = [ Bvec.eq man out_impl out_spec ] in
  let lemmas =
    List.init levels (fun l0 ->
        let l = l0 + 1 in
        let layer_sum =
          Array.fold_left
            (fun acc wd ->
              Bvec.add man acc
                (Bvec.zero_extend man ~width:sum_width (cur wd)))
            (Bvec.zero man ~width:sum_width)
            (layer l)
        in
        Bvec.eq man layer_sum (cur dfifo.(l0)))
  in
  let assisting = if p.assisted then lemmas else [] in
  ( Mc.Model.make ~assisting ~name:(name p) ~space:sp ~trans ~init ~good (),
    { window;
      layers = Array.init levels (fun l0 -> layer (l0 + 1));
      dfifo;
      x = x_bits;
      lemmas } )

let make p = fst (make_full p)
