(** The typed FIFO queue example (Section IV.A): a [depth]-slot delay
    line of [width]-bit items with the type constraint value <= [bound]
    on inputs, bit-slices interleaved.  Property: every slot obeys the
    type constraint (one conjunct per slot).  The monolithic conjunction
    blows up exponentially in the depth; the implicit conjunction stays
    at [depth] BDDs of [width]+1 nodes, matching the paper's
    "(depth x 9 nodes)" annotations. *)

type params = { depth : int; width : int; bound : int; bug : bool }

val default : params
(** depth 5, width 8, bound 128, no bug. *)

val name : params -> string

val make : params -> Mc.Model.t
(** [bug] widens the input constraint without widening the property,
    planting a violation two states from the initial state. *)

type handles = {
  slots : Fsm.Space.word array;  (** slot 0 is the input end *)
  input : int array;  (** input word levels *)
}

val make_full : params -> Mc.Model.t * handles
(** [make] plus the variable handles, for reference simulators. *)
