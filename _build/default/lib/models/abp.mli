(** Alternating-bit link protocol (the "link-level protocol" class of
    the paper's introduction): lossy frame and acknowledgment channels
    with alternating sequence bits.  Property: the three classic ABP
    safety invariants (in-flight integrity, delivered-message
    correctness, acknowledgment consistency), one conjunct each. *)

type params = { width : int; bug : bool }

val default : params
(** 2-bit messages, no bug. *)

val name : params -> string

type action = Idle | Send | Drop_frame | Deliver | Drop_ack | Ack

type handles = {
  sender_msg : Fsm.Space.word;
  sender_seq : Fsm.Space.bit;
  frame_valid : Fsm.Space.bit;
  frame_seq : Fsm.Space.bit;
  frame_data : Fsm.Space.word;
  ack_valid : Fsm.Space.bit;
  ack_seq : Fsm.Space.bit;
  recv_expected : Fsm.Space.bit;
  recv_data : Fsm.Space.word;
  act : int array;
  fresh : int array;
}

val make : params -> Mc.Model.t
(** [bug] makes the receiver ignore the sequence bit (duplication /
    corruption on retransmission), violating the delivered-message
    invariant. *)

val make_full : params -> Mc.Model.t * handles
