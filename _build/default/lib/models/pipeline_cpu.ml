(* The pipelined-processor example of Section IV.B (Figure 3): a
   three-stage pipeline (fetch, execute, writeback) with a register
   bypass path and a branch stall, verified against a non-pipelined
   specification executing the same non-deterministic instruction
   stream through a two-deep instruction buffer.

   Instructions: a 3-bit opcode, source and destination register fields
   and an immediate field.  NOP and BR do nothing (BR stalls the
   pipeline); ST is a no-op (memory is abstracted away); LD loads the
   immediate; ADD/SUB accumulate into the destination; MOV copies; SR
   shifts the destination right by one bit.

   Property: the two register files always agree (one conjunct per
   register bit).  [assisted] adds the hand-constructed assisting
   invariants of the paper's footnote experiment (latch equality,
   execute-stage control equality, and the execute-value lemma).

   [bug] removes the register bypass path: a classic pipeline bug that
   yields a real counterexample (LD r1; ADD r0,r1). *)

type params = { regs : int; width : int; assisted : bool; bug : bool }

let default = { regs = 2; width = 1; assisted = false; bug = false }

let name p =
  Printf.sprintf "pipeline-cpu(regs=%d,width=%d%s%s)" p.regs p.width
    (if p.assisted then ",assisted" else "")
    (if p.bug then ",no-bypass" else "")

let op_nop = 0
let op_br = 1
let op_ld = 2
let op_st = 3
let op_add = 4
let op_sub = 5
let op_mov = 6
let op_sr = 7

let rec bits_for n = if n <= 0 then 0 else 1 + bits_for (n / 2)

(* Field offsets within an instruction word, LSB first:
   opcode[3] src[r] dst[r] imm[B]. *)
type layout = { r : int; b : int; iw : int }

let layout p =
  let r = max 1 (bits_for (p.regs - 1)) in
  { r; b = p.width; iw = 3 + r + r + p.width }

let field lay vec = function
  | `Op -> Array.sub vec 0 3
  | `Src -> Array.sub vec 3 lay.r
  | `Dst -> Array.sub vec (3 + lay.r) lay.r
  | `Imm -> Array.sub vec (3 + (2 * lay.r)) lay.b

type handles = {
  f : Fsm.Space.word;
  b1 : Fsm.Space.word;
  b2 : Fsm.Space.word;
  e_we : Fsm.Space.bit;
  e_isbr : Fsm.Space.bit;
  e_dst : Fsm.Space.word;
  e_val : Fsm.Space.word;
  rf : Fsm.Space.word array;
  rfs : Fsm.Space.word array;
  instr_in : int array;
}

let make_full p =
  assert (p.regs >= 2 && p.width >= 1);
  let lay = layout p in
  let sp = Fsm.Space.create () in
  (* Variable order: the instruction input at the top (composed images
     branch on it), then the whole pipelined implementation (F latch,
     execute-stage latch, register file), then the whole specification
     (instruction buffers, its register file).  Grouping each machine's
     variables together is how a module-structured description (the
     paper's Ever input) orders them -- and it is exactly what makes
     the monolithic sets of Table 3 blow up: every cross-machine
     equality spans the distance between the two groups. *)
  let instr_in = Fsm.Space.input_word ~name:"instr" sp ~width:lay.iw in
  let f = Array.make lay.iw { Fsm.Space.cur = -1; next = -1 } in
  for i = 0 to lay.iw - 1 do
    f.(i) <- Fsm.Space.state_bit ~name:(Printf.sprintf "f[%d]" i) sp
  done;
  let e_we = Fsm.Space.state_bit ~name:"e_we" sp in
  let e_isbr = Fsm.Space.state_bit ~name:"e_isbr" sp in
  let e_dst = Fsm.Space.state_word ~name:"e_dst" sp ~width:lay.r in
  let e_val = Fsm.Space.state_word ~name:"e_val" sp ~width:lay.b in
  let rf =
    Array.init p.regs (fun i ->
        Fsm.Space.state_word ~name:(Printf.sprintf "rf%d" i) sp ~width:lay.b)
  in
  let b1 = Array.make lay.iw { Fsm.Space.cur = -1; next = -1 } in
  for i = 0 to lay.iw - 1 do
    b1.(i) <- Fsm.Space.state_bit ~name:(Printf.sprintf "b1[%d]" i) sp
  done;
  let b2 = Array.make lay.iw { Fsm.Space.cur = -1; next = -1 } in
  for i = 0 to lay.iw - 1 do
    b2.(i) <- Fsm.Space.state_bit ~name:(Printf.sprintf "b2[%d]" i) sp
  done;
  let rfs =
    Array.init p.regs (fun i ->
        Fsm.Space.state_word ~name:(Printf.sprintf "rfs%d" i) sp ~width:lay.b)
  in
  let man = Fsm.Space.man sp in
  let cur = Fsm.Space.cur_vec sp in
  let fv = cur f and b1v = cur b1 and b2v = cur b2 in
  let e_wev = Fsm.Space.cur sp e_we in
  let e_isbrv = Fsm.Space.cur sp e_isbr in
  let e_dstv = cur e_dst and e_valv = cur e_val in
  let rfv = Array.map cur rf and rfsv = Array.map cur rfs in
  let input = Fsm.Space.input_vec sp instr_in in
  let is_op opv code = Bvec.eq man opv (Bvec.const man ~width:3 code) in
  let decode_we opv =
    Bdd.disj man
      (List.map (is_op opv) [ op_ld; op_add; op_sub; op_mov; op_sr ])
  in
  let read file idx =
    (* Multiplexed register-file read. *)
    let sel i = Bvec.eq man idx (Bvec.const man ~width:lay.r i) in
    let init = file.(0) in
    List.fold_left
      (fun acc i -> Bvec.mux man (sel i) file.(i) acc)
      init
      (List.init (p.regs - 1) (fun i -> i + 1))
  in
  let exec_val opv imm srcval dstval =
    let zero = Bvec.zero man ~width:lay.b in
    let sr =
      Bvec.zero_extend man ~width:lay.b
        (Bvec.shift_right_const man ~by:1 dstval)
    in
    Bvec.mux man (is_op opv op_ld) imm
      (Bvec.mux man (is_op opv op_add)
         (Bvec.add man dstval srcval)
         (Bvec.mux man (is_op opv op_sub)
            (Bvec.sub man dstval srcval)
            (Bvec.mux man (is_op opv op_mov) srcval
               (Bvec.mux man (is_op opv op_sr) sr zero))))
  in
  (* Fetch: a branch anywhere in the pipe forces NOPs in. *)
  let f_op = field lay fv `Op in
  let stall = Bdd.bor man (is_op f_op op_br) e_isbrv in
  let eff_instr = Bvec.mux man stall (Bvec.zero man ~width:lay.iw) input in
  (* Execute: operands come from the register file or, when the
     preceding instruction writes the needed register, from the bypass
     path ([bug] removes the bypass). *)
  let operand idx =
    let from_rf = read rfv idx in
    if p.bug then from_rf
    else
      Bvec.mux man
        (Bdd.band man e_wev (Bvec.eq man e_dstv idx))
        e_valv from_rf
  in
  let f_src = field lay fv `Src
  and f_dst = field lay fv `Dst
  and f_imm = field lay fv `Imm in
  let srcval = operand f_src and dstval = operand f_dst in
  let new_e_val = exec_val f_op f_imm srcval dstval in
  (* Writeback. *)
  let rf_next i =
    Bvec.mux man
      (Bdd.band man e_wev
         (Bvec.eq man e_dstv (Bvec.const man ~width:lay.r i)))
      e_valv rfv.(i)
  in
  (* Specification: execute B2 atomically against its register file. *)
  let b2_op = field lay b2v `Op
  and b2_src = field lay b2v `Src
  and b2_dst = field lay b2v `Dst
  and b2_imm = field lay b2v `Imm in
  let s_we = decode_we b2_op in
  let s_val = exec_val b2_op b2_imm (read rfsv b2_src) (read rfsv b2_dst) in
  let rfs_next i =
    Bvec.mux man
      (Bdd.band man s_we
         (Bvec.eq man b2_dst (Bvec.const man ~width:lay.r i)))
      s_val rfsv.(i)
  in
  let word_assigns word value =
    List.init (Array.length word) (fun i -> (word.(i), Bvec.get value i))
  in
  let assigns =
    word_assigns f eff_instr
    @ word_assigns b1 eff_instr
    @ word_assigns b2 b1v
    @ [ (e_we, decode_we f_op); (e_isbr, is_op f_op op_br) ]
    @ word_assigns e_dst f_dst
    @ word_assigns e_val new_e_val
    @ List.concat (List.init p.regs (fun i -> word_assigns rf.(i) (rf_next i)))
    @ List.concat
        (List.init p.regs (fun i -> word_assigns rfs.(i) (rfs_next i)))
  in
  let trans = Fsm.Trans.make sp ~assigns in
  let init =
    Bdd.conj man
      (Bvec.is_zero man fv :: Bvec.is_zero man b1v :: Bvec.is_zero man b2v
      :: Bdd.bnot man e_wev :: Bdd.bnot man e_isbrv
      :: Bvec.is_zero man e_dstv :: Bvec.is_zero man e_valv
      :: List.init p.regs (fun i ->
             Bdd.band man
               (Bvec.is_zero man rfv.(i))
               (Bvec.is_zero man rfsv.(i))))
  in
  let good =
    List.concat
      (List.init p.regs (fun i -> Bvec.eq_bits man rfv.(i) rfsv.(i)))
  in
  let assisting =
    if not p.assisted then []
    else begin
      (* Hand-constructed assisting invariants (footnote of Section
         IV.B): the instruction latches agree; the execute-stage control
         fields mirror B2's decode; and the execute-stage value equals
         what the specification is about to compute for B2. *)
      let latch_eq = Bvec.eq man fv b1v in
      let ctrl_eq =
        Bdd.conj man
          [ Bdd.biff man e_wev (decode_we b2_op);
            Bdd.biff man e_isbrv (is_op b2_op op_br);
            Bvec.eq man e_dstv b2_dst ]
      in
      let val_eq = Bdd.bimp man e_wev (Bvec.eq man e_valv s_val) in
      [ latch_eq; ctrl_eq; val_eq ]
    end
  in
  ( Mc.Model.make ~assisting ~name:(name p) ~space:sp ~trans ~init ~good (),
    { f; b1; b2; e_we; e_isbr; e_dst; e_val; rf; rfs; instr_in } )

let make p = fst (make_full p)
