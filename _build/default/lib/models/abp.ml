(* Alternating-bit link protocol: the "link-level protocol" class the
   paper's introduction cites among its motivating industrial examples.

   A sender transmits [width]-bit messages over a lossy frame channel;
   the receiver acknowledges over a lossy ack channel.  Both sides tag
   traffic with an alternating sequence bit.  Everything is
   event-driven by one nondeterministic action per step:

     Send      sender (re)transmits its current message + sequence bit
     DropF     the frame channel loses its frame
     Deliver   the receiver consumes the frame; if the sequence bit is
               the expected one it accepts the data, flips its expected
               bit and queues an acknowledgment
     DropA     the ack channel loses its ack
     Ack       the sender consumes the ack; on a matching sequence bit
               it picks a fresh message (nondeterministic) and flips
               its sequence bit
     Idle      nothing happens

   Safety (the classic ABP invariants, one conjunct each):

     P1  an in-flight frame carrying the sender's current sequence bit
         carries the sender's current message;
     P2  once the receiver's expected bit has moved past the sender's
         bit, the last accepted message is the sender's message (no
         corruption, no duplication);
     P3  an in-flight ack with the sender's sequence bit implies the
         receiver has already flipped past it.

   [bug] makes the receiver accept frames regardless of the sequence
   bit -- the classic retransmission-duplication bug, which corrupts
   [last accepted] and violates P2. *)

type params = { width : int; bug : bool }

let default = { width = 2; bug = false }

let name p =
  Printf.sprintf "abp(width=%d%s)" p.width (if p.bug then ",bug" else "")

type action = Idle | Send | Drop_frame | Deliver | Drop_ack | Ack

type handles = {
  sender_msg : Fsm.Space.word;
  sender_seq : Fsm.Space.bit;
  frame_valid : Fsm.Space.bit;
  frame_seq : Fsm.Space.bit;
  frame_data : Fsm.Space.word;
  ack_valid : Fsm.Space.bit;
  ack_seq : Fsm.Space.bit;
  recv_expected : Fsm.Space.bit;
  recv_data : Fsm.Space.word;
  act : int array;
  fresh : int array;
}

let make_full p =
  assert (p.width >= 1);
  let sp = Fsm.Space.create () in
  (* Inputs first (see the other models), then sender, channels,
     receiver. *)
  let act_bits = Fsm.Space.input_word ~name:"act" sp ~width:3 in
  let fresh_bits = Fsm.Space.input_word ~name:"fresh" sp ~width:p.width in
  let sender_msg = Fsm.Space.state_word ~name:"smsg" sp ~width:p.width in
  let sender_seq = Fsm.Space.state_bit ~name:"sseq" sp in
  let frame_valid = Fsm.Space.state_bit ~name:"fval" sp in
  let frame_seq = Fsm.Space.state_bit ~name:"fseq" sp in
  let frame_data = Fsm.Space.state_word ~name:"fdata" sp ~width:p.width in
  let ack_valid = Fsm.Space.state_bit ~name:"aval" sp in
  let ack_seq = Fsm.Space.state_bit ~name:"aseq" sp in
  let recv_expected = Fsm.Space.state_bit ~name:"rexp" sp in
  let recv_data = Fsm.Space.state_word ~name:"rdata" sp ~width:p.width in
  let man = Fsm.Space.man sp in
  let act = Fsm.Space.input_vec sp act_bits in
  let fresh = Fsm.Space.input_vec sp fresh_bits in
  let is_act a =
    let code =
      match a with
      | Idle -> 0 | Send -> 1 | Drop_frame -> 2 | Deliver -> 3
      | Drop_ack -> 4 | Ack -> 5
    in
    Bvec.eq man act (Bvec.const man ~width:3 code)
  in
  let smsg = Fsm.Space.cur_vec sp sender_msg in
  let sseq = Fsm.Space.cur sp sender_seq in
  let fval = Fsm.Space.cur sp frame_valid in
  let fseq = Fsm.Space.cur sp frame_seq in
  let fdata = Fsm.Space.cur_vec sp frame_data in
  let aval = Fsm.Space.cur sp ack_valid in
  let aseq = Fsm.Space.cur sp ack_seq in
  let rexp = Fsm.Space.cur sp recv_expected in
  let rdata = Fsm.Space.cur_vec sp recv_data in
  let input_constraint =
    Bdd.conj man
      [
        Bvec.ult man act (Bvec.const man ~width:3 6);
        Bdd.bimp man (is_act Drop_frame) fval;
        Bdd.bimp man (is_act Deliver) fval;
        Bdd.bimp man (is_act Drop_ack) aval;
        Bdd.bimp man (is_act Ack) aval;
      ]
  in
  let deliver = is_act Deliver in
  let accept =
    (* The receiver accepts when the sequence bit matches; the bug
       accepts everything. *)
    if p.bug then deliver
    else Bdd.band man deliver (Bdd.biff man fseq rexp)
  in
  let good_ack = Bdd.band man (is_act Ack) (Bdd.biff man aseq sseq) in
  let word_assigns word value =
    List.init (Array.length word) (fun i ->
        (word.(i), Bvec.get value i))
  in
  let assigns =
    word_assigns sender_msg (Bvec.mux man good_ack fresh smsg)
    @ [ (sender_seq, Bdd.bxor man sseq good_ack) ]
    @ [ (frame_valid,
         Bdd.ite man (is_act Send) (Bdd.tru man)
           (Bdd.ite man
              (Bdd.bor man (is_act Drop_frame) deliver)
              (Bdd.fls man) fval));
        (frame_seq, Bdd.ite man (is_act Send) sseq fseq) ]
    @ word_assigns frame_data (Bvec.mux man (is_act Send) smsg fdata)
    @ [ (ack_valid,
         Bdd.ite man accept (Bdd.tru man)
           (Bdd.ite man
              (Bdd.bor man (is_act Drop_ack) (is_act Ack))
              (Bdd.fls man) aval));
        (ack_seq, Bdd.ite man accept fseq aseq);
        (recv_expected, Bdd.bxor man rexp accept) ]
    @ word_assigns recv_data (Bvec.mux man accept fdata rdata)
  in
  let trans = Fsm.Trans.make ~input_constraint sp ~assigns in
  let init =
    Bdd.conj man
      [ Bvec.is_zero man smsg; Bdd.bnot man sseq; Bdd.bnot man fval;
        Bdd.bnot man fseq; Bvec.is_zero man fdata; Bdd.bnot man aval;
        Bdd.bnot man aseq; Bdd.bnot man rexp; Bvec.is_zero man rdata ]
  in
  let good =
    [
      (* P1: in-flight frame with the current sequence bit carries the
         current message. *)
      Bdd.bimp man
        (Bdd.band man fval (Bdd.biff man fseq sseq))
        (Bvec.eq man fdata smsg);
      (* P2: expected bit moved past the sender's => last accepted data
         is the sender's message. *)
      Bdd.bimp man
        (Bdd.bnot man (Bdd.biff man rexp sseq))
        (Bvec.eq man rdata smsg);
      (* P3: an in-flight ack with the sender's bit means the receiver
         already flipped. *)
      Bdd.bimp man
        (Bdd.band man aval (Bdd.biff man aseq sseq))
        (Bdd.bnot man (Bdd.biff man rexp sseq));
    ]
  in
  ( Mc.Model.make ~name:(name p) ~space:sp ~trans ~init ~good (),
    { sender_msg; sender_seq; frame_valid; frame_seq; frame_data; ack_valid;
      ack_seq; recv_expected; recv_data; act = act_bits; fresh = fresh_bits } )

let make p = fst (make_full p)
