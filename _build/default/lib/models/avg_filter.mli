(** The moving-average filter (Section IV.A, Figure 2): a pipelined
    adder tree against a direct specification with a matching delay
    FIFO.  Property: the two outputs agree (one conjunct per output
    bit).  [assisted] adds the per-layer assisting invariants
    ("the sum of each adder-tree layer equals the corresponding delay
    FIFO entry") that the paper's new policy re-derives automatically. *)

type params = { depth : int; sample_width : int; assisted : bool; bug : bool }

val default : params
(** depth 4, 8-bit samples, unassisted, no bug. *)

val name : params -> string

val make : params -> Mc.Model.t
(** [depth] must be a power of two (>= 2).  [bug] makes the first
    layer-1 adder double its first operand, planting a violation. *)

type handles = {
  window : Fsm.Space.word array;
  layers : Fsm.Space.word array array;  (** [layers.(l-1)] is layer l *)
  dfifo : Fsm.Space.word array;
  x : int array;
  lemmas : Bdd.t list;
      (** the per-layer assisting invariants, always computed so callers
          can compare them with automatically derived ones *)
}

val make_full : params -> Mc.Model.t * handles
(** [make] plus the variable handles, for reference simulators. *)
