lib/models/avg_filter.mli: Bdd Fsm Mc
