lib/models/pipeline_cpu.mli: Fsm Mc
