lib/models/typed_fifo.ml: Array Bdd Bvec Fsm List Mc Printf
