lib/models/network.mli: Fsm Mc
