lib/models/avg_filter.ml: Array Bdd Bvec Fsm List Mc Printf
