lib/models/network.ml: Array Bdd Bvec Fsm Fun List Mc Printf
