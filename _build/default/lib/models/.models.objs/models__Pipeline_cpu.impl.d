lib/models/pipeline_cpu.ml: Array Bdd Bvec Fsm List Mc Printf
