lib/models/abp.mli: Fsm Mc
