lib/models/abp.ml: Array Bdd Bvec Fsm List Mc Printf
