lib/models/typed_fifo.mli: Fsm Mc
