(** Processors communicating through a non-order-preserving network
    (Section IV.A).  Property: each processor's outstanding-message
    counter equals the number of in-flight messages addressed to it
    (one conjunct per processor).  The counters are functionally
    determined by the network contents; the model exposes the counter
    bits as FD candidates. *)

type params = { procs : int; bug : bool }

val default : params
(** 4 processors, no bug. *)

val addr_width : int
(** Return addresses are 4 bits (the paper assumes fewer than 16
    processors). *)

val name : params -> string

val make : params -> Mc.Model.t
(** [bug] makes the server drop requests instead of acknowledging them,
    leaving the counter permanently out of sync. *)

(**/**)

type action = Idle | Issue | Serve | Deliver
(** Exposed for the test suite's concrete reference simulator. *)

type handles = {
  counters : Fsm.Space.word array;
  valids : Fsm.Space.bit array;
  reqs : Fsm.Space.bit array;
  addrs : Fsm.Space.word array;
  act : int array;
  sel : int array;
  preq : int array;
}

val make_full : params -> Mc.Model.t * handles
(** [make] plus the variable handles, for reference simulators. *)
