(** Bit-vectors of BDDs: the word-level datapath layer used to describe
    the paper's examples (FIFOs, adder trees, register files).

    A vector is little-endian: index 0 is the least significant bit.
    All binary operations require equal widths. *)

type t = Bdd.t array

val width : t -> int
val bits : t -> Bdd.t list
val of_bits : Bdd.t list -> t
val get : t -> int -> Bdd.t

val const : Bdd.man -> width:int -> int -> t
(** Raises [Invalid_argument] when the value does not fit in [width]
    bits. *)

val of_vars : Bdd.man -> int list -> t
(** Vector of projection functions for the given levels (LSB first). *)

val zero : Bdd.man -> width:int -> t
val zero_extend : Bdd.man -> width:int -> t -> t

val eq : Bdd.man -> t -> t -> Bdd.t

val eq_bits : Bdd.man -> t -> t -> Bdd.t list
(** Bitwise equality as a list of per-bit conjuncts — the natural
    implicit conjunction for "these two words agree". *)

val neq : Bdd.man -> t -> t -> Bdd.t
val is_zero : Bdd.man -> t -> Bdd.t

val add : Bdd.man -> t -> t -> t
(** Modular sum (carry out dropped). *)

val add_ext : Bdd.man -> t -> t -> t
(** Full sum: result is one bit wider than the operands. *)

val sub : Bdd.man -> t -> t -> t
(** Two's-complement difference, same width. *)

val mux : Bdd.man -> Bdd.t -> t -> t -> t
(** [mux man c a b] is [a] when [c] holds, else [b]. *)

val shift_right_const : Bdd.man -> by:int -> t -> t
(** Drop the [by] least significant bits (the paper's "3-bit discard"
    when averaging 8 samples). *)

val shift_left_in : Bdd.man -> low:Bdd.t -> t -> t
(** One-step shift register update: insert a new LSB, drop the MSB. *)

val ult : Bdd.man -> t -> t -> Bdd.t
(** Unsigned less-than. *)

val ule : Bdd.man -> t -> t -> Bdd.t
val ule_const : Bdd.man -> t -> int -> Bdd.t

val eval : Bdd.man -> bool array -> t -> int
(** Evaluate the vector under an assignment, as an unsigned integer. *)
