(* Bit-vector arithmetic over BDDs; see bvec.mli. *)

type t = Bdd.t array

let width = Array.length
let bits = Array.to_list
let of_bits = Array.of_list
let get v i = v.(i)

let const man ~width n =
  if width < 0 || n < 0 || (width < Sys.int_size - 1 && n lsr width <> 0)
  then
    invalid_arg
      (Printf.sprintf "Bvec.const: %d does not fit in %d bits" n width);
  Array.init width (fun i -> Bdd.of_bool man ((n lsr i) land 1 = 1))

let of_vars man levels = Array.of_list (List.map (Bdd.var man) levels)

let zero man ~width = const man ~width 0

let zero_extend man ~width v =
  assert (width >= Array.length v);
  Array.init width (fun i ->
      if i < Array.length v then v.(i) else Bdd.fls man)

let eq man a b =
  assert (width a = width b);
  let acc = ref (Bdd.tru man) in
  for i = 0 to width a - 1 do
    acc := Bdd.band man !acc (Bdd.biff man a.(i) b.(i))
  done;
  !acc

let eq_bits man a b =
  assert (width a = width b);
  List.init (width a) (fun i -> Bdd.biff man a.(i) b.(i))

let neq man a b = Bdd.bnot man (eq man a b)

let is_zero man a =
  Array.fold_left (fun acc bit -> Bdd.band man acc (Bdd.bnot man bit))
    (Bdd.tru man) a

(* Ripple-carry sum; [carry_in] defaults to false.  Result has the width
   of the operands; [add_ext] keeps the carry as an extra top bit. *)
let add_gen man ?(carry_in = None) ~keep_carry a b =
  assert (width a = width b);
  let n = width a in
  let carry =
    ref (match carry_in with None -> Bdd.fls man | Some c -> c)
  in
  let out =
    Array.init n (fun i ->
        let s = Bdd.bxor man (Bdd.bxor man a.(i) b.(i)) !carry in
        let c =
          Bdd.bor man
            (Bdd.band man a.(i) b.(i))
            (Bdd.band man !carry (Bdd.bxor man a.(i) b.(i)))
        in
        carry := c;
        s)
  in
  if keep_carry then Array.append out [| !carry |] else out

let add man a b = add_gen man ~keep_carry:false a b

let add_ext man a b = add_gen man ~keep_carry:true a b

let sub man a b =
  (* a - b = a + ~b + 1 in two's complement, same width. *)
  let nb = Array.map (Bdd.bnot man) b in
  add_gen man ~carry_in:(Some (Bdd.tru man)) ~keep_carry:false a nb

let mux man c a b =
  assert (width a = width b);
  Array.init (width a) (fun i -> Bdd.ite man c a.(i) b.(i))

let shift_right_const _man ~by v =
  assert (by >= 0 && by <= Array.length v);
  Array.sub v by (Array.length v - by)

let shift_left_in _man ~low v =
  (* Shift towards the MSB by one, inserting [low] as the new LSB and
     dropping the old MSB: the update of a shift register stage. *)
  Array.init (Array.length v) (fun i -> if i = 0 then low else v.(i - 1))

(* Unsigned comparison a < b. *)
let ult man a b =
  assert (width a = width b);
  let r = ref (Bdd.fls man) in
  for i = 0 to width a - 1 do
    (* scanning LSB to MSB: higher bits dominate. *)
    r :=
      Bdd.ite man
        (Bdd.bxor man a.(i) b.(i))
        b.(i) (* bits differ: a<b iff b's bit is 1 *)
        !r
  done;
  !r

let ule man a b = Bdd.bnot man (ult man b a)

let ule_const man v n = ule man v (const man ~width:(width v) n)

let eval man env v =
  let r = ref 0 in
  for i = width v - 1 downto 0 do
    r := (!r lsl 1) lor (if Bdd.eval man env v.(i) then 1 else 0)
  done;
  !r
