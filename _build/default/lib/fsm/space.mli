(** State spaces for symbolic finite-state machines.

    Every state bit owns two adjacent BDD levels (current at L, next at
    L+1), giving the standard interleaved current/next ordering; the
    next->current renaming is therefore order-preserving and cheap.
    Declaration order fixes the variable order, so models control
    interleaving (e.g. datapath bit-slice interleaving) by declaring
    bits in the desired order. *)

type bit = { cur : int; next : int }
(** A state bit: its current-state and next-state BDD levels. *)

type word = bit array
(** A machine word of state bits, LSB first. *)

type t

val create : ?cache_budget:int -> unit -> t
(** [cache_budget] is forwarded to {!Bdd.create}. *)

val man : t -> Bdd.man

val state_bit : ?name:string -> t -> bit
val input_bit : ?name:string -> t -> int

val state_word : ?name:string -> t -> width:int -> word
(** A word whose bits occupy consecutive levels. *)

val interleaved_words : ?name:string -> t -> count:int -> width:int -> word array
(** [count] words of [width] bits allocated bit-slice-major (bit 0 of
    every word, then bit 1, ...), the ordering heuristic the paper uses
    for datapaths. *)

val interleaved_words_mixed : t -> (string * int) list -> word array
(** Bit-slice-major allocation for words of differing widths (narrow
    words are skipped once exhausted); for datapaths such as adder
    trees where related words of different widths must interleave. *)

val input_word : ?name:string -> t -> width:int -> int array

val cur : t -> bit -> Bdd.t
val next : t -> bit -> Bdd.t
val cur_vec : t -> word -> Bvec.t
val next_vec : t -> word -> Bvec.t
val input_vec : t -> int array -> Bvec.t

val state_bits : t -> bit list
val current_levels : t -> int list
val next_levels : t -> int list
val input_levels : t -> int list
val num_state_bits : t -> int

val next_to_cur_perm : t -> int array
val cur_to_next_perm : t -> int array
