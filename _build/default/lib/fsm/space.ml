(* State spaces: variable bookkeeping for symbolic machines.

   Every state bit owns two adjacent BDD levels -- current state at level
   L, next state at L+1 -- so the standard interleaved ordering holds and
   the next->current renaming is order-preserving.  Allocation order is
   the variable order; models control interleaving (e.g. bit-slice
   interleaving for datapaths) by the order in which they declare bits. *)

type bit = { cur : int; next : int }

type word = bit array

type t = {
  man : Bdd.man;
  mutable state_bits : bit list; (* reverse declaration order *)
  mutable input_levels : int list; (* reverse declaration order *)
}

let create ?cache_budget () =
  { man = Bdd.create ?cache_budget (); state_bits = []; input_levels = [] }

let man t = t.man

let state_bit ?(name = "s") t =
  let cur = Bdd.new_var ~name t.man in
  let next = Bdd.new_var ~name:(name ^ "'") t.man in
  let b = { cur; next } in
  t.state_bits <- b :: t.state_bits;
  b

let input_bit ?(name = "i") t =
  let lvl = Bdd.new_var ~name t.man in
  t.input_levels <- lvl :: t.input_levels;
  lvl

(* A state word, LSB first, with its bits allocated consecutively. *)
let state_word ?(name = "w") t ~width =
  let arr = Array.make width { cur = -1; next = -1 } in
  for i = 0 to width - 1 do
    arr.(i) <- state_bit ~name:(Printf.sprintf "%s[%d]" name i) t
  done;
  arr

(* [count] state words of [width] bits with their bit-slices interleaved:
   bit 0 of every word first, then bit 1, etc.  This is the standard
   datapath ordering heuristic the paper uses for the FIFO example. *)
let interleaved_words ?(name = "w") t ~count ~width =
  let words =
    Array.init count (fun _ -> Array.make width { cur = -1; next = -1 })
  in
  for i = 0 to width - 1 do
    for j = 0 to count - 1 do
      words.(j).(i) <- state_bit ~name:(Printf.sprintf "%s%d[%d]" name j i) t
    done
  done;
  words

(* Bit-slice-major allocation for words of differing widths: all bit-0
   slices first, then bit 1, etc.; words narrower than the current bit
   position are skipped.  Used by the datapath-heavy models (adder
   trees) where related words must interleave to keep sums small. *)
let interleaved_words_mixed t specs =
  let words =
    Array.of_list
      (List.map (fun (_, w) -> Array.make w { cur = -1; next = -1 }) specs)
  in
  let names = Array.of_list (List.map fst specs) in
  let max_width = List.fold_left (fun acc (_, w) -> max acc w) 0 specs in
  for i = 0 to max_width - 1 do
    Array.iteri
      (fun j word ->
        if i < Array.length word then
          word.(i) <-
            state_bit ~name:(Printf.sprintf "%s[%d]" names.(j) i) t)
      words
  done;
  words

let input_word ?(name = "in") t ~width =
  let levels = Array.make width (-1) in
  for i = 0 to width - 1 do
    levels.(i) <- input_bit ~name:(Printf.sprintf "%s[%d]" name i) t
  done;
  levels

(* Vectors of projection functions. *)
let cur t b = Bdd.var (man t) b.cur
let next t b = Bdd.var (man t) b.next
let cur_vec t (w : word) = Array.map (fun b -> cur t b) w
let next_vec t (w : word) = Array.map (fun b -> next t b) w
let input_vec t levels = Array.map (Bdd.var (man t)) levels

let state_bits t = List.rev t.state_bits
let current_levels t = List.rev_map (fun b -> b.cur) t.state_bits |> List.rev
let next_levels t = List.rev_map (fun b -> b.next) t.state_bits |> List.rev
let input_levels t = List.rev t.input_levels

let num_state_bits t = List.length t.state_bits

(* Renaming permutations; identity outside the mapped levels. *)
let next_to_cur_perm t =
  let n = Bdd.num_vars t.man in
  let perm = Array.init n (fun i -> i) in
  List.iter (fun b -> perm.(b.next) <- b.cur) t.state_bits;
  perm

let cur_to_next_perm t =
  let n = Bdd.num_vars t.man in
  let perm = Array.init n (fun i -> i) in
  List.iter (fun b -> perm.(b.cur) <- b.next) t.state_bits;
  perm
