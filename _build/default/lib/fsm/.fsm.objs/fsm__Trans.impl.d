lib/fsm/trans.ml: Array Bdd Hashtbl List Space
