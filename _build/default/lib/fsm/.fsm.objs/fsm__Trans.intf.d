lib/fsm/trans.mli: Bdd Space
