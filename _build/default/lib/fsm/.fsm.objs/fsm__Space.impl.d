lib/fsm/space.ml: Array Bdd List Printf
