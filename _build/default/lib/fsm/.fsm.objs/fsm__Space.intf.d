lib/fsm/space.mli: Bdd Bvec
