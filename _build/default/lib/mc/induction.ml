(* Direct inductiveness checking for implicit conjunctions.

   An implicitly conjoined invariant list I is inductive when
   init => I and I => BackImage(delta, I); by Theorem 1 the second
   check decomposes per conjunct.  This is what "assisting invariants"
   are: a user-supplied (or XICI-derived) inductive strengthening of
   the property.  The checker reports which conjuncts fail and, for
   each failure, a concrete counterexample-to-induction: a state
   satisfying all the invariants with a successor violating the failing
   conjunct. *)

type failure = {
  conjunct : Bdd.t; (* the conjunct that is not preserved *)
  state : bool array; (* satisfies every invariant *)
  successor : bool array; (* violates [conjunct] *)
}

type result =
  | Inductive
  | Not_implied_by_init of Bdd.t list
  | Not_preserved of failure list

(* Pick a counterexample-to-induction for conjunct [c]: a state in
   (/\ invs) /\ PreImage(not c). *)
let cti man trans invs c =
  let bad_pre = Fsm.Trans.pre_image trans (Bdd.bnot man c) in
  let candidates =
    List.fold_left
      (fun acc inv -> if Bdd.is_false acc then acc else Bdd.band man acc inv)
      bad_pre invs
  in
  if Bdd.is_false candidates then None
  else begin
    let state = Trace.pick trans candidates in
    let succs = Fsm.Trans.successors_of_state trans state in
    let escape = Bdd.band man succs (Bdd.bnot man c) in
    let successor = Trace.pick trans escape in
    Some { conjunct = c; state; successor }
  end

let check ?(init = None) model invs =
  let man = Model.man model in
  let trans = model.Model.trans in
  let invs = Ici.Clist.of_list man invs in
  let init = match init with Some i -> i | None -> model.Model.init in
  let unimplied =
    List.filter (fun c -> not (Bdd.implies man init c)) invs
  in
  if unimplied <> [] then Not_implied_by_init unimplied
  else begin
    let failures = List.filter_map (cti man trans invs) invs in
    if failures = [] then Inductive else Not_preserved failures
  end

(* Does the (assumed inductive) invariant list establish the model's
   property?  The final step of an assisting-invariants proof. *)
let establishes model invs =
  let man = Model.man model in
  Ici.Tautology.implies man invs (Model.property model)
