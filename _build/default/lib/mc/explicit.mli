(** Explicit-state verification ("Expl"): Murphi-style breadth-first
    search over concrete states in a hash table -- the brute-force
    baseline the paper's introduction says has generally out-performed
    BDD approaches on industrial examples [13].  Runs on the same
    machines via [Fsm.Trans.step]; suitable when the reachable state
    count and the input width are small.  The report's iteration count
    is the BFS depth. *)

val run : ?limits:(Bdd.man -> Limits.t) -> Model.t -> Report.t

val run_full : ?limits:(Bdd.man -> Limits.t) -> Model.t -> Report.t * int
(** Also returns the number of distinct reachable states visited. *)
