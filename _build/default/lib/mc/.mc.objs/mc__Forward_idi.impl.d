lib/mc/forward_idi.ml: Array Bdd Fsm Ici Limits List Log Model Report Trace
