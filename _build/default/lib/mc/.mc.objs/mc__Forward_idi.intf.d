lib/mc/forward_idi.mli: Bdd Ici Limits Model Report
