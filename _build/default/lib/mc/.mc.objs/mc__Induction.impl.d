lib/mc/induction.ml: Bdd Fsm Ici List Model Trace
