lib/mc/runner.mli: Bdd Ici Limits Model Report Xici
