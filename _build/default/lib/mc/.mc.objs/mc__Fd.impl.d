lib/mc/fd.ml: Array Bdd Fsm Ici Limits List Log Model Report Trace
