lib/mc/induction.mli: Bdd Ici Model
