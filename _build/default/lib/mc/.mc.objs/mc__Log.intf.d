lib/mc/log.mli: Logs
