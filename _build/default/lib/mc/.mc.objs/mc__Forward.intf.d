lib/mc/forward.mli: Bdd Limits Model Report
