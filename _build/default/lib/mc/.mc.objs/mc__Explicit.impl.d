lib/mc/explicit.ml: Array Bdd Bytes Char Fsm Hashtbl Ici Limits List Log Model Queue Report Seq
