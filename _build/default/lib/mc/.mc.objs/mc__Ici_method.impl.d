lib/mc/ici_method.ml: Bdd Fsm Ici Limits List Log Model Report Trace
