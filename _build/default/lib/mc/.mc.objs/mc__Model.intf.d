lib/mc/model.mli: Bdd Fsm
