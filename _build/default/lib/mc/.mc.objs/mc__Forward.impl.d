lib/mc/forward.ml: Bdd Fsm Ici Limits List Log Model Report Trace
