lib/mc/xici.ml: Bdd Fsm Ici Limits List Log Model Report Trace
