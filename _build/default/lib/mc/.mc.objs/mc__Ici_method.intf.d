lib/mc/ici_method.mli: Bdd Ici Limits Model Report
