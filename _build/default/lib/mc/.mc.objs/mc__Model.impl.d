lib/mc/model.ml: Bdd Fsm
