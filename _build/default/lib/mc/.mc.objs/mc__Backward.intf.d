lib/mc/backward.mli: Bdd Fsm Limits Model Report
