lib/mc/log.ml: Logs
