lib/mc/report.mli: Bdd Format
