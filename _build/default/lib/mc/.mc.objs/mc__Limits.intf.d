lib/mc/limits.mli: Bdd
