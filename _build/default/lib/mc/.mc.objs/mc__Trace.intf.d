lib/mc/trace.mli: Bdd Fsm Ici Report
