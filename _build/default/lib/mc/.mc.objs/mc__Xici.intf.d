lib/mc/xici.mli: Bdd Ici Limits Model Report
