lib/mc/runner.ml: Backward Explicit Fd Forward Forward_idi Ici_method String Xici
