lib/mc/fd.mli: Bdd Limits Model Report
