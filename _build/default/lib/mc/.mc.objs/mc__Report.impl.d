lib/mc/report.ml: Bdd Format List Printf String
