lib/mc/backward.ml: Bdd Fsm Limits List Log Model Report Trace
