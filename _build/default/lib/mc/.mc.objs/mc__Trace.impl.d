lib/mc/trace.ml: Array Bdd Fsm Ici List
