lib/mc/explicit.mli: Bdd Limits Model Report
