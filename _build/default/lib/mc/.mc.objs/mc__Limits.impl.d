lib/mc/limits.ml: Bdd Fun Printf Unix
