(* Resource budgets, used to reproduce the paper's "Exceeded 60MB" /
   "Exceeded 40 minutes" rows without actually burning the machine. *)

exception Exceeded of string

type t = {
  max_created_nodes : int option;
  max_live_nodes : int option;
  max_seconds : float option;
  max_iterations : int option;
  baseline_nodes : int;
  started_at : float;
}

let start ?max_created_nodes ?max_live_nodes ?max_seconds ?max_iterations man
    =
  {
    max_created_nodes;
    max_live_nodes;
    max_seconds;
    max_iterations;
    baseline_nodes = Bdd.created_nodes man;
    started_at = Unix.gettimeofday ();
  }

let unlimited man = start man

let check t man =
  (match t.max_created_nodes with
  | Some n when Bdd.created_nodes man - t.baseline_nodes > n ->
    raise (Exceeded (Printf.sprintf "exceeded %d BDD nodes" n))
  | Some _ | None -> ());
  (* Live nodes are the analog of the paper's resident-memory limit;
     counting them scans the unique table, so this only fires from the
     (sampled) progress hook and the per-iteration checks. *)
  (match t.max_live_nodes with
  | Some n when Bdd.live_nodes man > n ->
    raise (Exceeded (Printf.sprintf "exceeded %d live BDD nodes" n))
  | Some _ | None -> ());
  match t.max_seconds with
  | Some s when Unix.gettimeofday () -. t.started_at > s ->
    raise (Exceeded (Printf.sprintf "exceeded %.0f seconds" s))
  | Some _ | None -> ()

let check_iteration t man ~iteration =
  check t man;
  match t.max_iterations with
  | Some n when iteration > n ->
    raise (Exceeded (Printf.sprintf "no convergence after %d iterations" n))
  | Some _ | None -> ()

let elapsed t = Unix.gettimeofday () -. t.started_at

(* Install the manager progress hook for the duration of [f], so node
   and time budgets interrupt even a single blown-up BDD operation. *)
let with_guard t man f =
  Bdd.set_progress_hook man (Some (fun man -> check t man));
  Fun.protect ~finally:(fun () -> Bdd.set_progress_hook man None) f
