(** Direct inductiveness checking for implicitly conjoined invariants.

    An invariant list I is inductive when [init => I] and
    [I => BackImage(delta, I)] (decomposed per conjunct by Theorem 1).
    Assisting invariants -- user-supplied or XICI-derived -- are exactly
    inductive strengthenings of the property; this module lets
    applications check candidates directly and obtain concrete
    counterexamples-to-induction for the conjuncts that fail. *)

type failure = {
  conjunct : Bdd.t;  (** the conjunct that is not preserved *)
  state : bool array;  (** satisfies every invariant *)
  successor : bool array;  (** a successor violating [conjunct] *)
}

type result =
  | Inductive
  | Not_implied_by_init of Bdd.t list  (** conjuncts violated initially *)
  | Not_preserved of failure list

val check : ?init:Bdd.t option -> Model.t -> Bdd.t list -> result
(** Check the list for inductiveness on the model's machine ([init]
    overrides the model's start states). *)

val establishes : Model.t -> Ici.Clist.t -> bool
(** Does the invariant list imply the model's property?  Decided with
    the exact implicit-implication test. *)
