(** Forward traversal exploiting user-specified functional dependencies
    ("FD", Hu & Dill DAC'93 [16]): the reachable set is kept as a
    reduced BDD over independent variables plus dependency functions
    v <-> f_v, which join the image computation's quantification
    schedule.  Candidates come from [Model.fd_candidates]. *)

val run : ?limits:(Bdd.man -> Limits.t) -> Model.t -> Report.t
