(** The original implicitly-conjoined-invariants method ("ICI",
    CAV'93): shape-preserving list iteration with Restrict
    cross-simplification and the fast POINTWISE termination test, which
    may fail to detect convergence (such runs end by iteration limit).
    Requires the property as a user-supplied implicit conjunction. *)

val run :
  ?limits:(Bdd.man -> Limits.t) ->
  ?cfg:Ici.Policy.config ->
  Model.t ->
  Report.t
