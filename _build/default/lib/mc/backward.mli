(** Conventional backward traversal ("Bkwd"): the monolithic
    G_{i+1} = G_0 /\ BackImage(delta, G_i) iteration whose BDD blowups
    motivate the paper. *)

val run :
  ?limits:(Bdd.man -> Limits.t) ->
  ?image_via:Fsm.Trans.image_via ->
  Model.t ->
  Report.t
