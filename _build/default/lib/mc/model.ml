(* A verification problem: machine + start states + property.

   The property ("good states" G of Section II) is an implicit
   conjunction of BDDs; monolithic methods conjoin it, list-based
   methods keep it implicit.  [assisting] holds user-supplied assisting
   invariants (extra lemma conjuncts, Section IV.A); [fd_candidates]
   names the current-state levels the functional-dependency method may
   try to eliminate (the method of [16] relies on user guidance). *)

type t = {
  name : string;
  space : Fsm.Space.t;
  trans : Fsm.Trans.t;
  init : Bdd.t;
  good : Bdd.t list;
  assisting : Bdd.t list;
  fd_candidates : int list;
}

let man m = Fsm.Space.man m.space

let make ?(assisting = []) ?(fd_candidates = []) ~name ~space ~trans ~init
    ~good () =
  { name; space; trans; init; good; assisting; fd_candidates }

(* The full property list actually verified: the property plus any
   assisting invariants (which are themselves properties to prove). *)
let property m = m.good @ m.assisting
