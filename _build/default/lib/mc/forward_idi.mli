(** Forward traversal over implicitly disjoined reachable sets ("IDI"):
    the De Morgan dual of the paper's method, using the same policy and
    exact tautology machinery on complemented lists.  An extension
    beyond the paper (which only notes the duality); compared in the
    benchmark ablations. *)

val run :
  ?limits:(Bdd.man -> Limits.t) ->
  ?cfg:Ici.Policy.config ->
  ?tautology_stats:Ici.Tautology.stats ->
  Model.t ->
  Report.t
