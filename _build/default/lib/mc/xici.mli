(** The paper's extended method ("XICI"): backward traversal over
    implicit conjunctions with the automatic evaluation-and-
    simplification policy (Figure 1) and the exact termination test of
    Section III.B. *)

type termination = [ `Exact_equal | `Exact_implication | `Pointwise ]

val run :
  ?limits:(Bdd.man -> Limits.t) ->
  ?cfg:Ici.Policy.config ->
  ?termination:termination ->
  ?var_choice:Ici.Tautology.var_choice ->
  ?tautology_stats:Ici.Tautology.stats ->
  Model.t ->
  Report.t

val run_full :
  ?limits:(Bdd.man -> Limits.t) ->
  ?cfg:Ici.Policy.config ->
  ?termination:termination ->
  ?var_choice:Ici.Tautology.var_choice ->
  ?tautology_stats:Ici.Tautology.stats ->
  Model.t ->
  Report.t * Ici.Clist.t option
(** Like {!run}, additionally returning the converged implicit
    conjunction -- the automatically derived invariants -- when the
    property was proved by reaching a fixpoint. *)
