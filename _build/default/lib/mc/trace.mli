(** Counterexample extraction and validation. *)

val state_cube : Bdd.man -> int list -> bool array -> Bdd.t
(** Cube fixing the given levels to their values in the assignment. *)

val pick : Fsm.Trans.t -> Bdd.t -> bool array
(** A state from a set over current-state levels, padded to a full
    assignment. *)

val forward :
  Fsm.Trans.t -> rings:Bdd.t list -> bad:bool array -> Report.trace
(** Walk back through forward-traversal onion rings [R_0; ...; R_k]
    from a violating state of [R_k]; returns a path from an initial
    state to [bad]. *)

val backward :
  Fsm.Trans.t -> gs:Ici.Clist.t list -> start:bool array -> Report.trace
(** Walk forward through backward-traversal iterates [G_0; ...; G_i]
    (as implicit conjunctions, [G_0] the property) from a start state
    outside [G_i]; returns a path ending in a state violating [G_0]. *)

val validate :
  Fsm.Trans.t -> init:Bdd.t -> good:Ici.Clist.t -> Report.trace -> bool
(** A certified-counterexample check: starts in [init], every step is a
    transition, ends outside [good]. *)
