(** Conventional forward traversal ("Fwd" in the tables):
    R_{i+1} = R_i \/ Image(delta, R_i), frontier-based, with decomposed
    violation checks and onion-ring counterexamples. *)

val run : ?limits:(Bdd.man -> Limits.t) -> Model.t -> Report.t
