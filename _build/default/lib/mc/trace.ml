(* Counterexample extraction.

   Forward traversal keeps its onion rings R_0 subset R_1 subset ... and
   walks backwards from a violating state; backward traversal keeps the
   G_i and walks forwards, at each step picking a successor outside
   G_{i-1} (one must exist: s in G_0 \ G_i means some successor escapes
   G_{i-1}).  Either walk touches only single-state cubes, so it is
   cheap even when the sets were implicit conjunctions. *)

let state_cube man levels env =
  Bdd.conj man
    (List.map (fun l -> if env.(l) then Bdd.var man l else Bdd.nvar man l)
       levels)

(* Pick a state from a set over current-state levels, padded to a full
   assignment so downstream [Bdd.eval] calls never index out of range. *)
let pick trans set =
  let man = Fsm.Trans.man trans in
  let levels = Fsm.Space.current_levels (Fsm.Trans.space trans) in
  let env = Bdd.pick_minterm man ~vars:levels set in
  let full = Array.make (max 1 (Bdd.num_vars man)) false in
  Array.blit env 0 full 0 (min (Array.length env) (Array.length full));
  full

(* Forward: [rings] are R_0 ... R_k (increasing); [bad] is a state of
   R_k violating the property.  Returns a path init .. bad. *)
let forward trans ~rings ~bad =
  let man = Fsm.Trans.man trans in
  let levels = Fsm.Space.current_levels (Fsm.Trans.space trans) in
  let rings = Array.of_list rings in
  (* Find the first ring containing bad. *)
  let rec first_ring i =
    if Bdd.eval man bad rings.(i) then i else first_ring (i + 1)
  in
  let rec walk i state acc =
    if i = 0 then state :: acc
    else begin
      let cube = state_cube man levels state in
      let preds = Bdd.band man (Fsm.Trans.pre_image trans cube) rings.(i - 1) in
      let p = pick trans preds in
      walk (i - 1) p (state :: acc)
    end
  in
  walk (first_ring 0) bad []

(* Backward: [gs] are G_0 ... G_i as implicit conjunctions (G_0 is the
   property); [start] is a start state outside G_i.  Returns a path from
   [start] to a state violating G_0. *)
let backward trans ~gs ~start =
  let man = Fsm.Trans.man trans in
  let gs = Array.of_list gs in
  let top = Array.length gs - 1 in
  let rec walk k state acc =
    if not (Ici.Clist.eval man state gs.(0)) then List.rev (state :: acc)
    else begin
      (* state is in G_0 but outside G_k (k >= 1): a successor escapes
         G_{k-1}. *)
      assert (k >= 1);
      let succs = Fsm.Trans.successors_of_state trans state in
      let escape =
        match Ici.Clist.find_unimplied man succs gs.(k - 1) with
        | Some c -> Bdd.band man succs (Bdd.bnot man c)
        | None ->
          invalid_arg "Trace.backward: state does not actually escape"
      in
      let t = pick trans escape in
      walk (k - 1) t (state :: acc)
    end
  in
  walk top start []

(* Check that a trace is a real counterexample: starts in init, every
   step is a transition, ends outside the property.  Used by the test
   suite and callable by applications that want certified traces. *)
let validate trans ~init ~good trace =
  let man = Fsm.Trans.man trans in
  let rec steps = function
    | [] | [ _ ] -> true
    | s :: (t :: _ as rest) ->
      let succs = Fsm.Trans.successors_of_state trans s in
      Bdd.eval man t succs && steps rest
  in
  match trace with
  | [] -> false
  | first :: _ ->
    let last = List.nth trace (List.length trace - 1) in
    Bdd.eval man first init
    && steps trace
    && not (Ici.Clist.eval man last good)
