(** A verification problem: machine, start states and property.

    The property is an implicit conjunction of BDDs over current-state
    levels; monolithic methods conjoin it, list-based methods keep it
    implicit.  The verification question is the paper's Section II one:
    is every reachable state good? *)

type t = {
  name : string;
  space : Fsm.Space.t;
  trans : Fsm.Trans.t;
  init : Bdd.t;
  good : Bdd.t list;  (** property as an implicit conjunction *)
  assisting : Bdd.t list;
      (** user-supplied assisting invariants (extra lemmas, themselves
          verified); Section IV.A *)
  fd_candidates : int list;
      (** current-state levels the FD method may eliminate *)
}

val make :
  ?assisting:Bdd.t list ->
  ?fd_candidates:int list ->
  name:string ->
  space:Fsm.Space.t ->
  trans:Fsm.Trans.t ->
  init:Bdd.t ->
  good:Bdd.t list ->
  unit ->
  t

val man : t -> Bdd.man

val property : t -> Bdd.t list
(** [good @ assisting]: everything the run must prove. *)
