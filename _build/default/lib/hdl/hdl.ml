(* A small hardware/protocol description layer over the FSM substrate.

   The paper's experiments were written for the Ever verifier, which
   "supports higher-level constructs using BDDs" [18]; this module plays
   that role for this library.  A design is built imperatively through a
   first-class module carrying its own manager, so combinators need no
   manager argument and read like RTL:

     module D = (val Hdl.design "counter")
     let c    = D.reg "c" ~width:2 ()
     let tick = D.input "tick" ~width:1
     let ()   = D.(c <== ite tick (c +: D.const ~width:2 1) c)
     let model = D.model ~good:[ D.(c <=: D.const ~width:2 3) ] ()

   Elaboration checks that every register is assigned exactly once,
   widths agree, initial values fit, and the machine stays total under
   the declared input constraints. *)

type word = {
  vec : Bvec.t;
  handle : Fsm.Space.word option; (* Some w when this is a register *)
}

module type DESIGN = sig
  val name : string
  val space : Fsm.Space.t
  val man : Bdd.man

  (** {1 Declarations} *)

  val input : string -> width:int -> word
  val reg : string -> width:int -> ?init:int -> unit -> word
  val ( <== ) : word -> word -> unit
  val constrain : word -> unit

  (** {1 Combinators} *)

  val const : width:int -> int -> word
  val tt : word
  val ff : word
  val ( +: ) : word -> word -> word
  val ( -: ) : word -> word -> word
  val ( ==: ) : word -> word -> word
  val ( <>: ) : word -> word -> word
  val ( <: ) : word -> word -> word
  val ( <=: ) : word -> word -> word
  val ( &&: ) : word -> word -> word
  val ( ||: ) : word -> word -> word
  val ( ^: ) : word -> word -> word
  val ( !: ) : word -> word
  val ( -->: ) : word -> word -> word
  val ite : word -> word -> word -> word
  val bit : word -> int -> word
  val zero_extend : width:int -> word -> word
  val shift_right : by:int -> word -> word
  val concat_low : word -> word -> word
  val is_zero : word -> word

  (** {1 Escape hatches} *)

  val of_bdd : Bdd.t -> word
  val to_bdd : word -> Bdd.t
  val to_vec : word -> Bvec.t

  (** {1 Elaboration} *)

  val model :
    ?assisting:word list -> ?fd_candidates:word list -> good:word list ->
    unit -> Mc.Model.t
end

exception Elaboration_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Elaboration_error s)) fmt

let design design_name : (module DESIGN) =
  (module struct
    let name = design_name
    let space = Fsm.Space.create ()
    let man = Fsm.Space.man space

    type reg_info = {
      rname : string;
      rword : Fsm.Space.word;
      rinit : int;
      mutable rnext : Bvec.t option;
    }

    let regs : reg_info list ref = ref []
    let constraints : Bdd.t list ref = ref []
    let elaborated = ref false

    let check_open () =
      if !elaborated then fail "design %S: already elaborated" design_name

    let plain vec = { vec; handle = None }

    let input iname ~width =
      check_open ();
      if width < 1 then fail "input %S: width must be positive" iname;
      let levels = Fsm.Space.input_word ~name:iname space ~width in
      plain (Fsm.Space.input_vec space levels)

    let reg rname ~width ?(init = 0) () =
      check_open ();
      if width < 1 then fail "register %S: width must be positive" rname;
      if init < 0 || (width < Sys.int_size - 1 && init lsr width <> 0) then
        fail "register %S: initial value %d does not fit in %d bits" rname
          init width;
      if List.exists (fun r -> r.rname = rname) !regs then
        fail "register %S: declared twice" rname;
      let rword = Fsm.Space.state_word ~name:rname space ~width in
      regs := { rname; rword; rinit = init; rnext = None } :: !regs;
      { vec = Fsm.Space.cur_vec space rword; handle = Some rword }

    let reg_of w =
      match w.handle with
      | Some h -> List.find (fun r -> r.rword == h) !regs
      | None -> fail "<==: left-hand side is not a register"

    let ( <== ) lhs rhs =
      check_open ();
      let r = reg_of lhs in
      if Bvec.width rhs.vec <> Array.length r.rword then
        fail "register %S: assigned %d bits, declared %d" r.rname
          (Bvec.width rhs.vec) (Array.length r.rword);
      (match r.rnext with
      | Some _ -> fail "register %S: assigned twice" r.rname
      | None -> ());
      r.rnext <- Some rhs.vec

    let as_bool w =
      if Bvec.width w.vec <> 1 then
        fail "expected a 1-bit value, got %d bits" (Bvec.width w.vec);
      Bvec.get w.vec 0

    let constrain w =
      check_open ();
      constraints := as_bool w :: !constraints

    let const ~width n = plain (Bvec.const man ~width n)
    let tt = plain [| Bdd.tru man |]
    let ff = plain [| Bdd.fls man |]

    let same_width a b op =
      if Bvec.width a.vec <> Bvec.width b.vec then
        fail "%s: width mismatch (%d vs %d)" op (Bvec.width a.vec)
          (Bvec.width b.vec)

    let ( +: ) a b = same_width a b "+:"; plain (Bvec.add man a.vec b.vec)
    let ( -: ) a b = same_width a b "-:"; plain (Bvec.sub man a.vec b.vec)
    let ( ==: ) a b = same_width a b "==:"; plain [| Bvec.eq man a.vec b.vec |]
    let ( <>: ) a b = same_width a b "<>:"; plain [| Bvec.neq man a.vec b.vec |]
    let ( <: ) a b = same_width a b "<:"; plain [| Bvec.ult man a.vec b.vec |]
    let ( <=: ) a b = same_width a b "<=:"; plain [| Bvec.ule man a.vec b.vec |]

    let bitwise op name a b =
      same_width a b name;
      plain (Array.map2 (op man) a.vec b.vec)

    let ( &&: ) a b = bitwise Bdd.band "&&:" a b
    let ( ||: ) a b = bitwise Bdd.bor "||:" a b
    let ( ^: ) a b = bitwise Bdd.bxor "^:" a b
    let ( !: ) a = plain (Array.map (Bdd.bnot man) a.vec)

    let ( -->: ) a b = plain [| Bdd.bimp man (as_bool a) (as_bool b) |]

    let ite c a b =
      same_width a b "ite";
      plain (Bvec.mux man (as_bool c) a.vec b.vec)

    let bit w i =
      if i < 0 || i >= Bvec.width w.vec then
        fail "bit %d out of range (width %d)" i (Bvec.width w.vec);
      plain [| Bvec.get w.vec i |]

    let zero_extend ~width w = plain (Bvec.zero_extend man ~width w.vec)
    let shift_right ~by w = plain (Bvec.shift_right_const man ~by w.vec)
    let concat_low lo hi = plain (Array.append lo.vec hi.vec)
    let is_zero w = plain [| Bvec.is_zero man w.vec |]

    let of_bdd b = plain [| b |]
    let to_bdd w = as_bool w
    let to_vec w = w.vec

    let model ?(assisting = []) ?(fd_candidates = []) ~good () =
      check_open ();
      elaborated := true;
      let regs = List.rev !regs in
      let assigns =
        List.concat_map
          (fun r ->
            match r.rnext with
            | None -> fail "register %S: never assigned" r.rname
            | Some next ->
              List.init (Array.length r.rword) (fun i ->
                  (r.rword.(i), Bvec.get next i)))
          regs
      in
      let input_constraint = Bdd.conj man !constraints in
      let trans = Fsm.Trans.make ~input_constraint space ~assigns in
      if not (Fsm.Trans.is_total trans) then
        fail "design %S: input constraints leave some state with no legal \
              input (machine not total)"
          design_name;
      let init =
        Bdd.conj man
          (List.map
             (fun r ->
               Bvec.eq man
                 (Fsm.Space.cur_vec space r.rword)
                 (Bvec.const man ~width:(Array.length r.rword) r.rinit))
             regs)
      in
      let fd_candidates =
        List.concat_map
          (fun w ->
            match w.handle with
            | Some h ->
              Array.to_list h |> List.map (fun (b : Fsm.Space.bit) -> b.cur)
            | None -> fail "fd_candidates: not a register")
          fd_candidates
      in
      Mc.Model.make ~assisting:(List.map as_bool assisting) ~fd_candidates
        ~name:design_name ~space ~trans ~init
        ~good:(List.map as_bool good) ()
  end)
