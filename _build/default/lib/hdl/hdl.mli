(** A small hardware/protocol description layer over the FSM substrate,
    playing the role of the Ever verifier's higher-level constructs
    (paper reference [18]).

    A design is a first-class module carrying its own BDD manager, so
    combinators need no manager argument:

    {[
      module D = (val Hdl.design "counter")
      let c    = D.reg "c" ~width:2 ()
      let tick = D.input "tick" ~width:1
      let ()   = D.(c <== ite tick (c +: const ~width:2 1) c)
      let model = D.model ~good:[ D.(c <=: const ~width:2 3) ] ()
    ]}

    Elaboration ([model]) checks that every register is assigned exactly
    once, widths agree, initial values fit, and the input constraints
    keep the machine total; violations raise {!Elaboration_error}. *)

type word
(** A word-valued expression (a 1-bit word doubles as a boolean). *)

exception Elaboration_error of string

module type DESIGN = sig
  val name : string
  val space : Fsm.Space.t
  val man : Bdd.man

  (** {1 Declarations} *)

  val input : string -> width:int -> word
  (** A fresh nondeterministic input word. *)

  val reg : string -> width:int -> ?init:int -> unit -> word
  (** Declare a register (initial value 0 by default) and return its
      current-state value. *)

  val ( <== ) : word -> word -> unit
  (** Assign a register's next-state function (exactly once). *)

  val constrain : word -> unit
  (** Conjoin a 1-bit legality condition on the inputs. *)

  (** {1 Combinators} *)

  (** Arithmetic ([+:] modular sum), comparisons ([==:], [<:] unsigned,
      1-bit results), bitwise logic ([&&:], [||:], [^:], [!:]), 1-bit
      implication ([-->:]), multiplexing and slicing.  [concat_low]
      appends with the low bits first. *)

  val const : width:int -> int -> word
  val tt : word
  val ff : word
  val ( +: ) : word -> word -> word
  val ( -: ) : word -> word -> word
  val ( ==: ) : word -> word -> word
  val ( <>: ) : word -> word -> word
  val ( <: ) : word -> word -> word
  val ( <=: ) : word -> word -> word
  val ( &&: ) : word -> word -> word
  val ( ||: ) : word -> word -> word
  val ( ^: ) : word -> word -> word
  val ( !: ) : word -> word
  val ( -->: ) : word -> word -> word
  val ite : word -> word -> word -> word
  val bit : word -> int -> word
  val zero_extend : width:int -> word -> word
  val shift_right : by:int -> word -> word
  val concat_low : word -> word -> word
  val is_zero : word -> word

  (** {1 Escape hatches to the lower layers} *)

  val of_bdd : Bdd.t -> word
  val to_bdd : word -> Bdd.t
  val to_vec : word -> Bvec.t

  (** {1 Elaboration} *)

  val model :
    ?assisting:word list ->
    ?fd_candidates:word list ->
    good:word list ->
    unit ->
    Mc.Model.t
  (** Elaborate to a verification problem.  [good] and [assisting] are
      1-bit conjuncts; [fd_candidates] must be registers.  Can be
      called once. *)
end

val design : string -> (module DESIGN)
(** A fresh design builder. *)
