(* Enumeration of satisfying assignments.

   [cubes] yields the satisfying paths of the BDD: partial assignments
   in which unmentioned variables are free.  [minterms] expands them
   over a given variable list into total assignments.  Both are lazy
   (Seq.t), so callers can stop early; enumerating all minterms of a
   large function is intentionally the caller's decision. *)

open Repr

type literal = int * bool (* level, phase *)

let cubes f : literal list Seq.t =
  let rec walk prefix e () =
    if is_true e then Seq.Cons (List.rev prefix, Seq.empty)
    else if is_false e then Seq.Nil
    else begin
      let v = level e in
      let e0, e1 = cofactors e v in
      Seq.append
        (walk ((v, false) :: prefix) e0)
        (walk ((v, true) :: prefix) e1)
        ()
    end
  in
  walk [] f

let minterms ~vars f : bool array Seq.t =
  let vars = List.sort_uniq compare vars in
  let size = 1 + List.fold_left max (-1) vars in
  let free cube = List.filter (fun v -> not (List.mem_assoc v cube)) vars in
  let expand cube =
    (* All completions of a cube over the free variables.  The shared
       mutable environment is safe because consumption is sequential
       and every branch (re)sets its own variable each time its first
       element is forced, before any deeper closure runs; leaves copy. *)
    let rec go env = function
      | [] -> Seq.return (Array.copy env)
      | v :: rest ->
        Seq.append
          (fun () ->
            env.(v) <- false;
            go env rest ())
          (fun () ->
            env.(v) <- true;
            go env rest ())
    in
    let env = Array.make (max size 1) false in
    List.iter (fun (v, b) -> if v < size then env.(v) <- b) cube;
    go env (free cube)
  in
  Seq.concat_map expand (cubes f)

let count_cubes f = Seq.fold_left (fun n _ -> n + 1) 0 (cubes f)
