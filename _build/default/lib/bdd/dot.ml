(* Graphviz export, mainly for debugging small examples and for the
   documentation.  Complemented edges are drawn dotted. *)

open Repr

let to_channel man oc fs =
  let pr fmt = Printf.fprintf oc fmt in
  pr "digraph bdd {\n  rankdir = TB;\n";
  pr "  t [shape=box,label=\"1\"];\n";
  let seen = Hashtbl.create 64 in
  let rec visit n =
    if not (Hashtbl.mem seen n.id) && not (is_terminal_node n) then begin
      Hashtbl.add seen n.id ();
      pr "  n%d [label=\"%s\"];\n" n.id (Man.var_name man n.level);
      let target m = if is_terminal_node m then "t" else Printf.sprintf "n%d" m.id in
      pr "  n%d -> %s [style=%s];\n" n.id (target n.low)
        (if n.low_neg then "dotted" else "dashed");
      pr "  n%d -> %s;\n" n.id (target n.high);
      visit n.low;
      visit n.high
    end
  in
  List.iteri
    (fun i f ->
      pr "  root%d [shape=plaintext,label=\"f%d\"];\n" i i;
      let t = if is_terminal_node f.node then "t" else Printf.sprintf "n%d" f.node.id in
      pr "  root%d -> %s [style=%s];\n" i t
        (if f.neg then "dotted" else "solid");
      visit f.node)
    fs;
  pr "}\n"

let to_file man path fs =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      to_channel man oc fs)
