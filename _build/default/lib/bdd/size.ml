(* Size accounting, support and model counting.

   [size_list] measures a whole implicit conjunction at once, counting
   shared nodes a single time -- this is the BDDSize(Xi, Xj) of the
   paper's evaluation heuristic (Figure 1), where node sharing between
   conjuncts must be taken into account. *)

open Repr

(* Number of distinct nodes reachable from the edges, terminal included
   (matching the convention of the paper's node counts). *)
let size_list fs =
  let seen = Hashtbl.create 64 in
  let rec visit n =
    if not (Hashtbl.mem seen n.id) then begin
      Hashtbl.add seen n.id ();
      if not (is_terminal_node n) then begin
        visit n.low;
        visit n.high
      end
    end
  in
  List.iter (fun f -> visit f.node) fs;
  Hashtbl.length seen

let size f = size_list [ f ]

let support_list fs =
  let seen = Hashtbl.create 64 in
  let levels = Hashtbl.create 16 in
  let rec visit n =
    if not (Hashtbl.mem seen n.id) then begin
      Hashtbl.add seen n.id ();
      if not (is_terminal_node n) then begin
        Hashtbl.replace levels n.level ();
        visit n.low;
        visit n.high
      end
    end
  in
  List.iter (fun f -> visit f.node) fs;
  List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) levels [])

let support f = support_list [ f ]

(* Number of satisfying assignments over [nvars] variables (levels
   0..nvars-1 are assumed to cover the support).  Computed in floats:
   the models verified here stay far below 2^53 distinguishable
   assignments per node. *)
let sat_count ~nvars f =
  let memo = Hashtbl.create 64 in
  (* count n = models of the REGULAR function of node n over the levels
     strictly below n.level, normalised per remaining variable. *)
  let rec fraction e =
    (* fraction of assignments to vars >= level e satisfying e, seen as
       a function of variables level(e)..nvars-1 --- computed as a pure
       probability with independent fair bits, which is exact. *)
    if is_true e then 1.0
    else if is_false e then 0.0
    else begin
      let key = tag e in
      match Hashtbl.find_opt memo key with
      | Some p -> p
      | None ->
        let v = level e in
        let e0, e1 = cofactors e v in
        let p = 0.5 *. (fraction e0 +. fraction e1) in
        Hashtbl.replace memo key p;
        p
    end
  in
  fraction f *. (2.0 ** float_of_int nvars)

(* Evaluate under a total assignment (indexed by level). *)
let eval env f =
  let rec go e =
    if is_const e then not e.neg
    else begin
      let v = level e in
      let e0, e1 = cofactors e v in
      if env.(v) then go e1 else go e0
    end
  in
  go f

(* A satisfying assignment for the variables in [vars]; variables not
   constrained by the path are set to false.  Raises [Not_found] on the
   constant false. *)
let pick_minterm ~vars f =
  if is_false f then raise Not_found;
  let n = 1 + List.fold_left max (-1) vars in
  let env = Array.make (max n 1) false in
  let rec walk e =
    if is_const e then ()
    else begin
      let v = level e in
      let e0, e1 = cofactors e v in
      if not (is_false e1) then begin
        if v < Array.length env then env.(v) <- true;
        walk e1
      end
      else walk e0
    end
  in
  walk f;
  env
