(* Internal representation of BDD nodes and edges.

   The package follows the classic Brace-Rudell-Bryant design: reduced
   ordered BDDs with hash-consed nodes and complement ("negative") edges.
   The complement bit lives on edges, never on nodes; to keep the
   representation canonical the THEN (high) edge of every node is regular
   (not complemented).  Negation is therefore a constant-time bit flip,
   which the verification algorithms built on top rely on. *)

type node = {
  mutable id : int;
  (* Unique within a manager; the terminal has id 0.  Mutable only so the
     unique table can assign the id at interning time. *)
  level : int;
  (* Variable level; smaller levels are nearer the root.  The terminal
     node has level [terminal_level]. *)
  low : node;
  low_neg : bool;
  (* ELSE child as a (node, complement) pair, flattened into the record
     to halve allocation. *)
  high : node;
  (* THEN child; canonical form forbids a complement bit here. *)
}

type t = { node : node; neg : bool }
(* An edge: a reference to a node plus a complement bit.  All public BDD
   values are edges. *)

let terminal_level = max_int

(* The unique terminal node, representing TRUE when reached by a regular
   edge and FALSE by a complemented one.  Shared by all managers: it
   carries no manager-specific state and making it global lets constants
   be compared with == across the package. *)
let rec terminal_node =
  { id = 0; level = terminal_level; low = terminal_node; low_neg = false;
    high = terminal_node }

let tru = { node = terminal_node; neg = false }
let fls = { node = terminal_node; neg = true }

let is_terminal_node n = n == terminal_node
let is_const e = e.node == terminal_node
let is_true e = e.node == terminal_node && not e.neg
let is_false e = e.node == terminal_node && e.neg

let equal a b = a.node == b.node && a.neg = b.neg

let neg e = { e with neg = not e.neg }

let of_bool b = if b then tru else fls

(* Integer tag identifying an edge; used as a memo-table key. *)
let tag e = (e.node.id * 2) + Bool.to_int e.neg

let level e = e.node.level

let low_edge n = { node = n.low; neg = n.low_neg }
let high_edge n = { node = n.high; neg = false }

(* Cofactors of an edge [e] with respect to the variable at level [v].
   If the root of [e] is above [v] the edge does not depend on that
   variable and both cofactors are [e] itself. *)
let cofactors e v =
  if e.node.level = v then
    let lo = { node = e.node.low; neg = e.node.low_neg <> e.neg } in
    let hi = { node = e.node.high; neg = e.neg } in
    (lo, hi)
  else (e, e)

let hash_node n =
  let h = (n.level * 0x9e3779b1) lxor (n.low.id * 2 + Bool.to_int n.low_neg) in
  (h * 0x85ebca6b) lxor n.high.id

let node_structurally_equal a b =
  a.level = b.level && a.low == b.low && a.low_neg = b.low_neg
  && a.high == b.high
