lib/bdd/simplify.ml: Hashtbl List Man Ops Repr
