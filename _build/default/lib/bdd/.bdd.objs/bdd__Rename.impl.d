lib/bdd/rename.ml: Array Hashtbl Man Repr
