lib/bdd/quant.ml: Hashtbl Man Ops Repr
