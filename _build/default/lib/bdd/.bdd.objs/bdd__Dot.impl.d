lib/bdd/dot.ml: Fun Hashtbl List Man Printf Repr
