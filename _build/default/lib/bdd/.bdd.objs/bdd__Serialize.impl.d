lib/bdd/serialize.ml: Bool Fun Hashtbl List Man Printf Repr String
