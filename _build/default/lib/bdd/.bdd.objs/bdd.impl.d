lib/bdd/bdd.ml: Array Cubes Dot Format List Man Ops Quant Rename Reorder Repr Serialize Simplify Size
