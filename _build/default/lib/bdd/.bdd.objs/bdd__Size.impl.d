lib/bdd/size.ml: Array Hashtbl List Repr
