lib/bdd/reorder.ml: Array Hashtbl List Man Ops Repr Size
