lib/bdd/cubes.ml: Array List Repr Seq
