lib/bdd/repr.ml: Bool
