lib/bdd/ops.ml: Array Bool Hashtbl List Man Repr
