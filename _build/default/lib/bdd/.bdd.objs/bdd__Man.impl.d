lib/bdd/man.ml: Array Fun Gc Hashtbl List Printf Repr Weak
