(* Directory-based cache coherence: the class of high-level protocol the
   paper's introduction names as the motivation for implicitly conjoined
   invariants ("industrial directory-based cache-coherence ...
   protocols").

     dune exec examples/cache_coherence.exe [-- --bug]

   A small MSI protocol: [n] caches, each Invalid / Shared / Modified,
   and a directory tracking a sharer bit per cache plus a dirty bit.
   Nondeterministic requests (read miss, write miss, upgrade, eviction)
   update caches and directory atomically.  The coherence invariants
   form a natural implicit conjunction:

   - at most one cache is Modified              (one conjunct per pair);
   - a Modified cache excludes any Sharer       (one conjunct per pair);
   - the directory sharer bits are accurate     (one conjunct per cache);
   - the dirty bit tracks the Modified caches   (one conjunct per cache).

   With --bug, a write miss forgets to invalidate the other sharers --
   the classic coherence bug -- and verification produces a validated
   counterexample. *)

let n = 4

(* Cache state encoding, 2 bits: 00 Invalid, 01 Shared, 10 Modified. *)
let st_invalid = 0
let st_shared = 1
let st_modified = 2

type action = Idle | Read_miss | Write_miss | Upgrade | Evict

(* Idle (code 0) only ever appears as an encoding; keep the compiler
   happy about the unbuilt constructor. *)
let _ = Idle

let () =
  let bug = Array.exists (( = ) "--bug") Sys.argv in
  let sp = Fsm.Space.create () in
  let caches =
    Array.init n (fun i ->
        Fsm.Space.state_word ~name:(Printf.sprintf "cache%d" i) sp ~width:2)
  in
  let sharer =
    Array.init n (fun i ->
        Fsm.Space.state_bit ~name:(Printf.sprintf "sharer%d" i) sp)
  in
  let dirty = Fsm.Space.state_bit ~name:"dirty" sp in
  let act_in = Fsm.Space.input_word ~name:"act" sp ~width:3 in
  let who_in = Fsm.Space.input_word ~name:"who" sp ~width:2 in
  let man = Fsm.Space.man sp in
  let act = Fsm.Space.input_vec sp act_in in
  let who = Fsm.Space.input_vec sp who_in in
  let cache i = Fsm.Space.cur_vec sp caches.(i) in
  let shr i = Fsm.Space.cur sp sharer.(i) in
  let drt = Fsm.Space.cur sp dirty in
  let in_state i s = Bvec.eq man (cache i) (Bvec.const man ~width:2 s) in
  let is_act a =
    let code =
      match a with
      | Idle -> 0 | Read_miss -> 1 | Write_miss -> 2 | Upgrade -> 3
      | Evict -> 4
    in
    Bvec.eq man act (Bvec.const man ~width:3 code)
  in
  let who_is i = Bvec.eq man who (Bvec.const man ~width:2 i) in
  let for_any f = Bdd.disj man (List.init n f) in

  (* Action legality: requests only make sense in the right local
     state; Idle keeps the machine total. *)
  let input_constraint =
    Bdd.conj man
      [
        Bdd.bimp man (is_act Read_miss)
          (for_any (fun i -> Bdd.band man (who_is i) (in_state i st_invalid)));
        Bdd.bimp man (is_act Write_miss)
          (for_any (fun i -> Bdd.band man (who_is i) (in_state i st_invalid)));
        Bdd.bimp man (is_act Upgrade)
          (for_any (fun i -> Bdd.band man (who_is i) (in_state i st_shared)));
        Bdd.bimp man (is_act Evict)
          (for_any (fun i ->
               Bdd.band man (who_is i)
                 (Bdd.bnot man (in_state i st_invalid))));
        Bvec.ult man act (Bvec.const man ~width:3 5);
        (if n = 4 then Bdd.tru man
         else Bvec.ult man who (Bvec.const man ~width:2 n));
      ]
  in

  (* Per-cache update: the requester moves to its new state; on a write
     miss or upgrade every OTHER cache is invalidated (unless the bug
     forgets to). *)
  let cache_next i =
    let me = who_is i in
    let getting_exclusive =
      Bdd.band man (Bdd.bor man (is_act Write_miss) (is_act Upgrade)) me
    in
    let reading = Bdd.band man (is_act Read_miss) me in
    let evicting = Bdd.band man (is_act Evict) me in
    let invalidated =
      if bug then Bdd.fls man
      else
        Bdd.band man
          (Bdd.bor man (is_act Write_miss) (is_act Upgrade))
          (Bdd.bnot man me)
    in
    (* A read miss also downgrades a Modified owner to Shared. *)
    let downgraded =
      Bdd.conj man
        [ is_act Read_miss; Bdd.bnot man me; in_state i st_modified ]
    in
    Bvec.mux man getting_exclusive
      (Bvec.const man ~width:2 st_modified)
      (Bvec.mux man reading
         (Bvec.const man ~width:2 st_shared)
         (Bvec.mux man evicting
            (Bvec.const man ~width:2 st_invalid)
            (Bvec.mux man invalidated
               (Bvec.const man ~width:2 st_invalid)
               (Bvec.mux man downgraded
                  (Bvec.const man ~width:2 st_shared)
                  (cache i)))))
  in
  let sharer_next i =
    let me = who_is i in
    let becomes_present =
      Bdd.band man
        (Bdd.disj man [ is_act Read_miss; is_act Write_miss; is_act Upgrade ])
        me
    in
    let dropped =
      Bdd.bor man
        (Bdd.band man (is_act Evict) me)
        (if bug then Bdd.fls man
         else
           Bdd.band man
             (Bdd.bor man (is_act Write_miss) (is_act Upgrade))
             (Bdd.bnot man me))
    in
    Bdd.ite man becomes_present (Bdd.tru man)
      (Bdd.ite man dropped (Bdd.fls man) (shr i))
  in
  let dirty_next =
    let to_dirty = Bdd.bor man (is_act Write_miss) (is_act Upgrade) in
    let to_clean =
      Bdd.bor man (is_act Read_miss)
        (Bdd.band man (is_act Evict)
           (for_any (fun i -> Bdd.band man (who_is i) (in_state i st_modified))))
    in
    Bdd.ite man to_dirty (Bdd.tru man) (Bdd.ite man to_clean (Bdd.fls man) drt)
  in
  let assigns =
    List.concat
      (List.init n (fun i ->
           let c = cache_next i in
           [ (caches.(i).(0), c.(0)); (caches.(i).(1), c.(1));
             (sharer.(i), sharer_next i) ]))
    @ [ (dirty, dirty_next) ]
  in
  let trans = Fsm.Trans.make ~input_constraint sp ~assigns in
  assert (Fsm.Trans.is_total trans);
  let init =
    Bdd.conj man
      (Bdd.bnot man drt
      :: List.init n (fun i ->
             Bdd.band man (in_state i st_invalid) (Bdd.bnot man (shr i))))
  in
  let good =
    List.concat
      (List.init n (fun i ->
           (* Directory accuracy + dirty tracking. *)
           [ Bdd.biff man (shr i) (Bdd.bnot man (in_state i st_invalid));
             Bdd.bimp man (in_state i st_modified) drt ]
           (* Pairwise exclusion. *)
           @ List.filter_map
               (fun j ->
                 if j <= i then None
                 else
                   Some
                     (Bdd.conj man
                        [ Bdd.bnand man (in_state i st_modified)
                            (in_state j st_modified);
                          Bdd.bnand man (in_state i st_modified)
                            (in_state j st_shared);
                          Bdd.bnand man (in_state j st_modified)
                            (in_state i st_shared) ]))
               (List.init n Fun.id)))
  in
  let model =
    Mc.Model.make
      ~name:(if bug then "msi-directory-bug" else "msi-directory")
      ~space:sp ~trans ~init ~good ()
  in
  Format.printf "model: %s (%d caches)@." model.Mc.Model.name n;
  Format.printf "%s@." Mc.Report.header;
  List.iter
    (fun meth ->
      let r = Mc.Runner.run meth model in
      Format.printf "%a@." Mc.Report.pp_row r;
      match r.Mc.Report.status with
      | Mc.Report.Violated tr ->
        let ok =
          Mc.Trace.validate trans ~init ~good:(Ici.Clist.of_list man good) tr
        in
        Format.printf "  counterexample length %d (validated: %b)@."
          (List.length tr) ok
      | Mc.Report.Proved | Mc.Report.Exceeded _ -> ())
    Mc.Runner.all
