examples/derive_invariants.mli:
