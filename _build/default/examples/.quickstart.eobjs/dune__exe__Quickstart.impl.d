examples/quickstart.ml: Array Bdd Format Fsm Fun Ici List Mc Printf
