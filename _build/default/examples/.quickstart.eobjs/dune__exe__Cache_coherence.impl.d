examples/cache_coherence.ml: Array Bdd Bvec Format Fsm Fun Ici List Mc Printf Sys
