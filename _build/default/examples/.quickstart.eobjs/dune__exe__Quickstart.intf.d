examples/quickstart.mli:
