examples/elevator.ml: Format Fun Hdl Ici List Mc Option String
