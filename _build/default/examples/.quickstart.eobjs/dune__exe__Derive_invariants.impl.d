examples/derive_invariants.ml: Bdd Format Ici List Mc Models String
