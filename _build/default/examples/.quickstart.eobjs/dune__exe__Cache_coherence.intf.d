examples/cache_coherence.mli:
