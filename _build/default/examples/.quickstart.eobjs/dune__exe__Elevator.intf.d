examples/elevator.mli:
