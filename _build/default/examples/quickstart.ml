(* Quickstart: build a small symbolic machine from scratch and verify a
   safety property with implicitly conjoined BDDs.

     dune exec examples/quickstart.exe

   The machine is a token ring of [n] stations.  A station may be in
   its critical section only while it holds the token; the token moves
   nondeterministically.  The property "no two stations are in the
   critical section at once" is a natural implicit conjunction: one
   small conjunct per pair of stations. *)

let n = 6

let () =
  (* 1. Declare the state space: one token bit and one critical-section
     bit per station (current/next level pairs are allocated for us). *)
  let sp = Fsm.Space.create () in
  let token =
    Array.init n (fun i -> Fsm.Space.state_bit ~name:(Printf.sprintf "tok%d" i) sp)
  in
  let crit =
    Array.init n (fun i -> Fsm.Space.state_bit ~name:(Printf.sprintf "cs%d" i) sp)
  in
  let advance = Fsm.Space.input_bit ~name:"advance" sp in
  let enter = Fsm.Space.input_bit ~name:"enter" sp in
  let man = Fsm.Space.man sp in
  let tok i = Fsm.Space.cur sp token.(i) in
  let cs i = Fsm.Space.cur sp crit.(i) in
  let adv = Bdd.var man advance and go = Bdd.var man enter in

  (* 2. Next-state functions.  The token advances one hop when [advance]
     is asserted, nobody is entering and no one is in a critical
     section; a station enters / leaves its critical section (toggles)
     when [enter] is asserted and it holds the token. *)
  let nobody_critical =
    Bdd.conj man (List.init n (fun i -> Bdd.bnot man (cs i)))
  in
  let move =
    Bdd.conj man [ adv; Bdd.bnot man go; nobody_critical ]
  in
  let assigns =
    List.concat
      (List.init n (fun i ->
           let prev = (i + n - 1) mod n in
           let token' =
             Bdd.ite man move (tok prev) (tok i)
           in
           let crit' =
             Bdd.ite man (Bdd.band man go (tok i)) (Bdd.bnot man (cs i)) (cs i)
           in
           [ (token.(i), token'); (crit.(i), crit') ]))
  in
  let trans = Fsm.Trans.make sp ~assigns in

  (* 3. Start states: station 0 holds the token, nobody is critical. *)
  let init =
    Bdd.conj man
      (List.init n (fun i ->
           Bdd.band man
             (if i = 0 then tok i else Bdd.bnot man (tok i))
             (Bdd.bnot man (cs i))))
  in

  (* 4. The property as an implicit conjunction: mutual exclusion per
     station pair, plus "critical implies token holder". *)
  let good =
    List.concat
      (List.init n (fun i ->
           Bdd.bimp man (cs i) (tok i)
           :: List.filter_map
                (fun j ->
                  if j <= i then None
                  else Some (Bdd.bnand man (cs i) (cs j)))
                (List.init n Fun.id)))
  in
  let model =
    Mc.Model.make ~name:"token-ring" ~space:sp ~trans ~init ~good ()
  in

  (* 5. Verify with every method and compare representations. *)
  Format.printf "%s@." Mc.Report.header;
  List.iter
    (fun meth ->
      let r = Mc.Runner.run meth model in
      Format.printf "%a@." Mc.Report.pp_row r)
    Mc.Runner.all;

  (* 6. The same machine with a planted bug: entering no longer checks
     the token.  Every method finds a short counterexample. *)
  let buggy_assigns =
    List.concat
      (List.init n (fun i ->
           let prev = (i + n - 1) mod n in
           let token' = Bdd.ite man move (tok prev) (tok i) in
           let crit' = Bdd.ite man go (Bdd.bnot man (cs i)) (cs i) in
           [ (token.(i), token'); (crit.(i), crit') ]))
  in
  (* State bits are owned by the space, so reuse it for the variant. *)
  let trans_bug = Fsm.Trans.make sp ~assigns:buggy_assigns in
  let buggy =
    Mc.Model.make ~name:"token-ring-bug" ~space:sp ~trans:trans_bug ~init
      ~good ()
  in
  let r = Mc.Xici.run buggy in
  Format.printf "@.bug variant: %a@." Mc.Report.pp_row r;
  match r.Mc.Report.status with
  | Mc.Report.Violated tr ->
    let ok =
      Mc.Trace.validate trans_bug ~init
        ~good:(Ici.Clist.of_list man good)
        tr
    in
    Format.printf "counterexample of length %d, validated: %b@."
      (List.length tr) ok
  | Mc.Report.Proved | Mc.Report.Exceeded _ ->
    Format.printf "unexpected: bug not found@."
