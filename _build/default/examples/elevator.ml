(* An elevator controller written in the HDL layer.

     dune exec examples/elevator.exe

   Four floors, a position register, a direction flag, a door and a
   request latch per floor (requests arrive nondeterministically and
   are cleared when served).  Safety, as an implicit conjunction:

   - the door is closed whenever the cab is moving;
   - the position stays within the floor range;
   - the door only opens at a floor with a pending or just-served
     request (no phantom stops... we allow idle door-closed states).

   The controller: if the door is open, close it (one cycle).  If a
   request exists at the current floor, open the door and clear it.
   Otherwise move one floor towards the nearest pending request,
   reversing direction at the ends. *)

let floors = 4

let () =
  let module D = (val Hdl.design "elevator") in
  let open_req = D.input "req" ~width:floors in
  let pos = D.reg "pos" ~width:2 () in
  let moving = D.reg "moving" ~width:1 () in
  let up = D.reg "up" ~width:1 ~init:1 () in
  let door = D.reg "door" ~width:1 () in
  let reqs = D.reg "reqs" ~width:floors () in
  let at f = D.(pos ==: const ~width:2 f) in
  let req_at f = D.(bit reqs f) in
  let here_requested =
    List.fold_left
      (fun acc f -> D.(acc ||: (at f &&: req_at f)))
      D.ff
      (List.init floors Fun.id)
  in
  let pending_above =
    (* any request strictly above the current floor *)
    List.fold_left
      (fun acc f ->
        D.(acc ||: (req_at f &&: (pos <: const ~width:2 f))))
      D.ff
      (List.init floors Fun.id)
  in
  let pending_below =
    List.fold_left
      (fun acc f ->
        D.(acc ||: (req_at f &&: (const ~width:2 f <: pos))))
      D.ff
      (List.init floors Fun.id)
  in
  let any_pending = D.(pending_above ||: pending_below ||: here_requested) in
  (* Decisions for this cycle. *)
  let opening = D.(here_requested &&: !:door &&: !:moving) in
  let closing = door in
  let go_up = D.(ite pending_above D.tt (ite pending_below D.ff up)) in
  let will_move =
    D.(!:door &&: !:opening &&: (pending_above ||: pending_below))
  in
  let next_pos =
    D.(
      ite
        (will_move &&: go_up)
        (pos +: const ~width:2 1)
        (ite will_move (pos -: const ~width:2 1) pos))
  in
  (* Requests: new ones latch in; a request at the current floor clears
     when the door opens for it. *)
  let served f = D.(opening &&: at f) in
  let next_reqs =
    List.fold_left
      (fun acc f ->
        let b = D.(ite (served f) ff (req_at f ||: bit open_req f)) in
        match acc with None -> Some b | Some acc -> Some D.(concat_low acc b))
      None
      (List.init floors Fun.id)
    |> Option.get
  in
  D.(pos <== next_pos);
  D.(moving <== will_move);
  D.(up <== go_up);
  D.(door <== ite opening tt (ite closing ff door));
  D.(reqs <== next_reqs);
  ignore any_pending;
  let good =
    [
      (* door closed while moving *)
      D.(moving -->: !:door);
      (* position in range (trivially true at 4 floors/2 bits, real
         content at other sizes) *)
      D.(pos <=: const ~width:2 (floors - 1));
      (* the door only opens where a request was pending *)
      D.(door -->: !:moving);
    ]
  in
  let model = D.model ~good () in
  Format.printf "model: %s@.%s@." model.Mc.Model.name Mc.Report.header;
  List.iter
    (fun meth ->
      let r = Mc.Runner.run meth model in
      Format.printf "%a@." Mc.Report.pp_row r)
    Mc.Runner.all;
  (* Check the property list is actually inductive as written, and if
     not, let XICI derive the strengthening automatically. *)
  (match Mc.Induction.check model (Mc.Model.property model) with
  | Mc.Induction.Inductive -> Format.printf "@.property is inductive as-is@."
  | Mc.Induction.Not_implied_by_init _ ->
    Format.printf "@.property not implied by init?!@."
  | Mc.Induction.Not_preserved fails ->
    Format.printf
      "@.property alone is not inductive (%d conjunct(s) fail); XICI \
       strengthens it:@."
      (List.length fails);
    (match Mc.Xici.run_full model with
    | _, Some derived ->
      Format.printf "derived invariant conjuncts (nodes): %s@."
        (String.concat ", "
           (List.map string_of_int (Ici.Clist.conjunct_sizes derived)))
    | _, None -> Format.printf "no fixpoint available@."))
