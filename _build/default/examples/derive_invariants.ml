(* The paper's headline result, reproduced as an API demo: on the
   moving-average filter, the XICI evaluation/simplification policy
   derives the user's assisting invariants fully automatically
   (Section IV.B: "the new evaluation and simplification algorithm is
   actually deriving the assisting invariants").

     dune exec examples/derive_invariants.exe

   We verify the filter WITHOUT assisting invariants, retrieve the
   converged implicit conjunction, and then prove -- with the paper's
   own exact implication test (Section III.B) -- that the
   machine-derived invariant list implies every lemma the paper's users
   previously had to write by hand. *)

let depth = 8

let () =
  let model, handles =
    Models.Avg_filter.make_full
      { Models.Avg_filter.default with depth; assisted = false }
  in
  let man = Mc.Model.man model in
  Format.printf "verifying %s with XICI (no user help)...@.%!"
    model.Mc.Model.name;
  let report, derived = Mc.Xici.run_full model in
  Format.printf "%s@.%a@." Mc.Report.header Mc.Report.pp_row report;
  match derived with
  | None -> Format.printf "no fixpoint list available@."
  | Some derived ->
    Format.printf "@.derived invariant conjuncts (BDD nodes): %s@."
      (String.concat ", "
         (List.map string_of_int (Ici.Clist.conjunct_sizes derived)));
    Format.printf "hand-written layer lemmas     (BDD nodes): %s@."
      (String.concat ", "
         (List.map string_of_int
            (List.map Bdd.size handles.Models.Avg_filter.lemmas)));
    (* The derived list plays the lemmas' role: one conjunct per adder
       layer, each relating a tree layer to its delay-FIFO entry.  It
       is in fact a principled WEAKENING of the hand-written lemmas --
       the policy discovered it can ignore the low-order sum bits that
       the final "discard" throws away -- so the hand lemmas imply each
       derived conjunct, while the derived list is still inductive and
       strong enough for the property (that is what "proved" means).
       Both implications are checked with the paper's exact test,
       without ever building a conjunction. *)
    List.iteri
      (fun i d ->
        let implied =
          Ici.Tautology.implies man handles.Models.Avg_filter.lemmas [ d ]
        in
        Format.printf "hand lemmas => derived conjunct %d (%d nodes): %b@."
          (i + 1) (Bdd.size d) implied)
      (Ici.Clist.to_list derived);
    let weakening =
      Ici.Tautology.implies man handles.Models.Avg_filter.lemmas derived
    in
    let strengthens_back =
      Ici.Tautology.implies man derived handles.Models.Avg_filter.lemmas
    in
    Format.printf
      "@.derived list = weakening of the hand lemmas: %b (converse: %b)@."
      weakening strengthens_back;
    Format.printf
      "the policy found per-layer invariants (%d conjuncts for %d layers) \
       with no user help.@."
      (Ici.Clist.length derived)
      (List.length handles.Models.Avg_filter.lemmas)
