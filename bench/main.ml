(* Benchmark harness: regenerates every data artifact of the paper
   (Tables 1, 2 and 3 -- Figures 1-3 are an algorithm listing and two
   block diagrams, so the tables are the complete set), plus ablation
   benchmarks for the design choices called out in DESIGN.md and a
   Bechamel micro-benchmark suite (one Test.make per table).

   Node counts are machine-independent and comparable with the paper;
   wall times are this machine's.  Each row prints the paper's reported
   numbers alongside ours ("paper: time/iter/nodes") so the shape
   comparison is immediate.  Resource budgets reproduce the paper's
   "Exceeded 60MB" (live-node budget: 60MB at roughly 20 bytes/node in
   the 1994 package is about 3M nodes) and "Exceeded 40 minutes" rows. *)

(* The paper's 60MB at David Long's ~20 bytes/node is ~3M nodes; our
   OCaml nodes cost ~5x more memory but the machine has plenty, so the
   default budget errs high to let the paper's *successful* slow rows
   (network-7 forward took 11:53 in 1994) complete, while still
   cutting off the rows the paper itself reports as blowing up. *)
let default_max_live = 12_000_000
let default_max_seconds = 600.0

type budgets = { max_live : int; max_seconds : float; max_iterations : int }

let limits_of budgets man =
  Mc.Limits.start ~max_live_nodes:budgets.max_live
    ~max_seconds:budgets.max_seconds ~max_iterations:budgets.max_iterations
    man

(* Machine-readable artifacts (--json): each table accumulates one JSON
   object per row -- the report fields plus a full telemetry snapshot
   (registry + per-iteration log), reset before every row so snapshots
   are per-row, not cumulative across the table. *)
let json_mode = ref false
let json_rows : Obs.Json.t list ref = ref []

let with_json_artifact file f =
  if not !json_mode then f ()
  else begin
    json_rows := [];
    Fun.protect
      ~finally:(fun () ->
        let oc = open_out file in
        output_string oc
          (Obs.Json.to_string (Obs.Json.List (List.rev !json_rows)));
        output_char oc '\n';
        close_out oc;
        Format.printf "  wrote %s (%d rows)@.%!" file
          (List.length !json_rows))
      f
  end

(* A table row: run one method on one model and print it next to the
   paper's reported numbers. *)
let run_row ?(label = "") budgets ?xici_cfg ?termination meth model ~paper =
  if !json_mode then Mc.Telemetry.reset ();
  let alloc0 = Gc.allocated_bytes () in
  let r =
    Mc.Runner.run ~limits:(limits_of budgets) ?xici_cfg ?termination meth
      model
  in
  let allocated = Gc.allocated_bytes () -. alloc0 in
  Format.printf "  %-10s %a   alloc=%.1fMB   [paper: %s]@.%!" label
    Mc.Report.pp_row r
    (allocated /. 1_048_576.)
    paper;
  (if !json_mode then
     let row =
       match Mc.Report.to_json r with
       | Obs.Json.Obj fields ->
         Obs.Json.Obj
           (fields
           @ [
               ("label", Obs.Json.String label);
               ("allocated_bytes", Obs.Json.Float allocated);
               ("telemetry", Mc.Telemetry.snapshot_json (Mc.Model.man model));
             ])
       | other -> other
     in
     json_rows := row :: !json_rows);
  r

let head fmt = Format.printf (fmt ^^ "@.")

let table_header () =
  Format.printf "  %-10s %s   [paper: time iter bdd-nodes]@." "" Mc.Report.header

(* ------------------------------------------------------------------ *)
(* Table 1: performance vs. previous methods                           *)
(* ------------------------------------------------------------------ *)

let table1_fifo budgets =
  head "-- Table 1a: 8-bit wide typed FIFO buffer --";
  table_header ();
  let cases =
    [
      (5, Mc.Runner.Forward, "0:03 6 543");
      (5, Mc.Runner.Backward, "0:01 1 543");
      (5, Mc.Runner.Ici, "0:00 1 41=(5x9)");
      (5, Mc.Runner.Xici, "0:00 1 41=(5x9)");
      (10, Mc.Runner.Forward, "5:37 11 32767");
      (10, Mc.Runner.Backward, "1:56 1 32767");
      (10, Mc.Runner.Ici, "0:03 1 81=(10x9)");
      (10, Mc.Runner.Xici, "0:03 1 81=(10x9)");
    ]
  in
  List.iter
    (fun (depth, meth, paper) ->
      let model =
        Models.Typed_fifo.make { Models.Typed_fifo.default with depth }
      in
      ignore
        (run_row ~label:(Printf.sprintf "depth=%d" depth) budgets meth model
           ~paper))
    cases

let table1_network budgets =
  head "-- Table 1b: processors sending messages through network --";
  table_header ();
  let cases =
    [
      (4, Mc.Runner.Forward, "0:04 9 1198");
      (4, Mc.Runner.Backward, "0:02 1 994");
      (4, Mc.Runner.Fd, "0:13 9 41");
      (4, Mc.Runner.Ici, "0:02 1 245=(4x62)");
      (4, Mc.Runner.Xici, "0:02 1 245=(4x62)");
      (7, Mc.Runner.Forward, "11:53 15 88647");
      (7, Mc.Runner.Backward, "2:15 1 61861");
      (7, Mc.Runner.Fd, "3:20 15 169");
      (7, Mc.Runner.Ici, "0:14 1 1086=(7x156)");
      (7, Mc.Runner.Xici, "0:22 1 1086=(7x156)");
    ]
  in
  List.iter
    (fun (procs, meth, paper) ->
      let model = Models.Network.make { Models.Network.procs; bug = false } in
      ignore
        (run_row ~label:(Printf.sprintf "procs=%d" procs) budgets meth model
           ~paper))
    cases

let filter_model depth assisted =
  Models.Avg_filter.make { Models.Avg_filter.default with depth; assisted }

let table1_filter budgets =
  head "-- Table 1c: 8-bit moving average filter (assisting invariants) --";
  table_header ();
  let cases =
    [
      (4, Mc.Runner.Forward, "0:54 3 11267");
      (4, Mc.Runner.Backward, "0:04 1 490");
      (4, Mc.Runner.Ici, "0:03 1 146=(102,45)");
      (4, Mc.Runner.Xici, "0:03 1 146=(102,45)");
      (8, Mc.Runner.Forward, "exceeded 60MB");
      (8, Mc.Runner.Backward, "exceeded 40min");
      (8, Mc.Runner.Ici, "0:25 1 638=(390,169,81)");
      (8, Mc.Runner.Xici, "0:28 1 638=(390,169,81)");
      (16, Mc.Runner.Ici, "3:26 1 2558=(1501,629,290,141)");
      (16, Mc.Runner.Xici, "3:41 1 2558=(1501,629,290,141)");
    ]
  in
  List.iter
    (fun (depth, meth, paper) ->
      ignore
        (run_row ~label:(Printf.sprintf "depth=%d" depth) budgets meth
           (filter_model depth true) ~paper))
    cases

let table1 budgets =
  head "=== Table 1: Performance vs. Previous Methods ===";
  table1_fifo budgets;
  table1_network budgets;
  table1_filter budgets

(* ------------------------------------------------------------------ *)
(* Table 2: moving-average filter without assisting invariants         *)
(* ------------------------------------------------------------------ *)

let table2 budgets =
  head "=== Table 2: Moving Average Filter without Assisting Invariants ===";
  table_header ();
  let cases =
    [
      (4, Mc.Runner.Forward, "0:52 3 11267");
      (4, Mc.Runner.Backward, "0:04 1 490");
      (4, Mc.Runner.Ici, "0:04 1 490");
      (4, Mc.Runner.Xici, "0:03 2 146=(45,102)");
      (8, Mc.Runner.Forward, "exceeded 60MB");
      (8, Mc.Runner.Backward, "exceeded 40min");
      (8, Mc.Runner.Ici, "exceeded 40min");
      (8, Mc.Runner.Xici, "0:31 3 638=(61,169,390)");
      (16, Mc.Runner.Xici, "5:45 4 2558=(141,290,629,1501)");
    ]
  in
  List.iter
    (fun (depth, meth, paper) ->
      ignore
        (run_row ~label:(Printf.sprintf "depth=%d" depth) budgets meth
           (filter_model depth false) ~paper))
    cases

(* ------------------------------------------------------------------ *)
(* Table 3: pipelined processor                                        *)
(* ------------------------------------------------------------------ *)

let cpu_model ?(assisted = false) regs width =
  Models.Pipeline_cpu.make
    { Models.Pipeline_cpu.regs; width; assisted; bug = false }

let table3 budgets =
  head "=== Table 3: Pipelined Processor ===";
  table_header ();
  let cases =
    [
      (2, 1, Mc.Runner.Forward, "5:11 4 284745");
      (2, 1, Mc.Runner.Backward, "0:27 4 10745");
      (2, 1, Mc.Runner.Ici, "0:27 4 10745");
      (2, 1, Mc.Runner.Xici, "0:31 4 10745");
      (2, 2, Mc.Runner.Forward, "exceeded 60MB");
      (2, 2, Mc.Runner.Backward, "exceeded 60MB");
      (2, 2, Mc.Runner.Ici, "exceeded 60MB");
      (2, 2, Mc.Runner.Xici, "1:48 4 8485=(45,441,1345,6657)");
      (2, 3, Mc.Runner.Xici, "13:35 4 57510=(189,2503,9591,45230)");
      (4, 1, Mc.Runner.Xici, "7:06 4 12947=(45,849,1290,10767)");
    ]
  in
  List.iter
    (fun (regs, width, meth, paper) ->
      ignore
        (run_row
           ~label:(Printf.sprintf "%dR,%dB" regs width)
           budgets meth (cpu_model regs width) ~paper))
    cases;
  head "-- Table 3 footnote: hand-constructed assisting invariants, 2R 3B --";
  table_header ();
  ignore
    (run_row ~label:"2R,3B+inv" budgets Mc.Runner.Ici
       (cpu_model ~assisted:true 2 3)
       ~paper:"6:19 2 6602");
  ignore
    (run_row ~label:"2R,3B+inv" budgets Mc.Runner.Xici
       (cpu_model ~assisted:true 2 3)
       ~paper:"6:19 2 6602")

(* ------------------------------------------------------------------ *)
(* Ablations (design choices flagged in DESIGN.md / Section V)         *)
(* ------------------------------------------------------------------ *)

let ablation_grow budgets =
  head "=== Ablation: GrowThreshold sweep (Section V, para 1) ===";
  table_header ();
  List.iter
    (fun threshold ->
      let cfg = { Ici.Policy.default with grow_threshold = threshold } in
      List.iter
        (fun (name, model) ->
          ignore
            (run_row
               ~label:(Printf.sprintf "thr=%.2f" threshold)
               budgets ~xici_cfg:cfg Mc.Runner.Xici (model ())
               ~paper:(Printf.sprintf "on %s" name)))
        [
          ( "fifo-10",
            fun () ->
              Models.Typed_fifo.make
                { Models.Typed_fifo.default with depth = 10 } );
          ("filter-8", fun () -> filter_model 8 false);
        ])
    [ 1.0; 1.25; 1.5; 2.0; 4.0 ]

let ablation_cofactor budgets =
  head "=== Ablation: termination-test cofactor variable choice ===";
  List.iter
    (fun (name, var_choice) ->
      let stats = Ici.Tautology.fresh_stats () in
      let model = filter_model 8 false in
      let r =
        Mc.Xici.run ~limits:(limits_of budgets) ~var_choice
          ~tautology_stats:stats model
      in
      Format.printf "  %-12s %a  expansions=%d simplifications=%d@.%!" name
        Mc.Report.pp_row r stats.Ici.Tautology.expansions
        stats.Ici.Tautology.simplifications)
    [
      ("first-top", Ici.Tautology.First_top);
      ("lowest", Ici.Tautology.Lowest_level);
      ("most-common", Ici.Tautology.Most_common);
    ]

let ablation_cover budgets =
  head "=== Ablation: greedy (Fig. 1) vs optimal pairwise cover (Thm 2) ===";
  table_header ();
  List.iter
    (fun (name, evaluation) ->
      let cfg = { Ici.Policy.default with evaluation } in
      List.iter
        (fun (mname, model) ->
          ignore
            (run_row ~label:name budgets ~xici_cfg:cfg Mc.Runner.Xici
               (model ())
               ~paper:(Printf.sprintf "on %s" mname)))
        [
          ( "network-4",
            fun () ->
              Models.Network.make { Models.Network.procs = 4; bug = false } );
          ("filter-8", fun () -> filter_model 8 false);
        ])
    [
      ("greedy", Ici.Policy.Greedy);
      ("opt-cover", Ici.Policy.Optimal_cover);
      ("no-eval", Ici.Policy.No_evaluation);
    ]

let ablation_simplify budgets =
  head "=== Ablation: Restrict vs Constrain vs no simplification ===";
  table_header ();
  List.iter
    (fun (name, simplifier) ->
      let cfg = { Ici.Policy.default with simplifier } in
      List.iter
        (fun (mname, model) ->
          ignore
            (run_row ~label:name budgets ~xici_cfg:cfg Mc.Runner.Xici
               (model ())
               ~paper:(Printf.sprintf "on %s" mname)))
        [
          ( "fifo-10",
            fun () ->
              Models.Typed_fifo.make
                { Models.Typed_fifo.default with depth = 10 } );
          ("filter-8", fun () -> filter_model 8 false);
        ])
    [
      ("restrict", Ici.Policy.Restrict);
      ("constrain", Ici.Policy.Constrain);
      ("none", Ici.Policy.No_simplify);
    ]

let ablation_termination budgets =
  head "=== Ablation: exact vs pointwise termination test ===";
  table_header ();
  List.iter
    (fun (name, termination) ->
      List.iter
        (fun (mname, model) ->
          ignore
            (run_row ~label:name budgets ~termination Mc.Runner.Xici
               (model ())
               ~paper:(Printf.sprintf "on %s" mname)))
        [
          ("filter-8", fun () -> filter_model 8 false);
          ("cpu-2R2B", fun () -> cpu_model 2 2);
        ])
    [
      ("exact-eq", `Exact_equal);
      ("exact-imp", `Exact_implication);
      ("pointwise", `Pointwise);
    ]

let ablation_image budgets =
  head "=== Ablation: BackImage via composition vs relational product ===";
  List.iter
    (fun (name, via) ->
      List.iter
        (fun (mname, model) ->
          let r =
            Mc.Backward.run ~limits:(limits_of budgets) ~image_via:via
              (model ())
          in
          Format.printf "  %-10s %a   [%s]@.%!" name Mc.Report.pp_row r mname)
        [
          ( "network-4",
            fun () ->
              Models.Network.make { Models.Network.procs = 4; bug = false } );
          ("filter-8a", fun () -> filter_model 8 true);
        ])
    [ ("auto", `Auto); ("compose", `Compose); ("relational", `Relational) ]

let ablation_pairbound budgets =
  head
    "=== Ablation: size-bounded pairwise conjunctions (Section V, future \
     work) ===";
  table_header ();
  List.iter
    (fun (name, pair_step_factor) ->
      let cfg = { Ici.Policy.default with pair_step_factor } in
      ignore
        (run_row ~label:name budgets ~xici_cfg:cfg Mc.Runner.Xici
           (filter_model 8 false) ~paper:"on filter-8"))
    [
      ("unbounded", None);
      ("16x", Some 16);
      ("64x", Some 64);
      ("256x", Some 256);
    ]

(* Exponential worst case of the termination test (the paper concedes
   the test is exponential in theory).  The members are the three
   "sum of bits = r (mod 3)" counting functions over n variables: a
   tautology with no pairwise shortcut.  Without memoisation the
   Shannon expansion explores ~2^n paths; the subproblem memo (this
   library's improvement) collapses the symmetric structure. *)
let ablation_worstcase _budgets =
  head "=== Ablation: termination-test worst case (mod-3 counters) ===";
  let mod3_members man n =
    let vars = List.init n (fun _ -> Bdd.new_var man) in
    let start = [| Bdd.tru man; Bdd.fls man; Bdd.fls man |] in
    let counters =
      List.fold_left
        (fun acc lvl ->
          let x = Bdd.var man lvl in
          Array.init 3 (fun r ->
              Bdd.ite man x acc.((r + 2) mod 3) acc.(r)))
        start vars
    in
    Array.to_list counters
  in
  (* Crossing both ingredients: the Theorem-3 Restrict filter resolves
     this family without any expansion at all; with it disabled, the
     raw Shannon recursion is exponential unless the subproblem memo
     collapses the symmetric structure. *)
  List.iter
    (fun n ->
      List.iter
        (fun (label, simplify, memo) ->
          let man = Bdd.create () in
          let members = mod3_members man n in
          let stats = Ici.Tautology.fresh_stats () in
          let t0 = Unix.gettimeofday () in
          let verdict =
            try
              Bool.to_string
                (Ici.Tautology.check ~simplify ~memo ~fuel:2_000_000 ~stats
                   man members)
            with Ici.Tautology.Out_of_fuel -> "out-of-fuel"
          in
          Format.printf
            "  n=%-3d %-22s %-12s %8.2fs expansions=%-9d memo_hits=%d@.%!" n
            label verdict
            (Unix.gettimeofday () -. t0)
            stats.Ici.Tautology.expansions stats.Ici.Tautology.memo_hits)
        [ ("thm3+memo", true, true);
          ("thm3, no memo", true, false);
          ("no thm3, memo", false, true);
          ("no thm3, no memo", false, false) ])
    [ 8; 12; 16; 20 ]

(* The implicit-disjunction dual (this library's extension) on the
   tables' workloads, next to Fwd (same direction, monolithic set). *)
let ablation_idi budgets =
  head "=== Ablation: implicit-disjunction forward traversal (IDI) ===";
  table_header ();
  List.iter
    (fun (name, model) ->
      List.iter
        (fun meth ->
          ignore (run_row ~label:name budgets meth (model ()) ~paper:"-"))
        [ Mc.Runner.Forward; Mc.Runner.Idi ])
    [
      ( "fifo-10",
        fun () ->
          Models.Typed_fifo.make { Models.Typed_fifo.default with depth = 10 } );
      ( "network-4",
        fun () -> Models.Network.make { Models.Network.procs = 4; bug = false } );
      ("filter-4", fun () -> filter_model 4 false);
    ]

(* Variable-order sensitivity: the FIFO's monolithic blowup (543 /
   32767 nodes) is an artifact of the interleaved bit-slice order the
   datapath needs.  The offline reorderer recovers the slot-major order
   and collapses the conjunction to linear size -- quantifying how much
   of Table 1a's gap is ordering and how much is intrinsic to keeping
   one BDD. *)
let ablation_reorder _budgets =
  head "=== Ablation: variable-order sensitivity of the FIFO conjunction ===";
  List.iter
    (fun depth ->
      let model =
        Models.Typed_fifo.make { Models.Typed_fifo.default with depth }
      in
      let man = Mc.Model.man model in
      let g = Bdd.conj man (Mc.Model.property model) in
      let before = Bdd.size g in
      let t0 = Unix.gettimeofday () in
      let perm = Bdd.Reorder.sift man [ g ] in
      let dst = Bdd.create () in
      for _ = 1 to Bdd.num_vars man do
        ignore (Bdd.new_var dst)
      done;
      let after =
        match Bdd.Reorder.apply ~dst man [ g ] perm with
        | [ g' ] -> Bdd.size g'
        | _ -> -1
      in
      Format.printf
        "  depth=%-3d interleaved=%-6d reordered=%-6d (%.1fs search)@.%!"
        depth before after
        (Unix.gettimeofday () -. t0))
    [ 4; 5 ]

(* Checkpoint overhead: the same XICI run cold vs. snapshotting every
   iteration, plus a resilient-driver run whose first attempt is killed
   by a tight node budget -- quantifying what the resilience layer
   costs when nothing goes wrong and what it saves when something
   does. *)
let bench_checkpoint budgets =
  head "=== Resilience: checkpoint overhead and escalation cost ===";
  let cases =
    [
      ( "fifo-10",
        fun () ->
          Models.Typed_fifo.make { Models.Typed_fifo.default with depth = 10 }
      );
      ("filter-8", fun () -> filter_model 8 false);
      ("cpu-2R1B", fun () -> cpu_model 2 1);
    ]
  in
  table_header ();
  List.iter
    (fun (name, model) ->
      let cold =
        run_row ~label:name budgets Mc.Runner.Xici (model ())
          ~paper:"no checkpointing"
      in
      let path = Filename.temp_file "icv-bench" ".ckpt" in
      let ckpt =
        let r =
          Mc.Xici.run ~limits:(limits_of budgets) ~checkpoint_path:path
            ~checkpoint_every:1 (model ())
        in
        Format.printf "  %-10s %a   [checkpoint every iteration]@.%!" name
          Mc.Report.pp_row r;
        r
      in
      let size =
        if Sys.file_exists path then (Unix.stat path).Unix.st_size else 0
      in
      Format.printf
        "  %-10s checkpoint overhead: %+.2fs (%.1f%%), last snapshot %d \
         bytes@.%!"
        name
        (ckpt.Mc.Report.time_s -. cold.Mc.Report.time_s)
        (if cold.Mc.Report.time_s > 0.0 then
           100.0
           *. (ckpt.Mc.Report.time_s -. cold.Mc.Report.time_s)
           /. cold.Mc.Report.time_s
         else 0.0)
        size;
      if Sys.file_exists path then Sys.remove path)
    cases;
  (* Escalation: initial budget at ~1/4 of what the cold run needed, so
     the first resilient attempt dies and the driver must recover. *)
  head "-- escalating-budget recovery (first attempt under-budgeted) --";
  List.iter
    (fun (name, model) ->
      let cold_model = model () in
      let baseline = Bdd.created_nodes (Mc.Model.man cold_model) in
      ignore (Mc.Xici.run ~limits:(limits_of budgets) cold_model);
      let needed = Bdd.created_nodes (Mc.Model.man cold_model) - baseline in
      let path = Filename.temp_file "icv-bench" ".ckpt" in
      (* a fresh (absent) path: the first attempt must start cold, not
         trip over an empty pre-created temp file *)
      Sys.remove path;
      let outcome =
        Mc.Resilient.run ~retries:4 ~budget_escalation:2.0
          ~max_created_nodes:(max 1 (needed / 4))
          ~max_seconds:budgets.max_seconds ~max_live_nodes:budgets.max_live
          ~max_iterations:budgets.max_iterations ~checkpoint:path (model ())
      in
      Format.printf "  %s (cold run needed %d nodes):@.@[<v 2>  %a@]@.%!" name
        needed Mc.Resilient.pp_outcome outcome;
      if Sys.file_exists path then Sys.remove path)
    [ ("fifo-10", List.assoc "fifo-10" cases) ]

(* Parallel portfolio racing vs what a single-threaded driver must do:
   run the same configs one at a time (in portfolio order) until one
   decides.  Wall-clock only -- node counts live in worker managers.
   The per-model rows land in BENCH_parallel.json under --json; commit
   a dated copy under bench/trajectory/ to pin a trajectory point. *)
let bench_parallel budgets ~domains =
  head "=== Parallel: portfolio race on %d domains vs sequential sweep ==="
    domains;
  let cases =
    [
      ( "fifo-10",
        fun () ->
          Models.Typed_fifo.make { Models.Typed_fifo.default with depth = 10 }
      );
      ( "network-4",
        fun () -> Models.Network.make { Models.Network.procs = 4; bug = false }
      );
      ( "network-7",
        fun () -> Models.Network.make { Models.Network.procs = 7; bug = false }
      );
      ("filter-8", fun () -> filter_model 8 false);
      ("cpu-2R1B", fun () -> cpu_model 2 1);
      (* Buggy variants: the portfolio's raison d'etre.  The sequential
         sweep pays for XICI first, but on violated properties another
         config often reaches the counterexample sooner and the race
         returns as soon as it does. *)
      ( "network-7-bug",
        fun () -> Models.Network.make { Models.Network.procs = 7; bug = true }
      );
      ( "cpu-2R2B-bug",
        fun () ->
          Models.Pipeline_cpu.make
            {
              Models.Pipeline_cpu.regs = 2;
              width = 2;
              assisted = false;
              bug = true;
            } );
    ]
  in
  List.iter
    (fun (name, make) ->
      let seq_time = ref 0.0 in
      let seq_status = ref "exceeded" in
      let seq_configs = ref 0 in
      (try
         List.iter
           (fun (c : Mc.Parallel.config) ->
             let model = make () in
             let t0 = Unix.gettimeofday () in
             let r =
               Mc.Runner.run ~limits:(limits_of budgets)
                 ?xici_cfg:c.Mc.Parallel.xici_cfg
                 ?termination:c.Mc.Parallel.termination
                 ?var_choice:c.Mc.Parallel.var_choice c.Mc.Parallel.meth model
             in
             seq_time := !seq_time +. (Unix.gettimeofday () -. t0);
             incr seq_configs;
             if Mc.Parallel.decided r then begin
               seq_status := Mc.Report.status_string r;
               raise Exit
             end)
           Mc.Parallel.default_portfolio
       with Exit -> ());
      let res =
        Mc.Parallel.portfolio ~domains ~limits:(limits_of budgets) (make ())
      in
      let winner_label, winner_status =
        match res.Mc.Parallel.winner with
        | Some (c, r) -> (c.Mc.Parallel.label, Mc.Report.status_string r)
        | None -> ("-", "exceeded")
      in
      let speedup =
        if res.Mc.Parallel.wall_time_s > 0.0 then
          !seq_time /. res.Mc.Parallel.wall_time_s
        else 0.0
      in
      Format.printf
        "  %-10s seq %6.2fs (%d config%s, %s)   parallel %6.2fs (winner %s, \
         %s)   speedup %.2fx@.%!"
        name !seq_time !seq_configs
        (if !seq_configs = 1 then "" else "s")
        !seq_status res.Mc.Parallel.wall_time_s winner_label winner_status
        speedup;
      if !json_mode then
        json_rows :=
          Obs.Json.Obj
            [
              ("model", Obs.Json.String name);
              ("domains", Obs.Json.Int res.Mc.Parallel.domains_used);
              ("sequential_seconds", Obs.Json.Float !seq_time);
              ("sequential_configs", Obs.Json.Int !seq_configs);
              ("sequential_status", Obs.Json.String !seq_status);
              ( "parallel_wall_seconds",
                Obs.Json.Float res.Mc.Parallel.wall_time_s );
              ("winner", Obs.Json.String winner_label);
              ("winner_status", Obs.Json.String winner_status);
              ("speedup", Obs.Json.Float speedup);
            ]
          :: !json_rows)
    cases

(* Batch verification: every conjunct of a family's property verified
   as its own property in one Mc.Batch run (shared manager, proven
   invariants pooled) vs the n-fold sequential unrolling -- a fresh
   model and manager per property, exactly what n independent icv
   invocations would pay.  The headline rows run the default pool-only
   sharing; families where it is affordable get a second row labelled
   "speculate" ablating the assumption channel on, which documents why
   speculation is opt-in (the transformed goods are monolithic BDDs
   over all properties' variables, costing more than they save here).
   The per-family rows land in BENCH_batch.json under --json; the
   speedup column carries the amortisation claim, and bench_compare
   --require-speedup gates it. *)
let bench_batch budgets ~quick =
  head "=== Batch: multi-property run vs n sequential runs ===";
  (* per case: name, whether to also run the speculate-on ablation
     (skipped where it is known pathological or over the quick budget),
     model thunk *)
  let cases =
    [
      ( "network-4",
        true,
        fun () -> Models.Network.make { Models.Network.procs = 4; bug = false }
      );
      ( (if quick then "fifo-5" else "fifo-10"),
        false,
        fun () ->
          Models.Typed_fifo.make
            {
              Models.Typed_fifo.default with
              depth = (if quick then 5 else 10);
            } );
      ( "abp-8",
        not quick,
        fun () -> Models.Abp.make { Models.Abp.width = 8; bug = false } );
    ]
    @ if quick then [] else [ ("cpu-2R1B", true, fun () -> cpu_model 2 1) ]
  in
  (* Only a proved <-> violated flip is a soundness alarm; an Exceeded
     on one side is a budget artifact (the batch arm's traversal order
     differs, so a heavy property can blow a --quick budget the
     sequential arm squeaks under). *)
  let decided s =
    if s = "proved" then Some true
    else if String.length s >= 8 && String.sub s 0 8 = "violated" then
      Some false
    else None
  in
  let genuine_flip a b =
    match (decided a, decided b) with
    | Some x, Some y -> x <> y
    | None, _ | _, None -> false
  in
  List.iter
    (fun (name, spec_row, make) ->
      let n = List.length (make ()).Mc.Model.good in
      (* Sequential arm: property i on a fresh manager. *)
      let seq_time = ref 0.0 in
      let seq_statuses =
        List.init n (fun i ->
            let m = make () in
            let props = Mc.Batch.of_goods m in
            let sub =
              Mc.Model.make ~assisting:m.Mc.Model.assisting
                ~name:m.Mc.Model.name ~space:m.Mc.Model.space
                ~trans:m.Mc.Model.trans ~init:m.Mc.Model.init
                ~good:(List.nth props i).Mc.Batch.goods ()
            in
            let t0 = Unix.gettimeofday () in
            let r =
              Mc.Runner.run ~limits:(limits_of budgets) Mc.Runner.Xici sub
            in
            seq_time := !seq_time +. (Unix.gettimeofday () -. t0);
            Mc.Report.status_string r)
      in
      let batch_arm ~speculate ~label =
        let model = make () in
        let base_nodes = Bdd.created_nodes (Mc.Model.man model) in
        let res =
          Mc.Batch.run ~limits:(limits_of budgets) ~speculate model
            (Mc.Batch.of_goods model)
        in
        let nodes = Bdd.created_nodes (Mc.Model.man model) - base_nodes in
        let batch_statuses =
          List.map
            (fun (it : Mc.Batch.item) ->
              Mc.Report.status_string it.Mc.Batch.report)
            res.Mc.Batch.items
        in
        (* The differential harness proves verdict equality on random
           specs; here it guards the benchmark itself against comparing
           apples to oranges. *)
        if List.exists2 genuine_flip batch_statuses seq_statuses then
          Format.printf
            "  %-10s WARNING: batch/sequential verdicts differ!@." name;
        let wall = res.Mc.Batch.wall_time_s in
        let speedup = if wall > 0.0 then !seq_time /. wall else 0.0 in
        let s = res.Mc.Batch.stats in
        let status =
          if List.for_all (( = ) "proved") batch_statuses then "proved"
          else "mixed"
        in
        Format.printf
          "  %-10s %-9s %d props   seq %6.2fs   batch %6.2fs (%.3fs/prop)   \
           speedup %.2fx   shared=%d speculated=%d refuted=%d rechecks=%d@.%!"
          name
          (if label = "" then "pooled" else label)
          n !seq_time wall
          (wall /. float_of_int (max 1 n))
          speedup s.Mc.Batch.invariants_shared
          s.Mc.Batch.invariants_speculated s.Mc.Batch.speculations_refuted
          s.Mc.Batch.rechecks;
        if !json_mode then
          json_rows :=
            Obs.Json.Obj
              [
                ("model", Obs.Json.String name);
                ("method", Obs.Json.String "batch:xici");
                ("label", Obs.Json.String label);
                ("status", Obs.Json.String status);
                ("properties", Obs.Json.Int n);
                ("nodes_created", Obs.Json.Int nodes);
                ("sequential_seconds", Obs.Json.Float !seq_time);
                ("wall_seconds", Obs.Json.Float wall);
                ( "amortised_per_property_seconds",
                  Obs.Json.Float (wall /. float_of_int (max 1 n)) );
                ("speedup", Obs.Json.Float speedup);
                ( "invariants_shared",
                  Obs.Json.Int s.Mc.Batch.invariants_shared );
                ( "invariants_speculated",
                  Obs.Json.Int s.Mc.Batch.invariants_speculated );
                ( "speculations_refuted",
                  Obs.Json.Int s.Mc.Batch.speculations_refuted );
                ("rechecks", Obs.Json.Int s.Mc.Batch.rechecks);
              ]
            :: !json_rows
      in
      batch_arm ~speculate:false ~label:"";
      if spec_row then batch_arm ~speculate:true ~label:"speculate")
    cases

(* Daemon throughput: a resident icvd on a Unix socket under synthetic
   many-client load (each client is a domain with its own connection
   submitting a batch of small jobs), plus an overload row against a
   deliberately tiny daemon showing that excess submissions are
   rejected explicitly instead of queueing without bound.  Wall-clock
   jobs/sec; verdict work is the same fifo/filter jobs icv runs. *)
let bench_daemon _budgets ~domains ~quick =
  head "=== Daemon: throughput under many-client load ===";
  let dir = Filename.temp_file "icvd-bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let with_daemon cfg f =
    let ready = Atomic.make false in
    let d =
      Domain.spawn (fun () ->
          Srv.Daemon.run ~on_ready:(fun () -> Atomic.set ready true) cfg)
    in
    while not (Atomic.get ready) do
      Unix.sleepf 0.005
    done;
    Fun.protect
      ~finally:(fun () ->
        (match cfg.Srv.Daemon.socket_path with
        | Some sock -> (
          (* ask for a drain and wait for the loop to return *)
          try
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX sock);
            let line = Srv.Protocol.to_line (Obs.Json.Obj [ ("type", Obs.Json.String "shutdown") ]) in
            ignore (Unix.write fd (Bytes.of_string line) 0 (String.length line));
            Unix.close fd
          with Unix.Unix_error _ -> ())
        | None -> ());
        Domain.join d)
      f
  in
  (* One synthetic client: submit [lines], block until every submitted
     id is resolved (result or rejection), count both and collect the
     daemon-reported queue_s/e2e_s latencies off each result. *)
  let run_client sock lines =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX sock);
    let oc = Unix.out_channel_of_descr fd in
    let ic = Unix.in_channel_of_descr fd in
    let pending = Hashtbl.create 64 in
    List.iter
      (fun l ->
        (match Obs.Json.member "id" (Obs.Json.of_string l) with
        | Some (Obs.Json.String id) -> Hashtbl.replace pending id ()
        | _ -> ());
        output_string oc l;
        output_char oc '\n')
      lines;
    flush oc;
    let resolved = ref 0 and rejected = ref 0 in
    let queue_s = ref [] and e2e_s = ref [] in
    (try
       while Hashtbl.length pending > 0 do
         let line = input_line ic in
         let json = Obs.Json.of_string line in
         let typ = Option.bind (Obs.Json.member "type" json) Obs.Json.to_str in
         let id = Option.bind (Obs.Json.member "id" json) Obs.Json.to_str in
         match (typ, id) with
         | Some "result", Some id ->
           incr resolved;
           (match Option.bind (Obs.Json.member "queue_s" json) Obs.Json.to_float
            with
           | Some q -> queue_s := q :: !queue_s
           | None -> ());
           (match Option.bind (Obs.Json.member "e2e_s" json) Obs.Json.to_float
            with
           | Some e -> e2e_s := e :: !e2e_s
           | None -> ());
           Hashtbl.remove pending id
         | Some "rejected", Some id ->
           incr rejected;
           Hashtbl.remove pending id
         | _ -> ()
       done
     with End_of_file -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (!resolved, !rejected, !queue_s, !e2e_s)
  in
  (* Nearest-rank percentile over exact samples (these are the raw
     per-result latencies, not the daemon's log2-bucketed histograms,
     so the bench rows carry full precision for regression gating). *)
  let percentile samples q =
    match List.sort compare samples with
    | [] -> 0.0
    | sorted ->
      let n = List.length sorted in
      let rank =
        int_of_float (ceil (q *. float_of_int n)) |> max 1 |> min n
      in
      List.nth sorted (rank - 1)
  in
  let latency_fields queue_s e2e_s =
    [
      ("queue_p50_s", Obs.Json.Float (percentile queue_s 0.50));
      ("queue_p99_s", Obs.Json.Float (percentile queue_s 0.99));
      ("e2e_p50_s", Obs.Json.Float (percentile e2e_s 0.50));
      ("e2e_p99_s", Obs.Json.Float (percentile e2e_s 0.99));
    ]
  in
  let job id family extra =
    Printf.sprintf "{\"id\":%S,\"model\":{\"family\":%S%s},\"method\":\"xici\"}"
      id family extra
  in
  (* Throughput row *)
  let sock = Filename.concat dir "icvd-bench.sock" in
  let clients = 4 in
  let per_client = if quick then 8 else 32 in
  let throughput_row =
    with_daemon
      {
        Srv.Daemon.default_config with
        socket_path = Some sock;
        workers = max 2 domains;
        queue_capacity = 4096;
        tick_s = 0.01;
      }
      (fun () ->
        let t0 = Unix.gettimeofday () in
        let doms =
          List.init clients (fun c ->
              Domain.spawn (fun () ->
                  let lines =
                    List.init per_client (fun j ->
                        let id = Printf.sprintf "c%d-j%d" c j in
                        if j mod 4 = 3 then
                          job id "filter" ",\"depth\":4"
                        else job id "fifo" "")
                  in
                  run_client sock lines))
        in
        let results = List.map Domain.join doms in
        let wall = Unix.gettimeofday () -. t0 in
        let resolved = List.fold_left (fun a (r, _, _, _) -> a + r) 0 results in
        let rejected = List.fold_left (fun a (_, r, _, _) -> a + r) 0 results in
        let queue_s = List.concat_map (fun (_, _, q, _) -> q) results in
        let e2e_s = List.concat_map (fun (_, _, _, e) -> e) results in
        let jps = if wall > 0.0 then float_of_int resolved /. wall else 0.0 in
        Format.printf
          "  %d clients x %d jobs on %d workers: %d resolved, %d rejected, \
           %.2fs wall, %.1f jobs/s@.  queue p50/p99 %.3fs/%.3fs, e2e p50/p99 \
           %.3fs/%.3fs@.%!"
          clients per_client (max 2 domains) resolved rejected wall jps
          (percentile queue_s 0.50) (percentile queue_s 0.99)
          (percentile e2e_s 0.50) (percentile e2e_s 0.99);
        Obs.Json.Obj
          ([
             ("scenario", Obs.Json.String "throughput");
             ("clients", Obs.Json.Int clients);
             ("jobs_per_client", Obs.Json.Int per_client);
             ("workers", Obs.Json.Int (max 2 domains));
             ("resolved", Obs.Json.Int resolved);
             ("rejected", Obs.Json.Int rejected);
             ("wall_seconds", Obs.Json.Float wall);
             ("jobs_per_s", Obs.Json.Float jps);
           ]
          @ latency_fields queue_s e2e_s))
  in
  (* Overload row: one worker, a queue of 4 and a burst of slow jobs;
     the surplus must come back as explicit rejections. *)
  let sock2 = Filename.concat dir "icvd-overload.sock" in
  let overload_row =
    with_daemon
      {
        Srv.Daemon.default_config with
        socket_path = Some sock2;
        workers = 1;
        queue_capacity = 4;
        default_deadline_s = Some 60.0;
        tick_s = 0.01;
      }
      (fun () ->
        let burst = 12 in
        let lines =
          List.init burst (fun j ->
              (* power-of-2 depth (the filter model asserts it); the
                 whole burst lands in one socket write, so the surplus
                 over 1 running + 4 queued must bounce *)
              job (Printf.sprintf "burst-%d" j) "filter"
                (if quick then ",\"depth\":4" else ",\"depth\":8"))
        in
        let t0 = Unix.gettimeofday () in
        let resolved, rejected, queue_s, e2e_s = run_client sock2 lines in
        let wall = Unix.gettimeofday () -. t0 in
        Format.printf
          "  overload burst of %d on 1 worker (queue 4): %d resolved, %d \
           rejected explicitly, %.2fs wall@.%!"
          burst resolved rejected wall;
        Obs.Json.Obj
          ([
             ("scenario", Obs.Json.String "overload");
             ("burst", Obs.Json.Int burst);
             ("workers", Obs.Json.Int 1);
             ("queue_capacity", Obs.Json.Int 4);
             ("resolved", Obs.Json.Int resolved);
             ("rejected", Obs.Json.Int rejected);
             ("wall_seconds", Obs.Json.Float wall);
           ]
          @ latency_fields queue_s e2e_s))
  in
  if !json_mode then json_rows := [ overload_row; throughput_row ];
  (try Unix.rmdir dir with Unix.Unix_error _ | Sys_error _ -> ())

let ablations budgets =
  ablation_worstcase budgets;
  ablation_reorder budgets;
  ablation_idi budgets;
  ablation_grow budgets;
  ablation_cofactor budgets;
  ablation_cover budgets;
  ablation_simplify budgets;
  ablation_termination budgets;
  ablation_image budgets;
  ablation_pairbound budgets

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table                  *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  let open Bechamel in
  let quick_limits man =
    Mc.Limits.start ~max_iterations:50 ~max_live_nodes:1_000_000 man
  in
  let fifo =
    Staged.stage (fun () ->
        ignore
          (Mc.Xici.run ~limits:quick_limits
             (Models.Typed_fifo.make Models.Typed_fifo.default)))
  in
  let network =
    Staged.stage (fun () ->
        ignore
          (Mc.Xici.run ~limits:quick_limits
             (Models.Network.make { Models.Network.procs = 2; bug = false })))
  in
  let filter =
    Staged.stage (fun () ->
        ignore (Mc.Xici.run ~limits:quick_limits (filter_model 4 false)))
  in
  let cpu =
    Staged.stage (fun () ->
        ignore (Mc.Xici.run ~limits:quick_limits (cpu_model 2 1)))
  in
  let tests =
    Test.make_grouped ~name:"tables"
      [
        Test.make ~name:"table1-fifo-xici" fifo;
        Test.make ~name:"table1-network-xici" network;
        Test.make ~name:"table2-filter-xici" filter;
        Test.make ~name:"table3-cpu-xici" cpu;
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  head "=== Bechamel micro-benchmarks (monotonic clock, ns/run) ===";
  Hashtbl.iter
    (fun _instance tbl ->
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Format.printf "  %-28s %12.0f ns/run@." name est
          | Some _ | None -> Format.printf "  %-28s (no estimate)@." name)
        tbl)
    results

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)
(* ------------------------------------------------------------------ *)

let run tables run_ablations run_bechamel run_checkpoint parallel daemon
    batch max_live max_seconds quick json =
  json_mode := json;
  let budgets =
    if quick then
      { max_live = 400_000; max_seconds = 30.0; max_iterations = 100 }
    else { max_live; max_seconds; max_iterations = 100 }
  in
  let all =
    tables = [] && (not run_ablations) && (not run_bechamel)
    && (not run_checkpoint) && parallel = 0 && (not daemon) && not batch
  in
  let wants t = all || List.mem t tables in
  if wants 1 then
    with_json_artifact "BENCH_table1.json" (fun () -> table1 budgets);
  if wants 2 then
    with_json_artifact "BENCH_table2.json" (fun () -> table2 budgets);
  if wants 3 then
    with_json_artifact "BENCH_table3.json" (fun () -> table3 budgets);
  if run_ablations || all then ablations budgets;
  if run_checkpoint || all then bench_checkpoint budgets;
  if parallel > 0 then
    with_json_artifact "BENCH_parallel.json" (fun () ->
        bench_parallel budgets ~domains:(max 2 parallel));
  if daemon then
    with_json_artifact "BENCH_daemon.json" (fun () ->
        bench_daemon budgets ~domains:(max 2 parallel) ~quick);
  if batch then
    with_json_artifact "BENCH_batch.json" (fun () -> bench_batch budgets ~quick);
  if run_bechamel || all then bechamel_suite ();
  head "done."

let () =
  let open Cmdliner in
  let tables =
    Arg.(value & opt_all int [] & info [ "table" ] ~doc:"Run table N (1-3).")
  in
  let ablations_flag =
    Arg.(value & flag & info [ "ablations" ] ~doc:"Run ablation benchmarks.")
  in
  let bechamel =
    Arg.(value & flag & info [ "bechamel" ] ~doc:"Run Bechamel micro-suite.")
  in
  let checkpoint =
    Arg.(
      value & flag
      & info [ "checkpoint-overhead" ]
          ~doc:
            "Measure checkpointing overhead and escalating-budget recovery \
             cost.")
  in
  let parallel =
    Arg.(
      value & opt int 0
      & info [ "parallel" ] ~docv:"N"
          ~doc:
            "Benchmark the parallel portfolio on $(docv) worker domains \
             against the sequential config sweep (Table-1 models).  Writes \
             BENCH_parallel.json under --json.")
  in
  let daemon =
    Arg.(
      value & flag
      & info [ "daemon" ]
          ~doc:
            "Benchmark icvd throughput under synthetic many-client load \
             (jobs/sec) plus an overload-rejection scenario.  Writes \
             BENCH_daemon.json under --json.")
  in
  let batch =
    Arg.(
      value & flag
      & info [ "batch" ]
          ~doc:
            "Benchmark Mc.Batch multi-property verification (amortised \
             per-property cost) against the n-fold sequential unrolling.  \
             Writes BENCH_batch.json under --json.")
  in
  let max_live =
    Arg.(
      value & opt int default_max_live
      & info [ "max-live-nodes" ]
          ~doc:"Live-node budget (the paper's 60MB analog).")
  in
  let max_seconds =
    Arg.(
      value & opt float default_max_seconds
      & info [ "max-seconds" ] ~doc:"Per-run wall-clock budget.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Small budgets (smoke-testing the harness).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Also write machine-readable artifacts: one BENCH_tableN.json \
             per table run, each row carrying the report fields plus a \
             per-row telemetry snapshot.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "bench" ~doc:"Regenerate the paper's tables and ablations")
      Term.(
        const run $ tables $ ablations_flag $ bechamel $ checkpoint
        $ parallel $ daemon $ batch $ max_live $ max_seconds $ quick $ json)
  in
  exit (Cmd.eval cmd)
