(* The paper's evaluation and simplification policy (Section III.A).

   Two phases applied to an implicitly conjoined list:

   1. cross-simplification: each conjunct is simplified, one individually
      sound step at a time, by conjuncts currently smaller than it, using
      Restrict (or Constrain, for the ablation);
   2. greedy conjunction evaluation (Figure 1): repeatedly evaluate the
      pairwise conjunction whose BDD is smallest relative to the shared
      size of its two operands, until the best ratio exceeds
      GrowThreshold (1.5 in the paper). *)

type simplifier = Restrict | Constrain | Multi_restrict | No_simplify

type evaluation = Greedy | Optimal_cover | No_evaluation

type config = {
  grow_threshold : float;
  simplifier : simplifier;
  evaluation : evaluation;
  pair_step_factor : int option;
      (* the paper's future-work size-bounded AND: abort a pairwise
         conjunction after factor * shared-size recursion steps and
         treat the pair as unprofitable (ratio infinity).  [None] builds
         every pair unconditionally, as the paper's implementation did. *)
}

let default =
  { grow_threshold = 1.5; simplifier = Restrict; evaluation = Greedy;
    pair_step_factor = Some 64 }

(* Process-wide policy metrics ("policy.*" in Obs.Registry.default).
   NOTE: [config] is serialized field-by-field into checkpoints, so
   stats must stay out of it; the registry carries them instead. *)
module M = struct
  let reg = Obs.Registry.default
  let pairs_scored = Obs.Registry.counter reg "policy.pairs_scored"
  let pairs_abandoned = Obs.Registry.counter reg "policy.pairs_abandoned"
  let pair_cache_hits = Obs.Registry.counter reg "policy.pair_cache_hits"
  let merges = Obs.Registry.counter reg "policy.merges"
  let restrict_wins = Obs.Registry.counter reg "policy.restrict_wins"
  let restrict_losses = Obs.Registry.counter reg "policy.restrict_losses"
  let collapses = Obs.Registry.counter reg "policy.collapses"

  (* Best-pair size ratios, in percent (so 150 = the default
     GrowThreshold); log2 buckets separate "free" merges (<100) from
     marginal and hopeless ones. *)
  let ratio_pct = Obs.Registry.histogram reg "policy.best_ratio_pct"
end

let apply_simplifier man simplifier f care =
  match simplifier with
  | Restrict | Multi_restrict -> Bdd.restrict man f care
  | Constrain -> Bdd.constrain man f care
  | No_simplify -> f

(* One pass of cross-simplification.  Every individual replacement
   x_i := Simplify(x_i, x_j) with x_j still in the list preserves the
   implied conjunction, so any sequence of such steps is sound.  We
   process conjuncts from smallest to largest and only simplify by
   strictly smaller conjuncts ("simplifying a small BDD by a large BDD,
   in our experience, does little good"). *)
let simplify_pass man cfg xs =
  match cfg.simplifier with
  | No_simplify -> Clist.of_list man xs
  | Multi_restrict ->
    (* Section V's simultaneous simplification: each conjunct is
       simplified under the conjoined care set of ALL the others, which
       is never built.  Each individual replacement is sound (the other
       conjuncts remain in the list), so the sequence is sound. *)
    let xs = Clist.of_list man xs in
    if Clist.is_false xs then xs
    else begin
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let collapsed = ref false in
      for i = 0 to n - 1 do
        if not !collapsed then begin
          let others =
            List.filteri (fun j _ -> j <> i) (Array.to_list arr)
          in
          let r = Bdd.multi_restrict man arr.(i) others in
          if Bdd.size r < Bdd.size arr.(i) then
            Obs.Registry.incr M.restrict_wins
          else Obs.Registry.incr M.restrict_losses;
          if Bdd.is_false r then begin
            Obs.Registry.incr M.collapses;
            collapsed := true
          end
          else arr.(i) <- r
        end
      done;
      if !collapsed then [ Bdd.fls man ]
      else Clist.of_list man (Array.to_list arr)
    end
  | (Restrict | Constrain) as s ->
    let xs = Clist.of_list man xs in
    if Clist.is_false xs then xs
    else begin
      let arr = Array.of_list xs in
      let order =
        List.sort
          (fun i j -> compare (Bdd.size arr.(i)) (Bdd.size arr.(j)))
          (List.init (Array.length arr) (fun i -> i))
      in
      let collapsed = ref false in
      List.iter
        (fun i ->
          List.iter
            (fun j ->
              if (not !collapsed) && j <> i
                 && (not (Bdd.is_const arr.(j)))
                 && (not (Bdd.is_const arr.(i)))
                 && Bdd.size arr.(j) < Bdd.size arr.(i)
              then begin
                let r = apply_simplifier man s arr.(i) arr.(j) in
                if Bdd.size r < Bdd.size arr.(i) then
                  Obs.Registry.incr M.restrict_wins
                else Obs.Registry.incr M.restrict_losses;
                (* r = false means x_i /\ x_j is unsatisfiable. *)
                if Bdd.is_false r then begin
                  Obs.Registry.incr M.collapses;
                  collapsed := true
                end
                else arr.(i) <- r
              end)
            order)
        order;
      if !collapsed then [ Bdd.fls man ]
      else Clist.of_list man (Array.to_list arr)
    end

(* The pair table P of Figure 1, held by the caller so entries survive
   across [improve] calls (one traversal iteration each): pairs whose
   operands did not change between iterations keep their scored
   conjunction.  Node ids are monotone (never reused), so a stale tag
   key can never alias a different node -- but after a [Bdd.gc] the
   cached BDD values may be dead, so the table is invalidated whenever
   the manager's gc generation moves. *)
type state = {
  pairs : (int * int, Bdd.t option) Hashtbl.t;
  mutable gc_generation : int;
}

let create_state () = { pairs = Hashtbl.create 64; gc_generation = -1 }

let validate_state man st =
  let gen = Bdd.gc_events man in
  if st.gc_generation <> gen then begin
    Hashtbl.reset st.pairs;
    st.gc_generation <- gen
  end;
  st

(* Greedy pair evaluation, Figure 1 of the paper.  The pair table P is a
   cache keyed by conjunct tags; pass [state] (kept by the traversal
   loop) so entries survive across traversal iterations, not just
   across the merge loop below.  With [pair_step_factor = Some k] a
   pairwise conjunction is abandoned after k * shared-size recursion
   steps (and cached as hopeless), realising the size-bounded
   evaluation the paper proposes as future work. *)
let greedy_evaluate man ?state ?pair_step_factor ~grow_threshold xs =
  let state =
    validate_state man
      (match state with Some st -> st | None -> create_state ())
  in
  let pair_cache = state.pairs in
  let conjoin a b =
    let ka = Bdd.tag a and kb = Bdd.tag b in
    let key = if ka <= kb then (ka, kb) else (kb, ka) in
    match Hashtbl.find_opt pair_cache key with
    | Some p ->
      Obs.Registry.incr M.pair_cache_hits;
      p
    | None ->
      Obs.Registry.incr M.pairs_scored;
      let p =
        match pair_step_factor with
        | None -> Some (Bdd.band man a b)
        | Some factor ->
          let max_steps = (factor * Bdd.size_list [ a; b ]) + 1024 in
          Bdd.band_bounded man ~max_steps a b
      in
      if Option.is_none p then Obs.Registry.incr M.pairs_abandoned;
      Hashtbl.replace pair_cache key p;
      p
  in
  let rec loop xs =
    match xs with
    | [] | [ _ ] -> xs
    | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let best = ref None in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          match conjoin arr.(i) arr.(j) with
          | None -> () (* budget blown: ratio is effectively infinite *)
          | Some p ->
            let ratio =
              float_of_int (Bdd.size p)
              /. float_of_int (Bdd.size_list [ arr.(i); arr.(j) ])
            in
            (match !best with
            | Some (r, _, _, _) when r <= ratio -> ()
            | _ -> best := Some (ratio, i, j, p))
        done
      done;
      (match !best with
      | Some (r, _, _, _) ->
        Obs.Registry.observe M.ratio_pct (int_of_float (r *. 100.0))
      | None -> ());
      (match !best with
      | Some (r, i, j, p) when r <= grow_threshold ->
        Obs.Registry.incr M.merges;
        let rest =
          List.filteri (fun k _ -> k <> i && k <> j) (Array.to_list arr)
        in
        loop (Clist.of_list man (p :: rest))
      | Some _ | None -> xs)
  in
  loop (Clist.of_list man xs)

(* Exact minimum-cost pairwise cover (Theorem 2), used as an ablation
   baseline for the greedy policy. *)
let cover_evaluate man xs =
  let xs = Clist.of_list man xs in
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n <= 1 || n > Matching.max_exact then xs
  else begin
    let pair i j = Bdd.band man arr.(i) arr.(j) in
    let pair_cost i j = Bdd.size (pair i j) in
    let single_cost i = Bdd.size arr.(i) in
    let cover = Matching.min_cost_pair_cover ~n ~single_cost ~pair_cost in
    let parts =
      List.map
        (function
          | Matching.Single i -> arr.(i)
          | Matching.Pair (i, j) -> pair i j)
        cover
    in
    Clist.of_list man parts
  end

(* A pluggable replacement for the greedy evaluation phase (the
   parallel pair-scoring layer in Mc plugs in here, without this
   package depending on it).  Returning [None] declines the list and
   falls back to the sequential greedy loop.  NOTE: [config] is
   serialized field-by-field into checkpoints, so the evaluator is a
   separate argument, not a config field. *)
type evaluator =
  Bdd.man ->
  pair_step_factor:int option ->
  grow_threshold:float ->
  Bdd.t list ->
  Bdd.t list option

(* The full XICI list transformer: simplify, then evaluate.  Each phase
   is a span so traces show where policy time goes; args record the
   list length going in and out. *)
let improve man ?state ?evaluator cfg xs =
  let tracer = Obs.Tracer.global () in
  let span name n f =
    Obs.Tracer.with_span tracer ~cat:"policy"
      ~args:(fun () -> [ ("conjuncts", Obs.Json.Int n) ])
      name f
  in
  let xs =
    span "policy.simplify" (List.length xs) (fun () ->
        simplify_pass man cfg xs)
  in
  if Clist.is_false xs then xs
  else
    span "policy.evaluate" (List.length xs) (fun () ->
        match cfg.evaluation with
        | Greedy -> (
          let delegated =
            match evaluator with
            | Some ev ->
              ev man ~pair_step_factor:cfg.pair_step_factor
                ~grow_threshold:cfg.grow_threshold xs
            | None -> None
          in
          match delegated with
          | Some ys -> Clist.of_list man ys
          | None ->
            greedy_evaluate man ?state
              ?pair_step_factor:cfg.pair_step_factor
              ~grow_threshold:cfg.grow_threshold xs)
        | Optimal_cover -> cover_evaluate man xs
        | No_evaluation -> xs)
