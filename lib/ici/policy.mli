(** The evaluation and simplification policy of Section III.A.

    [improve] transforms an implicitly conjoined list into an equivalent
    list of smaller overall size: cross-simplification with Restrict (or
    Constrain) followed by greedy evaluation of profitable pairwise
    conjunctions (Figure 1 of the paper). *)

type simplifier =
  | Restrict
  | Constrain
  | Multi_restrict
      (** simultaneous simplification by all other conjuncts at once
          (the Section-V future-work routine, via
          {!Bdd.multi_restrict}) *)
  | No_simplify

type evaluation =
  | Greedy  (** Figure 1: best-ratio pair until ratio > threshold *)
  | Optimal_cover  (** Theorem 2: exact min-cost pairwise cover *)
  | No_evaluation

type config = {
  grow_threshold : float;  (** the paper uses 1.5 *)
  simplifier : simplifier;
  evaluation : evaluation;
  pair_step_factor : int option;
      (** the paper's future-work size-bounded AND: give up on a
          pairwise conjunction after [factor * shared-size] recursion
          steps and treat the pair as unprofitable.  [None] builds
          every pair unconditionally (the paper's implementation). *)
}

val default : config
(** grow_threshold 1.5, Restrict, Greedy, pair budget 64x. *)

val simplify_pass : Bdd.man -> config -> Clist.t -> Clist.t
(** Cross-simplification only: each conjunct simplified by currently
    strictly smaller conjuncts, one individually-sound step at a time.
    Preserves the implied conjunction. *)

type state
(** The pair table P of Figure 1, held by the traversal loop so scored
    pairs survive across {!improve} calls.  Keyed by conjunct tags
    (node ids are never reused, so stale keys cannot alias) and
    invalidated automatically when the manager's gc generation
    ({!Bdd.gc_events}) moves, since cached BDD values may be dead after
    a collection. *)

val create_state : unit -> state
(** A fresh, empty pair table.  One per traversal run; sharing across
    managers is safe only because the table self-invalidates, so don't. *)

val greedy_evaluate :
  Bdd.man ->
  ?state:state ->
  ?pair_step_factor:int ->
  grow_threshold:float ->
  Clist.t ->
  Clist.t
(** Figure 1.  Repeatedly replace the pair [xi, xj] minimising
    [size(xi /\ xj) / shared_size(xi, xj)] by its conjunction while the
    ratio is at most [grow_threshold].  Without [state] the pair table
    only lives for this one call. *)

val cover_evaluate : Bdd.man -> Clist.t -> Clist.t
(** Theorem-2 baseline: evaluate the exact minimum-cost pairwise cover
    (identity on lists longer than {!Matching.max_exact}). *)

type evaluator =
  Bdd.man ->
  pair_step_factor:int option ->
  grow_threshold:float ->
  Bdd.t list ->
  Bdd.t list option
(** Pluggable replacement for the greedy evaluation phase (e.g. the
    parallel pair-scoring layer in Mc).  Returning [None] declines and
    {!improve} falls back to the sequential greedy loop. *)

val improve :
  Bdd.man -> ?state:state -> ?evaluator:evaluator -> config -> Clist.t -> Clist.t
(** The full policy: simplify then evaluate.  Preserves the implied
    conjunction.  [state] persists the greedy pair table across calls;
    [evaluator] substitutes the Greedy evaluation phase. *)
