(** The exact termination test of Section III.B.

    Decides tautology of an implicit disjunction (and, through it,
    implication and equality of implicit conjunctions) without building
    the disjunction: constant and complement filtering, Theorem-3
    Restrict-based pairwise filtering, then recursive Shannon
    expansion. *)

type var_choice =
  | First_top  (** top variable of the first BDD — the paper's choice *)
  | Lowest_level  (** globally top-most variable in the list *)
  | Most_common  (** most frequent root variable *)

type stats = {
  mutable expansions : int;  (** Shannon expansions *)
  mutable simplifications : int;  (** Theorem-3 Restrict calls *)
  mutable max_depth : int;  (** deepest Shannon recursion *)
  mutable memo_hits : int;
  mutable checks : int;  (** top-level {!check} calls *)
  mutable constant_hits : int;  (** TRUE-member short circuits (step 1) *)
  mutable complement_hits : int;  (** complement-pair detections (step 2) *)
  mutable duplicate_hits : int;  (** duplicates dropped (step 2) *)
  mutable pairwise_tautologies : int;
      (** step-3 Restrict reduced a member to TRUE *)
  mutable fuel_exhausted : int;
      (** [Out_of_fuel] raises; callers typically retry with more fuel *)
}
(** Per-filter cost and hit counters.  Every update is mirrored into
    process-wide ["taut.*"] metrics in [Obs.Registry.default], so the
    breakdown is visible to [icv --stats] and bench snapshots without
    threading a record. *)

val fresh_stats : unit -> stats
(** A zeroed record ({!check} allocates its own when none is passed). *)

exception Out_of_fuel

type memo_table
(** A caller-held memo of subproblem verdicts, keyed by canonical tag
    lists.  Hold one across {!check} calls — in particular across an
    [Out_of_fuel] escape — and the retry resumes from the verdicts
    already settled instead of redoing every expansion.  Only completed
    subproblems are ever stored, so reuse across fuel budgets (and
    across [var_choice]/[simplify] settings: verdicts are semantic) is
    sound.  Valid for a single manager only. *)

val create_memo : unit -> memo_table
(** A fresh, empty memo table. *)

val check :
  ?var_choice:var_choice ->
  ?simplify:bool ->
  ?memo:bool ->
  ?fuel:int ->
  ?memo_table:memo_table ->
  ?stats:stats ->
  Bdd.man ->
  Bdd.t list ->
  bool
(** Is [d1 \/ ... \/ dn] a tautology?  The test is exact; worst-case
    exponential.  [fuel] bounds the number of Shannon expansions
    (raising [Out_of_fuel]); [simplify] toggles the Theorem-3 step
    (default true); [memo] caches subproblem verdicts by canonical tag
    lists (default true — an improvement over the paper, collapsing
    symmetric worst cases to polynomial).  [memo_table] makes that
    cache caller-held so it persists across calls and fuel retries;
    without it the table lives only for this one call. *)

val implies :
  ?var_choice:var_choice ->
  ?simplify:bool ->
  ?memo:bool ->
  ?fuel:int ->
  ?memo_table:memo_table ->
  ?stats:stats ->
  Bdd.man ->
  Clist.t ->
  Clist.t ->
  bool
(** Implication between implicit conjunctions. *)

val equal :
  ?var_choice:var_choice ->
  ?simplify:bool ->
  ?memo:bool ->
  ?fuel:int ->
  ?memo_table:memo_table ->
  ?stats:stats ->
  Bdd.man ->
  Clist.t ->
  Clist.t ->
  bool
(** Exact equality of two implicit conjunctions (mutual implication):
    the paper's termination test. *)
