(* Exact tautology test for implicit disjunctions (Section III.B).

   Given BDDs d1..dn, decide whether d1 \/ ... \/ dn is a tautology
   without building the disjunction.  Steps, as in the paper:

   1. constant filtering: any TRUE member => tautology; drop FALSE;
   2. complement / duplicate detection (constant-time per pair thanks to
      complement edges: tag(not d) = tag(d) lxor 1);
   3. pairwise-disjunction filtering, obtained for free via Theorem 3 by
      Restrict-simplifying each member by the negations of the others and
      re-running steps 1-2;
   4. Shannon expansion on a chosen variable, recursing on both cofactor
      lists.

   The test is exponential in the worst case; [fuel] bounds the number of
   Shannon expansions so callers can observe and bound the cost.  The
   [stats] counters make the cost measurable for the benchmarks. *)

type var_choice =
  | First_top  (* top variable of the first BDD (the paper's choice) *)
  | Lowest_level  (* globally top-most variable in the list *)
  | Most_common  (* most frequent root variable in the list *)

type stats = {
  mutable expansions : int;  (* Shannon expansion count *)
  mutable simplifications : int;  (* restrict calls in step 3 *)
  mutable max_depth : int;
  mutable memo_hits : int;
  mutable checks : int;  (* top-level check calls *)
  mutable constant_hits : int;  (* step-1 TRUE-member short circuits *)
  mutable complement_hits : int;  (* step-2 complement-pair detections *)
  mutable duplicate_hits : int;  (* step-2 duplicates dropped *)
  mutable pairwise_tautologies : int;  (* step-3 Restrict found TRUE *)
  mutable fuel_exhausted : int;  (* Out_of_fuel raises (caller retries) *)
}

let fresh_stats () =
  {
    expansions = 0;
    simplifications = 0;
    max_depth = 0;
    memo_hits = 0;
    checks = 0;
    constant_hits = 0;
    complement_hits = 0;
    duplicate_hits = 0;
    pairwise_tautologies = 0;
    fuel_exhausted = 0;
  }

(* Registry mirrors: every filter that fires also bumps a process-wide
   counter, so [icv --stats] and bench snapshots see the per-filter
   breakdown without threading a stats record from the top.  Handles
   are resolved once here. *)
module M = struct
  let reg = Obs.Registry.default
  let checks = Obs.Registry.counter reg "taut.checks"
  let expansions = Obs.Registry.counter reg "taut.expansions"
  let simplifications = Obs.Registry.counter reg "taut.simplifications"
  let memo_hits = Obs.Registry.counter reg "taut.memo_hits"
  let constant_hits = Obs.Registry.counter reg "taut.constant_hits"
  let complement_hits = Obs.Registry.counter reg "taut.complement_hits"
  let duplicate_hits = Obs.Registry.counter reg "taut.duplicate_hits"
  let pairwise_tautologies = Obs.Registry.counter reg "taut.pairwise_tautologies"
  let fuel_exhausted = Obs.Registry.counter reg "taut.fuel_exhausted"
  let max_depth = Obs.Registry.gauge reg "taut.max_depth"
  let members = Obs.Registry.histogram reg "taut.check_members"
end

exception Out_of_fuel

(* Caller-held memo table (sorted-tag-list -> verdict).  Only verdicts
   of COMPLETED subproblems are ever stored, so a table that survives
   an [Out_of_fuel] escape is sound to reuse on the retry: the rerun
   skips every subtree it already settled instead of redoing all the
   expansions.  Entries are also valid across var_choice/simplify
   settings (the verdict is semantic) and across gc (node ids are never
   reused), but only within the one manager whose tags keyed them. *)
type memo_table = (int list, bool) Hashtbl.t

let create_memo () : memo_table = Hashtbl.create 64

let choose_var choice ds =
  match choice, ds with
  | _, [] -> invalid_arg "Tautology.choose_var: empty list"
  | First_top, d :: _ -> Bdd.level d
  | Lowest_level, _ ->
    List.fold_left (fun acc d -> min acc (Bdd.level d)) max_int ds
  | Most_common, _ ->
    let counts = Hashtbl.create 8 in
    List.iter
      (fun d ->
        let v = Bdd.level d in
        Hashtbl.replace counts v
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
      ds;
    let best, _ =
      Hashtbl.fold
        (fun v c ((_, bc) as acc) -> if c > bc then (v, c) else acc)
        counts (-1, 0)
    in
    best

(* Steps 1-2: constants, duplicates, complements.  Returns [None] when
   the disjunction is already known to be a tautology. *)
let filter_members stats ds =
  let seen = Hashtbl.create 16 in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | d :: rest ->
      if Bdd.is_true d then begin
        stats.constant_hits <- stats.constant_hits + 1;
        Obs.Registry.incr M.constant_hits;
        None
      end
      else if Bdd.is_false d then go acc rest
      else begin
        let t = Bdd.tag d in
        if Hashtbl.mem seen (t lxor 1) then begin
          (* complement present *)
          stats.complement_hits <- stats.complement_hits + 1;
          Obs.Registry.incr M.complement_hits;
          None
        end
        else if Hashtbl.mem seen t then begin
          (* duplicate *)
          stats.duplicate_hits <- stats.duplicate_hits + 1;
          Obs.Registry.incr M.duplicate_hits;
          go acc rest
        end
        else begin
          Hashtbl.add seen t ();
          go (d :: acc) rest
        end
      end
  in
  go [] ds

(* Step 3 via Theorem 3: d_i := Restrict(d_i, not d_j).  Each step is
   individually sound for the disjunction (where d_j holds the
   disjunction is true regardless of d_i), and if any member becomes
   constant TRUE the pairwise disjunction was a tautology. *)
let simplify_members man stats ds =
  let arr = Array.of_list ds in
  let n = Array.length arr in
  let tauto = ref false in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if (not !tauto) && i <> j
         && (not (Bdd.is_const arr.(i)))
         && not (Bdd.is_const arr.(j))
      then begin
        stats.simplifications <- stats.simplifications + 1;
        Obs.Registry.incr M.simplifications;
        let r = Bdd.restrict man arr.(i) (Bdd.bnot man arr.(j)) in
        if Bdd.is_true r then begin
          stats.pairwise_tautologies <- stats.pairwise_tautologies + 1;
          Obs.Registry.incr M.pairwise_tautologies;
          tauto := true
        end
        else arr.(i) <- r
      end
    done
  done;
  if !tauto then None else Some (Array.to_list arr)

(* Memoisation of subproblems: the recursion often reaches the same
   implicit disjunction along exponentially many cofactor paths (e.g.
   lists of symmetric or counting functions).  By canonicity the sorted
   tag list identifies the disjunction exactly, so caching verdicts
   turns such cases polynomial.  An improvement over the paper's
   description (which has no memo); disable with [memo:false] to
   measure the difference (see the worst-case ablation benchmark). *)
let check ?(var_choice = First_top) ?(simplify = true) ?(memo = true) ?fuel
    ?memo_table ?stats man ds =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  (* [memo_table] lets the caller hold the table across calls -- in
     particular across an [Out_of_fuel] escape, which used to discard
     every accumulated verdict right when they were most needed. *)
  let table : memo_table =
    match memo_table with Some t -> t | None -> create_memo ()
  in
  let burn () =
    stats.expansions <- stats.expansions + 1;
    Obs.Registry.incr M.expansions;
    match fuel with
    | Some limit when stats.expansions > limit ->
      stats.fuel_exhausted <- stats.fuel_exhausted + 1;
      Obs.Registry.incr M.fuel_exhausted;
      raise Out_of_fuel
    | _ -> ()
  in
  let rec go depth ds =
    if depth > stats.max_depth then begin
      stats.max_depth <- depth;
      Obs.Registry.set_max M.max_depth (float_of_int depth)
    end;
    match filter_members stats ds with
    | None -> true
    | Some [] -> false
    | Some [ d ] -> Bdd.is_true d
    | Some ds -> (
      let key =
        if memo then Some (List.sort compare (List.map Bdd.tag ds)) else None
      in
      match Option.bind key (Hashtbl.find_opt table) with
      | Some verdict ->
        stats.memo_hits <- stats.memo_hits + 1;
        Obs.Registry.incr M.memo_hits;
        verdict
      | None ->
        let verdict = expand depth ds in
        (match key with
        | Some k -> Hashtbl.replace table k verdict
        | None -> ());
        verdict)
  and expand depth ds =
    let ds =
      if simplify then
        match simplify_members man stats ds with
        | None -> [ Bdd.tru man ]
        | Some ds' -> ds'
      else ds
    in
    match filter_members stats ds with
    | None -> true
    | Some [] -> false
    | Some [ d ] -> Bdd.is_true d
    | Some ds ->
      burn ();
      let v = choose_var var_choice ds in
      let cof value =
        List.map (fun d -> Bdd.cofactor man ~lvl:v ~value d) ds
      in
      go (depth + 1) (cof false) && go (depth + 1) (cof true)
  in
  stats.checks <- stats.checks + 1;
  Obs.Registry.incr M.checks;
  Obs.Registry.observe M.members (List.length ds);
  Obs.Tracer.with_span (Obs.Tracer.global ()) ~cat:"taut"
    ~args:(fun () -> [ ("members", Obs.Json.Int (List.length ds)) ])
    "taut.check"
    (fun () -> go 0 ds)

(* X => Y for implicit conjunctions X = /\ xs, Y = /\ ys: for every y_j,
   (not x1 \/ ... \/ not xn \/ y_j) must be a tautology. *)
let implies ?var_choice ?simplify ?memo ?fuel ?memo_table ?stats man xs ys =
  let negated = List.map (Bdd.bnot man) xs in
  List.for_all
    (fun y ->
      check ?var_choice ?simplify ?memo ?fuel ?memo_table ?stats man
        (y :: negated))
    ys

(* Exact equality of two implicit conjunctions (the paper's termination
   test): mutual implication. *)
let equal ?var_choice ?simplify ?memo ?fuel ?memo_table ?stats man xs ys =
  implies ?var_choice ?simplify ?memo ?fuel ?memo_table ?stats man xs ys
  && implies ?var_choice ?simplify ?memo ?fuel ?memo_table ?stats man ys xs
