(* Declarative verification jobs for the resident daemon.

   A job names a model by (family, parameters) instead of carrying
   BDDs: the daemon builds the model once per distinct parameterisation
   and caches the frozen form under [model_key] (a digest of the
   canonical declaration text), so a thousand jobs on the same design
   pay one build.  The spec is deliberately the same surface icv's
   flags expose -- a daemon job and a one-shot CLI run describe the
   same verification problem, which is what makes verdict-parity
   checking (CI's daemon smoke) meaningful. *)

type model_spec = {
  family : string;  (* fifo | network | filter | cpu | abp *)
  depth : int;
  width : int;
  procs : int;
  regs : int;
  bound : int;
  assisted : bool;
  bug : bool;
}

let default_model =
  {
    family = "fifo";
    depth = 5;
    width = 8;
    procs = 4;
    regs = 2;
    bound = 128;
    assisted = false;
    bug = false;
  }

type fault_action = Crash | Exceed

type fault = {
  after_steps : int option;
  after_iterations : int option;
  action : fault_action;
}

type meth = Method of Mc.Runner.meth | Portfolio

type t = {
  id : string;
  model : model_spec;
  meth : meth;
  batch : bool;
  deadline_s : float option;
  max_live_nodes : int option;
  grow_threshold : float option;
  progress : bool;
  trace : bool;
  fault : fault option;
}

(* --- model building ------------------------------------------------- *)

let build (m : model_spec) : Mc.Model.t =
  match String.lowercase_ascii m.family with
  | "fifo" ->
    Models.Typed_fifo.make
      {
        Models.Typed_fifo.depth = m.depth;
        width = m.width;
        bound = m.bound;
        bug = m.bug;
      }
  | "network" ->
    Models.Network.make { Models.Network.procs = m.procs; bug = m.bug }
  | "filter" ->
    Models.Avg_filter.make
      {
        Models.Avg_filter.depth = m.depth;
        sample_width = m.width;
        assisted = m.assisted;
        bug = m.bug;
      }
  | "cpu" ->
    Models.Pipeline_cpu.make
      {
        Models.Pipeline_cpu.regs = m.regs;
        width = m.width;
        assisted = m.assisted;
        bug = m.bug;
      }
  | "abp" -> Models.Abp.make { Models.Abp.width = m.width; bug = m.bug }
  | other -> failwith (Printf.sprintf "unknown model family %S" other)

(* The canonical declaration text only mentions the parameters the
   family actually reads, so specs differing in an ignored field (e.g.
   [procs] on a FIFO job) share one cache entry. *)
let canonical (m : model_spec) =
  match String.lowercase_ascii m.family with
  | "fifo" ->
    Printf.sprintf "fifo depth=%d width=%d bound=%d bug=%b" m.depth m.width
      m.bound m.bug
  | "network" -> Printf.sprintf "network procs=%d bug=%b" m.procs m.bug
  | "filter" ->
    Printf.sprintf "filter depth=%d width=%d assisted=%b bug=%b" m.depth
      m.width m.assisted m.bug
  | "cpu" ->
    Printf.sprintf "cpu regs=%d width=%d assisted=%b bug=%b" m.regs m.width
      m.assisted m.bug
  | "abp" -> Printf.sprintf "abp width=%d bug=%b" m.width m.bug
  | other -> Printf.sprintf "unknown %s" other

let model_key m = Digest.to_hex (Digest.string (canonical m))

(* --- JSON ----------------------------------------------------------- *)

let meth_of_string s =
  if String.lowercase_ascii s = "portfolio" then Some Portfolio
  else Option.map (fun m -> Method m) (Mc.Runner.of_name s)

let meth_name = function
  | Method m -> Mc.Runner.name m
  | Portfolio -> "portfolio"

let ( let* ) = Result.bind

let field_int ?default name json =
  match Obs.Json.member name json with
  | None -> (
    match default with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "missing field %S" name))
  | Some v -> (
    match Obs.Json.to_int v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "field %S must be an integer" name))

let field_bool ~default name json =
  match Obs.Json.member name json with
  | None -> Ok default
  | Some (Obs.Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let field_str ?default name json =
  match Obs.Json.member name json with
  | None -> (
    match default with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "missing field %S" name))
  | Some v -> (
    match Obs.Json.to_str v with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "field %S must be a string" name))

let field_float_opt name json =
  match Obs.Json.member name json with
  | None -> Ok None
  | Some v -> (
    match Obs.Json.to_float v with
    | Some f -> Ok (Some f)
    | None -> Error (Printf.sprintf "field %S must be a number" name))

let field_int_opt name json =
  match Obs.Json.member name json with
  | None -> Ok None
  | Some v -> (
    match Obs.Json.to_int v with
    | Some i -> Ok (Some i)
    | None -> Error (Printf.sprintf "field %S must be an integer" name))

let model_of_json json =
  let* family = field_str "family" json in
  let d = default_model in
  let* depth = field_int ~default:d.depth "depth" json in
  let* width = field_int ~default:d.width "width" json in
  let* procs = field_int ~default:d.procs "procs" json in
  let* regs = field_int ~default:d.regs "regs" json in
  let* bound = field_int ~default:d.bound "bound" json in
  let* assisted = field_bool ~default:d.assisted "assisted" json in
  let* bug = field_bool ~default:d.bug "bug" json in
  Ok { family; depth; width; procs; regs; bound; assisted; bug }

let fault_of_json json =
  let* after_steps = field_int_opt "after_steps" json in
  let* after_iterations = field_int_opt "after_iterations" json in
  let* action =
    let* s = field_str ~default:"crash" "action" json in
    match String.lowercase_ascii s with
    | "crash" -> Ok Crash
    | "exceed" -> Ok Exceed
    | other -> Error (Printf.sprintf "unknown fault action %S" other)
  in
  if after_steps = None && after_iterations = None then
    Error "fault needs after_steps or after_iterations"
  else Ok { after_steps; after_iterations; action }

let of_json json =
  match json with
  | Obs.Json.Obj _ ->
    let* id = field_str "id" json in
    if id = "" then Error "empty job id"
    else
      let* model =
        match Obs.Json.member "model" json with
        | Some m -> model_of_json m
        | None -> Error "missing field \"model\""
      in
      let* meth =
        let* s = field_str ~default:"xici" "method" json in
        match meth_of_string s with
        | Some m -> Ok m
        | None -> Error (Printf.sprintf "unknown method %S" s)
      in
      let* batch = field_bool ~default:false "batch" json in
      let* () =
        if batch && meth = Portfolio then
          Error "batch jobs need a single method, not portfolio"
        else Ok ()
      in
      let* deadline_s = field_float_opt "deadline_s" json in
      let* max_live_nodes = field_int_opt "max_live_nodes" json in
      let* grow_threshold = field_float_opt "grow_threshold" json in
      let* progress = field_bool ~default:false "progress" json in
      let* trace = field_bool ~default:false "trace" json in
      let* fault =
        match Obs.Json.member "fault" json with
        | None -> Ok None
        | Some f ->
          let* f = fault_of_json f in
          Ok (Some f)
      in
      Ok
        {
          id;
          model;
          meth;
          batch;
          deadline_s;
          max_live_nodes;
          grow_threshold;
          progress;
          trace;
          fault;
        }
  | _ -> Error "job must be a JSON object"

let model_to_json (m : model_spec) =
  Obs.Json.Obj
    [
      ("family", Obs.Json.String m.family);
      ("depth", Obs.Json.Int m.depth);
      ("width", Obs.Json.Int m.width);
      ("procs", Obs.Json.Int m.procs);
      ("regs", Obs.Json.Int m.regs);
      ("bound", Obs.Json.Int m.bound);
      ("assisted", Obs.Json.Bool m.assisted);
      ("bug", Obs.Json.Bool m.bug);
    ]

let to_json t =
  let base =
    [
      ("id", Obs.Json.String t.id);
      ("model", model_to_json t.model);
      ("method", Obs.Json.String (meth_name t.meth));
      ("batch", Obs.Json.Bool t.batch);
      ("progress", Obs.Json.Bool t.progress);
      ("trace", Obs.Json.Bool t.trace);
    ]
  in
  let opt name conv = function
    | None -> []
    | Some v -> [ (name, conv v) ]
  in
  Obs.Json.Obj
    (base
    @ opt "deadline_s" (fun f -> Obs.Json.Float f) t.deadline_s
    @ opt "max_live_nodes" (fun i -> Obs.Json.Int i) t.max_live_nodes
    @ opt "grow_threshold" (fun f -> Obs.Json.Float f) t.grow_threshold
    @ opt "fault"
        (fun (f : fault) ->
          Obs.Json.Obj
            ((match f.after_steps with
             | Some s -> [ ("after_steps", Obs.Json.Int s) ]
             | None -> [])
            @ (match f.after_iterations with
              | Some i -> [ ("after_iterations", Obs.Json.Int i) ]
              | None -> [])
            @ [
                ( "action",
                  Obs.Json.String
                    (match f.action with Crash -> "crash" | Exceed -> "exceed")
                );
              ]))
        t.fault)
