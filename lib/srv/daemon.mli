(** The icvd event loop: a single-threaded select() loop owning all
    I/O and supervision, with the pool's worker domains reached
    through the admission queue (in) and the event queue (out).

    Shutdown contract: SIGTERM/SIGINT, a ["shutdown"] request, or
    stdin EOF in stdio mode flips the draining flag.  A draining
    daemon stops accepting connections, answers every new submit with
    [rejected "draining"], finishes everything already admitted, joins
    the pool and returns.  Overload has the same shape: a full
    admission queue or memory-pressure level 3 answers [rejected ...]
    immediately — the daemon never buffers unboundedly and never drops
    a job silently. *)

type config = {
  socket_path : string option;  (** listen on this Unix-domain socket *)
  stdio : bool;  (** serve stdin/stdout as client 0 (test mode) *)
  workers : int;
  queue_capacity : int;
  checkpoint_dir : string option;
      (** enables checkpoint-backed resume for XICI jobs; one file per
          admission, deleted when the job resolves *)
  trace_dir : string option;
      (** where per-job span-tree JSONL files land for jobs submitted
          with ["trace": true]; falls back to [checkpoint_dir], then
          the system temp dir.  Flight-recorder dumps also land in
          [checkpoint_dir] (or here when no checkpoint dir is set). *)
  default_deadline_s : float option;
      (** applied to jobs that do not carry their own deadline *)
  hang_timeout_s : float;
  max_total_live : int option;
  max_attempts : int;
  portfolio_domains : int;
  tick_s : float;  (** supervision/select granularity *)
}

val default_config : config
(** stdio off, no socket (configure at least one), 2 workers, queue
    capacity 16, 10s hang timeout, 50ms tick. *)

val run : ?on_ready:(unit -> unit) -> config -> unit
(** Run until drained.  [on_ready] fires once the socket is bound and
    listening (used by tests and the CI smoke script to avoid
    connect-before-bind races).  Signal handlers are restored on
    return. *)
