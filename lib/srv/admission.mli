(** Bounded admission queue: the daemon's backpressure primitive.

    The normal lane is capped; a full queue refuses immediately, which
    the daemon turns into an explicit protocol rejection — overload is
    always an answer, never an unbounded buffer.  The urgent lane
    carries requeued jobs (crash/hang recovery): already admitted
    once, so bouncing them on a full queue would turn a worker fault
    into a lost job.  It is popped first and bypasses the cap; its
    size is bounded by the number of in-flight jobs, which the cap
    already bounded. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] is clamped to at least 1. *)

val try_push : 'a t -> 'a -> (int, string) result
(** Enqueue on the normal lane.  [Ok depth] with the resulting total
    depth, or [Error reason] when full or closed — never blocks. *)

val push_urgent : 'a t -> 'a -> unit
(** Enqueue on the urgent lane (no-op after {!close}). *)

val pop : 'a t -> 'a option
(** Block until an element is available (urgent lane first) or the
    queue is closed and drained, then [None] — the consumer's signal
    to exit. *)

val close : 'a t -> unit
(** Refuse further pushes and wake all blocked consumers. *)

val depth : 'a t -> int
val is_empty : 'a t -> bool
