(** Declarative verification jobs for the resident daemon.

    A job names a model by (family, parameters) instead of carrying
    BDDs, so the daemon can build each distinct parameterisation once
    and cache its frozen form under {!model_key}.  The surface mirrors
    icv's flags: a daemon job and a one-shot CLI run describe the same
    verification problem, which is what makes verdict-parity checking
    meaningful. *)

type model_spec = {
  family : string;  (** fifo | network | filter | cpu | abp *)
  depth : int;
  width : int;
  procs : int;
  regs : int;
  bound : int;
  assisted : bool;
  bug : bool;
}

val default_model : model_spec
(** fifo, depth 5, width 8, bound 128 — the icv defaults. *)

type fault_action = Crash | Exceed

type fault = {
  after_steps : int option;  (** fire after this many kernel steps *)
  after_iterations : int option;  (** or after this many iterations *)
  action : fault_action;
}
(** Deterministic fault injection for tests and the CI smoke job:
    [Crash] raises an exception the worker does not catch (exercising
    the supervisor's crash path), [Exceed] raises
    {!Mc.Limits.Exceeded}.  Fires on the first attempt only, so the
    retry demonstrates recovery. *)

type meth = Method of Mc.Runner.meth | Portfolio

type t = {
  id : string;
  model : model_spec;
  meth : meth;
  batch : bool;
      (** verify each conjunct of the model's property as its own
          property via {!Mc.Batch.run}, sharing derived invariants; the
          result event carries a per-property verdict array.  Rejected
          with [Portfolio]. *)
  deadline_s : float option;
  max_live_nodes : int option;
  grow_threshold : float option;
  progress : bool;  (** stream per-iteration progress events *)
  trace : bool;
      (** record this job's spans (queue wait, thaw, every fixpoint
          iteration and image) into a per-job JSONL trace file whose
          path the result event reports; render it with [icv explain] *)
  fault : fault option;
}

val build : model_spec -> Mc.Model.t
(** Raises [Failure] on an unknown family. *)

val canonical : model_spec -> string
(** Canonical declaration text: only the parameters the family actually
    reads, so specs differing in an ignored field share a cache slot. *)

val model_key : model_spec -> string
(** Digest of {!canonical} — the frozen-model cache key. *)

val meth_of_string : string -> meth option
val meth_name : meth -> string

val of_json : Obs.Json.t -> (t, string) result
(** Parse a job object; the error is a human-readable reason suitable
    for a protocol [rejected] event.  Unknown fields are ignored;
    model parameters default to {!default_model}; [method] defaults to
    xici. *)

val to_json : t -> Obs.Json.t
