(* Bounded admission queue: the daemon's backpressure primitive.

   Two lanes.  The normal lane is capped at [capacity]; when it is full
   [try_push] refuses immediately, which the daemon turns into an
   explicit "rejected" event -- overload is always a protocol answer,
   never an unbounded buffer.  The urgent lane is for requeued jobs
   (crash/hang recovery): they were already admitted once, so bouncing
   them on a full queue would turn a worker fault into a lost job.  It
   is popped first and bypasses the cap; its size is bounded by the
   number of in-flight jobs, which the cap already bounded.

   Consumers are the pool's worker domains; [pop] blocks on a condition
   variable and returns [None] once the queue is closed and drained,
   which is each worker's signal to exit. *)

type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  capacity : int;
  normal : 'a Queue.t;
  urgent : 'a Queue.t;
  mutable closed : bool;
}

let create ~capacity =
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    capacity = max 1 capacity;
    normal = Queue.create ();
    urgent = Queue.create ();
    closed = false;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let try_push t x =
  with_lock t (fun () ->
      if t.closed then Error "queue closed"
      else if Queue.length t.normal >= t.capacity then
        Error
          (Printf.sprintf "queue full (capacity %d)" t.capacity)
      else begin
        Queue.push x t.normal;
        Condition.signal t.nonempty;
        Ok (Queue.length t.normal + Queue.length t.urgent)
      end)

let push_urgent t x =
  with_lock t (fun () ->
      if not t.closed then begin
        Queue.push x t.urgent;
        Condition.signal t.nonempty
      end)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.urgent) then Some (Queue.pop t.urgent)
        else if not (Queue.is_empty t.normal) then Some (Queue.pop t.normal)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.lock;
          wait ()
        end
      in
      wait ())

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let depth t =
  with_lock t (fun () -> Queue.length t.normal + Queue.length t.urgent)

let is_empty t = depth t = 0
