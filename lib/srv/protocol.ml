(* Newline-delimited JSON wire protocol.

   One request per line from the client; one event object per line back.
   Every event carries a ["type"] tag so clients can dispatch without
   schema knowledge, and every job-scoped event carries the job ["id"].
   The same encoding is used over the Unix socket and over stdin/stdout
   (the daemon's --stdio test mode), so tests and CI exercise the real
   parser. *)

type request =
  | Submit of Jobspec.t
  | Stats
  | Ping
  | Shutdown

let request_of_line line =
  match Obs.Json.of_string line with
  | exception Obs.Json.Parse_error why ->
    Error (Printf.sprintf "bad JSON: %s" why)
  | json -> (
    match Option.bind (Obs.Json.member "type" json) Obs.Json.to_str with
    | Some "submit" -> (
      match Jobspec.of_json json with
      | Ok spec -> Ok (Submit spec)
      | Error why -> Error why)
    | Some "stats" -> Ok Stats
    | Some "ping" -> Ok Ping
    | Some "shutdown" -> Ok Shutdown
    | Some other -> Error (Printf.sprintf "unknown request type %S" other)
    | None -> (
      (* A bare job object is accepted as an implicit submit so that a
         file of jobs can be piped in unchanged. *)
      match Jobspec.of_json json with
      | Ok spec -> Ok (Submit spec)
      | Error why -> Error why))

(* --- server -> client events ---------------------------------------- *)

let ev kind fields = Obs.Json.Obj (("type", Obs.Json.String kind) :: fields)

let accepted ~id ~queue_depth =
  ev "accepted"
    [ ("id", Obs.Json.String id); ("queue_depth", Obs.Json.Int queue_depth) ]

let rejected ~id ~reason =
  ev "rejected"
    [ ("id", Obs.Json.String id); ("reason", Obs.Json.String reason) ]

let error ~reason = ev "error" [ ("reason", Obs.Json.String reason) ]

let progress ~id (row : Obs.Iterlog.row) =
  ev "progress"
    [
      ("id", Obs.Json.String id);
      ("method", Obs.Json.String row.Obs.Iterlog.meth);
      ("iteration", Obs.Json.Int row.Obs.Iterlog.iteration);
      ("conjuncts", Obs.Json.Int row.Obs.Iterlog.conjuncts);
      ("nodes", Obs.Json.Int row.Obs.Iterlog.nodes);
      ("live_nodes", Obs.Json.Int row.Obs.Iterlog.live_nodes);
      ("elapsed_s", Obs.Json.Float row.Obs.Iterlog.elapsed_s);
    ]

let retry ~id ~reason ~attempt =
  ev "retry"
    [
      ("id", Obs.Json.String id);
      ("reason", Obs.Json.String reason);
      ("attempt", Obs.Json.Int attempt);
    ]

let result ~id ~worker ~resumed_at (report : Mc.Report.t) =
  ev "result"
    [
      ("id", Obs.Json.String id);
      ("verdict", Obs.Json.String (Mc.Report.status_string report));
      ("report", Mc.Report.to_json report);
      ("worker", Obs.Json.Int worker);
      ("resumed", Obs.Json.Bool (resumed_at > 0));
      ("resumed_at", Obs.Json.Int resumed_at);
    ]

(* A batch job's terminal event keeps the ["result"] shape (clients
   that only read ["verdict"] keep working) and adds the per-property
   verdict array plus the sharing counters. *)
let batch_result ~id ~worker (res : Mc.Batch.result) (report : Mc.Report.t) =
  let item (it : Mc.Batch.item) =
    Obs.Json.Obj
      [
        ("name", Obs.Json.String it.Mc.Batch.prop.Mc.Batch.pname);
        ( "verdict",
          Obs.Json.String (Mc.Report.status_string it.Mc.Batch.report) );
        ("rechecked", Obs.Json.Bool it.Mc.Batch.rechecked);
        ( "assumed",
          Obs.Json.List (List.map (fun i -> Obs.Json.Int i) it.Mc.Batch.assumed)
        );
      ]
  in
  let s = res.Mc.Batch.stats in
  ev "result"
    [
      ("id", Obs.Json.String id);
      ("verdict", Obs.Json.String (Mc.Report.status_string report));
      ("report", Mc.Report.to_json report);
      ("batch", Obs.Json.List (List.map item res.Mc.Batch.items));
      ( "batch_stats",
        Obs.Json.Obj
          [
            ("invariants_shared", Obs.Json.Int s.Mc.Batch.invariants_shared);
            ( "invariants_speculated",
              Obs.Json.Int s.Mc.Batch.invariants_speculated );
            ( "speculations_refuted",
              Obs.Json.Int s.Mc.Batch.speculations_refuted );
            ("rechecks", Obs.Json.Int s.Mc.Batch.rechecks);
          ] );
      ("worker", Obs.Json.Int worker);
    ]

let pong = ev "pong" []

let draining = ev "draining" []

let stats ~queue_depth ~busy_workers ~workers ~live_nodes ~pressure ~jobs_done
    ~jobs_per_s =
  ev "stats"
    [
      ("queue_depth", Obs.Json.Int queue_depth);
      ("busy_workers", Obs.Json.Int busy_workers);
      ("workers", Obs.Json.Int workers);
      ("live_nodes", Obs.Json.Int live_nodes);
      ("pressure", Obs.Json.Int pressure);
      ("jobs_done", Obs.Json.Int jobs_done);
      ("jobs_per_s", Obs.Json.Float jobs_per_s);
    ]

let to_line json = Obs.Json.to_string json ^ "\n"
