(* Newline-delimited JSON wire protocol.

   One request per line from the client; one event object per line back.
   Every event carries a ["type"] tag so clients can dispatch without
   schema knowledge, and every job-scoped event carries the job ["id"].
   The same encoding is used over the Unix socket and over stdin/stdout
   (the daemon's --stdio test mode), so tests and CI exercise the real
   parser. *)

type stats_format = Json | Prom

type request =
  | Submit of Jobspec.t
  | Stats of stats_format
  | Health
  | Watch of float  (* delta-streaming interval, seconds *)
  | Unwatch
  | Ping
  | Shutdown

let request_of_line line =
  match Obs.Json.of_string line with
  | exception Obs.Json.Parse_error why ->
    Error (Printf.sprintf "bad JSON: %s" why)
  | json -> (
    match Option.bind (Obs.Json.member "type" json) Obs.Json.to_str with
    | Some "submit" -> (
      match Jobspec.of_json json with
      | Ok spec -> Ok (Submit spec)
      | Error why -> Error why)
    | Some "stats" -> (
      match Option.bind (Obs.Json.member "format" json) Obs.Json.to_str with
      | None | Some "json" -> Ok (Stats Json)
      | Some "prom" | Some "prometheus" -> Ok (Stats Prom)
      | Some other -> Error (Printf.sprintf "unknown stats format %S" other))
    | Some "health" -> Ok Health
    | Some "watch" -> (
      match Obs.Json.member "interval_s" json with
      | None -> Ok (Watch 2.0)
      | Some v -> (
        match Obs.Json.to_float v with
        | Some f when f > 0.0 -> Ok (Watch f)
        | Some _ -> Error "watch interval_s must be positive"
        | None -> Error "watch interval_s must be a number"))
    | Some "unwatch" -> Ok Unwatch
    | Some "ping" -> Ok Ping
    | Some "shutdown" -> Ok Shutdown
    | Some other -> Error (Printf.sprintf "unknown request type %S" other)
    | None -> (
      (* A bare job object is accepted as an implicit submit so that a
         file of jobs can be piped in unchanged. *)
      match Jobspec.of_json json with
      | Ok spec -> Ok (Submit spec)
      | Error why -> Error why))

(* --- server -> client events ---------------------------------------- *)

let ev kind fields = Obs.Json.Obj (("type", Obs.Json.String kind) :: fields)

let accepted ~id ~trace_id ~queue_depth =
  ev "accepted"
    [
      ("id", Obs.Json.String id);
      ("trace_id", Obs.Json.String trace_id);
      ("queue_depth", Obs.Json.Int queue_depth);
    ]

let rejected ~id ~reason =
  ev "rejected"
    [ ("id", Obs.Json.String id); ("reason", Obs.Json.String reason) ]

let error ~reason = ev "error" [ ("reason", Obs.Json.String reason) ]

let progress ~id (row : Obs.Iterlog.row) =
  ev "progress"
    [
      ("id", Obs.Json.String id);
      ("method", Obs.Json.String row.Obs.Iterlog.meth);
      ("iteration", Obs.Json.Int row.Obs.Iterlog.iteration);
      ("conjuncts", Obs.Json.Int row.Obs.Iterlog.conjuncts);
      ("nodes", Obs.Json.Int row.Obs.Iterlog.nodes);
      ("live_nodes", Obs.Json.Int row.Obs.Iterlog.live_nodes);
      ("elapsed_s", Obs.Json.Float row.Obs.Iterlog.elapsed_s);
    ]

let retry ~id ~trace_id ~reason ~attempt =
  ev "retry"
    [
      ("id", Obs.Json.String id);
      ("trace_id", Obs.Json.String trace_id);
      ("reason", Obs.Json.String reason);
      ("attempt", Obs.Json.Int attempt);
    ]

(* [trace] is the server-side path of the job's span-tree JSONL when the
   job was submitted with ["trace": true]; [queue_s]/[e2e_s] are the
   daemon-measured admission-to-dispatch and admission-to-resolution
   latencies, so clients (and bench --daemon) get them without clock
   games of their own. *)
let timing_fields ~trace_id ~trace ~queue_s ~e2e_s =
  [
    ("trace_id", Obs.Json.String trace_id);
    ("queue_s", Obs.Json.Float queue_s);
    ("e2e_s", Obs.Json.Float e2e_s);
  ]
  @ match trace with
    | None -> []
    | Some path -> [ ("trace", Obs.Json.String path) ]

let result ~id ~trace_id ?trace ~queue_s ~e2e_s ~worker ~resumed_at
    (report : Mc.Report.t) =
  ev "result"
    ([
       ("id", Obs.Json.String id);
       ("verdict", Obs.Json.String (Mc.Report.status_string report));
       ("report", Mc.Report.to_json report);
       ("worker", Obs.Json.Int worker);
       ("resumed", Obs.Json.Bool (resumed_at > 0));
       ("resumed_at", Obs.Json.Int resumed_at);
     ]
    @ timing_fields ~trace_id ~trace ~queue_s ~e2e_s)

(* A batch job's terminal event keeps the ["result"] shape (clients
   that only read ["verdict"] keep working) and adds the per-property
   verdict array plus the sharing counters. *)
let batch_result ~id ~trace_id ?trace ~queue_s ~e2e_s ~worker
    (res : Mc.Batch.result) (report : Mc.Report.t) =
  let item (it : Mc.Batch.item) =
    Obs.Json.Obj
      [
        ("name", Obs.Json.String it.Mc.Batch.prop.Mc.Batch.pname);
        ( "verdict",
          Obs.Json.String (Mc.Report.status_string it.Mc.Batch.report) );
        ("rechecked", Obs.Json.Bool it.Mc.Batch.rechecked);
        ( "assumed",
          Obs.Json.List (List.map (fun i -> Obs.Json.Int i) it.Mc.Batch.assumed)
        );
      ]
  in
  let s = res.Mc.Batch.stats in
  ev "result"
    ([
      ("id", Obs.Json.String id);
      ("verdict", Obs.Json.String (Mc.Report.status_string report));
      ("report", Mc.Report.to_json report);
      ("batch", Obs.Json.List (List.map item res.Mc.Batch.items));
      ( "batch_stats",
        Obs.Json.Obj
          [
            ("invariants_shared", Obs.Json.Int s.Mc.Batch.invariants_shared);
            ( "invariants_speculated",
              Obs.Json.Int s.Mc.Batch.invariants_speculated );
            ( "speculations_refuted",
              Obs.Json.Int s.Mc.Batch.speculations_refuted );
            ("rechecks", Obs.Json.Int s.Mc.Batch.rechecks);
          ] );
      ("worker", Obs.Json.Int worker);
    ]
    @ timing_fields ~trace_id ~trace ~queue_s ~e2e_s)

let pong = ev "pong" []

let draining = ev "draining" []

(* [latency] rows are (histogram, p50, p90, p99) in the unit the
   histogram was registered with (milliseconds for the srv.* set). *)
let latency_json latency =
  Obs.Json.Obj
    (List.map
       (fun (name, p50, p90, p99) ->
         ( name,
           Obs.Json.Obj
             [
               ("p50", Obs.Json.Float p50);
               ("p90", Obs.Json.Float p90);
               ("p99", Obs.Json.Float p99);
             ] ))
       latency)

let stats ~queue_depth ~busy_workers ~workers ~live_nodes ~pressure ~jobs_done
    ~jobs_per_s ~latency =
  ev "stats"
    [
      ("queue_depth", Obs.Json.Int queue_depth);
      ("busy_workers", Obs.Json.Int busy_workers);
      ("workers", Obs.Json.Int workers);
      ("live_nodes", Obs.Json.Int live_nodes);
      ("pressure", Obs.Json.Int pressure);
      ("jobs_done", Obs.Json.Int jobs_done);
      ("jobs_per_s", Obs.Json.Float jobs_per_s);
      ("latency", latency_json latency);
    ]

(* Prometheus text exposition rides inside the newline-JSON framing as
   one string field (newlines are escaped by the JSON encoder), so the
   single-line event invariant holds; [icvd --client stats --format
   prom] unwraps it back to scrapeable text. *)
let stats_prom ~text =
  ev "stats"
    [ ("format", Obs.Json.String "prom"); ("prom", Obs.Json.String text) ]

let health ~uptime_s ~queue_depth ~outstanding ~busy_workers ~workers
    ~live_nodes ~max_total_live ~pressure ~draining
    (slots : Pool.slot_health list) =
  let slot (s : Pool.slot_health) =
    Obs.Json.Obj
      ([
         ("worker", Obs.Json.Int s.Pool.sh_sid);
         ("busy", Obs.Json.Bool s.Pool.sh_busy);
         ("live_nodes", Obs.Json.Int s.Pool.sh_live);
         ("silent_s", Obs.Json.Float s.Pool.sh_silent_s);
       ]
      @ match s.Pool.sh_job with
        | None -> []
        | Some id -> [ ("job", Obs.Json.String id) ])
  in
  ev "health"
    [
      ("uptime_s", Obs.Json.Float uptime_s);
      ("queue_depth", Obs.Json.Int queue_depth);
      ("inflight", Obs.Json.Int outstanding);
      ("busy_workers", Obs.Json.Int busy_workers);
      ("workers", Obs.Json.Int workers);
      ("live_nodes", Obs.Json.Int live_nodes);
      ("max_total_live", Obs.Json.Int max_total_live);
      ("pressure", Obs.Json.Int pressure);
      ("draining", Obs.Json.Bool draining);
      ("slots", Obs.Json.List (List.map slot slots));
    ]

(* One delta frame of a [watch] stream: counter/gauge changes since the
   previous frame (metrics that did not move are omitted), plus the
   instantaneous queue/pressure snapshot. *)
let metrics ~elapsed_s ~queue_depth ~busy_workers ~pressure ~delta =
  ev "metrics"
    [
      ("elapsed_s", Obs.Json.Float elapsed_s);
      ("queue_depth", Obs.Json.Int queue_depth);
      ("busy_workers", Obs.Json.Int busy_workers);
      ("pressure", Obs.Json.Int pressure);
      ( "delta",
        Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Float v)) delta) );
    ]

let to_line json = Obs.Json.to_string json ^ "\n"
