(* Persistent worker pool with supervision.

   Each worker is an OCaml 5 domain running a pop/run loop over the
   admission queue.  Models travel as frozen strings and every worker
   thaws its own private copy, so the shared-nothing discipline of
   [Mc.Parallel] is preserved.

   Supervision runs on the daemon thread via [supervise], called every
   tick.  Three failure modes are handled:

   - {b crash}: an exception escapes the worker loop.  The top-level
     wrapper records it in [slot.dead] and lets the domain end; the
     supervisor joins it, requeues the in-flight job (urgent lane) and
     spawns a replacement.
   - {b hang}: a busy worker's heartbeat (updated from the kernel
     progress hook and the iteration sink) goes silent for
     [hang_timeout_s].  Domains cannot be killed, so the supervisor
     sets the slot's cancel flag, which the worker's fault hook turns
     into [Limits.Exceeded] at the next kernel step.
   - {b zombie}: the cancel flag is ignored for another hang window
     (the worker is wedged outside kernel code).  The slot is marked
     [abandoned] -- suppressing any late events from it -- the job is
     requeued, and a fresh slot takes its place.  The orphan domain is
     deliberately never joined.

   Exactly-once resolution per execution: every dispatch is stamped
   with the attempt number it runs, and both resolution paths
   ([finish] and [requeue_or_fail]) require [job.inflight] AND
   [job.attempt = attempt-at-dispatch] under the event lock.  The
   inflight flag alone is not enough: a requeue resets it to true for
   the retry, so a zombie worker waking up after its job was requeued
   would otherwise resolve the retry's execution (double Finished with
   [max_attempts = 2], or a double-running job with more).  The
   attempt stamp makes a stale execution's finish/requeue a no-op. *)

exception Injected_crash
(* Raised by the fault hook when a job's test-only fault spec fires;
   escapes the worker loop on purpose to exercise the crash path. *)

type job = {
  spec : Jobspec.t;
  frozen : Mc.Parallel.frozen;
  client : int;
  trace_id : string;  (* stable across retries: assigned at admission *)
  trace_path : string option;  (* per-job JSONL span file, if traced *)
  submitted_at : float;
  deadline_at : float option;
  checkpoint_path : string option;
  mutable dispatched_at : float;
      (* when the latest attempt left the queue; 0.0 before dispatch.
         Written by the dispatching worker, read by the daemon after
         the terminal event — never concurrently. *)
  mutable attempt : int;  (* 1-based; touched under the event lock *)
  mutable inflight : bool;  (* likewise *)
}

let job ~spec ~frozen ~client ~trace_id ?trace_path ~deadline_at
    ~checkpoint_path () =
  {
    spec;
    frozen;
    client;
    trace_id;
    trace_path;
    submitted_at = Mc.Monotonic.now ();
    deadline_at;
    checkpoint_path;
    dispatched_at = 0.0;
    attempt = 1;
    inflight = true;
  }

type event =
  | Progress of job * Obs.Iterlog.row
  | Requeued of job * string  (* reason; [job.attempt] is the retry *)
  | Finished of job * int * int * Mc.Report.t
      (* worker id, resumed-at iteration (0 = cold start) *)
  | Batch_finished of job * int * Mc.Batch.result * Mc.Report.t
      (* worker id, per-property outcome, aggregate report (the job's
         single wire verdict) *)
  | Worker_died of int * string * string option
      (* worker id, cause, flight-recorder dump path if one was
         written *)
  | Worker_hung of int
  | Worker_replaced of int

type slot = {
  sid : int;
  mutable domain : unit Domain.t option;
  hb : float Atomic.t;  (* monotonic time of last sign of life *)
  live : int Atomic.t;  (* live BDD nodes in this worker's manager *)
  busy : bool Atomic.t;
  cancel : bool Atomic.t;
  dead : string option Atomic.t;
  current : (job * int) option Atomic.t;
      (* job plus the attempt number this dispatch is running, so the
         supervisor's requeue paths carry the same stamp the worker
         got *)
  abandoned : bool Atomic.t;
  fl_beat : float Atomic.t;
      (* last time a heartbeat was recorded into the flight ring --
         heartbeats fire per kernel progress step, far too often to
         record raw, so they are throttled to ~4/s per slot *)
  mutable scratch : (string * Mc.Model.t) option;
      (* last thawed model, keyed by [Jobspec.model_key]: consecutive
         jobs on the same declaration reuse the manager instead of
         re-thawing.  Worker-domain private -- the supervisor never
         reads it, and it dies with the slot. *)
}

type config = {
  workers : int;
  hang_timeout_s : float;
  max_total_live : int option;
  max_attempts : int;
  portfolio_domains : int;
  checkpoint_every : int;
  flight_dir : string option;
      (* where flight-recorder dumps land (normally next to the
         checkpoint dir); None disables dumping, the ring still
         records *)
}

let default_config =
  {
    workers = 2;
    hang_timeout_s = 10.0;
    max_total_live = None;
    max_attempts = 2;
    portfolio_domains = 2;
    checkpoint_every = 1;
    flight_dir = None;
  }

type t = {
  cfg : config;
  queue : job Admission.t;
  mutable slots : slot array;
  ev_lock : Mutex.t;
  events : event Queue.t;
  outstanding : int Atomic.t;
      (* admitted but not yet resolved; the drain-completion signal.
         Counted here rather than via queue+busy scans because a job
         is neither queued nor marked busy for an instant between pop
         and dispatch. *)
  mutable next_sid : int;
  mutable last_pressure : int;
  flight : Flight.t;
  mutable flight_seq : int;  (* dump file numbering; daemon thread only *)
  jobs_done : Obs.Registry.counter;
  crashes : Obs.Registry.counter;
  hangs : Obs.Registry.counter;
  requeues : Obs.Registry.counter;
  manager_reuses : Obs.Registry.counter;
  depth_gauge : Obs.Registry.gauge;
  (* Latency split: time queued, time rebuilding the model, time in the
     solver proper, and admission-to-verdict -- all in milliseconds so
     the log2 buckets resolve the interesting 1ms..100s range. *)
  queue_ms : Obs.Registry.histogram;
  thaw_ms : Obs.Registry.histogram;
  solve_ms : Obs.Registry.histogram;
  e2e_ms : Obs.Registry.histogram;
}

let ms f = int_of_float (f *. 1e3)

let emit t e =
  Mutex.lock t.ev_lock;
  Queue.push e t.events;
  Mutex.unlock t.ev_lock

let poll t =
  Mutex.lock t.ev_lock;
  let out = Queue.fold (fun acc e -> e :: acc) [] t.events in
  Queue.clear t.events;
  Mutex.unlock t.ev_lock;
  List.rev out

(* --- flight recorder -------------------------------------------------- *)

let fl t ~kind detail = Flight.record t.flight ~kind detail

let job_detail (job : job) =
  [
    ("job", Obs.Json.String job.spec.Jobspec.id);
    ("trace_id", Obs.Json.String job.trace_id);
    ("attempt", Obs.Json.Int job.attempt);
  ]

(* Record the triggering event, then dump the ring next to the
   checkpoint dir — recording first keeps the trigger (crash, hang,
   sigterm) the last event in the file, which is what a post-mortem
   greps for.  Daemon thread only (the file-sequence counter is
   unsynchronised); returns the path so the abort report can reference
   its black box. *)
let dump_flight t ~trigger:(kind, detail) =
  fl t ~kind detail;
  match t.cfg.flight_dir with
  | None -> None
  | Some dir ->
    t.flight_seq <- t.flight_seq + 1;
    let path =
      Filename.concat dir (Printf.sprintf "flight-%d.jsonl" t.flight_seq)
    in
    (try
       if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
       Flight.dump t.flight path;
       Some path
     with Sys_error _ | Unix.Unix_error _ -> None)

let flight t = t.flight

(* --- memory-pressure ladder ----------------------------------------- *)

let total_live t =
  Array.fold_left
    (fun acc s ->
      if Atomic.get s.busy && not (Atomic.get s.abandoned) then
        acc + Atomic.get s.live
      else acc)
    0 t.slots

let pressure t =
  match t.cfg.max_total_live with
  | None -> 0
  | Some cap ->
    let l = total_live t in
    if l >= cap then 3
    else if l >= cap * 3 / 4 then 2
    else if l >= cap / 2 then 1
    else 0

(* Degradation before refusal: level 1 shrinks the thaw-time cache
   budget, level 2 additionally clamps portfolio width to one domain
   and halves per-job live budgets, level 3 makes the daemon refuse
   new admissions entirely. *)
let thaw_cache_budget ~pressure:p =
  if p >= 2 then Some 1024 else if p >= 1 then Some 4096 else None

let note_pressure t p =
  if p <> t.last_pressure then begin
    if p > t.last_pressure then
      Mc.Log.degraded ~what:"pool"
        ~detail:
          (Printf.sprintf "memory pressure %d -> %d (%d live nodes)"
             t.last_pressure p (total_live t));
    fl t ~kind:"pressure"
      [
        ("from", Obs.Json.Int t.last_pressure);
        ("to", Obs.Json.Int p);
        ("live", Obs.Json.Int (total_live t));
      ];
    t.last_pressure <- p
  end;
  p

(* --- synthesized failure reports ------------------------------------ *)

let failed_report (job : job) reason =
  {
    Mc.Report.model = Jobspec.canonical job.spec.Jobspec.model;
    method_name = Jobspec.meth_name job.spec.Jobspec.meth;
    status = Mc.Report.Exceeded reason;
    iterations = 0;
    peak_set_nodes = 0;
    peak_conjuncts = [];
    nodes_created = 0;
    peak_live_nodes = 0;
    time_s = Mc.Monotonic.now () -. job.submitted_at;
  }

(* One wire verdict for a whole batch: the first violated item's report
   if any (it carries the trace), else the first exceeded, else the
   (proved) first item's; relabelled so the method column says it stood
   for the batch.  The per-property detail travels separately in the
   [Batch_finished] event. *)
let batch_report (job : job) meth (res : Mc.Batch.result) =
  let pick p =
    List.find_opt
      (fun (it : Mc.Batch.item) -> p it.Mc.Batch.report.Mc.Report.status)
      res.Mc.Batch.items
  in
  let rep =
    match
      ( pick (function Mc.Report.Violated _ -> true | _ -> false),
        pick (function Mc.Report.Exceeded _ -> true | _ -> false),
        res.Mc.Batch.items )
    with
    | Some it, _, _ | None, Some it, _ | None, None, it :: _ ->
      it.Mc.Batch.report
    | None, None, [] -> failed_report job "empty batch"
  in
  Mc.Report.relabel rep
    ~method_name:
      (Printf.sprintf "batch[%d]:%s"
         (List.length res.Mc.Batch.items)
         (Mc.Runner.name meth))

(* --- exactly-once job resolution ------------------------------------ *)

(* [attempt] is the attempt number stamped at dispatch: an execution
   may only resolve the job while the job is still on that attempt.
   After a requeue bumps [job.attempt], the abandoned execution's late
   finish/requeue no longer matches and is dropped. *)

let finish t slot (job : job) ~attempt ~resumed_at ?batch report =
  Mutex.lock t.ev_lock;
  let mine = job.inflight && job.attempt = attempt in
  if mine then job.inflight <- false;
  Mutex.unlock t.ev_lock;
  if mine then begin
    Obs.Registry.incr t.jobs_done;
    Atomic.decr t.outstanding;
    Obs.Registry.observe t.e2e_ms (ms (Mc.Monotonic.now () -. job.submitted_at));
    fl t ~kind:"finish"
      (job_detail job
      @ [ ("status", Obs.Json.String (Mc.Report.status_string report)) ]);
    match batch with
    | Some res -> emit t (Batch_finished (job, slot.sid, res, report))
    | None -> emit t (Finished (job, slot.sid, resumed_at, report))
  end

let requeue_or_fail t (job : job) ~attempt ~reason =
  Mutex.lock t.ev_lock;
  let mine = job.inflight && job.attempt = attempt in
  let retry = mine && job.attempt < t.cfg.max_attempts in
  if mine then begin
    job.inflight <- false;
    if retry then begin
      job.attempt <- job.attempt + 1;
      job.inflight <- true
    end
  end;
  Mutex.unlock t.ev_lock;
  if mine then
    if retry then begin
      Obs.Registry.incr t.requeues;
      fl t ~kind:"requeue"
        (job_detail job @ [ ("reason", Obs.Json.String reason) ]);
      emit t (Requeued (job, reason));
      Admission.push_urgent t.queue job
    end
    else begin
      Obs.Registry.incr t.jobs_done;
      Atomic.decr t.outstanding;
      fl t ~kind:"fail"
        (job_detail job @ [ ("reason", Obs.Json.String reason) ]);
      emit t
        (Finished
           ( job,
             -1,
             0,
             failed_report job
               (Printf.sprintf "%s (after %d attempts)" reason job.attempt) ))
    end

(* --- running one job in a worker domain ----------------------------- *)

let beat t slot =
  let now = Mc.Monotonic.now () in
  Atomic.set slot.hb now;
  (* Heartbeats fire per kernel progress step -- throttle the flight
     record to ~4/s per slot (CAS so racing hooks record once). *)
  let last = Atomic.get slot.fl_beat in
  if now -. last >= 0.25 && Atomic.compare_and_set slot.fl_beat last now then
    fl t ~kind:"beat"
      [
        ("worker", Obs.Json.Int slot.sid);
        ("live", Obs.Json.Int (Atomic.get slot.live));
      ]

(* Per-job tracing context.  The ambient attributes carry the trace id
   into every span emitted while the job runs -- including spans from
   portfolio/batch child domains, which re-install them -- and a
   ["trace": true] job additionally gets a JSONL sink on its own trace
   file.  The file is opened in append mode and the tracer's epoch is
   pinned to the job's admission time, so a checkpoint-backed retry
   appends spans to the same file on the same timeline. *)
let with_job_trace (job : job) ~attempt ~worker f =
  let attrs =
    [
      ("trace_id", Obs.Json.String job.trace_id);
      ("job", Obs.Json.String job.spec.Jobspec.id);
      ("attempt", Obs.Json.Int attempt);
      ("worker", Obs.Json.Int worker);
    ]
  in
  Obs.Tracer.with_attrs attrs (fun () ->
      match job.trace_path with
      | None -> f (Obs.Tracer.global ())
      | Some path -> (
        match open_out_gen [ Open_append; Open_creat ] 0o644 path with
        | exception Sys_error _ -> f (Obs.Tracer.global ())
        | oc ->
          let epoch_ns = Int64.of_float (job.submitted_at *. 1e9) in
          let tracer = Obs.Tracer.create ~epoch_ns () in
          Obs.Tracer.add_sink tracer (Obs.Tracer.jsonl_sink tracer oc);
          Fun.protect
            ~finally:(fun () ->
              Obs.Tracer.flush tracer;
              close_out_noerr oc)
            (fun () -> Obs.Tracer.with_global tracer (fun () -> f tracer))))

let limits_for t (job : job) ~remaining ~pressure:p man =
  let max_live =
    match (job.spec.Jobspec.max_live_nodes, p >= 2) with
    | Some n, true -> Some (max 1 (n / 2))
    | Some n, false -> Some n
    | None, true -> t.cfg.max_total_live
    | None, false -> None
  in
  Mc.Limits.start ?max_live_nodes:max_live ?max_seconds:remaining
    ~max_iterations:200 man

let run_job t slot (job : job) ~attempt =
  let now = Mc.Monotonic.now () in
  let remaining = Option.map (fun d -> d -. now) job.deadline_at in
  match remaining with
  | Some r when r <= 0.0 ->
    finish t slot job ~attempt ~resumed_at:0
      (failed_report job "deadline expired")
  | _ ->
    with_job_trace job ~attempt ~worker:slot.sid @@ fun tracer ->
    (* The queue wait was timed externally (admission to dispatch);
       report it as a span at its true place on the timeline so the
       trace tree starts at admission.  First attempt only: a retry's
       wait starts at its requeue, which the urgent lane makes ~0. *)
    if attempt = 1 then
      Obs.Tracer.span_at tracer ~cat:"srv" "job.queue_wait"
        ~ts_ns:(Int64.of_float (job.submitted_at *. 1e9))
        ~dur_ns:
          (Int64.of_float
             (Float.max 0.0 (job.dispatched_at -. job.submitted_at) *. 1e9));
    let p = note_pressure t (pressure t) in
    (* Scratch-manager reuse: consecutive jobs on the same declaration
       skip the thaw and keep the previous job's unique/computed tables
       warm.  Only at pressure 0 -- under pressure the scratch is
       dropped so a retained manager cannot hold node capacity hostage.
       Per-job state cannot leak through the reused manager: the fault
       hook is reinstalled below with this job's closure, the iteration
       sink is per-job (cleared in the [finally]), and the progress
       hook installed at thaw time closes over this same slot. *)
    if p >= 1 then slot.scratch <- None;
    let key = Jobspec.model_key job.spec.Jobspec.model in
    (* The heartbeat hook goes onto the fresh manager before the model
       is rebuilt, so the thaw of a large model beats too (the fault
       hook waits until after the thaw: injection offsets are relative
       to the run proper, and a cancel landing mid-thaw gains nothing
       -- the thaw is bounded work). *)
    let t_thaw = Mc.Monotonic.now () in
    let model =
      Obs.Tracer.with_span tracer ~cat:"srv"
        ~args:(fun () -> [ ("model_key", Obs.Json.String key) ])
        "job.thaw"
        (fun () ->
          match slot.scratch with
          | Some (k, m) when k = key ->
            Obs.Registry.incr t.manager_reuses;
            beat t slot;
            m
          | _ ->
            let m =
              Mc.Parallel.thaw
                ?cache_budget:(thaw_cache_budget ~pressure:p)
                ~on_manager:(fun m ->
                  Bdd.set_progress_hook m
                    (Some
                       (fun m ->
                         if not (Atomic.get slot.abandoned) then begin
                           beat t slot;
                           Atomic.set slot.live (Bdd.live_nodes m)
                         end)))
                job.frozen
            in
            if p = 0 then slot.scratch <- Some (key, m);
            m)
    in
    Obs.Registry.observe t.thaw_ms (ms (Mc.Monotonic.now () -. t_thaw));
    let man = Mc.Model.man model in
    let spec = job.spec in
    let resume_from =
      match job.checkpoint_path with
      | Some path when attempt > 1 -> Mc.Checkpoint.load_opt man path
      | _ -> None
    in
    let resumed_at =
      match resume_from with
      | Some cp -> cp.Mc.Checkpoint.iterations
      | None -> 0
    in
    (* Deterministic fault injection (tests/CI only): fires on the
       first attempt so the retry can demonstrate recovery. *)
    let inject =
      match spec.Jobspec.fault with
      | Some f when attempt = 1 -> Some f
      | _ -> None
    in
    let iter_armed = ref false in
    let base_steps = Bdd.steps man in
    Bdd.set_fault_hook man
      (Some
         (fun m ->
           if Atomic.get slot.cancel then
             raise (Mc.Limits.Exceeded "cancelled: hung worker");
           match inject with
           | None -> ()
           | Some f ->
             let fire =
               !iter_armed
               ||
               match f.Jobspec.after_steps with
               | Some n -> Bdd.steps m - base_steps >= n
               | None -> false
             in
             if fire then (
               match f.Jobspec.action with
               | Jobspec.Crash -> raise Injected_crash
               | Jobspec.Exceed -> raise (Mc.Limits.Exceeded "injected exceed"))));
    (* Abandoned slots go silent: the module comment promises late
       events from a zombie are suppressed, so every hook (including
       the progress hook installed at thaw time above) checks the flag
       before beating or emitting. *)
    Obs.Iterlog.clear ();
    Obs.Iterlog.set_sink
      (Some
         (fun row ->
           if not (Atomic.get slot.abandoned) then begin
             beat t slot;
             (match inject with
             | Some { Jobspec.after_iterations = Some n; _ }
               when row.Obs.Iterlog.iteration >= n ->
               iter_armed := true
             | _ -> ());
             if spec.Jobspec.progress then emit t (Progress (job, row))
           end));
    Fun.protect
      ~finally:(fun () -> Obs.Iterlog.set_sink None)
      (fun () ->
        let limits = limits_for t job ~remaining ~pressure:p in
        let xici_cfg =
          Option.map
            (fun g -> { Ici.Policy.default with Ici.Policy.grow_threshold = g })
            spec.Jobspec.grow_threshold
        in
        let batch_res = ref None in
        let t_solve = Mc.Monotonic.now () in
        let report =
          Obs.Tracer.with_span tracer ~cat:"srv"
            ~args:(fun () ->
              [
                ("method", Obs.Json.String (Jobspec.meth_name spec.Jobspec.meth));
                ("resumed_at", Obs.Json.Int resumed_at);
              ])
            "job.solve"
          @@ fun () ->
          match spec.Jobspec.meth with
          | Jobspec.Method meth when spec.Jobspec.batch -> (
            (* Batch job: one property per conjunct of the model's
               good, verified by [Mc.Batch.run] on this worker's
               manager (single domain -- the worker already is one, and
               keeping the run on [man] is what lets the fault hook
               cancel it).  The aggregate report carries the verdict;
               the per-property detail rides the [Batch_finished]
               event.  A retry re-runs the whole batch: speculation
               state is per-run, so there is nothing to resume. *)
            try
              let props = Mc.Batch.of_goods model in
              let res = Mc.Batch.run ~limits ?xici_cfg ~meth model props in
              batch_res := Some res;
              batch_report job meth res
            with
            | Mc.Limits.Exceeded why ->
              failed_report job (Printf.sprintf "exceeded: %s" why)
            | Bdd.Node_budget_exhausted ->
              failed_report job "node budget exhausted")
          | Jobspec.Method meth -> (
            try
              Mc.Runner.run ~limits ?xici_cfg
                ?checkpoint_path:job.checkpoint_path
                ~checkpoint_every:t.cfg.checkpoint_every ?resume_from meth
                model
            with
            | Mc.Limits.Exceeded why ->
              failed_report job (Printf.sprintf "exceeded: %s" why)
            | Bdd.Node_budget_exhausted ->
              failed_report job "node budget exhausted")
          | Jobspec.Portfolio -> (
            let domains = if p >= 2 then 1 else t.cfg.portfolio_domains in
            try
              (* The portfolio runs on child domains with private
                 managers, so the hooks installed above never fire;
                 heartbeat and cancel are re-threaded through the
                 portfolio's own callbacks (else every portfolio job
                 longer than the hang timeout would be declared hung
                 and its domains leaked).  [slot.live] holds the most
                 recent reporter's count -- a per-slot gauge
                 approximation, same as the sequential case. *)
              let res =
                Mc.Parallel.portfolio ~domains ~limits
                  ~should_cancel:(fun () -> Atomic.get slot.cancel)
                  ~on_progress:(fun ~live ->
                    if not (Atomic.get slot.abandoned) then begin
                      beat t slot;
                      Atomic.set slot.live live
                    end)
                  ~iter_sink:(fun row ->
                    if not (Atomic.get slot.abandoned) then begin
                      beat t slot;
                      if spec.Jobspec.progress then
                        emit t (Progress (job, row))
                    end)
                  model
              in
              match res.Mc.Parallel.winner with
              | Some (_, r) -> r
              | None -> (
                match res.Mc.Parallel.reports with
                | (_, r) :: _ -> r
                | [] -> failed_report job "empty portfolio")
            with Mc.Limits.Exceeded why ->
              failed_report job (Printf.sprintf "exceeded: %s" why))
        in
        Obs.Registry.observe t.solve_ms (ms (Mc.Monotonic.now () -. t_solve));
        Obs.Tracer.with_span tracer ~cat:"srv" "job.epilogue" @@ fun () ->
        if Atomic.get slot.abandoned then
          (* Zombie waking up: the supervisor already requeued this
             execution's job and replaced the slot.  Anything we could
             say now is a late event; drop it (the attempt stamp would
             make it a no-op anyway). *)
          ()
        else if Atomic.get slot.cancel && not (Mc.Parallel.decided report)
        then
          (* The supervisor declared us hung and the cancel landed:
             this execution was aborted short of a verdict; retry if
             allowed. *)
          requeue_or_fail t job ~attempt ~reason:"hung (cancelled mid-run)"
        else
          (* Either no cancel, or the cancel lost the race to a real
             Proved/Violated verdict -- a decided report is sound
             regardless of how slowly it arrived, so deliver it rather
             than burning an attempt. *)
          finish t slot job ~attempt ~resumed_at ?batch:!batch_res report)

(* --- worker lifecycle ------------------------------------------------ *)

let worker_loop t slot =
  let rec loop () =
    if Atomic.get slot.abandoned then ()
    else
      match Admission.pop t.queue with
      | None -> ()
      | Some job ->
        if Atomic.get slot.abandoned then
          (* Popped during abandonment: hand the job back untouched. *)
          Admission.push_urgent t.queue job
        else begin
          (* Stamp this dispatch with the attempt it runs ([attempt] is
             mutated under the event lock, so read it there too). *)
          Mutex.lock t.ev_lock;
          let attempt = job.attempt in
          Mutex.unlock t.ev_lock;
          Atomic.set slot.current (Some (job, attempt));
          Atomic.set slot.cancel false;
          Atomic.set slot.busy true;
          beat t slot;
          job.dispatched_at <- Mc.Monotonic.now ();
          (* Queue time = admission to first dispatch; retries ride the
             urgent lane and would only record ~0 samples. *)
          if attempt = 1 then
            Obs.Registry.observe t.queue_ms
              (ms (job.dispatched_at -. job.submitted_at));
          fl t ~kind:"dispatch"
            (job_detail job @ [ ("worker", Obs.Json.Int slot.sid) ]);
          run_job t slot job ~attempt;
          (* Reached only on normal completion: a crash must leave
             [busy]/[current] set so the supervisor can requeue. *)
          Atomic.set slot.busy false;
          Atomic.set slot.current None;
          Atomic.set slot.live 0;
          loop ()
        end
  in
  loop ()

let make_slot t sid =
  let slot =
    {
      sid;
      domain = None;
      hb = Atomic.make (Mc.Monotonic.now ());
      live = Atomic.make 0;
      busy = Atomic.make false;
      cancel = Atomic.make false;
      dead = Atomic.make None;
      current = Atomic.make None;
      abandoned = Atomic.make false;
      fl_beat = Atomic.make 0.0;
      scratch = None;
    }
  in
  let d =
    Domain.spawn (fun () ->
        try worker_loop t slot
        with e ->
          (* Crash path: record the cause and let the domain end; the
             supervisor joins, requeues and respawns. *)
          Atomic.set slot.dead (Some (Printexc.to_string e)))
  in
  slot.domain <- Some d;
  slot

let create ?(config = default_config) ~queue_capacity () =
  let reg = Obs.Registry.default in
  let t =
    {
      cfg = { config with workers = max 1 config.workers };
      queue = Admission.create ~capacity:queue_capacity;
      slots = [||];
      ev_lock = Mutex.create ();
      events = Queue.create ();
      outstanding = Atomic.make 0;
      next_sid = 0;
      last_pressure = 0;
      jobs_done = Obs.Registry.counter reg "srv.jobs_done";
      crashes = Obs.Registry.counter reg "srv.worker_crashes";
      hangs = Obs.Registry.counter reg "srv.worker_hangs";
      requeues = Obs.Registry.counter reg "srv.requeues";
      manager_reuses = Obs.Registry.counter reg "srv.manager_reuses";
      depth_gauge = Obs.Registry.gauge reg "srv.queue_depth";
      flight = Flight.create ();
      flight_seq = 0;
      queue_ms = Obs.Registry.histogram reg "srv.queue_ms";
      thaw_ms = Obs.Registry.histogram reg "srv.thaw_ms";
      solve_ms = Obs.Registry.histogram reg "srv.solve_ms";
      e2e_ms = Obs.Registry.histogram reg "srv.e2e_ms";
    }
  in
  t.slots <-
    Array.init t.cfg.workers (fun _ ->
        let sid = t.next_sid in
        t.next_sid <- sid + 1;
        make_slot t sid);
  t

(* --- submission ------------------------------------------------------ *)

let submit t job =
  let r = Admission.try_push t.queue job in
  (match r with
  | Ok depth ->
    Atomic.incr t.outstanding;
    fl t ~kind:"admit" (job_detail job @ [ ("depth", Obs.Json.Int depth) ])
  | Error reason ->
    fl t ~kind:"reject"
      (job_detail job @ [ ("reason", Obs.Json.String reason) ]));
  Obs.Registry.set t.depth_gauge (float_of_int (Admission.depth t.queue));
  r

let queue_depth t = Admission.depth t.queue

let busy_workers t =
  Array.fold_left
    (fun acc s ->
      if Atomic.get s.busy && not (Atomic.get s.abandoned) then acc + 1
      else acc)
    0 t.slots

let workers t = Array.length t.slots
let idle t = Atomic.get t.outstanding = 0
let jobs_done t = Obs.Registry.count t.jobs_done
let outstanding t = Atomic.get t.outstanding

type slot_health = {
  sh_sid : int;
  sh_busy : bool;
  sh_live : int;
  sh_silent_s : float;  (* seconds since last heartbeat *)
  sh_job : string option;  (* id of the job being run, if busy *)
}

let slot_health t =
  let now = Mc.Monotonic.now () in
  Array.to_list t.slots
  |> List.filter (fun s -> not (Atomic.get s.abandoned))
  |> List.map (fun s ->
         {
           sh_sid = s.sid;
           sh_busy = Atomic.get s.busy;
           sh_live = Atomic.get s.live;
           sh_silent_s = now -. Atomic.get s.hb;
           sh_job =
             Option.map
               (fun ((j : job), _) -> j.spec.Jobspec.id)
               (Atomic.get s.current);
         })

(* (name, p50, p90, p99) in milliseconds for each latency histogram. *)
let latency t =
  List.map
    (fun h ->
      ( Obs.Registry.histogram_name h,
        Obs.Registry.histogram_percentile h 0.5,
        Obs.Registry.histogram_percentile h 0.9,
        Obs.Registry.histogram_percentile h 0.99 ))
    [ t.queue_ms; t.thaw_ms; t.solve_ms; t.e2e_ms ]

(* --- supervision ----------------------------------------------------- *)

let respawn t i =
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  t.slots.(i) <- make_slot t sid

let supervise t =
  let now = Mc.Monotonic.now () in
  Array.iteri
    (fun i slot ->
      match Atomic.get slot.dead with
      | Some why ->
        (match slot.domain with
        | Some d -> ( try Domain.join d with _ -> ())
        | None -> ());
        Obs.Registry.incr t.crashes;
        (* Dump the black box with the crash as its last entry; the
           requeue/abort reason references the dump so the failure
           report leads straight to the post-mortem file. *)
        let dump =
          dump_flight t
            ~trigger:
              ( "worker_crash",
                [
                  ("worker", Obs.Json.Int slot.sid);
                  ("why", Obs.Json.String why);
                ]
                @
                match Atomic.get slot.current with
                | Some (job, _) -> job_detail job
                | None -> [] )
        in
        emit t (Worker_died (slot.sid, why, dump));
        (match Atomic.get slot.current with
        | Some (job, attempt) ->
          let reason =
            match dump with
            | Some path ->
              Printf.sprintf "worker crashed: %s [flight: %s]" why path
            | None -> Printf.sprintf "worker crashed: %s" why
          in
          requeue_or_fail t job ~attempt ~reason
        | None -> ());
        respawn t i
      | None ->
        if Atomic.get slot.busy && not (Atomic.get slot.abandoned) then begin
          let silent = now -. Atomic.get slot.hb in
          if silent > 2.0 *. t.cfg.hang_timeout_s && Atomic.get slot.cancel
          then begin
            (* Cancel ignored: the worker is wedged outside kernel
               code.  Abandon the slot (zombie) and move on; the
               orphan domain is never joined. *)
            Atomic.set slot.abandoned true;
            let dump =
              dump_flight t
                ~trigger:
                  ( "worker_abandoned",
                    [ ("worker", Obs.Json.Int slot.sid) ]
                    @
                    match Atomic.get slot.current with
                    | Some (job, _) -> job_detail job
                    | None -> [] )
            in
            (match Atomic.get slot.current with
            | Some (job, attempt) ->
              let reason =
                match dump with
                | Some path ->
                  Printf.sprintf "worker hung (abandoned) [flight: %s]" path
                | None -> "worker hung (abandoned)"
              in
              requeue_or_fail t job ~attempt ~reason
            | None -> ());
            emit t (Worker_replaced slot.sid);
            respawn t i
          end
          else if silent > t.cfg.hang_timeout_s && not (Atomic.get slot.cancel)
          then begin
            Atomic.set slot.cancel true;
            Obs.Registry.incr t.hangs;
            ignore
              (dump_flight t
                 ~trigger:
                   ( "hang_cancel",
                     [ ("worker", Obs.Json.Int slot.sid) ]
                     @
                     match Atomic.get slot.current with
                     | Some (job, _) -> job_detail job
                     | None -> [] ));
            emit t (Worker_hung slot.sid)
          end
        end)
    t.slots;
  Obs.Registry.set t.depth_gauge (float_of_int (Admission.depth t.queue));
  ignore (note_pressure t (pressure t))

let shutdown t =
  Admission.close t.queue;
  Array.iter
    (fun slot ->
      if not (Atomic.get slot.abandoned) then
        match slot.domain with
        | Some d -> ( try Domain.join d with _ -> ())
        | None -> ())
    t.slots
