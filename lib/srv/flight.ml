(* Flight recorder: a fixed-size lock-free ring of recent pool events
   (admissions, dispatches, heartbeats, pressure transitions,
   cancellations, crashes).  Recording is an Atomic fetch-and-add plus
   one boxed-cell store, cheap enough to sit on the heartbeat path;
   there is no reader/writer coordination because the reader (a crash
   dump) tolerates losing the handful of entries being overwritten at
   the instant of the dump — a black box, not an audit log.

   Entries are immutable records published via [Atomic.set] on an
   [entry option Atomic.t] cell, so a dump never observes a torn entry:
   it sees the old one, the new one, or (transiently) None. *)

type entry = {
  seq : int;  (* global record order, monotonically increasing *)
  ts : float;  (* Mc.Monotonic seconds *)
  kind : string;
  detail : (string * Obs.Json.t) list;
}

type t = {
  slots : entry option Atomic.t array;
  cursor : int Atomic.t;
}

let create ?(capacity = 512) () =
  {
    slots = Array.init (max 16 capacity) (fun _ -> Atomic.make None);
    cursor = Atomic.make 0;
  }

let capacity t = Array.length t.slots

let record t ~kind detail =
  let seq = Atomic.fetch_and_add t.cursor 1 in
  let e = { seq; ts = Mc.Monotonic.now (); kind; detail } in
  Atomic.set t.slots.(seq mod Array.length t.slots) (Some e)

(* Surviving entries in seq order (oldest first).  Concurrent writers
   may be overwriting the oldest slots while we read; sorting by seq
   keeps the result coherent regardless of which generation each slot
   held when sampled. *)
let entries t =
  Array.to_list t.slots
  |> List.filter_map Atomic.get
  |> List.sort (fun a b -> compare a.seq b.seq)

let entry_json e =
  Obs.Json.Obj
    ([
       ("seq", Obs.Json.Int e.seq);
       ("ts_s", Obs.Json.Float e.ts);
       ("kind", Obs.Json.String e.kind);
     ]
    @ e.detail)

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Obs.Json.to_string (entry_json e));
      Buffer.add_char buf '\n')
    (entries t);
  Buffer.contents buf

(* Write-to-temp + rename so a dump interrupted by the very crash it is
   recording cannot leave a half-written file that parses as complete. *)
let dump t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl t));
  Sys.rename tmp path
