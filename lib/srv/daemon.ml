(* The icvd event loop.

   Single-threaded select() loop owning all I/O and supervision; the
   only other threads are the pool's worker domains, reached through
   the admission queue (in) and the event queue (out).  Requests are
   newline-JSON (see {!Protocol}); transport is a Unix-domain socket,
   or stdin/stdout in [stdio] mode so tests and CI can drive the real
   loop through a pipe.

   Shutdown contract: SIGTERM/SIGINT (or stdin EOF in stdio mode, or a
   "shutdown" request) flips the draining flag.  A draining daemon
   stops accepting connections, answers every new submit with
   [rejected "draining"], finishes everything already admitted, then
   joins the pool and exits.  Overload is the same shape: a full
   admission queue or pressure level 3 answers [rejected ...]
   immediately -- the daemon never buffers unboundedly and never
   drops a job silently. *)

type config = {
  socket_path : string option;
  stdio : bool;
  workers : int;
  queue_capacity : int;
  checkpoint_dir : string option;
  trace_dir : string option;
      (* where per-job span files land for "trace": true jobs; falls
         back to checkpoint_dir, then the system temp dir *)
  default_deadline_s : float option;
  hang_timeout_s : float;
  max_total_live : int option;
  max_attempts : int;
  portfolio_domains : int;
  tick_s : float;
}

let default_config =
  {
    socket_path = None;
    stdio = false;
    workers = 2;
    queue_capacity = 16;
    checkpoint_dir = None;
    trace_dir = None;
    default_deadline_s = None;
    hang_timeout_s = 10.0;
    max_total_live = None;
    max_attempts = 2;
    portfolio_domains = 2;
    tick_s = 0.05;
  }

type client = {
  cid : int;
  fd : Unix.file_descr;
  out : Unix.file_descr;  (* = fd except for the stdio client *)
  buf : Buffer.t;
  outbuf : Buffer.t;
      (* pending outgoing lines, flushed through the select write set:
         a client that stops reading must never block the loop *)
  mutable alive : bool;
  mutable in_open : bool;
      (* stdio only: EOF on stdin closes the request side while events
         keep flowing to stdout until the drain completes *)
  mutable watch_interval : float option;
      (* Some s: stream a metrics delta event every s seconds *)
  mutable watch_last : float;
  mutable watch_prev : (string * float) list;
      (* metric values at the last streamed frame, for the delta *)
}

type state = {
  cfg : config;
  pool : Pool.t;
  clients : (int, client) Hashtbl.t;
  frozen_cache : (string, Mc.Parallel.frozen) Hashtbl.t;
  draining : bool Atomic.t;
  started_at : float;  (* monotonic, for uptime_s in health *)
  mutable next_cid : int;
  mutable next_seq : int;  (* distinct checkpoint path per admission *)
  mutable completions : float list;  (* for the jobs/sec window *)
  jps_gauge : Obs.Registry.gauge;
  rejections : Obs.Registry.counter;
}

let jps_window_s = 10.0

(* --- client I/O ------------------------------------------------------ *)

(* Output never blocks the loop: [send_line] only appends to the
   client's buffer, and the buffer drains through the select write set
   (socket fds are nonblocking).  A client that stops reading while
   events keep coming would grow its buffer without bound -- the one
   thing the daemon promised never to do -- so past [max_outbuf] the
   client is marked dead and reaped by the loop (its jobs run on; the
   verdicts are dropped like any vanished client's).  The stdio client
   is exempt: its reader is the test/CI harness and its buffer is
   bounded by the jobs it submitted. *)
let max_outbuf = 8 * 1024 * 1024

let send_line (c : client) json =
  if c.alive then begin
    Buffer.add_string c.outbuf (Protocol.to_line json);
    if c.cid <> 0 && Buffer.length c.outbuf > max_outbuf then begin
      c.alive <- false;
      Mc.Log.degraded ~what:"client"
        ~detail:
          (Printf.sprintf "client %d not reading (%d bytes queued); dropping"
             c.cid (Buffer.length c.outbuf))
    end
  end

let send_to st cid json =
  match Hashtbl.find_opt st.clients cid with
  | Some c -> send_line c json
  | None -> ()  (* client went away; its verdicts are dropped *)

let drop_client st (c : client) =
  c.alive <- false;
  c.in_open <- false;
  Hashtbl.remove st.clients c.cid;
  if c.cid <> 0 then ( try Unix.close c.fd with _ -> ())

(* Write as much buffered output as the fd will take right now.  The
   stdio client's fds stay in blocking mode (they are shared with the
   parent process), so it flushes in <= 512-byte chunks: select just
   said the pipe is writable, and POSIX guarantees room for at least
   PIPE_BUF >= 512 bytes, so a chunk that small cannot block. *)
let flush_client st (c : client) =
  let len = Buffer.length c.outbuf in
  if len > 0 && c.alive then begin
    let data = Buffer.contents c.outbuf in
    let chunk = if c.cid = 0 then min len 512 else len in
    match Unix.write_substring c.out data 0 chunk with
    | n ->
      Buffer.clear c.outbuf;
      if n < len then Buffer.add_substring c.outbuf data n (len - n)
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception
        Unix.Unix_error ((Unix.EPIPE | Unix.EBADF | Unix.ECONNRESET), _, _) ->
      drop_client st c
  end

let reap_dead st =
  let dead =
    Hashtbl.fold
      (fun _ c acc -> if c.alive then acc else c :: acc)
      st.clients []
  in
  List.iter (drop_client st) dead

(* --- request handling ------------------------------------------------ *)

let jobs_per_s st =
  let now = Mc.Monotonic.now () in
  let live = List.filter (fun ts -> now -. ts <= jps_window_s) st.completions in
  st.completions <- live;
  float_of_int (List.length live) /. jps_window_s

let reject st c ~id ~reason =
  Obs.Registry.incr st.rejections;
  send_line c (Protocol.rejected ~id ~reason)

let handle_submit st (c : client) (spec : Jobspec.t) =
  let id = spec.Jobspec.id in
  if Atomic.get st.draining then reject st c ~id ~reason:"draining"
  else if Pool.pressure st.pool >= 3 then
    reject st c ~id ~reason:"memory pressure: refusing new work"
  else begin
    let key = Jobspec.model_key spec.Jobspec.model in
    let frozen =
      match Hashtbl.find_opt st.frozen_cache key with
      | Some f -> Ok f
      | None -> (
        match Jobspec.build spec.Jobspec.model with
        | model ->
          let f = Mc.Parallel.freeze model in
          Hashtbl.replace st.frozen_cache key f;
          Ok f
        | exception (Failure why | Invalid_argument why) -> Error why
        | exception e -> Error (Printexc.to_string e))
    in
    match frozen with
    | Error why -> reject st c ~id ~reason:(Printf.sprintf "bad model: %s" why)
    | Ok frozen ->
      let deadline_s =
        match spec.Jobspec.deadline_s with
        | Some _ as d -> d
        | None -> st.cfg.default_deadline_s
      in
      let deadline_at =
        Option.map (fun s -> Mc.Monotonic.now () +. s) deadline_s
      in
      let seq = st.next_seq in
      st.next_seq <- seq + 1;
      (* The correlation id: assigned once here at admission, threaded
         through every span, flight entry and protocol event of this
         job, stable across retry attempts. *)
      let trace_id = Printf.sprintf "icv-%d-%s" seq id in
      let checkpoint_path =
        Option.map
          (fun dir -> Filename.concat dir (Printf.sprintf "job-%d.ckpt" seq))
          st.cfg.checkpoint_dir
      in
      let trace_path =
        if not spec.Jobspec.trace then None
        else
          let dir =
            match (st.cfg.trace_dir, st.cfg.checkpoint_dir) with
            | Some d, _ -> d
            | None, Some d -> d
            | None, None -> Filename.get_temp_dir_name ()
          in
          Some (Filename.concat dir (Printf.sprintf "trace-%s.jsonl" trace_id))
      in
      let job =
        Pool.job ~spec ~frozen ~client:c.cid ~trace_id ?trace_path ~deadline_at
          ~checkpoint_path ()
      in
      (match Pool.submit st.pool job with
      | Ok depth ->
        send_line c (Protocol.accepted ~id ~trace_id ~queue_depth:depth)
      | Error reason -> reject st c ~id ~reason)
  end

let send_stats st c =
  send_line c
    (Protocol.stats
       ~queue_depth:(Pool.queue_depth st.pool)
       ~busy_workers:(Pool.busy_workers st.pool)
       ~workers:(Pool.workers st.pool)
       ~live_nodes:(Pool.total_live st.pool)
       ~pressure:(Pool.pressure st.pool)
       ~jobs_done:(Pool.jobs_done st.pool)
       ~jobs_per_s:(jobs_per_s st)
       ~latency:(Pool.latency st.pool))

let send_health st c =
  send_line c
    (Protocol.health
       ~uptime_s:(Mc.Monotonic.now () -. st.started_at)
       ~queue_depth:(Pool.queue_depth st.pool)
       ~outstanding:(Pool.outstanding st.pool)
       ~busy_workers:(Pool.busy_workers st.pool)
       ~workers:(Pool.workers st.pool)
       ~live_nodes:(Pool.total_live st.pool)
       ~max_total_live:(Option.value st.cfg.max_total_live ~default:0)
       ~pressure:(Pool.pressure st.pool)
       ~draining:(Atomic.get st.draining)
       (Pool.slot_health st.pool))

(* Flatten the registry snapshot into named float series for the watch
   stream: counters and histogram count/sum move monotonically (their
   deltas are rates), gauges are sampled levels. *)
let metric_series () =
  List.concat_map
    (function
      | Obs.Registry.Counter (n, v) -> [ (n, float_of_int v) ]
      | Obs.Registry.Gauge (n, v) -> [ (n, v) ]
      | Obs.Registry.Histogram (n, count, sum, _max, _buckets) ->
        [ (n ^ ".count", float_of_int count); (n ^ ".sum", float_of_int sum) ])
    (Obs.Registry.snapshot Obs.Registry.default)

let send_watch_frame st (c : client) ~now =
  let cur = metric_series () in
  let delta =
    List.filter_map
      (fun (k, v) ->
        let prev =
          Option.value (List.assoc_opt k c.watch_prev) ~default:0.0
        in
        if v <> prev then Some (k, v -. prev) else None)
      cur
  in
  let elapsed_s =
    if c.watch_last = 0.0 then 0.0 else now -. c.watch_last
  in
  c.watch_prev <- cur;
  c.watch_last <- now;
  send_line c
    (Protocol.metrics ~elapsed_s
       ~queue_depth:(Pool.queue_depth st.pool)
       ~busy_workers:(Pool.busy_workers st.pool)
       ~pressure:(Pool.pressure st.pool)
       ~delta)

let tick_watchers st =
  let now = Mc.Monotonic.now () in
  Hashtbl.iter
    (fun _ c ->
      match c.watch_interval with
      | Some ivl when c.alive && now -. c.watch_last >= ivl ->
        send_watch_frame st c ~now
      | _ -> ())
    st.clients

let handle_line st c line =
  let line = String.trim line in
  if line <> "" then
    match Protocol.request_of_line line with
    | Error why -> send_line c (Protocol.error ~reason:why)
    | Ok (Protocol.Submit spec) -> handle_submit st c spec
    | Ok (Protocol.Stats Protocol.Json) -> send_stats st c
    | Ok (Protocol.Stats Protocol.Prom) ->
      send_line c
        (Protocol.stats_prom
           ~text:(Obs.Summary.to_prometheus Obs.Registry.default))
    | Ok Protocol.Health -> send_health st c
    | Ok (Protocol.Watch interval_s) ->
      c.watch_interval <- Some interval_s;
      c.watch_prev <- [];
      c.watch_last <- 0.0;
      (* immediate first frame: establishes the baseline and tells the
         client the stream is live *)
      send_watch_frame st c ~now:(Mc.Monotonic.now ())
    | Ok Protocol.Unwatch -> c.watch_interval <- None
    | Ok Protocol.Ping -> send_line c Protocol.pong
    | Ok Protocol.Shutdown ->
      Atomic.set st.draining true;
      send_line c Protocol.draining

(* Split the client's buffer on newlines, keeping any trailing
   partial line. *)
let consume_buffer st c =
  let data = Buffer.contents c.buf in
  Buffer.clear c.buf;
  let n = String.length data in
  let start = ref 0 in
  (try
     while !start < n do
       match String.index_from data !start '\n' with
       | nl ->
         handle_line st c (String.sub data !start (nl - !start));
         start := nl + 1
       | exception Not_found ->
         Buffer.add_substring c.buf data !start (n - !start);
         start := n
     done
   with e ->
     (* keep unconsumed input even if a handler raised *)
     if !start < n then Buffer.add_substring c.buf data !start (n - !start);
     raise e)

let read_client st c =
  let bytes = Bytes.create 65536 in
  match Unix.read c.fd bytes 0 (Bytes.length bytes) with
  | 0 ->
    (* EOF.  In stdio mode the input stream *is* the job source, so
       EOF means "no more work": start draining, but keep the output
       side so pending verdicts still reach stdout. *)
    if st.cfg.stdio && c.cid = 0 then begin
      c.in_open <- false;
      Atomic.set st.draining true
    end
    else drop_client st c
  | n ->
    Buffer.add_subbytes c.buf bytes 0 n;
    consume_buffer st c
  | exception
      Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
    drop_client st c
  | exception
      Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
    ->
    ()

(* --- pool event routing ---------------------------------------------- *)

(* The daemon-side latency split reported on the terminal event:
   admission-to-dispatch (of the final attempt) and admission-to-now.
   Both ends are on this process's monotonic clock, so no cross-host
   clock games. *)
let job_timing (job : Pool.job) =
  let now = Mc.Monotonic.now () in
  let queue_s =
    if job.Pool.dispatched_at > 0.0 then
      Float.max 0.0 (job.Pool.dispatched_at -. job.Pool.submitted_at)
    else 0.0
  in
  (queue_s, Float.max 0.0 (now -. job.Pool.submitted_at))

let route_event st = function
  | Pool.Progress (job, row) ->
    send_to st job.Pool.client
      (Protocol.progress ~id:job.Pool.spec.Jobspec.id row)
  | Pool.Requeued (job, reason) ->
    send_to st job.Pool.client
      (Protocol.retry ~id:job.Pool.spec.Jobspec.id
         ~trace_id:job.Pool.trace_id ~reason ~attempt:job.Pool.attempt)
  | Pool.Finished (job, worker, resumed_at, report) ->
    st.completions <- Mc.Monotonic.now () :: st.completions;
    Obs.Registry.set st.jps_gauge (jobs_per_s st);
    (match job.Pool.checkpoint_path with
    | Some p when Sys.file_exists p -> ( try Sys.remove p with Sys_error _ -> ())
    | _ -> ());
    let queue_s, e2e_s = job_timing job in
    send_to st job.Pool.client
      (Protocol.result ~id:job.Pool.spec.Jobspec.id ~trace_id:job.Pool.trace_id
         ?trace:job.Pool.trace_path ~queue_s ~e2e_s ~worker ~resumed_at report)
  | Pool.Batch_finished (job, worker, res, report) ->
    st.completions <- Mc.Monotonic.now () :: st.completions;
    Obs.Registry.set st.jps_gauge (jobs_per_s st);
    (match job.Pool.checkpoint_path with
    | Some p when Sys.file_exists p -> ( try Sys.remove p with Sys_error _ -> ())
    | _ -> ());
    let queue_s, e2e_s = job_timing job in
    send_to st job.Pool.client
      (Protocol.batch_result ~id:job.Pool.spec.Jobspec.id
         ~trace_id:job.Pool.trace_id ?trace:job.Pool.trace_path ~queue_s ~e2e_s
         ~worker res report)
  | Pool.Worker_died (sid, why, dump) ->
    Mc.Log.degraded ~what:"worker"
      ~detail:
        (Printf.sprintf "worker %d died: %s; respawned%s" sid why
           (match dump with
           | Some path -> Printf.sprintf " (flight recorder: %s)" path
           | None -> ""))
  | Pool.Worker_hung sid ->
    Mc.Log.degraded ~what:"worker"
      ~detail:(Printf.sprintf "worker %d unresponsive; cancelling" sid)
  | Pool.Worker_replaced sid ->
    Mc.Log.degraded ~what:"worker"
      ~detail:(Printf.sprintf "worker %d ignored cancel; slot abandoned" sid)

(* --- main loop -------------------------------------------------------- *)

let accept_client st listen_fd =
  match Unix.accept listen_fd with
  | fd, _ ->
    Unix.set_nonblock fd;
    let cid = st.next_cid in
    st.next_cid <- cid + 1;
    Hashtbl.replace st.clients cid
      {
        cid;
        fd;
        out = fd;
        buf = Buffer.create 256;
        outbuf = Buffer.create 256;
        alive = true;
        in_open = true;
        watch_interval = None;
        watch_last = 0.0;
        watch_prev = [];
      }
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let run ?(on_ready = fun () -> ()) cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let draining = Atomic.make false in
  let flip _ = Atomic.set draining true in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle flip) in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle flip) in
  let pool_cfg =
    {
      Pool.workers = cfg.workers;
      hang_timeout_s = cfg.hang_timeout_s;
      max_total_live = cfg.max_total_live;
      max_attempts = cfg.max_attempts;
      portfolio_domains = cfg.portfolio_domains;
      checkpoint_every = 1;
      (* flight dumps land next to the checkpoints (or the traces) so a
         post-mortem finds the black box beside the artifacts it
         explains *)
      flight_dir =
        (match (cfg.checkpoint_dir, cfg.trace_dir) with
        | Some d, _ -> Some d
        | None, Some d -> Some d
        | None, None -> None);
    }
  in
  (match cfg.checkpoint_dir with
  | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
  | _ -> ());
  (match cfg.trace_dir with
  | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
  | _ -> ());
  let pool = Pool.create ~config:pool_cfg ~queue_capacity:cfg.queue_capacity () in
  let reg = Obs.Registry.default in
  let st =
    {
      cfg;
      pool;
      clients = Hashtbl.create 8;
      frozen_cache = Hashtbl.create 8;
      draining;
      started_at = Mc.Monotonic.now ();
      next_cid = 1;
      next_seq = 0;
      completions = [];
      jps_gauge = Obs.Registry.gauge reg "srv.jobs_per_s";
      rejections = Obs.Registry.counter reg "srv.rejections";
    }
  in
  let listen_fd =
    match cfg.socket_path with
    | None -> None
    | Some path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 16;
      Some fd
  in
  if cfg.stdio then
    Hashtbl.replace st.clients 0
      {
        cid = 0;
        fd = Unix.stdin;
        out = Unix.stdout;
        buf = Buffer.create 256;
        outbuf = Buffer.create 256;
        alive = true;
        in_open = true;
        watch_interval = None;
        watch_last = 0.0;
        watch_prev = [];
      };
  on_ready ();
  let drained_notified = ref false in
  (* The loop is exiting: push remaining buffered event lines out with
     bounded patience instead of through further select ticks.  A
     client that stays unwritable forfeits its tail -- the alternative
     is a daemon that cannot shut down. *)
  let final_flush () =
    let deadline = Mc.Monotonic.now () +. 5.0 in
    let rec go () =
      let pending =
        Hashtbl.fold
          (fun _ c acc ->
            if c.alive && Buffer.length c.outbuf > 0 then c :: acc else acc)
          st.clients []
      in
      if pending <> [] && Mc.Monotonic.now () < deadline then begin
        (match Unix.select [] (List.map (fun c -> c.out) pending) [] 0.1 with
        | _, writable, _ ->
          List.iter
            (fun c -> if List.mem c.out writable then flush_client st c)
            pending
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go ()
      end
    in
    go ()
  in
  (* First tick after the draining flag flips (SIGTERM, SIGINT, stdin
     EOF or a shutdown request): preserve the recent-event ring before
     the drain tears state down — "why was it killed" needs evidence —
     and tell every client.  Called both at the top of the loop and on
     the exit path, because an idle daemon exits within the very
     iteration whose select the signal interrupted. *)
  let note_draining () =
    if Atomic.get st.draining && not !drained_notified then begin
      drained_notified := true;
      (match Pool.dump_flight st.pool ~trigger:("shutdown", []) with
      | Some path ->
        Mc.Log.degraded ~what:"daemon"
          ~detail:(Printf.sprintf "draining; flight recorder: %s" path)
      | None -> ());
      Hashtbl.iter (fun _ c -> send_line c Protocol.draining) st.clients
    end
  in
  let rec loop () =
    reap_dead st;
    let accepting = (not (Atomic.get st.draining)) && listen_fd <> None in
    note_draining ();
    let fds =
      (if accepting then Option.to_list listen_fd else [])
      @ Hashtbl.fold
          (fun _ c acc -> if c.in_open then c.fd :: acc else acc)
          st.clients []
    in
    let wfds =
      Hashtbl.fold
        (fun _ c acc ->
          if c.alive && Buffer.length c.outbuf > 0 then c.out :: acc else acc)
        st.clients []
    in
    let ready, writable, _ =
      match Unix.select fds wfds [] cfg.tick_s with
      | r -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        if listen_fd = Some fd then accept_client st fd
        else
          match
            Hashtbl.fold
              (fun _ c acc -> if c.fd = fd then Some c else acc)
              st.clients None
          with
          | Some c -> read_client st c
          | None -> ())
      ready;
    List.iter
      (fun fd ->
        match
          Hashtbl.fold
            (fun _ c acc -> if c.out = fd then Some c else acc)
            st.clients None
        with
        | Some c -> flush_client st c
        | None -> ())
      writable;
    Pool.supervise st.pool;
    List.iter (route_event st) (Pool.poll st.pool);
    tick_watchers st;
    Obs.Registry.set st.jps_gauge (jobs_per_s st);
    if Atomic.get st.draining && Pool.idle st.pool then begin
      note_draining ();
      (* Drain complete: flush any last events and stop. *)
      List.iter (route_event st) (Pool.poll st.pool);
      Pool.shutdown st.pool;
      List.iter (route_event st) (Pool.poll st.pool);
      final_flush ()
    end
    else loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      (match listen_fd with
      | Some fd -> (
        (try Unix.close fd with _ -> ());
        match cfg.socket_path with
        | Some path -> ( try Unix.unlink path with _ -> ())
        | None -> ())
      | None -> ());
      Hashtbl.iter
        (fun _ c -> if c.cid <> 0 then try Unix.close c.fd with _ -> ())
        st.clients;
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigint old_int)
    loop
