(** Newline-delimited JSON wire protocol between icvd and its clients.

    One request object per line in; one event object per line out,
    each tagged with a ["type"] field.  The same encoding runs over
    the Unix socket and over stdin/stdout in the daemon's [--stdio]
    test mode. *)

type request =
  | Submit of Jobspec.t
  | Stats
  | Ping
  | Shutdown  (** begin draining, as if SIGTERM had arrived *)

val request_of_line : string -> (request, string) result
(** Parse one request line.  [{"type":"submit", ...job fields...}]
    submits; a bare job object (no ["type"]) is an implicit submit so a
    file of jobs can be piped in unchanged. *)

(** {1 Server-to-client events} *)

val accepted : id:string -> queue_depth:int -> Obs.Json.t
val rejected : id:string -> reason:string -> Obs.Json.t

val error : reason:string -> Obs.Json.t
(** Malformed request (no job id to blame). *)

val progress : id:string -> Obs.Iterlog.row -> Obs.Json.t
(** Streamed per-iteration row, when the job asked for [progress]. *)

val retry : id:string -> reason:string -> attempt:int -> Obs.Json.t
(** The job's worker crashed or hung; the job was requeued. *)

val result :
  id:string -> worker:int -> resumed_at:int -> Mc.Report.t -> Obs.Json.t
(** Terminal verdict.  [resumed_at > 0] means this execution resumed
    from a checkpoint at that iteration. *)

val batch_result :
  id:string -> worker:int -> Mc.Batch.result -> Mc.Report.t -> Obs.Json.t
(** Terminal verdict for a batch job.  Same ["result"] event shape —
    ["verdict"]/["report"] are the aggregate that stands for the whole
    batch — plus a ["batch"] array of per-property
    name/verdict/rechecked/assumed objects and the sharing counters
    under ["batch_stats"]. *)

val pong : Obs.Json.t
val draining : Obs.Json.t

val stats :
  queue_depth:int ->
  busy_workers:int ->
  workers:int ->
  live_nodes:int ->
  pressure:int ->
  jobs_done:int ->
  jobs_per_s:float ->
  Obs.Json.t

val to_line : Obs.Json.t -> string
(** Serialized event plus the trailing newline. *)
