(** Newline-delimited JSON wire protocol between icvd and its clients.

    One request object per line in; one event object per line out,
    each tagged with a ["type"] field.  The same encoding runs over
    the Unix socket and over stdin/stdout in the daemon's [--stdio]
    test mode. *)

type stats_format =
  | Json
  | Prom  (** Prometheus text exposition, via {!stats_prom} *)

type request =
  | Submit of Jobspec.t
  | Stats of stats_format
  | Health  (** queue depths, inflight, per-worker liveness, pressure *)
  | Watch of float
      (** stream a [metrics] delta event every [interval_s] seconds
          until [Unwatch] or disconnect *)
  | Unwatch
  | Ping
  | Shutdown  (** begin draining, as if SIGTERM had arrived *)

val request_of_line : string -> (request, string) result
(** Parse one request line.  [{"type":"submit", ...job fields...}]
    submits; a bare job object (no ["type"]) is an implicit submit so a
    file of jobs can be piped in unchanged.  [{"type":"stats",
    "format":"prom"}] selects Prometheus exposition;
    [{"type":"watch", "interval_s":0.5}] starts a metrics stream. *)

(** {1 Server-to-client events} *)

val accepted : id:string -> trace_id:string -> queue_depth:int -> Obs.Json.t
val rejected : id:string -> reason:string -> Obs.Json.t

val error : reason:string -> Obs.Json.t
(** Malformed request (no job id to blame). *)

val progress : id:string -> Obs.Iterlog.row -> Obs.Json.t
(** Streamed per-iteration row, when the job asked for [progress]. *)

val retry :
  id:string -> trace_id:string -> reason:string -> attempt:int -> Obs.Json.t
(** The job's worker crashed or hung; the job was requeued.  The trace
    id is the one assigned at admission — stable across attempts. *)

val result :
  id:string ->
  trace_id:string ->
  ?trace:string ->
  queue_s:float ->
  e2e_s:float ->
  worker:int ->
  resumed_at:int ->
  Mc.Report.t ->
  Obs.Json.t
(** Terminal verdict.  [resumed_at > 0] means this execution resumed
    from a checkpoint at that iteration.  [trace] is the server-side
    span-tree JSONL path when the job was submitted with
    ["trace": true]; [queue_s]/[e2e_s] are the daemon-measured
    admission-to-dispatch and admission-to-resolution latencies. *)

val batch_result :
  id:string ->
  trace_id:string ->
  ?trace:string ->
  queue_s:float ->
  e2e_s:float ->
  worker:int ->
  Mc.Batch.result ->
  Mc.Report.t ->
  Obs.Json.t
(** Terminal verdict for a batch job.  Same ["result"] event shape —
    ["verdict"]/["report"] are the aggregate that stands for the whole
    batch — plus a ["batch"] array of per-property
    name/verdict/rechecked/assumed objects and the sharing counters
    under ["batch_stats"]. *)

val pong : Obs.Json.t
val draining : Obs.Json.t

val stats :
  queue_depth:int ->
  busy_workers:int ->
  workers:int ->
  live_nodes:int ->
  pressure:int ->
  jobs_done:int ->
  jobs_per_s:float ->
  latency:(string * float * float * float) list ->
  Obs.Json.t
(** [latency] rows are [(histogram, p50, p90, p99)] in milliseconds,
    rendered as a ["latency"] object keyed by histogram name. *)

val stats_prom : text:string -> Obs.Json.t
(** The registry snapshot as Prometheus text exposition, carried as one
    JSON string field (["prom"]) so the single-line event framing
    holds; [icvd --client stats --format prom] unwraps it. *)

val health :
  uptime_s:float ->
  queue_depth:int ->
  outstanding:int ->
  busy_workers:int ->
  workers:int ->
  live_nodes:int ->
  max_total_live:int ->
  pressure:int ->
  draining:bool ->
  Pool.slot_health list ->
  Obs.Json.t
(** Liveness snapshot: queue depth, inflight count, memory pressure,
    uptime, and one ["slots"] entry per worker (busy flag, live nodes,
    seconds since last heartbeat, current job id). *)

val metrics :
  elapsed_s:float ->
  queue_depth:int ->
  busy_workers:int ->
  pressure:int ->
  delta:(string * float) list ->
  Obs.Json.t
(** One frame of a [watch] stream: counter/gauge movement since the
    previous frame (unchanged metrics omitted) plus the instantaneous
    queue/pressure snapshot. *)

val to_line : Obs.Json.t -> string
(** Serialized event plus the trailing newline. *)
