(** Persistent worker pool with supervision.

    Workers are OCaml 5 domains running a pop/run loop over the
    admission queue; models travel as {!Mc.Parallel.frozen} strings
    and each worker thaws a private copy, preserving the
    shared-nothing discipline.  {!supervise} (called from the daemon
    tick) handles three failure modes:

    - {b crash}: an escaped exception ends the domain; the supervisor
      joins it, requeues the in-flight job on the urgent lane and
      spawns a replacement slot.
    - {b hang}: a busy worker whose heartbeat goes silent for the hang
      timeout gets its cancel flag set; the worker's kernel fault hook
      turns that into [Limits.Exceeded] at the next step (domains
      cannot be killed).
    - {b zombie}: a worker that ignores the cancel for another timeout
      window is wedged outside kernel code; its slot is abandoned
      (late events suppressed), the job requeued, a fresh slot spawned
      and the orphan domain never joined.

    Workers keep their last thawed model as scratch: consecutive jobs
    naming the same declaration ({!Jobspec.model_key}) reuse the
    manager — unique and computed tables stay warm — instead of
    re-thawing; the scratch is dropped whenever memory pressure rises
    above zero.  Reuses are counted under ["srv.manager_reuses"].

    Every admitted job is resolved exactly once — with a [Finished]
    event — even when a worker verdict races the supervisor's hang
    declaration: each dispatch is stamped with its attempt number and
    only the current attempt may resolve the job, so a zombie waking
    after its job was requeued cannot touch the retry.  A cancel that
    loses the race to a real Proved/Violated verdict delivers that
    verdict instead of voiding it.  Failed jobs retry up to
    [max_attempts] total attempts; an XICI retry resumes from the
    job's checkpoint when one was written. *)

exception Injected_crash
(** Raised by a job's test-only fault spec; deliberately not caught by
    the worker, to exercise the crash path. *)

type job = {
  spec : Jobspec.t;
  frozen : Mc.Parallel.frozen;
  client : int;  (** daemon client id the verdict routes back to *)
  trace_id : string;
      (** assigned at admission, stable across retries: the correlation
          id every span and flight entry of this job carries *)
  trace_path : string option;  (** per-job JSONL span file, if traced *)
  submitted_at : float;
  deadline_at : float option;  (** absolute, on the monotonic clock *)
  checkpoint_path : string option;
  mutable dispatched_at : float;
      (** when the latest attempt left the queue (0.0 before dispatch);
          read it only after the job's terminal event *)
  mutable attempt : int;
  mutable inflight : bool;
}

val job :
  spec:Jobspec.t ->
  frozen:Mc.Parallel.frozen ->
  client:int ->
  trace_id:string ->
  ?trace_path:string ->
  deadline_at:float option ->
  checkpoint_path:string option ->
  unit ->
  job

type event =
  | Progress of job * Obs.Iterlog.row
  | Requeued of job * string
      (** reason; [job.attempt] already names the retry *)
  | Finished of job * int * int * Mc.Report.t
      (** worker id (-1 when synthesized by the supervisor), resumed-at
          iteration (0 = cold start), final report *)
  | Batch_finished of job * int * Mc.Batch.result * Mc.Report.t
      (** a batch job's terminal event: worker id, the per-property
          {!Mc.Batch.result}, and the aggregate report that stands for
          the whole batch on the wire (first violated item's, else
          first exceeded, else proved) *)
  | Worker_died of int * string * string option
      (** worker id, cause, flight-recorder dump path if one was
          written *)
  | Worker_hung of int
  | Worker_replaced of int

type config = {
  workers : int;
  hang_timeout_s : float;
  max_total_live : int option;
      (** memory-pressure cap over all workers' live BDD nodes *)
  max_attempts : int;  (** total attempts per job, first one included *)
  portfolio_domains : int;
  checkpoint_every : int;
  flight_dir : string option;
      (** where flight-recorder dumps land (the daemon points this next
          to the checkpoint dir); [None] disables dumping — the ring
          still records *)
}

val default_config : config
(** 2 workers, 10s hang timeout, 2 attempts, checkpoint every
    iteration, no memory cap, no flight dir. *)

type t

val create : ?config:config -> queue_capacity:int -> unit -> t
(** Spawns the worker domains immediately. *)

val submit : t -> job -> (int, string) result
(** [Ok queue_depth] or [Error reason] (queue full / closed) — the
    caller turns the error into an explicit protocol rejection. *)

val poll : t -> event list
(** Drain pending events (daemon thread only). *)

val supervise : t -> unit
(** One supervision tick: reap crashed workers, cancel or replace hung
    ones, refresh gauges.  Daemon thread only. *)

val shutdown : t -> unit
(** Close the queue, let workers drain it and join them (abandoned
    zombie slots excepted).  Call when {!idle} after draining. *)

(** {1 Introspection} *)

val queue_depth : t -> int
val busy_workers : t -> int
val workers : t -> int

val idle : t -> bool
(** No admitted job is unresolved — the drain-completion signal. *)

val jobs_done : t -> int

val outstanding : t -> int
(** Admitted jobs not yet resolved (queued + inflight). *)

val total_live : t -> int

type slot_health = {
  sh_sid : int;
  sh_busy : bool;
  sh_live : int;
  sh_silent_s : float;  (** seconds since the worker's last heartbeat *)
  sh_job : string option;  (** id of the job being run, if busy *)
}

val slot_health : t -> slot_health list
(** Liveness of every non-abandoned worker slot, for the [health]
    protocol request. *)

val latency : t -> (string * float * float * float) list
(** [(histogram_name, p50, p90, p99)] in milliseconds for the
    queue/thaw/solve/end-to-end latency split. *)

val flight : t -> Flight.t
(** The pool's flight-recorder ring (admissions, dispatches, throttled
    heartbeats, pressure transitions, cancellations, crash triggers). *)

val dump_flight :
  t -> trigger:(string * (string * Obs.Json.t) list) -> string option
(** Record [trigger] as the ring's final entry, then dump the ring as
    JSONL under [flight_dir], returning the file path ([None] if no
    [flight_dir] or the write failed).  Daemon thread only.  Called
    internally on worker crash, hang-cancel and zombie abandonment; the
    daemon calls it on SIGTERM. *)

val pressure : t -> int
(** Memory-pressure level 0–3 against [max_total_live]: 1 shrinks
    thaw-time cache budgets, 2 also clamps portfolio width and per-job
    live budgets, 3 tells the daemon to refuse new work. *)
