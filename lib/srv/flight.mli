(** Flight recorder: fixed-size lock-free ring of recent pool events,
    dumped as JSONL on worker crash, hang-cancel or SIGTERM — a black
    box for post-mortems, not an audit log (under concurrent writes a
    dump may lose the entries being overwritten at that instant, and
    nothing is persisted on SIGKILL).

    Recording is one [Atomic.fetch_and_add] plus a boxed-cell store and
    is safe from any domain; entries are immutable so a dump never
    observes a torn record. *)

type entry = {
  seq : int;  (** global record order *)
  ts : float;  (** [Mc.Monotonic] seconds *)
  kind : string;
  detail : (string * Obs.Json.t) list;
}

type t

val create : ?capacity:int -> unit -> t
(** Ring of [capacity] slots (default 512, minimum 16). *)

val capacity : t -> int

val record : t -> kind:string -> (string * Obs.Json.t) list -> unit
(** Append an event, overwriting the oldest once the ring is full. *)

val entries : t -> entry list
(** Surviving entries, oldest first. *)

val to_jsonl : t -> string
(** One JSON object per entry ([seq], [ts_s], [kind], plus detail
    fields), oldest first. *)

val dump : t -> string -> unit
(** Write [to_jsonl] to a file via temp-file + rename, so an
    interrupted dump never leaves a truncated file in place. *)
