(* The seed corpus: one line per replayable batch.

     <target> <seed> <count>

   Blank lines and lines starting with '#' are comments.  A failure
   printed by the driver is exactly such a line, so triage is: paste the
   line into the corpus (or pass it to --replay) and re-run. *)

type entry = { target : string; seed : int; count : int }

let line e = Printf.sprintf "%s %d %d" e.target e.seed e.count

let parse_line s =
  let s = String.trim s in
  if s = "" || s.[0] = '#' then None
  else
    match String.split_on_char ' ' s |> List.filter (fun w -> w <> "") with
    | [ target; seed; count ] -> (
      match (int_of_string_opt seed, int_of_string_opt count) with
      | Some seed, Some count when count > 0 -> Some { target; seed; count }
      | _ -> invalid_arg ("malformed corpus line: " ^ s))
    | _ -> invalid_arg ("malformed corpus line: " ^ s)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | s -> go (match parse_line s with Some e -> e :: acc | None -> acc)
        | exception End_of_file -> List.rev acc
      in
      go [])
