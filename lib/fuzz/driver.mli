(** The deterministic fuzz driver.

    Work happens in batches keyed by [(target, seed, count)]: the seed
    initialises a private [Random.State.t], so a batch always generates
    the same cases and every failure is replayable from its corpus line.
    Counterexamples are shrunk by QCheck2's integrated shrinking. *)

type target = Diff | Metamorph | Taut | Bddops | Tinycache | Batchfuzz

val all_targets : target list
val target_name : target -> string
val target_of_string : string -> target option

type failure = { entry : Corpus.entry; counterexamples : string list }

val pp_failure : failure -> string
(** First line is the replayable corpus line, then the shrunk
    counterexamples with their disagreements. *)

val run_batch : target -> seed:int -> count:int -> (unit, failure) result

val run_entry : Corpus.entry -> (unit, failure) result

val run_corpus : ?log:(string -> unit) -> Corpus.entry list -> failure list

val derive_seed : int -> int -> int
(** [derive_seed root i] is batch [i]'s seed under root seed [root]. *)

type summary = { batches : int; cases : int; failures : failure list }

val run_timed :
  ?targets:target list ->
  ?log:(string -> unit) ->
  minutes:float ->
  seed:int ->
  batch:int ->
  unit ->
  summary
(** Round-robin over [targets] until the wall-clock budget expires
    (monotonic clock; at least the in-flight batch completes). *)
