(* Random verification problems of configurable width, with an
   explicit-state reference verdict.  Generalises the fixed
   3-state/2-input specs of test/testmachines.ml: the number of state
   bits, input bits and good conjuncts, the FD-candidate subset and the
   input constraint are all drawn from a [shape], and the generator
   mixes in the corner cases (no initial states, a bad state that is
   unreachable) that exercise vacuous-proof paths. *)

type t = {
  n_state : int;
  n_input : int;
  nexts : Expr.t array; (* over n_state + n_input vars *)
  constr : Expr.t; (* over n_state + n_input vars *)
  init : Expr.t; (* over n_state vars *)
  goods : Expr.t list; (* over n_state vars *)
  fd : int list; (* state-bit indices offered as FD candidates *)
}

type shape = {
  min_state_bits : int;
  max_state_bits : int;
  min_input_bits : int;
  max_input_bits : int;
  max_goods : int;
  fd_subsets : bool;
  constrain_inputs : bool;
  corners : bool;
}

let default_shape =
  {
    min_state_bits = 2;
    max_state_bits = 4;
    min_input_bits = 1;
    max_input_bits = 3;
    max_goods = 3;
    fd_subsets = true;
    constrain_inputs = true;
    corners = true;
  }

(* Everything the explicit reference enumerates is exponential in these,
   so refuse shapes it could not brute-force. *)
let check_shape s =
  if
    s.min_state_bits < 1 || s.max_state_bits > 8 || s.min_input_bits < 0
    || s.max_input_bits > 6
    || s.min_state_bits > s.max_state_bits
    || s.min_input_bits > s.max_input_bits
    || s.max_goods < 1
  then invalid_arg "Fuzz.Spec: shape out of the brute-forceable range"

(* The all-zero / all-one state cubes over [n] state bits. *)
let all_zero n =
  List.fold_left
    (fun acc i -> Expr.And (acc, Expr.Not (Expr.V i)))
    (Expr.Not (Expr.V 0))
    (List.init (n - 1) (fun i -> i + 1))

let all_one n =
  List.fold_left
    (fun acc i -> Expr.And (acc, Expr.V i))
    (Expr.V 0)
    (List.init (n - 1) (fun i -> i + 1))

(* Corner: the only bad state (all ones) is unreachable -- identity
   transitions keep the machine in its all-zero initial state, so the
   property holds but only a traversal that actually converges can tell. *)
let unreachable_bad ~n_state ~n_input =
  {
    n_state;
    n_input;
    nexts = Array.init n_state (fun i -> Expr.V i);
    constr = Expr.T;
    init = all_zero n_state;
    goods = [ Expr.Not (all_one n_state) ];
    fd = [];
  }

let gen_base shape =
  let open QCheck2.Gen in
  int_range shape.min_state_bits shape.max_state_bits >>= fun n_state ->
  int_range shape.min_input_bits shape.max_input_bits >>= fun n_input ->
  let e = Expr.gen_expr ~nvars:(n_state + n_input) in
  let es = Expr.gen_expr ~nvars:n_state in
  let gen_nexts = array_repeat n_state e in
  let gen_constr = if shape.constrain_inputs then e else return Expr.T in
  let gen_goods = list_size (int_range 1 shape.max_goods) es in
  let gen_fd =
    if shape.fd_subsets then
      list_repeat n_state bool >|= fun keeps ->
      List.filteri (fun i _ -> List.nth keeps i) (List.init n_state Fun.id)
    else return (List.init n_state Fun.id)
  in
  gen_nexts >>= fun nexts ->
  gen_constr >>= fun constr ->
  es >>= fun init ->
  gen_goods >>= fun goods ->
  gen_fd >|= fun fd -> { n_state; n_input; nexts; constr; init; goods; fd }

let gen ?(shape = default_shape) () =
  check_shape shape;
  let open QCheck2.Gen in
  if not shape.corners then gen_base shape
  else
    frequency
      [
        (13, gen_base shape);
        (* Vacuous init: no initial states, everything is (vacuously)
           proved, whatever the rest of the machine does. *)
        (2, gen_base shape >|= fun s -> { s with init = Expr.F });
        ( 1,
          int_range shape.min_state_bits shape.max_state_bits >>= fun n_state ->
          int_range shape.min_input_bits shape.max_input_bits >|= fun n_input ->
          unreachable_bad ~n_state ~n_input );
      ]

let to_string s =
  Format.asprintf "state=%d input=%d fd=[%s] nexts=[%s] constr=%a init=%a goods=[%s]"
    s.n_state s.n_input
    (String.concat ";" (List.map string_of_int s.fd))
    (String.concat ";"
       (Array.to_list (Array.map Expr.to_string s.nexts)))
    Expr.pp_expr s.constr Expr.pp_expr s.init
    (String.concat ";" (List.map Expr.to_string s.goods))

let print_spec = to_string

(* Symbolic model.  State bits first, then inputs; expression variable i
   maps to state bit i (current level) for i < n_state, else input. *)
let build_model ?cache_budget spec =
  let sp = Fsm.Space.create ?cache_budget () in
  let bits = Array.init spec.n_state (fun _ -> Fsm.Space.state_bit sp) in
  let inputs = Array.init spec.n_input (fun _ -> Fsm.Space.input_bit sp) in
  let vars =
    Array.append (Array.map (fun (b : Fsm.Space.bit) -> b.cur) bits) inputs
  in
  let man = Fsm.Space.man sp in
  let assigns =
    List.init spec.n_state (fun i ->
        (bits.(i), Expr.build_bdd man vars spec.nexts.(i)))
  in
  let input_constraint = Expr.build_bdd man vars spec.constr in
  let trans = Fsm.Trans.make ~input_constraint sp ~assigns in
  let svars = Array.sub vars 0 spec.n_state in
  let init = Expr.build_bdd man svars spec.init in
  let good = List.map (Expr.build_bdd man svars) spec.goods in
  let fd_candidates =
    List.map (fun i -> (bits.(i) : Fsm.Space.bit).cur) spec.fd
  in
  Mc.Model.make ~fd_candidates ~name:"fuzz" ~space:sp ~trans ~init ~good ()

(* A multi-property batch problem: one model whose good list
   concatenates every property's conjuncts (build_model preserves list
   order and duplicates), sliced back into [Mc.Batch.property] values
   over that model's manager. *)
let build_batch ?cache_budget spec props =
  let model = build_model ?cache_budget { spec with goods = List.concat props } in
  let rec slice goods i = function
    | [] ->
      if goods <> [] then invalid_arg "build_batch: leftover goods";
      []
    | p :: rest ->
      let rec take k gs acc =
        if k = 0 then (List.rev acc, gs)
        else
          match gs with
          | g :: tl -> take (k - 1) tl (g :: acc)
          | [] -> invalid_arg "build_batch: good list too short"
      in
      let mine, goods = take (List.length p) goods [] in
      { Mc.Batch.pname = Printf.sprintf "p%d" i; goods = mine }
      :: slice goods (i + 1) rest
  in
  (model, slice model.Mc.Model.good 0 props)

(* --- explicit-state reference ---------------------------------------- *)

let succs spec s =
  let out = ref [] in
  for inp = 0 to (1 lsl spec.n_input) - 1 do
    let env =
      Array.init (spec.n_state + spec.n_input) (fun i ->
          if i < spec.n_state then (s lsr i) land 1 = 1
          else (inp lsr (i - spec.n_state)) land 1 = 1)
    in
    if Expr.eval_expr env spec.constr then begin
      let s' = ref 0 in
      for b = 0 to spec.n_state - 1 do
        if Expr.eval_expr env spec.nexts.(b) then s' := !s' lor (1 lsl b)
      done;
      if not (List.mem !s' !out) then out := !s' :: !out
    end
  done;
  !out

let senv spec s = Array.init spec.n_state (fun i -> (s lsr i) land 1 = 1)

let initial_states spec =
  List.filter
    (fun s -> Expr.eval_expr (senv spec s) spec.init)
    (List.init (1 lsl spec.n_state) Fun.id)

(* True iff every reachable state is good. *)
let reference_verdict spec =
  let good s = List.for_all (Expr.eval_expr (senv spec s)) spec.goods in
  let seen = Hashtbl.create 64 in
  let rec bfs = function
    | [] -> true
    | s :: rest ->
      if Hashtbl.mem seen s then bfs rest
      else if not (good s) then false
      else begin
        Hashtbl.replace seen s ();
        bfs (succs spec s @ rest)
      end
  in
  bfs (initial_states spec)

(* Number of reachable states (only meaningful when the property holds
   everywhere reachable, since verdict checkers stop at the first
   violation). *)
let reference_reachable_count spec =
  let seen = Hashtbl.create 64 in
  let rec bfs = function
    | [] -> Hashtbl.length seen
    | s :: rest ->
      if Hashtbl.mem seen s then bfs rest
      else begin
        Hashtbl.replace seen s ();
        bfs (succs spec s @ rest)
      end
  in
  bfs (initial_states spec)
