(** Tautology-checker and BDD-operator fuzz targets.

    Both targets compare against brute-force truth-table evaluation of
    the generating expressions — a reference that never touches a BDD.
    {!check_tautology} covers [Ici.Tautology.check] under all three
    variable-choice heuristics x memo x simplify and the
    fuel-exhaustion-retry path; {!check_ops} covers the core BDD
    operators (implies, equal, bounded conjunction, Restrict, Constrain,
    multi-restrict, quantification, relational product). *)

val nvars : int

val gen_list : Expr.t list QCheck2.Gen.t
val gen_pair : (Expr.t * Expr.t) QCheck2.Gen.t

val print_list : Expr.t list -> string
val print_pair : Expr.t * Expr.t -> string

val check_tautology : Expr.t list -> (unit, string) result
val check_ops : Expr.t * Expr.t -> (unit, string) result
