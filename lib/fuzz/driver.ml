(* The deterministic fuzz driver.

   Work is done in batches: a batch is (target, seed, count), where seed
   initialises a private [Random.State.t] and count is the number of
   QCheck2 cases generated from it.  The same triple always generates
   the same cases, so every batch — and in particular every failing
   batch — is replayable from its corpus line alone.  Shrinking is
   QCheck2's integrated shrinking: the counterexamples reported for a
   failing batch are already minimal. *)

type target = Diff | Metamorph | Taut | Bddops | Tinycache | Batchfuzz

let all_targets = [ Diff; Metamorph; Taut; Bddops; Tinycache; Batchfuzz ]

let target_name = function
  | Diff -> "diff"
  | Metamorph -> "metamorph"
  | Taut -> "taut"
  | Bddops -> "bddops"
  | Tinycache -> "tinycache"
  | Batchfuzz -> "batch"

let target_of_string = function
  | "diff" -> Some Diff
  | "metamorph" -> Some Metamorph
  | "taut" -> Some Taut
  | "bddops" -> Some Bddops
  | "tinycache" -> Some Tinycache
  | "batch" -> Some Batchfuzz
  | _ -> None

type failure = { entry : Corpus.entry; counterexamples : string list }

let pp_failure f =
  String.concat "\n"
    (("FAIL " ^ Corpus.line f.entry)
    :: List.map (fun ce -> "  " ^ ce) f.counterexamples)

(* Each property re-runs its check inside the QCheck2 printer, so the
   shrunk counterexample is reported together with the disagreement it
   triggers (shrinking may land on a different disagreement than the
   original case; what matters is that it still has one). *)
let with_diag to_string check v =
  to_string v ^ "\n  -> "
  ^
  match check v with
  | Some d -> Oracle.to_string d
  | None -> "(no disagreement on the shrunk case)"

let with_diag_result to_string check v =
  to_string v ^ "\n  -> "
  ^
  match check v with
  | Error e -> e
  | Ok () -> "(no disagreement on the shrunk case)"

let test_of_target target ~count =
  let name = target_name target in
  match target with
  | Diff ->
    QCheck2.Test.make ~count ~name
      ~print:(with_diag Spec.to_string (fun s -> Oracle.check_spec s))
      (Spec.gen ())
      (fun spec -> Oracle.check_spec spec = None)
  (* Like Diff, but every method manager runs on a 256-slot computed
     table, so eviction and generation-invalidation paths fire
     constantly: lossy caching must still never change a verdict. *)
  | Tinycache ->
    QCheck2.Test.make ~count ~name
      ~print:
        (with_diag Spec.to_string (fun s ->
             Oracle.check_spec ~cache_budget:256 s))
      (Spec.gen ())
      (fun spec -> Oracle.check_spec ~cache_budget:256 spec = None)
  | Metamorph ->
    QCheck2.Test.make ~count ~name
      ~print:(with_diag Spec.to_string (fun s -> Metamorph.check_spec s))
      (Spec.gen ())
      (fun spec -> Metamorph.check_spec spec = None)
  | Batchfuzz ->
    QCheck2.Test.make ~count ~name
      ~print:(with_diag Batchfuzz.print_case (fun c -> Batchfuzz.check_case c))
      Batchfuzz.gen
      (fun c -> Batchfuzz.check_case c = None)
  | Taut ->
    QCheck2.Test.make ~count ~name
      ~print:(with_diag_result Tautfuzz.print_list Tautfuzz.check_tautology)
      Tautfuzz.gen_list
      (fun es -> Result.is_ok (Tautfuzz.check_tautology es))
  | Bddops ->
    QCheck2.Test.make ~count ~name
      ~print:(with_diag_result Tautfuzz.print_pair Tautfuzz.check_ops)
      Tautfuzz.gen_pair
      (fun p -> Result.is_ok (Tautfuzz.check_ops p))

let run_batch target ~seed ~count =
  let entry = { Corpus.target = target_name target; seed; count } in
  let rand = Random.State.make [| seed |] in
  match QCheck2.Test.check_exn ~rand (test_of_target target ~count) with
  | () -> Ok ()
  | exception QCheck2.Test.Test_fail (_, ces) ->
    Error { entry; counterexamples = ces }
  | exception QCheck2.Test.Test_error (_, ce, e, _) ->
    Error
      { entry;
        counterexamples = [ ce ^ " raised " ^ Printexc.to_string e ] }

let run_entry (e : Corpus.entry) =
  match target_of_string e.Corpus.target with
  | Some t -> run_batch t ~seed:e.Corpus.seed ~count:e.Corpus.count
  | None ->
    Error
      { entry = e;
        counterexamples = [ "unknown fuzz target " ^ e.Corpus.target ] }

let run_corpus ?(log = ignore) entries =
  List.filter_map
    (fun e ->
      log (Printf.sprintf "corpus %s" (Corpus.line e));
      match run_entry e with Ok () -> None | Error f -> Some f)
    entries

(* Per-batch seed derivation: deterministic in (root seed, batch index),
   decorrelated enough that adjacent batches do not share prefixes.  The
   derived seed is what gets printed and replayed, so the scheme only
   needs to be reproducible, not clever. *)
let derive_seed root i = ((root * 1_000_003) + (i * 8_191) + i) land 0x3FFFFFFF

type summary = { batches : int; cases : int; failures : failure list }

let run_timed ?(targets = all_targets) ?(log = ignore) ~minutes ~seed ~batch ()
    =
  if targets = [] then invalid_arg "run_timed: no targets";
  let deadline = Mc.Monotonic.now () +. (minutes *. 60.) in
  let failures = ref [] and batches = ref 0 and cases = ref 0 in
  let i = ref 0 in
  while Mc.Monotonic.now () < deadline do
    let target = List.nth targets (!i mod List.length targets) in
    let bseed = derive_seed seed !i in
    log
      (Printf.sprintf "batch %d: %s %d %d" !i (target_name target) bseed batch);
    (match run_batch target ~seed:bseed ~count:batch with
    | Ok () -> ()
    | Error f ->
      log (pp_failure f);
      failures := f :: !failures);
    incr i;
    incr batches;
    cases := !cases + batch
  done;
  { batches = !batches; cases = !cases; failures = List.rev !failures }
