(** Differential fuzzing of {!Mc.Batch}.

    A case is a random {!Spec} machine plus 2–5 random properties (a
    mix of holding and violated ones arises naturally; a certainly-
    holding [T] property is mixed in explicitly so speculative
    assumptions are sometimes genuinely right).  {!check_case} runs the
    batch under every method and XICI policy configuration — plus
    no-speculation and two-domain variants — and requires every
    per-property verdict to equal the explicit-state reference and an
    independent sequential run, every counterexample to replay
    concretely against its own untransformed property, and the batch
    metamorphic properties ({!Metamorph.check_batch}) to hold. *)

type case = { spec : Spec.t; props : Expr.t list list }

val gen : case QCheck2.Gen.t
(** Integrated shrinking (the spec shrinks through {!Spec.gen}, the
    property list through the list/expression generators). *)

val print_case : case -> string

val check_case :
  ?limits:(Bdd.man -> Mc.Limits.t) -> case -> Oracle.disagreement option

val configs_per_case : int
(** Number of batch configurations one {!check_case} exercises. *)
