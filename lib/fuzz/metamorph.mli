(** Metamorphic properties: verdict-preserving spec transformations.

    Duplicating a good conjunct, permuting the good list and renaming
    variables all yield machines with provably the same verdict, and a
    mid-run checkpoint kill + resume must never change an XICI answer.
    {!check_spec} verifies all of them against the original spec's
    reference verdict. *)

type transform = Dup_good | Reverse_goods | Rotate_goods | Rename_vars

val all_transforms : transform list
val transform_name : transform -> string

val apply : transform -> Spec.t -> Spec.t

val rename_vars : Spec.t -> Spec.t
(** Reverse the state-bit and input-bit declaration orders (an
    isomorphic machine over a different variable order). *)

type disagreement = Oracle.disagreement = { check : string; detail : string }

val check_spec :
  ?limits:(Bdd.man -> Mc.Limits.t) -> Spec.t -> disagreement option
(** [None] when every transform preserves the verdict, checkpoint
    kill + resume reaches the uninterrupted answer, and running with
    telemetry enabled (registry + JSONL trace sink) neither changes the
    verdict nor emits a line that fails an [Obs.Json] round-trip. *)

val check_batch :
  ?limits:(Bdd.man -> Mc.Limits.t) ->
  Spec.t ->
  Expr.t list list ->
  disagreement option
(** Batch metamorphic properties over {!Mc.Batch}: per-property
    verdicts must survive permuting the property order, duplicating a
    property and splitting the batch into two independent batches (all
    compared against each property's explicit reference verdict) —
    the transforms that expose order-dependent speculation bugs. *)
