(** Cross-method differential oracles.

    Every method in {!Mc} answers the same reachability question, so a
    disagreement with the explicit-state reference of {!Spec} is a bug
    by construction.  {!check_spec} runs every method (Explicit,
    Forward, Backward, FD, IDI, ICI, XICI across policy configurations
    and termination tests, Induction, and the Resilient driver under an
    injected mid-run kill with checkpoint resume) and cross-checks the
    verdict, the concrete replayability of any counterexample trace,
    and the inductiveness of any derived invariant list. *)

type disagreement = { check : string; detail : string }

val to_string : disagreement -> string

val default_limits : Bdd.man -> Mc.Limits.t
(** 100 iterations / 4M created nodes: deterministic (no wall clock). *)

val replay : Mc.Model.t -> Mc.Report.trace -> (unit, string) result
(** Replay a counterexample concretely through [Fsm.Trans.step] and
    [legal_input]: it must start in an initial state, every step must be
    realisable by some legal input, and it must end in a bad state. *)

val xici_configs : (string * Ici.Policy.config) list
(** The policy configurations the differential check runs XICI under. *)

val temp_path : unit -> string
(** A fresh temp-file path that does not exist yet (checkpoint saves
    create it). *)

val cleanup : string -> unit
(** Remove the file if it exists. *)

val check_spec :
  ?limits:(Bdd.man -> Mc.Limits.t) ->
  ?cache_budget:int ->
  Spec.t ->
  disagreement option
(** [None] when every method agrees with the reference; otherwise the
    first disagreement found.  [cache_budget] shrinks each method
    manager's computed table (the tinycache target passes 256 to hammer
    eviction paths); the induction / derived-invariant / resilience
    side checks always run on default-sized managers. *)

val configs_per_spec : int
(** Number of method configurations one {!check_spec} exercises. *)
