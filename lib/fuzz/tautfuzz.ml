(* Tautology-checker and BDD-operator fuzzing against brute-force
   truth-table evaluation of the generating expressions.

   The reference never touches a BDD: expressions are evaluated
   concretely over every assignment, so these targets check the whole
   pipeline (node construction, the Boolean connectives, Restrict /
   Constrain, quantification, and the Section III.B exact termination
   test under all three variable-choice heuristics x memo x simplify,
   including recovery after fuel exhaustion). *)

let nvars = 5

let gen_list =
  QCheck2.Gen.(list_size (int_range 1 6) (Expr.gen_expr ~nvars))

let gen_pair = QCheck2.Gen.pair (Expr.gen_expr ~nvars) (Expr.gen_expr ~nvars)

let print_list es = String.concat " \\/ " (List.map Expr.to_string es)

let print_pair (a, b) = Expr.to_string a ^ " // " ^ Expr.to_string b

let envs = lazy (Expr.all_envs nvars)

(* fresh_man allocates levels 0..nvars-1 in variable order, so
   assignments indexed by variable number are directly usable as
   assignments indexed by level. *)
let build es =
  let man, vars = Expr.fresh_man nvars in
  (man, List.map (Expr.build_bdd man vars) es)

let var_choices =
  [ Ici.Tautology.First_top; Ici.Tautology.Lowest_level;
    Ici.Tautology.Most_common ]

(* --- the implicit-disjunction tautology target ------------------------ *)

let check_tautology es =
  let man, ds = build es in
  (* Node construction and connectives vs the truth table. *)
  let op_bug =
    List.find_opt
      (fun (e, d) ->
        List.exists
          (fun env -> Bdd.eval man env d <> Expr.eval_expr env e)
          (Lazy.force envs))
      (List.combine es ds)
  in
  match op_bug with
  | Some (e, _) ->
    Error
      (Printf.sprintf "BDD construction disagrees with the truth table on %s"
         (Expr.to_string e))
  | None ->
    let reference =
      List.for_all
        (fun env -> List.exists (fun e -> Expr.eval_expr env e) es)
        (Lazy.force envs)
    in
    let mismatch =
      List.find_map
        (fun var_choice ->
          List.find_map
            (fun simplify ->
              List.find_map
                (fun memo ->
                  if
                    Ici.Tautology.check ~var_choice ~simplify ~memo man ds
                    = reference
                  then None
                  else
                    Some
                      (Printf.sprintf
                         "var_choice=%d simplify=%b memo=%b disagrees with \
                          the truth table"
                         (match var_choice with
                         | Ici.Tautology.First_top -> 0
                         | Ici.Tautology.Lowest_level -> 1
                         | Ici.Tautology.Most_common -> 2)
                         simplify memo))
                [ true; false ])
            [ true; false ])
        var_choices
    in
    (match mismatch with
    | Some m -> Error m
    | None ->
      (* Fuel-exhaustion retry: starving the checker and re-running with
         more fuel must converge to the same answer (exhaustion must not
         poison any cached state).  The retries share a caller-held memo
         table, so each one resumes from the verdicts the starved
         attempts already settled -- which is also what the production
         retry loops do. *)
      let memo_table = Ici.Tautology.create_memo () in
      let rec with_fuel fuel =
        if fuel > 1 lsl 24 then
          Error "tautology check still out of fuel at 2^24 expansions"
        else
          match
            Ici.Tautology.check ~simplify:false ~fuel ~memo_table man ds
          with
          | v -> Ok v
          | exception Ici.Tautology.Out_of_fuel -> with_fuel (fuel * 8)
      in
      (match with_fuel 1 with
      | Error _ as e -> e
      | Ok v when v <> reference ->
        Error "fuel-exhaustion retry converged to the wrong verdict"
      | Ok _ ->
        if Ici.Tautology.check man ds <> reference then
          Error "full-fuel re-check after exhaustion is wrong"
        else Ok ()))

(* --- core BDD operators vs truth tables ------------------------------- *)

let check_ops (ea, eb) =
  let man, fs = build [ ea; eb ] in
  let f, g = match fs with [ f; g ] -> (f, g) | _ -> assert false in
  let eval_a env = Expr.eval_expr env ea
  and eval_b env = Expr.eval_expr env eb in
  let forall_envs p = List.for_all p (Lazy.force envs) in
  let check_named checks =
    List.find_map (fun (name, ok) -> if ok () then None else Some name) checks
  in
  let quant_envs env lvls =
    (* All assignments agreeing with [env] outside [lvls]. *)
    List.fold_left
      (fun acc l ->
        List.concat_map
          (fun e ->
            let e0 = Array.copy e and e1 = Array.copy e in
            e0.(l) <- false;
            e1.(l) <- true;
            [ e0; e1 ])
          acc)
      [ Array.copy env ] lvls
  in
  let qlvls = [ 0; 2 ] in
  let vs = Bdd.varset man qlvls in
  let bad =
    check_named
      [
        ( "implies",
          fun () ->
            Bdd.implies man f g
            = forall_envs (fun env -> (not (eval_a env)) || eval_b env) );
        ( "equal",
          fun () ->
            Bdd.equal f g = forall_envs (fun env -> eval_a env = eval_b env)
        );
        ( "band_bounded agrees with band",
          fun () ->
            match Bdd.band_bounded man ~max_steps:max_int f g with
            | Some p -> Bdd.equal p (Bdd.band man f g)
            | None -> false );
        ( "restrict",
          fun () ->
            Bdd.is_false g
            || forall_envs (fun env ->
                   (not (eval_b env))
                   || Bdd.eval man env (Bdd.restrict man f g) = eval_a env) );
        ( "constrain",
          fun () ->
            Bdd.is_false g
            || forall_envs (fun env ->
                   (not (eval_b env))
                   || Bdd.eval man env (Bdd.constrain man f g) = eval_a env) );
        ( "multi_restrict",
          fun () ->
            Bdd.is_false g || Bdd.is_false f
            || forall_envs (fun env ->
                   (not (eval_b env && eval_a env))
                   || Bdd.eval man env (Bdd.multi_restrict man f [ g; f ])) );
        ( "exists",
          fun () ->
            let ex = Bdd.exists man vs f in
            forall_envs (fun env ->
                Bdd.eval man env ex
                = List.exists eval_a (quant_envs env qlvls)) );
        ( "forall",
          fun () ->
            let fa = Bdd.forall man vs f in
            forall_envs (fun env ->
                Bdd.eval man env fa
                = List.for_all eval_a (quant_envs env qlvls)) );
        ( "and_exists",
          fun () ->
            let ae = Bdd.and_exists man vs f g in
            forall_envs (fun env ->
                Bdd.eval man env ae
                = List.exists
                    (fun e -> eval_a e && eval_b e)
                    (quant_envs env qlvls)) );
      ]
  in
  match bad with
  | None -> Ok ()
  | Some name -> Error (name ^ " disagrees with the truth table")
