(** Seed-corpus file format: one [<target> <seed> <count>] line per
    replayable batch; blanks and [#] comments ignored.  Failure lines
    printed by {!Driver} are in exactly this format. *)

type entry = { target : string; seed : int; count : int }

val line : entry -> string
(** Render an entry in corpus format. *)

val parse_line : string -> entry option
(** [None] for blank/comment lines; raises [Invalid_argument] on a
    malformed line. *)

val load : string -> entry list
(** Parse a corpus file. *)
