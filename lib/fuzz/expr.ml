(* Random boolean-expression ASTs with a reference evaluator, so BDD
   results can be checked against brute-force truth tables.  Promoted
   from test/testutil.ml so the unit tests and the fuzzer share one
   generator (the test library re-exports this module). *)

type expr =
  | T
  | F
  | V of int
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr
  | Iff of expr * expr
  | Ite of expr * expr * expr

type t = expr

let rec eval_expr env = function
  | T -> true
  | F -> false
  | V i -> env.(i)
  | Not e -> not (eval_expr env e)
  | And (a, b) -> eval_expr env a && eval_expr env b
  | Or (a, b) -> eval_expr env a || eval_expr env b
  | Xor (a, b) -> eval_expr env a <> eval_expr env b
  | Iff (a, b) -> eval_expr env a = eval_expr env b
  | Ite (c, a, b) -> if eval_expr env c then eval_expr env a else eval_expr env b

let rec build_bdd man vars = function
  | T -> Bdd.tru man
  | F -> Bdd.fls man
  | V i -> Bdd.var man vars.(i)
  | Not e -> Bdd.bnot man (build_bdd man vars e)
  | And (a, b) -> Bdd.band man (build_bdd man vars a) (build_bdd man vars b)
  | Or (a, b) -> Bdd.bor man (build_bdd man vars a) (build_bdd man vars b)
  | Xor (a, b) -> Bdd.bxor man (build_bdd man vars a) (build_bdd man vars b)
  | Iff (a, b) -> Bdd.biff man (build_bdd man vars a) (build_bdd man vars b)
  | Ite (c, a, b) ->
    Bdd.ite man (build_bdd man vars c) (build_bdd man vars a)
      (build_bdd man vars b)

let rec pp_expr fmt = function
  | T -> Format.fprintf fmt "T"
  | F -> Format.fprintf fmt "F"
  | V i -> Format.fprintf fmt "x%d" i
  | Not e -> Format.fprintf fmt "~%a" pp_expr e
  | And (a, b) -> Format.fprintf fmt "(%a & %a)" pp_expr a pp_expr b
  | Or (a, b) -> Format.fprintf fmt "(%a | %a)" pp_expr a pp_expr b
  | Xor (a, b) -> Format.fprintf fmt "(%a ^ %a)" pp_expr a pp_expr b
  | Iff (a, b) -> Format.fprintf fmt "(%a = %a)" pp_expr a pp_expr b
  | Ite (c, a, b) ->
    Format.fprintf fmt "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b

let to_string e = Format.asprintf "%a" pp_expr e

(* Remap variable indices: [map_vars f e] replaces every [V i] by
   [V (f i)].  Used by the variable-renaming metamorphic transform. *)
let rec map_vars f = function
  | (T | F) as e -> e
  | V i -> V (f i)
  | Not e -> Not (map_vars f e)
  | And (a, b) -> And (map_vars f a, map_vars f b)
  | Or (a, b) -> Or (map_vars f a, map_vars f b)
  | Xor (a, b) -> Xor (map_vars f a, map_vars f b)
  | Iff (a, b) -> Iff (map_vars f a, map_vars f b)
  | Ite (c, a, b) -> Ite (map_vars f c, map_vars f a, map_vars f b)

(* QCheck generator for expressions over [nvars] variables. *)
let gen_expr ~nvars =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof [ return T; return F; map (fun i -> V i) (int_bound (nvars - 1)) ]
      else
        let sub = self (n / 2) in
        oneof
          [
            map (fun i -> V i) (int_bound (nvars - 1));
            map (fun e -> Not e) (self (n - 1));
            map2 (fun a b -> And (a, b)) sub sub;
            map2 (fun a b -> Or (a, b)) sub sub;
            map2 (fun a b -> Xor (a, b)) sub sub;
            map2 (fun a b -> Iff (a, b)) sub sub;
            map3 (fun c a b -> Ite (c, a, b)) sub sub sub;
          ])

let arb_expr ~nvars =
  QCheck2.Gen.map (fun e -> e) (gen_expr ~nvars)

(* Iterate over all assignments to [nvars] variables. *)
let all_envs nvars =
  List.init (1 lsl nvars) (fun m ->
      Array.init nvars (fun i -> (m lsr i) land 1 = 1))

(* Fresh manager with [nvars] variables at levels 0..nvars-1. *)
let fresh_man nvars =
  let man = Bdd.create () in
  let vars = Array.init nvars (fun _ -> Bdd.new_var man) in
  (man, vars)

(* Extend an environment indexed by expression-variable number to one
   indexed by level, given the level array. *)
let env_by_level vars env =
  let n = Array.fold_left max 0 vars + 1 in
  let by_level = Array.make n false in
  Array.iteri (fun i lvl -> by_level.(lvl) <- env.(i)) vars;
  by_level

let semantically_equal man nvars f e vars =
  List.for_all
    (fun env -> Bdd.eval man (env_by_level vars env) f = eval_expr env e)
    (all_envs nvars)
