(* Metamorphic properties: transformations of a spec that provably
   preserve the verdict, so the verdict computed on the transformed spec
   must equal the reference verdict of the original.

   - duplicating a good conjunct: the implied conjunction is unchanged
     (and exercises Clist normalisation and the policy's pair table);
   - permuting the good list: list order is representation, not meaning
     (exercises the greedy pair choice and the termination test's
     variable heuristics);
   - renaming variables: reversing the declaration order of state bits
     and of input bits yields an isomorphic machine over a different
     variable order;
   - checkpoint/resume: killing an XICI run mid-fixpoint with an
     injected fault and resuming from its snapshot must reach the same
     verdict as the uninterrupted run. *)

type transform = Dup_good | Reverse_goods | Rotate_goods | Rename_vars

let all_transforms = [ Dup_good; Reverse_goods; Rotate_goods; Rename_vars ]

let transform_name = function
  | Dup_good -> "dup-good"
  | Reverse_goods -> "reverse-goods"
  | Rotate_goods -> "rotate-goods"
  | Rename_vars -> "rename-vars"

let rotate = function [] -> [] | x :: rest -> rest @ [ x ]

(* Reverse the state-bit order and the input-bit order.  State bit i
   becomes bit (n-1-i): its next-state function moves to that slot and
   every variable occurrence is remapped accordingly. *)
let rename_vars (s : Spec.t) =
  let n = s.Spec.n_state and m = s.Spec.n_input in
  let ps i = n - 1 - i in
  let phi v = if v < n then ps v else n + (m - 1 - (v - n)) in
  let nexts = Array.make n Expr.T in
  Array.iteri
    (fun i e -> nexts.(ps i) <- Expr.map_vars phi e)
    s.Spec.nexts;
  {
    s with
    Spec.nexts;
    constr = Expr.map_vars phi s.Spec.constr;
    init = Expr.map_vars phi s.Spec.init;
    goods = List.map (Expr.map_vars phi) s.Spec.goods;
    fd = List.sort compare (List.map ps s.Spec.fd);
  }

let apply t (s : Spec.t) =
  match t with
  | Dup_good -> (
    match s.Spec.goods with
    | [] -> s
    | g :: _ -> { s with Spec.goods = g :: s.Spec.goods })
  | Reverse_goods -> { s with Spec.goods = List.rev s.Spec.goods }
  | Rotate_goods -> { s with Spec.goods = rotate s.Spec.goods }
  | Rename_vars -> rename_vars s

(* --- the metamorphic check ------------------------------------------- *)

type disagreement = Oracle.disagreement = { check : string; detail : string }

let verdict_of (r : Mc.Report.t) =
  match r.Mc.Report.status with
  | Mc.Report.Proved -> Some true
  | Mc.Report.Violated _ -> Some false
  | Mc.Report.Exceeded _ -> None

let check_transformed ~limits ~expected name spec' =
  (* The reference itself must be invariant under the transform... *)
  if Spec.reference_verdict spec' <> expected then
    Some
      { check = name;
        detail = "the explicit reference changed its verdict under the transform" }
  else
    (* ...and so must the symbolic methods (one backward-implicit, one
       forward-monolithic, to cover both traversal families). *)
    let check_method mname run =
      let model = Spec.build_model spec' in
      match verdict_of (run model) with
      | Some v when v = expected -> None
      | Some _ ->
        Some { check = name; detail = mname ^ " changed its verdict under the transform" }
      | None ->
        Some { check = name; detail = mname ^ " did not converge on the transformed spec" }
    in
    match check_method "xici" (Mc.Xici.run ~limits) with
    | Some _ as d -> d
    | None -> check_method "forward" (Mc.Runner.run ~limits Mc.Runner.Forward)

(* Kill an XICI run mid-fixpoint with a one-shot injected fault, then
   resume from the checkpoint it left behind; the verdict must equal the
   uninterrupted run's (which must equal the reference's). *)
let check_checkpoint_resume ~limits ~expected spec =
  let cold = Spec.build_model spec in
  let man_cold = Mc.Model.man cold in
  let before = Bdd.created_nodes man_cold in
  let r_cold = Mc.Xici.run ~limits cold in
  let cost = Bdd.created_nodes man_cold - before in
  match verdict_of r_cold with
  | None ->
    Some
      { check = "checkpoint-resume";
        detail = "uninterrupted XICI run did not converge" }
  | Some v when v <> expected ->
    Some
      { check = "checkpoint-resume";
        detail = "uninterrupted XICI run disagrees with the reference" }
  | Some _ ->
    let victim = Spec.build_model spec in
    let man = Mc.Model.man victim in
    let path = Oracle.temp_path () in
    let kill_at = Bdd.created_nodes man + max 1 (cost / 2) in
    let armed = ref true in
    Bdd.set_fault_hook man
      (Some
         (fun m ->
           if !armed && Bdd.created_nodes m >= kill_at then begin
             armed := false;
             raise (Mc.Limits.Exceeded "fuzz fault")
           end));
    Fun.protect
      ~finally:(fun () ->
        Bdd.set_fault_hook man None;
        Oracle.cleanup path)
      (fun () ->
        let r_killed = Mc.Xici.run ~limits ~checkpoint_path:path victim in
        match r_killed.Mc.Report.status with
        | Mc.Report.Proved | Mc.Report.Violated _ ->
          (* The run finished under the kill budget; nothing to resume. *)
          if verdict_of r_killed = Some expected then None
          else
            Some
              { check = "checkpoint-resume";
                detail = "checkpointed run disagrees with the reference" }
        | Mc.Report.Exceeded _ ->
          let resume_from = Mc.Checkpoint.load_opt man path in
          let r = Mc.Xici.run ~limits ?resume_from victim in
          if verdict_of r = Some expected then None
          else
            Some
              { check = "checkpoint-resume";
                detail = "resumed run disagrees with the uninterrupted verdict" })

(* Telemetry must be a pure observer: re-running a method with the
   registry collecting and a JSONL trace sink attached must reach the
   same verdict, and every line the sink emitted must survive an
   Obs.Json parse -> print -> parse round-trip. *)
let check_telemetry ~limits ~expected spec =
  let fail detail = Some { check = "telemetry"; detail } in
  let model = Spec.build_model spec in
  let path = Oracle.temp_path () in
  let tracer = Obs.Tracer.create () in
  let oc = open_out path in
  Obs.Tracer.add_sink tracer (Obs.Tracer.jsonl_sink tracer oc);
  (* Domain-local override: parallel corpus replay runs this check on
     worker domains, and a process-global swap would send the other
     workers' spans into [oc] -- which we close below. *)
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      Oracle.cleanup path)
    (fun () ->
      let r =
        Obs.Tracer.with_global tracer (fun () -> Mc.Xici.run ~limits model)
      in
      Obs.Tracer.flush tracer;
      Stdlib.flush oc;
      match verdict_of r with
      | None -> fail "XICI did not converge with telemetry enabled"
      | Some v when v <> expected ->
        fail "XICI changed its verdict with telemetry enabled"
      | Some _ -> (
        (* The run-level snapshot must round-trip too (this is what
           bench --json embeds per row). *)
        let snap = Mc.Telemetry.snapshot_json (Mc.Model.man model) in
        if
          not
            (Obs.Json.equal snap (Obs.Json.of_string (Obs.Json.to_string snap)))
        then fail "telemetry snapshot does not round-trip through Obs.Json"
        else
          let ic = open_in path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              let bad = ref None in
              (try
                 while !bad = None do
                   let line = input_line ic in
                   match Obs.Json.of_string line with
                   | j ->
                     if
                       not
                         (Obs.Json.equal j
                            (Obs.Json.of_string (Obs.Json.to_string j)))
                     then bad := fail "trace line does not round-trip"
                   | exception Obs.Json.Parse_error msg ->
                     bad := fail ("trace line does not parse: " ^ msg)
                 done
               with End_of_file -> ());
              !bad)))

(* --- batch metamorphic properties ------------------------------------ *)

(* A batch's per-property verdicts are a function of each property
   alone, not of how the batch is assembled: permuting the property
   order, duplicating a property and splitting one batch into two must
   all preserve every verdict.  These catch order-dependent speculation
   bugs -- an assumption that leaks into a verdict survives exactly
   until the assumed property moves to the other side of its user. *)

let batch_verdicts ~limits spec props =
  let model, bprops = Spec.build_batch spec props in
  (* speculation on: the transforms below exist to catch exactly the
     order-dependence bugs the assumption channel can introduce *)
  let res = Mc.Batch.run ~limits ~speculate:true model bprops in
  List.map (fun (it : Mc.Batch.item) -> verdict_of it.Mc.Batch.report)
    res.Mc.Batch.items

let check_batch ?(limits = Oracle.default_limits) (spec : Spec.t) props =
  let expected =
    List.map
      (fun p -> Spec.reference_verdict { spec with Spec.goods = p })
      props
  in
  let agree name props' expected' =
    if batch_verdicts ~limits spec props' = List.map Option.some expected'
    then None
    else
      Some
        { check = name;
          detail = "batch verdicts changed under the transform" }
  in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let drop n l = List.filteri (fun i _ -> i >= n) l in
  let half = (List.length props + 1) / 2 in
  let checks =
    [
      (fun () -> agree "batch-identity" props expected);
      (fun () -> agree "batch-permute" (List.rev props) (List.rev expected));
      (fun () ->
        match (props, expected) with
        | p :: _, e :: _ ->
          agree "batch-dup" (props @ [ p ]) (expected @ [ e ])
        | [], _ | _, [] -> None);
      (fun () -> agree "batch-split-left" (take half props) (take half expected));
      (fun () ->
        agree "batch-split-right" (drop half props) (drop half expected));
    ]
  in
  List.fold_left
    (fun acc f -> match acc with Some _ -> acc | None -> f ())
    None checks

let check_spec ?(limits = Oracle.default_limits) spec =
  let expected = Spec.reference_verdict spec in
  let checks =
    List.map
      (fun t () ->
        check_transformed ~limits ~expected (transform_name t) (apply t spec))
      all_transforms
    @ [
        (fun () -> check_checkpoint_resume ~limits ~expected spec);
        (fun () -> check_telemetry ~limits ~expected spec);
      ]
  in
  List.fold_left
    (fun acc f -> match acc with Some _ -> acc | None -> f ())
    None checks
