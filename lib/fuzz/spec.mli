(** Random verification problems of configurable width with an
    explicit-state reference verdict -- the differential-fuzzing
    generalisation of [test/testmachines.ml].

    A spec describes a machine over [n_state] state bits and [n_input]
    input bits as expression ASTs; [build_model] turns it into a
    symbolic {!Mc.Model.t} and the [reference_*] functions brute-force
    the answer by concrete enumeration, independent of every BDD
    operation. *)

type t = {
  n_state : int;
  n_input : int;
  nexts : Expr.t array;  (** one per state bit, over state + input vars *)
  constr : Expr.t;  (** input constraint, over state + input vars *)
  init : Expr.t;  (** over state vars *)
  goods : Expr.t list;  (** property conjuncts, over state vars *)
  fd : int list;  (** state-bit indices offered as FD candidates *)
}

type shape = {
  min_state_bits : int;
  max_state_bits : int;
  min_input_bits : int;
  max_input_bits : int;
  max_goods : int;
  fd_subsets : bool;  (** offer a random subset (else all bits) to FD *)
  constrain_inputs : bool;  (** random input constraint (else TRUE) *)
  corners : bool;  (** mix in vacuous-init / unreachable-bad corners *)
}

val default_shape : shape
(** 2-4 state bits, 1-3 input bits, 1-3 good conjuncts, FD subsets,
    input constraints and corner cases on. *)

val unreachable_bad : n_state:int -> n_input:int -> t
(** The deterministic corner where the only bad state is unreachable. *)

val gen : ?shape:shape -> unit -> t QCheck2.Gen.t
(** Generator with integrated shrinking.  Raises [Invalid_argument] on
    shapes beyond the brute-forceable range (more than 8 state or 6
    input bits). *)

val to_string : t -> string

val print_spec : t -> string
(** Alias of {!to_string} (the [QCheck2] printer convention). *)

val build_model : ?cache_budget:int -> t -> Mc.Model.t
(** Fresh space/manager per call: state bits first (interleaved
    current/next), then inputs.  [cache_budget] is forwarded to
    {!Bdd.create}; tiny budgets force computed-table collisions, which
    the tinycache fuzz target uses to prove lossy caching never changes
    a verdict. *)

val build_batch :
  ?cache_budget:int ->
  t ->
  Expr.t list list ->
  Mc.Model.t * Mc.Batch.property list
(** [build_batch spec props] builds one model carrying every property's
    conjuncts (the spec's own goods are replaced by their
    concatenation) and returns it with the properties sliced back out
    as BDDs over its manager, named ["p0".."p{n-1}"] — the input to
    {!Mc.Batch.run}.  Each property's reference verdict is
    [reference_verdict { spec with goods = List.nth props i }]. *)

val reference_verdict : t -> bool
(** Explicit-state reference: true iff every reachable state is good. *)

val reference_reachable_count : t -> int
(** Reachable-state count per the explicit reference. *)
