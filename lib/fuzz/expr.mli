(** Random boolean-expression ASTs with a reference evaluator.

    The single source of the expression generator shared by the unit
    tests (via [test/testutil.ml], which re-exports this module) and the
    fuzzing targets: BDD results are checked against brute-force truth
    tables of the same expressions. *)

type expr =
  | T
  | F
  | V of int
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr
  | Iff of expr * expr
  | Ite of expr * expr * expr

type t = expr

val eval_expr : bool array -> expr -> bool
(** Reference evaluation under an assignment indexed by variable
    number. *)

val build_bdd : Bdd.man -> int array -> expr -> Bdd.t
(** Build the BDD, mapping expression variable [i] to level
    [vars.(i)]. *)

val pp_expr : Format.formatter -> expr -> unit
val to_string : expr -> string

val map_vars : (int -> int) -> expr -> expr
(** Remap variable indices (the renaming metamorphic transform). *)

val gen_expr : nvars:int -> expr QCheck2.Gen.t
(** Sized generator over variables [x0 .. x(nvars-1)], with integrated
    shrinking. *)

val arb_expr : nvars:int -> expr QCheck2.Gen.t

val all_envs : int -> bool array list
(** All [2^nvars] assignments. *)

val fresh_man : int -> Bdd.man * int array
(** Fresh manager with [nvars] variables at levels [0..nvars-1]. *)

val env_by_level : int array -> bool array -> bool array
(** Re-index an assignment from variable numbers to levels. *)

val semantically_equal : Bdd.man -> int -> Bdd.t -> expr -> int array -> bool
(** Does the BDD agree with the expression on every assignment? *)
