(* Cross-method differential oracles.

   Every method in Mc computes an answer to the same Section-II question,
   so any disagreement with the explicit-state reference is a bug by
   construction.  Three things are cross-checked per spec:

   - the verdict, against [Spec.reference_verdict];
   - the counterexample trace, replayed concretely through
     [Fsm.Trans.step] / [legal_input] (it must start in an initial
     state, follow only legal transitions and end in a bad state);
   - the structural claims methods make on the side: Induction verdicts
     must be consistent with the reference, and an XICI-derived fixpoint
     must be an inductive strengthening of the property.

   The Resilient oracle additionally kills the first XICI attempt with
   an injected fault and requires the checkpoint-resumed retry to land
   on the reference verdict. *)

type disagreement = { check : string; detail : string }

let to_string d = Printf.sprintf "%s: %s" d.check d.detail

let default_limits man =
  Mc.Limits.start ~max_iterations:100 ~max_created_nodes:4_000_000 man

(* --- concrete trace replay ------------------------------------------- *)

(* Replay a reported counterexample through the concrete simulator.
   Works on any model (spec-built or the library models): the state
   assignments come back indexed by BDD level, only current-state levels
   are meaningful, and each step must be realisable by SOME legal input
   (methods do not report the inputs they chose). *)
let replay (model : Mc.Model.t) (trace : Mc.Report.trace) =
  let trans = model.Mc.Model.trans in
  let sp = model.Mc.Model.space in
  let man = Mc.Model.man model in
  let cur_levels = Fsm.Space.current_levels sp in
  let input_levels = Fsm.Space.input_levels sp in
  let nvars = max 1 (Bdd.num_vars man) in
  (* Normalise to a full assignment with only current levels set. *)
  let norm st =
    let a = Array.make nvars false in
    List.iter
      (fun l -> if l < Array.length st && st.(l) then a.(l) <- true)
      cur_levels;
    a
  in
  let n_input = List.length input_levels in
  let step_ok s t =
    let rec try_input m =
      if m >= 1 lsl n_input then false
      else begin
        let env = Array.copy s in
        List.iteri (fun k l -> env.(l) <- (m lsr k) land 1 = 1) input_levels;
        (Fsm.Trans.legal_input trans env
        &&
        let s' = Fsm.Trans.step trans env in
        List.for_all (fun l -> s'.(l) = t.(l)) cur_levels)
        || try_input (m + 1)
      end
    in
    try_input 0
  in
  match trace with
  | [] -> Error "empty trace"
  | first :: _ ->
    if not (Bdd.eval man (norm first) model.Mc.Model.init) then
      Error "trace does not start in an initial state"
    else begin
      let rec walk i = function
        | [] | [ _ ] -> Ok ()
        | s :: (t :: _ as rest) ->
          if step_ok (norm s) (norm t) then walk (i + 1) rest
          else
            Error
              (Printf.sprintf "step %d is not realisable by any legal input" i)
      in
      match walk 0 trace with
      | Error _ as e -> e
      | Ok () ->
        let last = norm (List.nth trace (List.length trace - 1)) in
        let good = Ici.Clist.of_list man (Mc.Model.property model) in
        if Ici.Clist.eval man last good then
          Error "trace does not end in a bad state"
        else Ok ()
    end

(* --- per-method verdict + trace check -------------------------------- *)

let check_report ~expected ~allow_exceeded name model (r : Mc.Report.t) =
  match r.Mc.Report.status with
  | Mc.Report.Proved ->
    if expected then None
    else Some { check = name; detail = "proved, but the reference finds a violation" }
  | Mc.Report.Violated tr -> (
    if expected then
      Some { check = name; detail = "violated, but the reference proves" }
    else
      match replay model tr with
      | Ok () -> None
      | Error e -> Some { check = name; detail = "counterexample rejected: " ^ e })
  | Mc.Report.Exceeded why ->
    if allow_exceeded then None
    else Some { check = name; detail = "did not converge: " ^ why }

let xici_configs =
  [
    ("xici", Ici.Policy.default);
    ("xici-constrain", { Ici.Policy.default with simplifier = Ici.Policy.Constrain });
    ("xici-multi-restrict",
     { Ici.Policy.default with simplifier = Ici.Policy.Multi_restrict });
    ("xici-no-simplify",
     { Ici.Policy.default with simplifier = Ici.Policy.No_simplify });
    ("xici-optimal-cover",
     { Ici.Policy.default with evaluation = Ici.Policy.Optimal_cover });
    ("xici-no-evaluation",
     { Ici.Policy.default with evaluation = Ici.Policy.No_evaluation });
    ("xici-grow-1.0", { Ici.Policy.default with grow_threshold = 1.0 });
    ("xici-unbounded-pairs",
     { Ici.Policy.default with pair_step_factor = None });
  ]

(* A fresh temp path that does not exist yet (checkpoint saves create it). *)
let temp_path () =
  let path = Filename.temp_file "icv-fuzz" ".ckpt" in
  Sys.remove path;
  path

let cleanup path = if Sys.file_exists path then Sys.remove path

(* The Induction verdict is only a partial oracle: Inductive implies the
   property holds on every reachable state, and a conjunct violated by
   an initial state implies a violation; Not_preserved says nothing
   about reachability but its counterexamples-to-induction must be
   concretely valid. *)
let check_induction ~expected spec =
  let model = Spec.build_model spec in
  let man = Mc.Model.man model in
  let property = Mc.Model.property model in
  match Mc.Induction.check model property with
  | Mc.Induction.Inductive ->
    if expected then None
    else
      Some
        { check = "induction";
          detail = "property inductive, but the reference finds a violation" }
  | Mc.Induction.Not_implied_by_init _ ->
    if expected then
      Some
        { check = "induction";
          detail = "an initial state violates the property, but the reference proves" }
    else None
  | Mc.Induction.Not_preserved failures ->
    let bad =
      List.find_opt
        (fun (f : Mc.Induction.failure) ->
          not
            (List.for_all (Bdd.eval man f.Mc.Induction.state) property
            && (not (Bdd.eval man f.Mc.Induction.successor f.Mc.Induction.conjunct))
            && Bdd.eval man f.Mc.Induction.successor
                 (Fsm.Trans.successors_of_state model.Mc.Model.trans
                    f.Mc.Induction.state)))
        failures
    in
    (match bad with
    | None -> None
    | Some _ ->
      Some
        { check = "induction";
          detail = "a counterexample-to-induction does not validate" })

(* An XICI fixpoint, when one is derived, is the automatically derived
   invariant list: it must imply the property and be inductive. *)
let check_derived ~expected spec =
  let model = Spec.build_model spec in
  match Mc.Xici.run_full ~limits:default_limits model with
  | r, Some derived ->
    if not (Mc.Report.is_proved r) then
      Some
        { check = "xici-derived";
          detail = "fixpoint returned without a proved verdict" }
    else if not expected then
      Some
        { check = "xici-derived";
          detail = "proved, but the reference finds a violation" }
    else if not (Mc.Induction.establishes model derived) then
      Some
        { check = "xici-derived";
          detail = "derived invariants do not establish the property" }
    else (
      match Mc.Induction.check model (Ici.Clist.to_list derived) with
      | Mc.Induction.Inductive -> None
      | Mc.Induction.Not_implied_by_init _ ->
        Some
          { check = "xici-derived";
            detail = "derived invariants not implied by init" }
      | Mc.Induction.Not_preserved _ ->
        Some
          { check = "xici-derived";
            detail = "derived invariants are not preserved by the machine" })
  | _, None -> None

(* Resilient driver under fire: measure a cold XICI run's node cost,
   then re-run under the resilient driver with a one-shot fault injected
   halfway through that cost and a checkpoint to resume from.  The
   recovered verdict must match the reference. *)
let check_resilient ~expected spec =
  let cold = Spec.build_model spec in
  let man_cold = Mc.Model.man cold in
  let before = Bdd.created_nodes man_cold in
  let _ = Mc.Xici.run ~limits:default_limits cold in
  let cost = Bdd.created_nodes man_cold - before in
  let model = Spec.build_model spec in
  let man = Mc.Model.man model in
  let path = temp_path () in
  let kill_at = Bdd.created_nodes man + max 1 (cost / 2) in
  let armed = ref true in
  Bdd.set_fault_hook man
    (Some
       (fun m ->
         if !armed && Bdd.created_nodes m >= kill_at then begin
           armed := false;
           raise (Mc.Limits.Exceeded "fuzz fault")
         end));
  let outcome =
    Fun.protect
      ~finally:(fun () ->
        Bdd.set_fault_hook man None;
        cleanup path)
      (fun () ->
        Mc.Resilient.run ~retries:3 ~max_iterations:100
          ~fallback:[ Mc.Runner.Xici; Mc.Runner.Forward ]
          ~checkpoint:path model)
  in
  check_report ~expected ~allow_exceeded:false "resilient-kill-resume" model
    outcome.Mc.Resilient.final

(* --- the differential check ------------------------------------------ *)

let first_some checks =
  List.fold_left
    (fun acc f -> match acc with Some _ -> acc | None -> f ())
    None checks

let check_spec ?(limits = default_limits) ?cache_budget spec =
  let expected = Spec.reference_verdict spec in
  let run_method name ?(allow_exceeded = false) f =
    let model = Spec.build_model ?cache_budget spec in
    check_report ~expected ~allow_exceeded name model (f model)
  in
  first_some
    ([
       (fun () ->
         run_method "explicit" (Mc.Runner.run ~limits Mc.Runner.Explicit));
       (fun () ->
         run_method "forward" (Mc.Runner.run ~limits Mc.Runner.Forward));
       (fun () ->
         run_method "backward" (Mc.Runner.run ~limits Mc.Runner.Backward));
       (fun () -> run_method "fd" (Mc.Runner.run ~limits Mc.Runner.Fd));
       (fun () -> run_method "idi" (Mc.Runner.run ~limits Mc.Runner.Idi));
       (* The original ICI termination test is not guaranteed to detect
          convergence; nonconvergence is acceptable, a wrong verdict is
          not. *)
       (fun () ->
         run_method "ici" ~allow_exceeded:true
           (Mc.Runner.run ~limits Mc.Runner.Ici));
     ]
    @ List.map
        (fun (name, cfg) () ->
          run_method name (Mc.Xici.run ~limits ~cfg))
        xici_configs
    @ [
        (fun () ->
          run_method "xici-exact-implication"
            (Mc.Xici.run ~limits ~termination:`Exact_implication));
        (* The pointwise test may fail to detect convergence, like ICI. *)
        (fun () ->
          run_method "xici-pointwise" ~allow_exceeded:true
            (Mc.Xici.run ~limits ~termination:`Pointwise));
        (fun () -> check_induction ~expected spec);
        (fun () -> check_derived ~expected spec);
        (fun () -> check_resilient ~expected spec);
      ])

(* The count of method configurations a single check_spec exercises
   (for throughput reporting). *)
let configs_per_spec = 6 + List.length xici_configs + 2 + 3
