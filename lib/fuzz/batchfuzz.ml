(* Differential fuzzing of Mc.Batch.

   Speculative invariant sharing is exactly the kind of optimisation
   that is easy to make unsound -- an assumption leaking into a final
   verdict, a refuted speculation whose dependents are not rechecked, a
   counterexample valid only for the transformed property.  So the
   batch is held to the strongest oracle available: every per-property
   verdict must equal the explicit-state reference AND an independent
   sequential run, under every method and policy configuration, and
   every counterexample must replay concretely against its own
   untransformed property. *)

type case = { spec : Spec.t; props : Expr.t list list }

let print_case { spec; props } =
  Spec.to_string spec ^ "\nprops=["
  ^ String.concat "; "
      (List.map
         (fun p -> String.concat " & " (List.map Expr.to_string p))
         props)
  ^ "]"

let gen =
  let open QCheck2.Gen in
  Spec.gen () >>= fun spec ->
  let prop =
    frequency
      [
        (* a certainly-holding property, so speculative assumptions are
           sometimes genuinely right *)
        (1, return [ Expr.T ]);
        (4, list_size (int_range 1 2) (Expr.gen_expr ~nvars:spec.Spec.n_state));
      ]
  in
  list_size (int_range 2 5) prop >|= fun props -> { spec; props }

(* Per-property expectations and the per-item comparison. *)

let expected_verdicts spec props =
  List.map
    (fun p -> Spec.reference_verdict { spec with Spec.goods = p })
    props

let check_items name spec props expected (items : Mc.Batch.item list) =
  let fail detail = Some { Oracle.check = name; detail } in
  let rec go items props expected =
    match (items, props, expected) with
    | [], [], [] -> None
    | it :: its, p :: ps, e :: es -> (
      let pname = it.Mc.Batch.prop.Mc.Batch.pname in
      match it.Mc.Batch.report.Mc.Report.status with
      | Mc.Report.Exceeded msg -> fail (pname ^ " did not converge: " ^ msg)
      | Mc.Report.Proved ->
        if e then go its ps es
        else fail (pname ^ " proved; the reference finds a violation")
      | Mc.Report.Violated tr ->
        if e then fail (pname ^ " violated; the reference proves it")
        else
          (* the trace must be genuine for the untransformed property,
             on a fresh manager (same levels by construction) *)
          let sub = Spec.build_model { spec with Spec.goods = p } in
          (match Oracle.replay sub tr with
          | Ok () -> go its ps es
          | Error msg -> fail (pname ^ " trace does not replay: " ^ msg)))
    | _, _, _ -> fail "batch returned the wrong number of items"
  in
  go items props expected

let methods =
  (* Ici's termination test is not guaranteed to detect convergence
     (Oracle.check_spec tolerates Exceeded for it); every other method
     must decide these tiny machines. *)
  List.filter (fun m -> m <> Mc.Runner.Ici) Mc.Runner.all

let batch_configs :
    (string
    * (limits:(Bdd.man -> Mc.Limits.t) ->
      Mc.Model.t ->
      Mc.Batch.property list ->
      Mc.Batch.result))
    list =
  List.map
    (fun m ->
      ( "batch-" ^ Mc.Runner.name m,
        fun ~limits model props ->
          Mc.Batch.run ~limits ~meth:m ~speculate:true model props ))
    methods
  @ List.map
      (fun (cname, cfg) ->
        ( "batch-xici-" ^ cname,
          fun ~limits model props ->
            Mc.Batch.run ~limits ~xici_cfg:cfg ~speculate:true model props ))
      Oracle.xici_configs
  @ [
      (* the default: pooled invariants only, no assumption channel *)
      ( "batch-no-speculation",
        fun ~limits model props ->
          Mc.Batch.run ~limits ~speculate:false model props );
      ( "batch-two-domains",
        fun ~limits model props ->
          Mc.Batch.run ~limits ~domains:2 ~speculate:true model props );
    ]

let configs_per_case = List.length batch_configs + 2

let check_case ?(limits = Oracle.default_limits) { spec; props } =
  let expected = expected_verdicts spec props in
  let one (name, runner) () =
    let model, bprops = Spec.build_batch spec props in
    let res = runner ~limits model bprops in
    check_items name spec props expected res.Mc.Batch.items
  in
  (* Independent sequential runs: fresh model per property, no sharing
     of any kind; the batch's verdicts must coincide. *)
  let sequential () =
    let model, bprops = Spec.build_batch spec props in
    let res = Mc.Batch.run ~limits ~speculate:true model bprops in
    let rec go items props =
      match (items, props) with
      | [], [] -> None
      | (it : Mc.Batch.item) :: its, p :: ps ->
        let seq =
          Mc.Runner.run ~limits Mc.Runner.Xici
            (Spec.build_model { spec with Spec.goods = p })
        in
        if
          Mc.Report.is_proved seq = Mc.Report.is_proved it.Mc.Batch.report
          && (match seq.Mc.Report.status with
             | Mc.Report.Exceeded _ -> false
             | _ -> true)
        then go its ps
        else
          Some
            {
              Oracle.check = "batch-vs-sequential";
              detail =
                it.Mc.Batch.prop.Mc.Batch.pname
                ^ ": batch and independent sequential verdicts differ";
            }
      | _, _ ->
        Some
          {
            Oracle.check = "batch-vs-sequential";
            detail = "batch returned the wrong number of items";
          }
    in
    go res.Mc.Batch.items props
  in
  let checks =
    List.map one batch_configs
    @ [ sequential; (fun () -> Metamorph.check_batch ~limits spec props) ]
  in
  List.fold_left
    (fun acc f -> match acc with Some _ -> acc | None -> f ())
    None checks
