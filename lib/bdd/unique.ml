(* The unique table: a purpose-built, resizable, open-addressed hash
   set of nodes, replacing the stdlib [Weak.Make] bucketed set.

   Two properties the old set lacked:

   - an O(1) live-node counter ([live]), instead of the full-table scan
     [Weak.Make.count] performed on every [live_nodes] query and every
     peak sample;
   - linear probing over two flat arrays (an [int] array of cached
     hashes and a parallel weak array of nodes), so a lookup touches
     contiguous memory instead of chasing bucket lists.

   GC semantics are unchanged: node storage is a [Weak.t], so nodes
   unreachable from outside are reclaimed by the ordinary OCaml GC.  A
   collected slot is discovered lazily -- any probe that walks over it
   turns it into a tombstone and decrements [live] -- and eagerly by
   [sweep] (called from [Bdd.gc] after a major collection), which
   rescans the whole table once and makes [live] exact.  Between
   sweeps [live] is therefore an upper bound: it counts every node not
   yet *observed* dead.

   The hash of each entry is cached in [hashes], with two reserved
   words ([empty], [tomb]); probing compares cached hashes first and
   dereferences the weak slot only on a hash match. *)

type t = {
  mutable hashes : int array; (* empty | tomb | cached hash (>= 0) *)
  mutable slots : Repr.node Weak.t;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable live : int; (* entries not yet observed dead *)
  mutable tombs : int;
  mutable limit : int; (* resize when live + tombs exceeds this *)
  mutable resizes : int;
  mutable sweeps : int;
}

let empty = min_int
let tomb = min_int + 1

let hash_parts lvl (lo : Repr.node) lo_neg (hi : Repr.node) =
  let h = (lvl * 0x9e3779b1) lxor ((lo.Repr.id * 2) + Bool.to_int lo_neg) in
  ((h * 0x85ebca6b) lxor hi.Repr.id) land max_int

let hash_node (n : Repr.node) =
  hash_parts n.Repr.level n.Repr.low n.Repr.low_neg n.Repr.high

let create capacity =
  let capacity = max capacity 16 in
  {
    hashes = Array.make capacity empty;
    slots = Weak.create capacity;
    mask = capacity - 1;
    live = 0;
    tombs = 0;
    limit = capacity - (capacity / 4);
    resizes = 0;
    sweeps = 0;
  }

let live t = t.live
let capacity t = t.mask + 1

(* Insert a node known to be absent (used by [resize]); no equality
   checks, tombstones impossible in a fresh table. *)
let reinsert t n =
  let h = hash_node n in
  let mask = t.mask in
  let i = ref (h land mask) in
  while t.hashes.(!i) <> empty do
    i := (!i + 1) land mask
  done;
  t.hashes.(!i) <- h;
  Weak.set t.slots !i (Some n)

(* Rebuild at a capacity fitting the live population; doubles under
   growth and merely flushes tombstones when most entries have died.
   This is also where [live] snaps back to an exact count. *)
let resize t =
  let old_hashes = t.hashes and old_slots = t.slots in
  let old_cap = t.mask + 1 in
  (* collect survivors first so the new size can depend on them *)
  let survivors = ref [] in
  let n_live = ref 0 in
  for i = 0 to old_cap - 1 do
    if old_hashes.(i) >= 0 then
      match Weak.get old_slots i with
      | Some n ->
        survivors := n :: !survivors;
        incr n_live
      | None -> ()
  done;
  let needed = max 16 (!n_live * 2) in
  let cap = ref old_cap in
  while !cap < needed do
    cap := !cap * 2
  done;
  while !cap > 16 && !cap / 4 > needed do
    cap := !cap / 2
  done;
  t.hashes <- Array.make !cap empty;
  t.slots <- Weak.create !cap;
  t.mask <- !cap - 1;
  t.live <- !n_live;
  t.tombs <- 0;
  t.limit <- !cap - (!cap / 4);
  t.resizes <- t.resizes + 1;
  List.iter (reinsert t) !survivors

(* Mark slot [i] (whose node has been collected) as a tombstone. *)
let[@inline] reap t i =
  t.hashes.(i) <- tomb;
  t.live <- t.live - 1;
  t.tombs <- t.tombs + 1

(* Find the node structurally equal to [probe], or insert [probe].
   Returns the canonical node either way ([== probe] iff inserted). *)
let merge t (probe : Repr.node) =
  let h = hash_node probe in
  let mask = t.mask in
  let i = ref (h land mask) in
  let free = ref (-1) in
  let result = ref None in
  (try
     while true do
       let w = t.hashes.(!i) in
       if w = empty then begin
         (* absent: insert at the first reusable slot on the chain *)
         let j = if !free >= 0 then !free else !i in
         if t.hashes.(j) = tomb then t.tombs <- t.tombs - 1;
         t.hashes.(j) <- h;
         Weak.set t.slots j (Some probe);
         t.live <- t.live + 1;
         if t.live + t.tombs > t.limit then resize t;
         result := Some probe;
         raise Exit
       end
       else if w = tomb then begin
         if !free < 0 then free := !i
       end
       else if w = h then begin
         match Weak.get t.slots !i with
         | Some n when Repr.node_structurally_equal n probe ->
           result := Some n;
           raise Exit
         | Some _ -> ()
         | None ->
           reap t !i;
           if !free < 0 then free := !i
       end
       else if not (Weak.check t.slots !i) then begin
         (* opportunistic reaping keeps [live] fresh and chains short *)
         reap t !i;
         if !free < 0 then free := !i
       end;
       i := (!i + 1) land mask
     done
   with Exit -> ());
  match !result with Some n -> n | None -> assert false

(* Exact pass: tombstone every collected entry and make [live] exact.
   O(capacity); called from [Bdd.gc] right after a major collection. *)
let sweep t =
  let cap = t.mask + 1 in
  for i = 0 to cap - 1 do
    if t.hashes.(i) >= 0 && not (Weak.check t.slots i) then reap t i
  done;
  t.sweeps <- t.sweeps + 1;
  if t.tombs > cap / 2 then resize t

let stats t =
  [
    ("slots", t.mask + 1);
    ("live", t.live);
    ("tombstones", t.tombs);
    ("resizes", t.resizes);
    ("sweeps", t.sweeps);
  ]
