(* Care-set simplification operators of Coudert, Berthet and Madre:
   Restrict (a.k.a. Reduce) and Constrain (the generalized cofactor).
   Both return a function that agrees with [f] wherever [c] holds; the
   value outside [c] is chosen to (heuristically) shrink the BDD.

   These operators carry most of the efficiency of implicitly conjoined
   invariants: every conjunct is a care set for the others. *)

open Repr

let rec restrict man f c =
  if is_true c || is_const f then f
  else if is_false c then invalid_arg "Bdd.restrict: empty care set"
  else if equal f c then tru
  else if equal f (neg c) then fls
  else begin
    let cache = man.Man.computed in
    let a = tag f and b = tag c in
    let r = Computed.find cache Computed.op_restrict a b 0 in
    if r != Computed.absent then begin
      Man.hit man.Man.stat_restrict;
      r
    end
    else begin
      Man.miss man.Man.stat_restrict;
      Man.tick man;
      let lf = level f and lc = level c in
      let r =
        if lc < lf then
          (* f does not depend on c's top variable: drop it from the
             care set (Restrict(f, c_x \/ c_xbar)). *)
          let c0, c1 = cofactors c lc in
          restrict man f (Ops.bor man c0 c1)
        else begin
          let f0, f1 = cofactors f lf in
          let c0, c1 = cofactors c lf in
          if is_false c0 then restrict man f1 c1
          else if is_false c1 then restrict man f0 c0
          else
            Man.mk man lf ~low:(restrict man f0 c0)
              ~high:(restrict man f1 c1)
        end
      in
      Computed.store cache Computed.op_restrict a b 0 r;
      r
    end
  end

(* Simultaneous multi-BDD Restrict: simplify [f] under the care set
   c1 /\ ... /\ ck WITHOUT building the conjunction.  This is the
   routine the paper's Section V asks for: simplifying by the c_i one
   at a time can blow f up at every step, while the conjoined care set
   -- which would shrink it -- is too big to build.

   The recursion mirrors Restrict.  Where Restrict tests its single
   care set's cofactors for emptiness, we test each c_i's cofactor
   individually; where Restrict existentially drops a care-set-only
   variable, we drop it from each c_i separately.  Both are sound
   relaxations: they can only enlarge the effective care set, and the
   result still agrees with [f] wherever every c_i holds.

   Keys are variable-length ((tag f, [tags of cs])), so this memoises
   through a per-call Hashtbl rather than the fixed-arity computed
   table; the call is not on the inner verification loop. *)
let multi_restrict man f cs =
  let cs = List.filter (fun c -> not (is_true c)) cs in
  if List.exists is_false cs then
    invalid_arg "Bdd.multi_restrict: empty care set";
  let memo : (int * int list, Repr.t) Hashtbl.t = Hashtbl.create 64 in
  let rec go f cs =
    (* Keep only care conjuncts that can still prune something. *)
    let cs =
      List.filter (fun c -> not (is_true c)) (List.sort_uniq compare_tag cs)
    in
    if is_const f || cs = [] then f
    else if List.exists (fun c -> equal c f) cs then tru
    else if List.exists (fun c -> equal c (neg f)) cs then fls
    else begin
      let key = (tag f, List.map tag cs) in
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
        Man.tick man;
        let lf = level f in
        let lc = List.fold_left (fun acc c -> min acc (level c)) max_int cs in
        let r =
          if lc < lf then begin
            (* Drop the care-only variable from every conjunct rooted
               there (c := c_x \/ c_xbar). *)
            let cs' =
              List.map
                (fun c ->
                  if level c = lc then
                    let c0, c1 = cofactors c lc in
                    Ops.bor man c0 c1
                  else c)
                cs
            in
            go f cs'
          end
          else begin
            let f0, f1 = cofactors f lf in
            let c0s = List.map (fun c -> fst (cofactors c lf)) cs in
            let c1s = List.map (fun c -> snd (cofactors c lf)) cs in
            if List.exists is_false c0s then go f1 c1s
            else if List.exists is_false c1s then go f0 c0s
            else Man.mk man lf ~low:(go f0 c0s) ~high:(go f1 c1s)
          end
        in
        Hashtbl.replace memo key r;
        r
    end
  and compare_tag a b = compare (tag a) (tag b) in
  go f cs

let rec constrain man f c =
  if is_true c || is_const f then f
  else if is_false c then invalid_arg "Bdd.constrain: empty care set"
  else if equal f c then tru
  else if equal f (neg c) then fls
  else begin
    let cache = man.Man.computed in
    let a = tag f and b = tag c in
    let r = Computed.find cache Computed.op_constrain a b 0 in
    if r != Computed.absent then begin
      Man.hit man.Man.stat_constrain;
      r
    end
    else begin
      Man.miss man.Man.stat_constrain;
      Man.tick man;
      let v = min (level f) (level c) in
      let f0, f1 = cofactors f v in
      let c0, c1 = cofactors c v in
      let r =
        if is_false c1 then constrain man f0 c0
        else if is_false c0 then constrain man f1 c1
        else
          Man.mk man v ~low:(constrain man f0 c0)
            ~high:(constrain man f1 c1)
      in
      Computed.store cache Computed.op_constrain a b 0 r;
      r
    end
  end
