(** Reduced ordered binary decision diagrams with complement edges.

    A from-scratch BDD package in the style of Brace, Rudell and Bryant
    (DAC 1990), the design also used by David Long's CMU package on which
    the paper's experiments ran.  Properties the verification layers rely
    on:

    - {b canonicity}: semantically equal functions are physically equal
      ([equal] is O(1));
    - {b constant-time negation} via complement edges;
    - {b shared size accounting} ([size_list]) for whole lists of BDDs;
    - the {b Restrict} and {b Constrain} care-set simplification
      operators of Coudert, Berthet and Madre.

    All operations are memoised per manager.  The package is not
    thread-safe; use one manager per thread. *)

type t
(** A BDD, i.e. an edge (node pointer + complement bit). *)

type man
(** A manager: unique table, variable order, memo caches, statistics. *)

type varset
(** An interned set of variable levels, used for quantification. *)

(** {1 Managers and variables} *)

val create : ?cache_budget:int -> unit -> man
(** Fresh manager.  [cache_budget] caps the slot count of the shared
    computed table (rounded down to a power of two); the table is lossy
    -- colliding entries evict each other -- so it never grows past the
    budget and memoisation costs no per-lookup allocation. *)

val new_var : ?name:string -> man -> int
(** Allocate the next variable level (levels are allocated in order and
    never reordered; interleave related variables by allocating them
    adjacently). *)

val num_vars : man -> int
val var_name : man -> int -> string

(** {1 Constants and structure} *)

val tru : man -> t
val fls : man -> t
val of_bool : man -> bool -> t
val is_true : t -> bool
val is_false : t -> bool
val is_const : t -> bool

val equal : t -> t -> bool
(** Constant-time semantic equality (canonicity). *)

val compare : t -> t -> int
val hash : t -> int

val tag : t -> int
(** Stable integer identifying this BDD within its manager. *)

val level : t -> int
(** Level of the root variable; [max_int] on constants. *)

val var : man -> int -> t
(** The projection function of the variable at the given level. *)

val nvar : man -> int -> t
(** Complement of [var]. *)

val mk : man -> int -> low:t -> high:t -> t
(** Low-level node constructor (reduced, canonical).  The level must be
    strictly smaller than the root levels of both children. *)

val cofactors : t -> int -> t * t
(** [cofactors f v] is [(f with v:=false, f with v:=true)] provided the
    root of [f] is at level >= [v]. *)

(** {1 Boolean connectives} *)

val bnot : man -> t -> t
(** Constant-time complement. *)

val ite : man -> t -> t -> t -> t
val band : man -> t -> t -> t
val bor : man -> t -> t -> t
val bxor : man -> t -> t -> t
val biff : man -> t -> t -> t
val bimp : man -> t -> t -> t
val bnand : man -> t -> t -> t
val bnor : man -> t -> t -> t
val conj : man -> t list -> t
val disj : man -> t list -> t

val band_bounded : man -> max_steps:int -> t -> t -> t option
(** Conjunction with a recursion-step budget; [None] when the budget is
    exhausted.  Implements the paper's future-work "abort the operation
    if the size exceeds a specified bound" capability, used by the
    greedy evaluation policy to skip hopeless pairwise conjunctions. *)

val implies : man -> t -> t -> bool
(** [implies man f g] decides f => g. *)

val cofactor : man -> lvl:int -> value:bool -> t -> t
(** Restriction fixing one variable. *)

val compose : man -> lvl:int -> by:t -> t -> t
(** Substitute a function for a variable. *)

val vector_compose : man -> t option array -> t -> t
(** Simultaneous substitution: the variable at level [v] becomes
    [subst.(v)] ([None] keeps it; identity beyond the array).  The
    substituted functions read the original variable values (true
    simultaneous substitution), so mutually dependent substitutions
    behave correctly.  Memoised per substitution vector (interned by
    physical equality, so reuse the same array across calls). *)

(** {1 Quantification} *)

val varset : man -> int list -> varset
val varset_levels : varset -> int list
val exists : man -> varset -> t -> t
val forall : man -> varset -> t -> t

val and_exists : man -> varset -> t -> t -> t
(** Relational product [exists vs (f /\ g)] without building the
    conjunction. *)

val rename : man -> int array -> t -> t
(** [rename man perm f] maps each level [l] in the support of [f] to
    [perm.(l)] (identity beyond the array).  The mapping must be
    order-preserving on the support; raises [Not_monotone] otherwise. *)

exception Not_monotone

(** {1 Care-set simplification} *)

val restrict : man -> t -> t -> t
(** [restrict man f c] (Coudert-Berthet-Madre, a.k.a. Reduce): a function
    agreeing with [f] wherever [c] holds, heuristically smaller than
    [f].  Raises [Invalid_argument] if [c] is false. *)

val constrain : man -> t -> t -> t
(** Generalized cofactor; same contract as [restrict]. *)

val multi_restrict : man -> t -> t list -> t
(** [multi_restrict man f cs] simplifies [f] under the care set
    [c1 /\ ... /\ ck] without ever building the conjunction -- the
    simultaneous-simplification routine the paper's Section V calls
    for.  The result agrees with [f] wherever every [c_i] holds.
    Raises [Invalid_argument] if some [c_i] is constant false. *)

(** {1 Measures} *)

val size : t -> int
(** Number of distinct nodes, terminal included (the node-count
    convention of the paper's tables). *)

val size_list : t list -> int
(** Shared size of a list of BDDs: common nodes counted once. *)

val support : t -> int list
val support_list : t list -> int list

val sat_count : nvars:int -> t -> float
(** Number of satisfying assignments over levels [0..nvars-1]. *)

val eval : man -> bool array -> t -> bool
(** Evaluate under a total assignment indexed by level. *)

val pick_minterm : man -> vars:int list -> t -> bool array
(** Some satisfying assignment (false off the witness path); raises
    [Not_found] on the constant false. *)

(** {1 Statistics and memory} *)

val live_nodes : man -> int
(** Nodes currently interned, from the unique table's O(1) counter.
    The table is weak (unreferenced nodes disappear at the next GC),
    and collected nodes are discovered lazily, so between {!gc} calls
    this is an upper bound: it counts every node not yet observed
    dead.  {!gc} sweeps the table and makes it exact. *)

val created_nodes : man -> int
(** Monotone count of nodes ever created; a machine-independent proxy
    for the paper's "total memory used" column. *)

val peak_live_nodes : man -> int

val cache_stats : man -> (string * int * int) list
(** [(name, hits, misses)] for each of the eight memo caches (ite,
    and_exists, exists, restrict, constrain, cofactor, rename,
    vcompose), in that fixed order.  A hit is a lookup answered from
    the cache; a miss proceeds into the recursive case.  The bounded
    conjunction shares the ITE cache, so its lookups count there. *)

val gc_events : man -> int
(** Times the computed table was invalidated under pressure: explicit
    {!gc} calls plus budget-triggered trims.  (With the lossy computed
    table the budget is enforced structurally, so budget trims only
    occur if [cache_budget] is shrunk on a live manager; the counter
    keeps the pre-rewrite "cache drop" semantics.) *)

val clear_caches : man -> unit
(** Invalidate every memoised result in O(1) (a generation bump: stale
    entries silently stop matching).  Cached result edges stay
    referenced until overwritten; use {!gc} to release them. *)

val gc : man -> unit
(** Deep-clear the computed table (releasing its result references),
    run a full OCaml GC, and sweep the unique table so dead nodes leave
    it and {!live_nodes} is exact. *)

val computed_table_stats : man -> (string * int) list
(** Shared computed-table counters: [slots] (current capacity),
    [occupied], [evictions] (stores that displaced a different entry),
    [resizes], [trims]. *)

val unique_table_stats : man -> (string * int) list
(** Unique-table counters: [slots], [live], [tombstones], [resizes],
    [sweeps]. *)

val set_progress_hook : man -> (man -> unit) option -> unit
(** Callback invoked every 64K node creations, even in the middle of a
    single BDD operation; raising from it aborts the operation (this is
    how resource budgets interrupt blown-up images). *)

val progress_hook : man -> (man -> unit) option
(** The currently installed progress hook, so guards can chain and
    restore it. *)

val set_fault_hook : man -> (man -> unit) option -> unit
(** Fault-injection point: unlike the sampled progress hook, this
    callback is consulted on {e every} recursion step and node creation,
    so a hook keyed on {!created_nodes} or {!steps} raises at an exact,
    reproducible point.  Intended for tests that exercise resource-
    exhaustion recovery paths (checkpoint write, budget restoration,
    portfolio fallback) deterministically instead of only on real
    blowups. *)

exception Node_budget_exhausted
(** Raised by the {!with_node_budget} guard hook (and catchable by
    resilient drivers when a fault-injection hook raises it outside any
    budget region). *)

val with_node_budget :
  ?max_steps:int -> man -> max_new_nodes:int -> (unit -> 'a) -> 'a option
(** Run a computation that is abandoned ([None]) once it has created
    more than [max_new_nodes] nodes or run more than [max_steps]
    non-cached recursion steps (sampled at the progress-hook cadence;
    enclosing hooks keep running).  Used to race alternative
    image-computation strategies. *)

val steps : man -> int
(** Monotone count of non-cached recursion steps across all operations
    (a machine-independent work measure). *)

(** {1 Enumeration} *)

val cubes : t -> (int * bool) list Seq.t
(** Lazy sequence of satisfying paths as partial assignments
    [(level, phase)]; variables absent from a cube are free. *)

val minterms : man -> vars:int list -> t -> bool array Seq.t
(** Lazy sequence of total satisfying assignments over [vars] (which
    should cover the support).  Arrays are fresh per element. *)

val count_cubes : t -> int
(** Number of satisfying paths (not minterms). *)

(** {1 Variable-order optimisation} *)

module Reorder : sig
  val transfer : dst:man -> perm:int array -> t list -> t list
  (** Rebuild the roots with level [l] mapped to [perm.(l)] (identity
      beyond the array), in [dst] (which must have the target levels
      allocated).  Any permutation is accepted: reconstruction goes
      through ITE, so non-monotone maps are fine (contrast
      {!rename}). *)

  val greedy_adjacent : ?passes:int -> man -> t list -> int array
  (** Offline order search by adjacent-position swaps (sifting
      flavoured), each candidate evaluated by transfer into a scratch
      manager; returns the permutation (old level -> new level)
      minimising the shared size it found.  A model-development
      utility, not for dynamic use mid-verification. *)

  val sift : ?passes:int -> man -> t list -> int array
  (** Classical sifting, offline: move each variable through every
      position, keep the best.  Much stronger than {!greedy_adjacent}
      (escapes its local minima, e.g. it recovers a grouped order from
      a fully interleaved one) at O(passes * nvars^2) transfer
      evaluations. *)

  val apply : dst:man -> man -> t list -> int array -> t list
  (** Transfer the roots into [dst] under a permutation found by
      {!greedy_adjacent} or {!sift}.  Validates against the source
      manager [man]: raises [Invalid_argument] if the permutation is
      not injective over [man]'s variables or maps a level outside the
      variables allocated in [dst]. *)
end

(** {1 Serialization} *)

module Serialize : sig
  exception Parse_error of string

  val to_channel : out_channel -> t list -> unit
  (** Write a list of roots (with full sharing) in a stable textual
      format. *)

  val of_channel : ?map:(int -> int) -> man -> in_channel -> t list
  (** Read roots back, rebuilding through the manager's unique table.
      [map] relocates variable levels (identity by default) and must be
      order-preserving. *)

  val to_file : man -> string -> t list -> unit
  val of_file : ?map:(int -> int) -> man -> string -> t list

  val to_string : t list -> string
  (** In-memory counterpart of {!to_channel}: the same textual format
      as one string.  Strings are immutable, so the result is safe to
      share across domains (the root BDDs themselves are not). *)

  val of_string : ?map:(int -> int) -> man -> string -> t list
  (** In-memory counterpart of {!of_channel}. *)
end

(** {1 Kernel internals (for tests and benchmarks)} *)

(** Direct handle on the lossy computed-table implementation, exposed
    so unit tests can exercise collisions, eviction, resizing and
    generation invalidation on tiny standalone tables.  Verification
    code should never need this: every operator memoises through the
    manager's own table automatically. *)
module Computed_table : sig
  type table

  val create : budget:int -> table
  (** Slot count capped at the largest power of two <= [budget]
      (minimum 64); starts small and doubles under occupancy. *)

  val absent : t
  (** The lookup-miss sentinel; compare against results with [==]. *)

  val find : table -> int -> int -> int -> int -> t
  (** [find tbl op a b c] returns the cached result or {!absent}.
      Allocation-free. *)

  val store : table -> int -> int -> int -> int -> t -> unit
  (** Direct-mapped store; evicts whatever occupied the slot. *)

  val trim : table -> unit
  (** O(1) invalidation (generation bump). *)

  val clear : table -> unit
  (** Invalidate and drop all result references. *)

  val slots : table -> int
  val occupied : table -> int
  val stats : table -> (string * int) list
end

(** {1 Debugging} *)

val pp : man -> Format.formatter -> t -> unit

module Dot : sig
  val to_channel : man -> out_channel -> t list -> unit
  val to_file : man -> string -> t list -> unit
end
