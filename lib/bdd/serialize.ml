(* Textual serialization of BDDs.

   Format: a header line "bdd <nodes> <roots>", one line per internal
   node in bottom-up (children-first) order

       <id> <level> <low-id> <low-neg> <high-id>

   with the terminal fixed as id 0, then one line per root
   "root <id> <neg>".  Node ids are densely renumbered on output, so
   files are stable across managers and GC states. *)

open Repr

(* Core writer, parametrised over the output sink so the same code
   serves channels (checkpoints) and in-memory strings (shipping BDDs
   between domains, where a string is immutable and safely shared). *)
let write_gen out roots =
  let order = ref [] in
  let index = Hashtbl.create 64 in
  let rec visit n =
    if not (Hashtbl.mem index n.id) then begin
      if is_terminal_node n then Hashtbl.replace index n.id 0
      else begin
        visit n.low;
        visit n.high;
        Hashtbl.replace index n.id (Hashtbl.length index);
        order := n :: !order
      end
    end
  in
  List.iter (fun r -> visit r.node) roots;
  (* The terminal may be absent if every root is constant. *)
  if not (Hashtbl.mem index 0) then Hashtbl.replace index 0 0;
  let nodes = List.rev !order in
  out (Printf.sprintf "bdd %d %d\n" (List.length nodes) (List.length roots));
  List.iter
    (fun n ->
      out
        (Printf.sprintf "%d %d %d %d %d\n" (Hashtbl.find index n.id) n.level
           (Hashtbl.find index n.low.id)
           (Bool.to_int n.low_neg)
           (Hashtbl.find index n.high.id)))
    nodes;
  List.iter
    (fun r ->
      out
        (Printf.sprintf "root %d %d\n"
           (Hashtbl.find index r.node.id)
           (Bool.to_int r.neg)))
    roots

let write oc roots = write_gen (output_string oc) roots

let to_string roots =
  let b = Buffer.create 4096 in
  write_gen (Buffer.add_string b) roots;
  Buffer.contents b

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* All parse failures surface as [Parse_error]: a truncated file must
   not leak [End_of_file] and a malformed count must not leak
   [Failure _] -- callers (checkpoint recovery in particular) rely on
   one exception to detect a corrupt input. *)
let int_field what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail "bad %s %S" what s

(* Read BDDs back, rebuilding through the manager's [mk] so the result
   is properly hash-consed (and shared with existing nodes).  [map]
   relocates levels (identity by default); it must be order-preserving
   or the read fails through [mk]'s canonicity assertion. *)
(* Core reader over a [next] line producer ([unit -> string], raising
   [Parse_error] on exhaustion). *)
let read_gen ?map man next =
  let map = match map with Some f -> f | None -> Fun.id in
  let next_line () = next () in
  let header = next_line () in
  let nodes, roots =
    match String.split_on_char ' ' header with
    | [ "bdd"; n; r ] -> (int_field "node count" n, int_field "root count" r)
    | _ -> fail "bad header %S" header
  in
  if nodes < 0 || roots < 0 then fail "bad header %S" header;
  let table = Hashtbl.create (nodes + 1) in
  Hashtbl.replace table 0 tru;
  for _ = 1 to nodes do
    let line = next_line () in
    match String.split_on_char ' ' line with
    | [ id; level; low; low_neg; high ] ->
      let edge key neg =
        match Hashtbl.find_opt table (int_field "node id" key) with
        | Some e -> if neg then Repr.neg e else e
        | None -> fail "node %s references unknown node %s" id key
      in
      let low = edge low (low_neg = "1") in
      let high = edge high false in
      let e = Man.mk man (map (int_field "level" level)) ~low ~high in
      Hashtbl.replace table (int_field "node id" id) e
    | _ -> fail "bad node line %S" line
  done;
  List.init roots (fun _ ->
      let line = next_line () in
      match String.split_on_char ' ' line with
      | [ "root"; id; neg ] -> (
        match Hashtbl.find_opt table (int_field "root id" id) with
        | Some e -> if neg = "1" then Repr.neg e else e
        | None -> fail "unknown root %s" id)
      | _ -> fail "bad root line %S" line)

let read ?map man ic =
  read_gen ?map man (fun () ->
      try input_line ic with End_of_file -> fail "truncated file")

(* In-memory counterpart of [read]: lines are carved out of the string
   without copying it up front, so large transfers stay one allocation
   per line. *)
let of_string ?map man s =
  let pos = ref 0 in
  let len = String.length s in
  let next () =
    if !pos >= len then fail "truncated string"
    else begin
      let nl = try String.index_from s !pos '\n' with Not_found -> len in
      let line = String.sub s !pos (nl - !pos) in
      pos := nl + 1;
      line
    end
  in
  read_gen ?map man next

let to_file man path roots =
  ignore man;
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc roots)

let of_file ?map man path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ?map man ic)
