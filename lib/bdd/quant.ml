(* Quantification and the combined AND-EXISTS ("relational product")
   operator used by image computations.

   Both recursions exploit the ordering invariant that below a node at
   level v only levels > v occur, so a memo entry keyed by the full
   variable-set id is valid wherever the subproblem reappears. *)

open Repr

let rec exists man vs f =
  if is_const f then f
  else if level f > Man.varset_max vs then f
  else begin
    let cache = man.Man.computed in
    let a = vs.Man.vid and b = tag f in
    let r = Computed.find cache Computed.op_exists a b 0 in
    if r != Computed.absent then begin
      Man.hit man.Man.stat_exists;
      r
    end
    else begin
      Man.miss man.Man.stat_exists;
      Man.tick man;
      let v = level f in
      let f0, f1 = cofactors f v in
      let r =
        if Man.varset_mem vs v then begin
          let lo = exists man vs f0 in
          if is_true lo then tru
          else Ops.bor man lo (exists man vs f1)
        end
        else
          Man.mk man v ~low:(exists man vs f0) ~high:(exists man vs f1)
      in
      Computed.store cache Computed.op_exists a b 0 r;
      r
    end
  end

let forall man vs f = neg (exists man vs (neg f))

(* and_exists man vs f g = exists vs (f /\ g), computed without building
   the conjunction first.  This is the workhorse of Image/PreImage. *)
let rec and_exists man vs f g =
  if is_false f || is_false g then fls
  else if is_true f then exists man vs g
  else if is_true g then exists man vs f
  else if equal f g then exists man vs f
  else if equal f (neg g) then fls
  else begin
    (* Order the pair for cache symmetry. *)
    let f, g = if tag f <= tag g then (f, g) else (g, f) in
    if level f > Man.varset_max vs && level g > Man.varset_max vs then
      Ops.band man f g
    else begin
      let cache = man.Man.computed in
      let a = vs.Man.vid and b = tag f and c = tag g in
      let r = Computed.find cache Computed.op_and_exists a b c in
      if r != Computed.absent then begin
        Man.hit man.Man.stat_and_exists;
        r
      end
      else begin
        Man.miss man.Man.stat_and_exists;
        Man.tick man;
        let v = min (level f) (level g) in
        let f0, f1 = cofactors f v in
        let g0, g1 = cofactors g v in
        let r =
          if Man.varset_mem vs v then begin
            let lo = and_exists man vs f0 g0 in
            if is_true lo then tru
            else Ops.bor man lo (and_exists man vs f1 g1)
          end
          else
            Man.mk man v ~low:(and_exists man vs f0 g0)
              ~high:(and_exists man vs f1 g1)
        in
        Computed.store cache Computed.op_and_exists a b c r;
        r
      end
    end
  end
