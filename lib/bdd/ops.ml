(* Boolean connectives, all built on a single memoised if-then-else.

   The ITE normalisation below follows Brace-Rudell-Bryant: terminal
   cases first, then rewrite so that the test edge is regular and the
   first branch is regular, which maximises cache hits and lets one
   cache entry serve an operation and its complement.

   Memoisation goes through the shared lossy computed table: the key is
   the packed (op, tag, tag, tag) quadruple, a hit is four int compares
   and a miss allocates nothing (the [absent] sentinel is compared
   physically). *)

open Repr

let rec ite man f g h =
  (* Terminal cases. *)
  if is_true f then g
  else if is_false f then h
  else if equal g h then g
  else if is_true g && is_false h then f
  else if is_false g && is_true h then neg f
  else if equal f g then ite man f tru h (* f ? f : h  =  f \/ h *)
  else if equal f (neg g) then ite man f fls h
  else if equal f h then ite man f g fls
  else if equal f (neg h) then ite man f g tru
  else if f.neg then ite man (neg f) h g
  else if g.neg then neg (ite man f (neg g) (neg h))
  else begin
    let cache = man.Man.computed in
    let a = tag f and b = tag g and c = tag h in
    let r = Computed.find cache Computed.op_ite a b c in
    if r != Computed.absent then begin
      Man.hit man.Man.stat_ite;
      r
    end
    else begin
      Man.miss man.Man.stat_ite;
      Man.tick man;
      let v = min (level f) (min (level g) (level h)) in
      let f0, f1 = cofactors f v in
      let g0, g1 = cofactors g v in
      let h0, h1 = cofactors h v in
      let lo = ite man f0 g0 h0 in
      let hi = ite man f1 g1 h1 in
      let r = Man.mk man v ~low:lo ~high:hi in
      Computed.store cache Computed.op_ite a b c r;
      r
    end
  end

let band man f g = ite man f g fls

exception Step_budget_exhausted

(* AND with a recursion-step budget: returns [None] if the computation
   needs more than [max_steps] non-cached recursive calls.  This is the
   "compute the size of a result without building it / abort if it
   exceeds a bound" capability the paper lists as future work; the
   greedy evaluation policy uses it to skip hopeless pairwise
   conjunctions.  Results live under their own op tag ([op_band]) so
   completed sub-results are shared across calls; hits and misses are
   accounted to the "ite" statistic it conceptually belongs to. *)
let band_bounded man ~max_steps f g =
  let cache = man.Man.computed in
  let steps = ref 0 in
  let rec go f g =
    if is_false f || is_false g then fls
    else if is_true f then g
    else if is_true g then f
    else if equal f g then f
    else if equal f (neg g) then fls
    else begin
      let f, g = if tag f <= tag g then (f, g) else (g, f) in
      let a = tag f and b = tag g in
      let r = Computed.find cache Computed.op_band a b 0 in
      if r != Computed.absent then begin
        Man.hit man.Man.stat_ite;
        r
      end
      else begin
        Man.miss man.Man.stat_ite;
        incr steps;
        if !steps > max_steps then raise Step_budget_exhausted;
        let v = min (level f) (level g) in
        let f0, f1 = cofactors f v in
        let g0, g1 = cofactors g v in
        let r = Man.mk man v ~low:(go f0 g0) ~high:(go f1 g1) in
        Computed.store cache Computed.op_band a b 0 r;
        r
      end
    end
  in
  try Some (go f g) with Step_budget_exhausted -> None
let bor man f g = ite man f tru g
let bxor man f g = ite man f (neg g) g
let biff man f g = ite man f g (neg g)
let bimp man f g = ite man f g tru
let bnand man f g = neg (band man f g)
let bnor man f g = neg (bor man f g)

let conj man = List.fold_left (band man) tru
let disj man = List.fold_left (bor man) fls

(* f => g as a decision procedure: no new nodes beyond the AND. *)
let implies man f g = is_false (band man f (neg g))

(* Restriction of [f] by fixing the variable at [lvl] to [value]. *)
let cofactor man ~lvl ~value f =
  let cache = man.Man.computed in
  let key_base = (lvl * 2) + Bool.to_int value in
  let rec go f =
    if level f > lvl then f
    else if level f = lvl then
      let f0, f1 = cofactors f lvl in
      if value then f1 else f0
    else begin
      let b = tag f in
      let r = Computed.find cache Computed.op_cofactor key_base b 0 in
      if r != Computed.absent then begin
        Man.hit man.Man.stat_cofactor;
        r
      end
      else begin
        Man.miss man.Man.stat_cofactor;
        Man.tick man;
        let v = level f in
        let f0, f1 = cofactors f v in
        let r = Man.mk man v ~low:(go f0) ~high:(go f1) in
        Computed.store cache Computed.op_cofactor key_base b 0 r;
        r
      end
    end
  in
  go f

(* Substitute the function [by] for the variable at [lvl] in [f]. *)
let compose man ~lvl ~by f =
  let f1 = cofactor man ~lvl ~value:true f in
  let f0 = cofactor man ~lvl ~value:false f in
  ite man by f1 f0

(* Simultaneous substitution: variable at level v becomes [subst.(v)]
   ([None] keeps the variable).  Substitution is simultaneous: the
   substituted functions read the ORIGINAL variable values, so mutually
   dependent substitutions (e.g. a swap) behave correctly.  Memoised per
   interned substitution vector.  This is how PreImage/BackImage of a
   deterministic machine avoids the relational product entirely. *)
let vector_compose man subst f =
  let cache = man.Man.computed in
  let sid = Man.vcompose_id man subst in
  let rec go f =
    if is_const f then f
    else begin
      let b = tag f in
      let r = Computed.find cache Computed.op_vcompose sid b 0 in
      if r != Computed.absent then begin
        Man.hit man.Man.stat_vcompose;
        r
      end
      else begin
        Man.miss man.Man.stat_vcompose;
        Man.tick man;
        let v = level f in
        let f0, f1 = cofactors f v in
        let lo = go f0 and hi = go f1 in
        let g =
          match if v < Array.length subst then subst.(v) else None with
          | Some g -> g
          | None -> Man.var man v
        in
        let r = ite man g hi lo in
        Computed.store cache Computed.op_vcompose sid b 0 r;
        r
      end
    end
  in
  go f
