(* Offline variable-order optimisation.

   Levels in this package are static (nodes store their level), so
   reordering works by TRANSFER: rebuilding BDDs under a level
   permutation, possibly into a different manager.  [transfer] accepts
   an arbitrary permutation -- the reconstruction goes through ITE, so
   non-monotone maps are fine (unlike the cheap [Rename.rename]).

   [greedy_adjacent] is an offline sifting-flavoured search: repeated
   adjacent-position swaps, each evaluated by transferring the roots
   into a scratch manager, kept when the shared size shrinks.  Meant
   for model development (finding a better declaration order), not for
   dynamic use during verification. *)

open Repr

(* Rebuild [roots] with level [l] mapped to [perm.(l)] (identity beyond
   the array), in manager [dst]. *)
let transfer ~dst ~perm roots =
  let memo = Hashtbl.create 256 in
  let map l = if l < Array.length perm then perm.(l) else l in
  let rec tr e =
    if is_const e then e
    else begin
      let key = tag e in
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
        let v = level e in
        let e0, e1 = cofactors e v in
        let r = Ops.ite dst (Man.var dst (map v)) (tr e1) (tr e0) in
        Hashtbl.replace memo key r;
        r
    end
  in
  List.map tr roots

(* Shared size of the roots under candidate order [order]
   (position -> original level), evaluated in a scratch manager. *)
let size_under ~nvars roots order =
  let scratch = Man.create () in
  for _ = 1 to nvars do
    ignore (Man.new_var scratch)
  done;
  let perm = Array.make nvars 0 in
  Array.iteri (fun pos l -> perm.(l) <- pos) order;
  let moved = transfer ~dst:scratch ~perm roots in
  Size.size_list moved

let greedy_adjacent ?(passes = 2) man roots =
  let nvars = Man.num_vars man in
  let order = Array.init nvars (fun i -> i) in
  let best = ref (size_under ~nvars roots (Array.copy order)) in
  for _ = 1 to passes do
    for pos = 0 to nvars - 2 do
      let a = order.(pos) and b = order.(pos + 1) in
      order.(pos) <- b;
      order.(pos + 1) <- a;
      let candidate = size_under ~nvars roots order in
      if candidate < !best then best := candidate
      else begin
        (* revert *)
        order.(pos) <- a;
        order.(pos + 1) <- b
      end
    done
  done;
  let perm = Array.make (max nvars 1) 0 in
  Array.iteri (fun pos l -> perm.(l) <- pos) order;
  perm

(* Classical sifting adapted to offline evaluation: move each variable
   through every position of the order (cheapest-first restarts), keep
   the best position, repeat for [passes].  Escapes the local minima
   that defeat adjacent swaps (e.g. recovering a grouped order from a
   fully interleaved one); costs O(passes * nvars^2) transfers, so it
   is a model-development tool for moderate root sizes. *)
let sift ?(passes = 1) man roots =
  let nvars = Man.num_vars man in
  let order = ref (Array.init nvars (fun i -> i)) in
  let evaluate order = size_under ~nvars roots order in
  let best = ref (evaluate !order) in
  for _ = 1 to passes do
    for v = 0 to nvars - 1 do
      (* Current position of level v. *)
      let cur = !order in
      let pos = ref 0 in
      Array.iteri (fun i l -> if l = v then pos := i) cur;
      let without =
        Array.of_list (List.filter (( <> ) v) (Array.to_list cur))
      in
      let best_pos = ref !pos and improved = ref false in
      for candidate = 0 to nvars - 1 do
        if candidate <> !pos then begin
          let trial = Array.make nvars 0 in
          Array.blit without 0 trial 0 candidate;
          trial.(candidate) <- v;
          Array.blit without candidate trial (candidate + 1)
            (nvars - candidate - 1);
          let size = evaluate trial in
          if size < !best then begin
            best := size;
            best_pos := candidate;
            improved := true
          end
        end
      done;
      if !improved then begin
        let trial = Array.make nvars 0 in
        Array.blit without 0 trial 0 !best_pos;
        trial.(!best_pos) <- v;
        Array.blit without !best_pos trial (!best_pos + 1)
          (nvars - !best_pos - 1);
        order := trial
      end
    done
  done;
  let perm = Array.make (max nvars 1) 0 in
  Array.iteri (fun pos l -> perm.(l) <- pos) !order;
  perm

(* [apply] is [transfer] plus validation against the source manager:
   the permutation must be injective over the source's variables and
   every target level must already be allocated in [dst], otherwise
   [transfer] would fail deep inside [mk] with an unhelpful assertion
   (or silently alias two source levels onto one target). *)
let apply ~dst man roots perm =
  let nvars = Man.num_vars man in
  let n = Array.length perm in
  let map l = if l < n then perm.(l) else l in
  let seen = Hashtbl.create (max nvars 16) in
  for l = 0 to nvars - 1 do
    let t = map l in
    if t < 0 || t >= Man.num_vars dst then
      invalid_arg
        (Printf.sprintf
           "Reorder.apply: level %d maps to %d, not allocated in dst" l t);
    match Hashtbl.find_opt seen t with
    | Some l' ->
      invalid_arg
        (Printf.sprintf
           "Reorder.apply: permutation not injective (levels %d and %d both \
            map to %d)"
           l' l t)
    | None -> Hashtbl.replace seen t l
  done;
  transfer ~dst ~perm roots
