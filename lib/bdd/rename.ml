(* Variable renaming by a level permutation that is order-preserving on
   the support of the argument (the common case: mapping next-state
   variables back onto their interleaved current-state partners).  Under
   that precondition a single structural pass suffices. *)

open Repr

exception Not_monotone

let rename man perm f =
  let cache = man.Man.computed in
  let pid = Man.perm_id man perm in
  let map lvl = if lvl < Array.length perm then perm.(lvl) else lvl in
  let rec go bound f =
    if is_const f then f
    else begin
      let b = tag f in
      let r = Computed.find cache Computed.op_rename pid b 0 in
      if r != Computed.absent then begin
        Man.hit man.Man.stat_rename;
        if level r <> terminal_level && level r <= bound then
          raise Not_monotone;
        r
      end
      else begin
        Man.miss man.Man.stat_rename;
        let v = level f in
        let v' = map v in
        if v' <= bound then raise Not_monotone;
        let f0, f1 = cofactors f v in
        let r = Man.mk man v' ~low:(go v' f0) ~high:(go v' f1) in
        Computed.store cache Computed.op_rename pid b 0 r;
        r
      end
    end
  in
  go (-1) f
