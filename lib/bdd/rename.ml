(* Variable renaming by a level permutation that is order-preserving on
   the support of the argument (the common case: mapping next-state
   variables back onto their interleaved current-state partners).  Under
   that precondition a single structural pass suffices. *)

open Repr

exception Not_monotone

let rename man perm f =
  let pid = Man.perm_id man perm in
  let map lvl = if lvl < Array.length perm then perm.(lvl) else lvl in
  let rec go bound f =
    if is_const f then f
    else begin
      let key = ((pid * 0x10001) + 1, tag f) in
      match Hashtbl.find_opt man.Man.cache_rename key with
      | Some r ->
        Man.hit man.Man.stat_rename;
        if level r <> terminal_level && level r <= bound then
          raise Not_monotone;
        r
      | None ->
        Man.miss man.Man.stat_rename;
        let v = level f in
        let v' = map v in
        if v' <= bound then raise Not_monotone;
        let f0, f1 = cofactors f v in
        let r = Man.mk man v' ~low:(go v' f0) ~high:(go v' f1) in
        Hashtbl.replace man.Man.cache_rename key r;
        r
    end
  in
  go (-1) f
