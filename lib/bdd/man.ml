(* BDD manager: unique table, variable bookkeeping, memo caches and
   statistics counters.  All node creation goes through [mk], which
   enforces the two canonicity invariants (no redundant node, THEN edge
   regular), so semantically equal BDDs are always physically equal. *)

module Node_set = Weak.Make (struct
  type t = Repr.node

  let equal = Repr.node_structurally_equal
  let hash = Repr.hash_node
end)

type varset = {
  vid : int;                    (* interning key within the manager *)
  levels : int array;           (* strictly increasing *)
  member : bool array;          (* indexed by level, padded on demand *)
}

type cache2 = (int * int, Repr.t) Hashtbl.t
type cache3 = (int * int * int, Repr.t) Hashtbl.t

(* Per-memo-cache hit/miss accounting.  Plain mutable fields: the
   increments sit next to Hashtbl lookups on every operator's hot path,
   so they must cost nothing beyond a store. *)
type cstat = { mutable hits : int; mutable misses : int }

type t = {
  unique : Node_set.t;
  mutable next_id : int;
  mutable nvars : int;
  mutable names : string array;
  mutable created : int;        (* total nodes ever interned *)
  mutable steps : int;          (* non-cached recursion steps, all ops *)
  mutable peak_live : int;
  mutable varsets : varset list;
  mutable next_vid : int;
  mutable perms : (int array * int) list; (* interned renamings *)
  mutable next_perm_id : int;
  cache_ite : cache3;
  cache_and_exists : cache3;
  cache_exists : cache2;
  cache_restrict : cache2;
  cache_constrain : cache2;
  cache_cofactor : cache2;
  cache_rename : cache2;
  cache_vcompose : cache2;
  stat_ite : cstat;
  stat_and_exists : cstat;
  stat_exists : cstat;
  stat_restrict : cstat;
  stat_constrain : cstat;
  stat_cofactor : cstat;
  stat_rename : cstat;
  stat_vcompose : cstat;
  mutable gc_events : int;      (* cache trims + explicit gc calls *)
  mutable vcomposes : (Repr.t option array * int) list;
  mutable next_vcompose_id : int;
  mutable cache_entries_budget : int;
  mutable progress_hook : (t -> unit) option;
  mutable fault_hook : (t -> unit) option;
}

let fresh_cstat () = { hits = 0; misses = 0 }

let create ?(cache_budget = 2_000_000) () =
  {
    unique = Node_set.create (1 lsl 14);
    next_id = 1;
    nvars = 0;
    names = [||];
    created = 0;
    steps = 0;
    peak_live = 0;
    varsets = [];
    next_vid = 0;
    perms = [];
    next_perm_id = 0;
    cache_ite = Hashtbl.create 4096;
    cache_and_exists = Hashtbl.create 4096;
    cache_exists = Hashtbl.create 1024;
    cache_restrict = Hashtbl.create 1024;
    cache_constrain = Hashtbl.create 256;
    cache_cofactor = Hashtbl.create 256;
    cache_rename = Hashtbl.create 256;
    cache_vcompose = Hashtbl.create 1024;
    stat_ite = fresh_cstat ();
    stat_and_exists = fresh_cstat ();
    stat_exists = fresh_cstat ();
    stat_restrict = fresh_cstat ();
    stat_constrain = fresh_cstat ();
    stat_cofactor = fresh_cstat ();
    stat_rename = fresh_cstat ();
    stat_vcompose = fresh_cstat ();
    gc_events = 0;
    vcomposes = [];
    next_vcompose_id = 0;
    cache_entries_budget = cache_budget;
    progress_hook = None;
    fault_hook = None;
  }

let clear_caches man =
  Hashtbl.reset man.cache_ite;
  Hashtbl.reset man.cache_and_exists;
  Hashtbl.reset man.cache_exists;
  Hashtbl.reset man.cache_restrict;
  Hashtbl.reset man.cache_constrain;
  Hashtbl.reset man.cache_cofactor;
  Hashtbl.reset man.cache_rename;
  Hashtbl.reset man.cache_vcompose

(* Memo caches hold strong references to result nodes, so they must be
   dropped periodically for the weak unique table to collect anything.
   Called opportunistically from the operation wrappers. *)
let maybe_trim_caches man =
  let entries =
    Hashtbl.length man.cache_ite + Hashtbl.length man.cache_and_exists
    + Hashtbl.length man.cache_exists + Hashtbl.length man.cache_vcompose
    + Hashtbl.length man.cache_restrict + Hashtbl.length man.cache_constrain
    + Hashtbl.length man.cache_cofactor + Hashtbl.length man.cache_rename
  in
  if entries > man.cache_entries_budget then begin
    man.gc_events <- man.gc_events + 1;
    clear_caches man;
    Gc.major ()
  end

(* Bump the operation-step counter; drives the progress hook at the
   same cadence as node creation so budgets also catch computations
   that churn without creating nodes (pure cache-hit avalanches). *)
let tick man =
  man.steps <- man.steps + 1;
  (match man.fault_hook with None -> () | Some hook -> hook man);
  if man.steps land 0xFFFF = 0 then
    match man.progress_hook with None -> () | Some hook -> hook man

let steps man = man.steps

let live_nodes man =
  let live = Node_set.count man.unique in
  if live > man.peak_live then man.peak_live <- live;
  live
let created_nodes man = man.created
let num_vars man = man.nvars

let gc man =
  man.gc_events <- man.gc_events + 1;
  clear_caches man;
  Gc.full_major ()

let gc_events man = man.gc_events

(* Hot-path cache accounting; callers touch these on every memo-cache
   lookup, so they are bare stores. *)
let hit s = s.hits <- s.hits + 1
let miss s = s.misses <- s.misses + 1

(* (name, hits, misses) per memo cache, fixed order. *)
let cache_stats man =
  [
    ("ite", man.stat_ite.hits, man.stat_ite.misses);
    ("and_exists", man.stat_and_exists.hits, man.stat_and_exists.misses);
    ("exists", man.stat_exists.hits, man.stat_exists.misses);
    ("restrict", man.stat_restrict.hits, man.stat_restrict.misses);
    ("constrain", man.stat_constrain.hits, man.stat_constrain.misses);
    ("cofactor", man.stat_cofactor.hits, man.stat_cofactor.misses);
    ("rename", man.stat_rename.hits, man.stat_rename.misses);
    ("vcompose", man.stat_vcompose.hits, man.stat_vcompose.misses);
  ]

(* Interning. [hi] must be a regular (uncomplemented) reference. *)
let intern man lvl lo lo_neg hi =
  let probe =
    { Repr.id = man.next_id; level = lvl; low = lo; low_neg = lo_neg;
      high = hi }
  in
  let found = Node_set.merge man.unique probe in
  if found == probe then begin
    man.next_id <- man.next_id + 1;
    man.created <- man.created + 1;
    (match man.fault_hook with None -> () | Some hook -> hook man);
    (* [Node_set.count] scans the whole table, so the live-node peak is
       sampled only every 64K insertions (and on demand).  The same
       cadence drives the progress hook (resource-limit checks that can
       interrupt a blown-up operation) and cache trimming. *)
    if man.created land 0xFFFF = 0 then begin
      let live = Node_set.count man.unique in
      if live > man.peak_live then man.peak_live <- live;
      maybe_trim_caches man;
      match man.progress_hook with None -> () | Some hook -> hook man
    end
  end;
  found

(* The canonicity rule for complement edges: if the THEN edge would be
   complemented, build the complemented node instead and return a
   complemented edge to it (node(v,l,h) = not node(v, not l, not h)). *)
let rec mk man lvl ~low ~high =
  if Repr.equal low high then low
  else if high.Repr.neg then
    Repr.neg (mk man lvl ~low:(Repr.neg low) ~high:(Repr.neg high))
  else begin
    assert (lvl < low.Repr.node.level && lvl < high.Repr.node.level);
    { Repr.node = intern man lvl low.Repr.node low.Repr.neg high.Repr.node;
      neg = false }
  end

(* [names] is a growable array: [nvars] is the logical length, the rest
   is spare capacity doubled on demand (wide models allocate thousands
   of variables, so per-variable reallocation would be quadratic). *)
let new_var ?name man =
  let lvl = man.nvars in
  man.nvars <- man.nvars + 1;
  let label = match name with Some s -> s | None -> Printf.sprintf "v%d" lvl in
  if man.nvars > Array.length man.names then begin
    let grown = Array.make (max 16 (2 * Array.length man.names)) "" in
    Array.blit man.names 0 grown 0 (Array.length man.names);
    man.names <- grown
  end;
  man.names.(lvl) <- label;
  lvl

let var_name man lvl =
  if lvl >= 0 && lvl < man.nvars then man.names.(lvl)
  else Printf.sprintf "v%d" lvl

(* The BDD for a single variable / its negation. *)
let var man lvl =
  assert (lvl >= 0 && lvl < man.nvars);
  mk man lvl ~low:Repr.fls ~high:Repr.tru

let nvar man lvl = Repr.neg (var man lvl)

let varset man levels =
  let levels = List.sort_uniq compare levels in
  let arr = Array.of_list levels in
  match
    List.find_opt (fun vs -> vs.levels = arr) man.varsets
  with
  | Some vs -> vs
  | None ->
    let width = man.nvars in
    let member = Array.make (max width 1) false in
    Array.iter (fun l -> member.(l) <- true) arr;
    let vs = { vid = man.next_vid; levels = arr; member } in
    man.next_vid <- man.next_vid + 1;
    man.varsets <- vs :: man.varsets;
    vs

let varset_mem vs lvl = lvl < Array.length vs.member && vs.member.(lvl)

let varset_max vs =
  let n = Array.length vs.levels in
  if n = 0 then -1 else vs.levels.(n - 1)

(* Intern a renaming permutation so it can serve as a memo key. *)
let perm_id man perm =
  match List.find_opt (fun (p, _) -> p = perm) man.perms with
  | Some (_, id) -> id
  | None ->
    let id = man.next_perm_id in
    man.next_perm_id <- man.next_perm_id + 1;
    man.perms <- (perm, id) :: man.perms;
    id

let set_progress_hook man hook = man.progress_hook <- hook
let progress_hook man = man.progress_hook

(* Unlike the (sampled) progress hook, the fault hook is consulted on
   every recursion step and every node creation, so a hook keyed on
   [created] or [steps] fires at an exact, reproducible point.  Used by
   the resilience tests to inject deterministic budget blowups. *)
let set_fault_hook man hook = man.fault_hook <- hook

(* Intern a simultaneous-substitution vector (compared physically: the
   caller keeps the array alive for the duration of its use). *)
let vcompose_id man subst =
  match List.find_opt (fun (s, _) -> s == subst) man.vcomposes with
  | Some (_, id) -> id
  | None ->
    let id = man.next_vcompose_id in
    man.next_vcompose_id <- man.next_vcompose_id + 1;
    man.vcomposes <- (subst, id) :: man.vcomposes;
    id

exception Node_budget_exhausted

(* Run [f] with an additional (chained) progress hook that aborts once
   more than [max_new_nodes] nodes have been created or [max_steps]
   non-cached recursion steps have run; [None] on abort.  Budgets below
   the 64K sampling cadence fire late, so use generous budgets.  Any
   hook installed by an enclosing guard keeps running. *)
let with_node_budget ?(max_steps = max_int) man ~max_new_nodes f =
  let baseline = man.created in
  let step_baseline = man.steps in
  let old = man.progress_hook in
  let hook m =
    (match old with Some h -> h m | None -> ());
    if
      m.created - baseline > max_new_nodes
      || m.steps - step_baseline > max_steps
    then raise Node_budget_exhausted
  in
  man.progress_hook <- Some hook;
  Fun.protect
    ~finally:(fun () -> man.progress_hook <- old)
    (fun () -> try Some (f ()) with Node_budget_exhausted -> None)
