(* BDD manager: unique table, variable bookkeeping, the shared computed
   table and statistics counters.  All node creation goes through [mk],
   which enforces the two canonicity invariants (no redundant node, THEN
   edge regular), so semantically equal BDDs are always physically
   equal.

   The two kernel tables live in their own modules: [Unique] (weak,
   open-addressed, O(1) live counter) and [Computed] (lossy,
   direct-mapped, allocation-free).  This module owns their lifecycle
   (trim / clear / gc) and the per-operator hit/miss accounting. *)

type varset = {
  vid : int;                    (* interning key within the manager *)
  levels : int array;           (* strictly increasing *)
  member : bool array;          (* indexed by level, padded on demand *)
}

(* Per-operator hit/miss accounting.  Plain mutable fields: the
   increments sit next to computed-table lookups on every operator's
   hot path, so they must cost nothing beyond a store. *)
type cstat = { mutable hits : int; mutable misses : int }

(* Simultaneous-substitution vectors are interned by PHYSICAL equality
   (callers reuse one array across calls and must not mutate it after
   first use); the hash is structural over a bounded prefix, which is
   compatible with [==] and stable because edge tags never change. *)
module Subst_tbl = Hashtbl.Make (struct
  type t = Repr.t option array

  let equal = ( == )

  let hash (a : t) =
    let n = Array.length a in
    let h = ref (n * 0x9e3779b1) in
    for i = 0 to min (n - 1) 7 do
      let v = match a.(i) with None -> -1 | Some e -> Repr.tag e in
      h := (!h * 0x85ebca6b) lxor v
    done;
    !h land max_int
end)

type t = {
  unique : Unique.t;
  computed : Computed.t;
  mutable next_id : int;
  mutable nvars : int;
  mutable names : string array;
  mutable created : int;        (* total nodes ever interned *)
  mutable steps : int;          (* non-cached recursion steps, all ops *)
  mutable peak_live : int;
  varsets : (int list, varset) Hashtbl.t;
  mutable next_vid : int;
  perms : (int array, int) Hashtbl.t; (* interned renamings *)
  mutable next_perm_id : int;
  stat_ite : cstat;
  stat_and_exists : cstat;
  stat_exists : cstat;
  stat_restrict : cstat;
  stat_constrain : cstat;
  stat_cofactor : cstat;
  stat_rename : cstat;
  stat_vcompose : cstat;
  mutable gc_events : int;      (* cache trims + explicit gc calls *)
  vcomposes : int Subst_tbl.t;
  mutable next_vcompose_id : int;
  mutable cache_entries_budget : int;
  mutable progress_hook : (t -> unit) option;
  mutable fault_hook : (t -> unit) option;
}

let fresh_cstat () = { hits = 0; misses = 0 }

let create ?(cache_budget = 2_000_000) () =
  {
    unique = Unique.create (1 lsl 14);
    computed = Computed.create ~budget:cache_budget;
    next_id = 1;
    nvars = 0;
    names = [||];
    created = 0;
    steps = 0;
    peak_live = 0;
    varsets = Hashtbl.create 16;
    next_vid = 0;
    perms = Hashtbl.create 16;
    next_perm_id = 0;
    stat_ite = fresh_cstat ();
    stat_and_exists = fresh_cstat ();
    stat_exists = fresh_cstat ();
    stat_restrict = fresh_cstat ();
    stat_constrain = fresh_cstat ();
    stat_cofactor = fresh_cstat ();
    stat_rename = fresh_cstat ();
    stat_vcompose = fresh_cstat ();
    gc_events = 0;
    vcomposes = Subst_tbl.create 16;
    next_vcompose_id = 0;
    cache_entries_budget = cache_budget;
    progress_hook = None;
    fault_hook = None;
  }

(* O(1) invalidation of all memo state (generation bump).  Result
   references stay resident until overwritten; use [gc] to release
   them so the weak unique table can collect. *)
let clear_caches man = Computed.trim man.computed

(* With the lossy computed table the budget is enforced structurally
   (the table never grows past the power of two at or below the
   budget), so the old drop-everything-and-Gc.major path is gone: an
   over-budget occupancy -- only possible after shrinking the budget of
   a live manager -- costs a generation bump, counted like the cache
   drops it replaced via [gc_events]. *)
let maybe_trim_caches man =
  if Computed.occupied man.computed > man.cache_entries_budget then begin
    man.gc_events <- man.gc_events + 1;
    Computed.trim man.computed
  end

(* Bump the operation-step counter; drives the progress hook at the
   same cadence as node creation so budgets also catch computations
   that churn without creating nodes (pure cache-hit avalanches). *)
let tick man =
  man.steps <- man.steps + 1;
  (match man.fault_hook with None -> () | Some hook -> hook man);
  if man.steps land 0xFFFF = 0 then
    match man.progress_hook with None -> () | Some hook -> hook man

let steps man = man.steps

(* O(1): the unique table maintains the counter.  Between [gc] sweeps
   it is an upper bound (nodes not yet observed dead are counted). *)
let live_nodes man =
  let live = Unique.live man.unique in
  if live > man.peak_live then man.peak_live <- live;
  live

let created_nodes man = man.created
let num_vars man = man.nvars

let gc man =
  man.gc_events <- man.gc_events + 1;
  Computed.clear man.computed;
  Gc.full_major ();
  Unique.sweep man.unique

let gc_events man = man.gc_events

(* Hot-path cache accounting; callers touch these on every memo-cache
   lookup, so they are bare stores. *)
let hit s = s.hits <- s.hits + 1
let miss s = s.misses <- s.misses + 1

(* (name, hits, misses) per memoised operator, fixed order. *)
let cache_stats man =
  [
    ("ite", man.stat_ite.hits, man.stat_ite.misses);
    ("and_exists", man.stat_and_exists.hits, man.stat_and_exists.misses);
    ("exists", man.stat_exists.hits, man.stat_exists.misses);
    ("restrict", man.stat_restrict.hits, man.stat_restrict.misses);
    ("constrain", man.stat_constrain.hits, man.stat_constrain.misses);
    ("cofactor", man.stat_cofactor.hits, man.stat_cofactor.misses);
    ("rename", man.stat_rename.hits, man.stat_rename.misses);
    ("vcompose", man.stat_vcompose.hits, man.stat_vcompose.misses);
  ]

let computed_table_stats man = Computed.stats man.computed
let unique_table_stats man = Unique.stats man.unique

(* Interning. [hi] must be a regular (uncomplemented) reference. *)
let intern man lvl lo lo_neg hi =
  let probe =
    { Repr.id = man.next_id; level = lvl; low = lo; low_neg = lo_neg;
      high = hi }
  in
  let found = Unique.merge man.unique probe in
  if found == probe then begin
    man.next_id <- man.next_id + 1;
    man.created <- man.created + 1;
    (match man.fault_hook with None -> () | Some hook -> hook man);
    (* The live counter is O(1), so the peak is seeded on every
       creation (short runs no longer report a peak of 0); the 64K
       cadence below only drives the progress hook (resource-limit
       checks that can interrupt a blown-up operation) and the budget
       check. *)
    let live = Unique.live man.unique in
    if live > man.peak_live then man.peak_live <- live;
    if man.created land 0xFFFF = 0 then begin
      maybe_trim_caches man;
      match man.progress_hook with None -> () | Some hook -> hook man
    end
  end;
  found

(* The canonicity rule for complement edges: if the THEN edge would be
   complemented, build the complemented node instead and return a
   complemented edge to it (node(v,l,h) = not node(v, not l, not h)). *)
let rec mk man lvl ~low ~high =
  if Repr.equal low high then low
  else if high.Repr.neg then
    Repr.neg (mk man lvl ~low:(Repr.neg low) ~high:(Repr.neg high))
  else begin
    assert (lvl < low.Repr.node.level && lvl < high.Repr.node.level);
    { Repr.node = intern man lvl low.Repr.node low.Repr.neg high.Repr.node;
      neg = false }
  end

(* [names] is a growable array: [nvars] is the logical length, the rest
   is spare capacity doubled on demand (wide models allocate thousands
   of variables, so per-variable reallocation would be quadratic). *)
let new_var ?name man =
  let lvl = man.nvars in
  man.nvars <- man.nvars + 1;
  let label = match name with Some s -> s | None -> Printf.sprintf "v%d" lvl in
  if man.nvars > Array.length man.names then begin
    let grown = Array.make (max 16 (2 * Array.length man.names)) "" in
    Array.blit man.names 0 grown 0 (Array.length man.names);
    man.names <- grown
  end;
  man.names.(lvl) <- label;
  lvl

let var_name man lvl =
  if lvl >= 0 && lvl < man.nvars then man.names.(lvl)
  else Printf.sprintf "v%d" lvl

(* The BDD for a single variable / its negation. *)
let var man lvl =
  assert (lvl >= 0 && lvl < man.nvars);
  mk man lvl ~low:Repr.fls ~high:Repr.tru

let nvar man lvl = Repr.neg (var man lvl)

let varset man levels =
  let levels = List.sort_uniq compare levels in
  match Hashtbl.find_opt man.varsets levels with
  | Some vs -> vs
  | None ->
    let arr = Array.of_list levels in
    let width = man.nvars in
    let member = Array.make (max width 1) false in
    Array.iter (fun l -> member.(l) <- true) arr;
    let vs = { vid = man.next_vid; levels = arr; member } in
    man.next_vid <- man.next_vid + 1;
    Hashtbl.add man.varsets levels vs;
    vs

let varset_mem vs lvl = lvl < Array.length vs.member && vs.member.(lvl)

let varset_max vs =
  let n = Array.length vs.levels in
  if n = 0 then -1 else vs.levels.(n - 1)

(* Intern a renaming permutation so it can serve as a memo key
   (structural hashing: int arrays hash and compare by contents). *)
let perm_id man perm =
  match Hashtbl.find_opt man.perms perm with
  | Some id -> id
  | None ->
    let id = man.next_perm_id in
    man.next_perm_id <- man.next_perm_id + 1;
    Hashtbl.add man.perms (Array.copy perm) id;
    id

let set_progress_hook man hook = man.progress_hook <- hook
let progress_hook man = man.progress_hook

(* Unlike the (sampled) progress hook, the fault hook is consulted on
   every recursion step and every node creation, so a hook keyed on
   [created] or [steps] fires at an exact, reproducible point.  Used by
   the resilience tests to inject deterministic budget blowups. *)
let set_fault_hook man hook = man.fault_hook <- hook

(* Intern a simultaneous-substitution vector (compared physically: the
   caller keeps the array alive -- and unmutated -- for the duration of
   its use). *)
let vcompose_id man subst =
  match Subst_tbl.find_opt man.vcomposes subst with
  | Some id -> id
  | None ->
    let id = man.next_vcompose_id in
    man.next_vcompose_id <- man.next_vcompose_id + 1;
    Subst_tbl.add man.vcomposes subst id;
    id

exception Node_budget_exhausted

(* Run [f] with an additional (chained) progress hook that aborts once
   more than [max_new_nodes] nodes have been created or [max_steps]
   non-cached recursion steps have run; [None] on abort.  Budgets below
   the 64K sampling cadence fire late, so use generous budgets.  Any
   hook installed by an enclosing guard keeps running. *)
let with_node_budget ?(max_steps = max_int) man ~max_new_nodes f =
  let baseline = man.created in
  let step_baseline = man.steps in
  let old = man.progress_hook in
  let hook m =
    (match old with Some h -> h m | None -> ());
    if
      m.created - baseline > max_new_nodes
      || m.steps - step_baseline > max_steps
    then raise Node_budget_exhausted
  in
  man.progress_hook <- Some hook;
  Fun.protect
    ~finally:(fun () -> man.progress_hook <- old)
    (fun () -> try Some (f ()) with Node_budget_exhausted -> None)
