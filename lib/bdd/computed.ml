(* The computed table: one lossy, open-addressed, direct-mapped cache
   shared by every memoised operator (CUDD-style), replacing the eight
   per-operator polymorphic [Hashtbl]s.

   Layout: a flat [int array] of packed keys (stride 4 per slot:
   op-tag word, then the three operand ints) plus a parallel [Repr.t]
   array of results.  A lookup hashes the four key ints to a single
   slot and compares four words; a store overwrites whatever lives
   there (eviction-on-collision).  Nothing is boxed on either path, so
   a hit costs four loads and four compares and a miss allocates
   nothing -- correctness never depends on residency because a missed
   entry is merely recomputed, and canonical hash-consing makes the
   recomputed result physically identical.

   Sizing is power-of-two with occupancy-driven doubling (when more
   than half the slots are filled) up to a cap derived from the
   manager's [cache_budget].  Invalidation ("trim") is a generation
   bump: the current generation is packed into the op-tag word, so all
   resident entries silently stop matching in O(1).  A trim does NOT
   release the result edges; [clear] does (used by [Bdd.gc] so the
   weak unique table can actually collect). *)

(* Operator tags, packed into the low bits of the tag word.  Must stay
   below [ops_width]. *)
let op_ite = 0
let op_band = 1 (* bounded conjunction; shares the "ite" hit/miss stats *)
let op_exists = 2
let op_and_exists = 3
let op_restrict = 4
let op_constrain = 5
let op_cofactor = 6
let op_rename = 7
let op_vcompose = 8

let ops_bits = 5 (* up to 32 distinct operator tags *)

type t = {
  mutable keys : int array; (* stride 4: [tagword; a; b; c] *)
  mutable vals : Repr.t array;
  mutable mask : int; (* slots - 1; slots is a power of two *)
  mutable occupied : int; (* slots holding any entry (any generation) *)
  mutable generation : int;
  max_slots : int;
  (* table-level counters, exported via [stats] *)
  mutable evictions : int;
  mutable resizes : int;
  mutable trims : int;
}

(* The lookup-miss sentinel: a physically unique edge, distinguishable
   from every genuine result (including the constants) by [==] alone,
   so [find] needs no [option] box. *)
let absent : Repr.t = { Repr.node = Repr.terminal_node; neg = false }

let floor_pow2 n =
  let rec go p = if p * 2 <= n then go (p * 2) else p in
  go 1

let create ~budget =
  let max_slots = floor_pow2 (max budget 64) in
  let slots = min 8192 max_slots in
  {
    keys = Array.make (slots * 4) (-1);
    vals = Array.make slots absent;
    mask = slots - 1;
    occupied = 0;
    generation = 0;
    max_slots;
    evictions = 0;
    resizes = 0;
    trims = 0;
  }

let slots t = t.mask + 1
let occupied t = t.occupied

(* Mixing the four key ints down to a slot index.  The constants are
   the usual 32-bit avalanche multipliers; quality only affects the
   eviction rate, never correctness. *)
let[@inline] index t op a b c =
  let h = (a * 0x9e3779b1) lxor (b * 0x85ebca6b) in
  let h = (h lxor (c * 0xc2b2ae35)) lxor op in
  (h lxor (h lsr 17)) land t.mask

let[@inline] tagword t op = (t.generation lsl ops_bits) lor op

let[@inline] find t op a b c =
  let i = index t op a b c in
  let k = i lsl 2 in
  let keys = t.keys in
  if
    keys.(k) = tagword t op
    && keys.(k + 1) = a
    && keys.(k + 2) = b
    && keys.(k + 3) = c
  then t.vals.(i)
  else absent

(* Grow to [slots * 2], re-inserting only current-generation entries
   (stale ones are dropped, which also releases their result edges). *)
let resize t =
  let old_keys = t.keys and old_vals = t.vals in
  let old_slots = t.mask + 1 in
  let slots = old_slots * 2 in
  t.keys <- Array.make (slots * 4) (-1);
  t.vals <- Array.make slots absent;
  t.mask <- slots - 1;
  t.occupied <- 0;
  t.resizes <- t.resizes + 1;
  let gen_floor = t.generation lsl ops_bits in
  for i = 0 to old_slots - 1 do
    let k = i lsl 2 in
    let w = old_keys.(k) in
    if w >= gen_floor then begin
      (* current generation: reinsert (still direct-mapped, so a
         same-slot pair after rehash keeps only the later one) *)
      let a = old_keys.(k + 1)
      and b = old_keys.(k + 2)
      and c = old_keys.(k + 3) in
      let j = index t (w - gen_floor) a b c in
      let jk = j lsl 2 in
      if t.keys.(jk) = -1 then t.occupied <- t.occupied + 1;
      t.keys.(jk) <- w;
      t.keys.(jk + 1) <- a;
      t.keys.(jk + 2) <- b;
      t.keys.(jk + 3) <- c;
      t.vals.(j) <- old_vals.(i)
    end
  done

let store t op a b c r =
  if t.occupied * 2 > t.mask + 1 && t.mask + 1 < t.max_slots then resize t;
  let i = index t op a b c in
  let k = i lsl 2 in
  let keys = t.keys in
  let w = tagword t op in
  let old = keys.(k) in
  if old = -1 then t.occupied <- t.occupied + 1
  else if
    not (old = w && keys.(k + 1) = a && keys.(k + 2) = b && keys.(k + 3) = c)
  then t.evictions <- t.evictions + 1;
  keys.(k) <- w;
  keys.(k + 1) <- a;
  keys.(k + 2) <- b;
  keys.(k + 3) <- c;
  t.vals.(i) <- r

(* O(1) invalidation: every resident entry's tag word now belongs to a
   dead generation and can never match again.  Result edges stay
   referenced until overwritten or [clear]ed. *)
let trim t =
  t.generation <- t.generation + 1;
  t.trims <- t.trims + 1

(* Deep clear: invalidate AND drop every reference, so the weak unique
   table can collect dead nodes at the next major GC. *)
let clear t =
  t.generation <- t.generation + 1;
  t.occupied <- 0;
  Array.fill t.keys 0 (Array.length t.keys) (-1);
  Array.fill t.vals 0 (Array.length t.vals) absent

let stats t =
  [
    ("slots", t.mask + 1);
    ("occupied", t.occupied);
    ("evictions", t.evictions);
    ("resizes", t.resizes);
    ("trims", t.trims);
  ]
