(* Public facade of the BDD package; see bdd.mli for documentation. *)

type t = Repr.t
type man = Man.t
type varset = Man.varset

let create = Man.create
let tru _ = Repr.tru
let fls _ = Repr.fls
let of_bool _ b = Repr.of_bool b
let is_true = Repr.is_true
let is_false = Repr.is_false
let is_const = Repr.is_const
let equal = Repr.equal
let tag = Repr.tag
let level = Repr.level
let compare a b = compare (Repr.tag a) (Repr.tag b)
let hash = Repr.tag

let new_var = Man.new_var
let var = Man.var
let nvar = Man.nvar
let var_name = Man.var_name
let num_vars = Man.num_vars
let mk = Man.mk
let cofactors = Repr.cofactors

let bnot _ f = Repr.neg f
let ite = Ops.ite
let band = Ops.band
let band_bounded = Ops.band_bounded
let bor = Ops.bor
let bxor = Ops.bxor
let biff = Ops.biff
let bimp = Ops.bimp
let bnand = Ops.bnand
let bnor = Ops.bnor
let conj = Ops.conj
let disj = Ops.disj
let implies = Ops.implies
let cofactor = Ops.cofactor
let compose = Ops.compose
let vector_compose = Ops.vector_compose

let varset = Man.varset
let varset_levels (vs : varset) = Array.to_list vs.levels
let exists = Quant.exists
let forall = Quant.forall
let and_exists = Quant.and_exists

let rename = Rename.rename

exception Not_monotone = Rename.Not_monotone

let restrict = Simplify.restrict
let multi_restrict = Simplify.multi_restrict
let constrain = Simplify.constrain

let size = Size.size
let size_list = Size.size_list
let support = Size.support
let support_list = Size.support_list
let sat_count = Size.sat_count
let eval _ env f = Size.eval env f
let pick_minterm _ ~vars f = Size.pick_minterm ~vars f

let live_nodes = Man.live_nodes
let created_nodes = Man.created_nodes
let peak_live_nodes (man : man) = man.Man.peak_live
let cache_stats = Man.cache_stats
let computed_table_stats = Man.computed_table_stats
let unique_table_stats = Man.unique_table_stats
let gc_events = Man.gc_events
let clear_caches = Man.clear_caches
let gc = Man.gc
let set_progress_hook = Man.set_progress_hook
let progress_hook = Man.progress_hook
let set_fault_hook = Man.set_fault_hook
let with_node_budget = Man.with_node_budget

exception Node_budget_exhausted = Man.Node_budget_exhausted
let steps = Man.steps

module Dot = Dot

module Serialize = struct
  let to_channel = Serialize.write
  let of_channel ?map man ic = Serialize.read ?map man ic
  let to_file = Serialize.to_file
  let of_file = Serialize.of_file
  let to_string = Serialize.to_string
  let of_string ?map man s = Serialize.of_string ?map man s

  exception Parse_error = Serialize.Parse_error
end

module Reorder = struct
  let transfer ~dst ~perm roots = Reorder.transfer ~dst ~perm roots
  let greedy_adjacent = Reorder.greedy_adjacent
  let sift = Reorder.sift
  let apply = Reorder.apply
end

module Computed_table = struct
  type table = Computed.t

  let create = Computed.create
  let absent = Computed.absent
  let find = Computed.find
  let store = Computed.store
  let trim = Computed.trim
  let clear = Computed.clear
  let slots = Computed.slots
  let occupied = Computed.occupied
  let stats = Computed.stats
end

let cubes = Cubes.cubes
let minterms _ ~vars f = Cubes.minterms ~vars f
let count_cubes = Cubes.count_cubes

let pp man fmt f =
  (* Small printer: sum-of-paths up to a budget, else just the size. *)
  if Repr.is_true f then Format.fprintf fmt "true"
  else if Repr.is_false f then Format.fprintf fmt "false"
  else begin
    let sz = Size.size f in
    if sz > 40 then Format.fprintf fmt "<bdd:%d nodes>" sz
    else begin
      let first = ref true in
      let rec paths prefix e =
        if Repr.is_true e then begin
          if not !first then Format.fprintf fmt " | ";
          first := false;
          if prefix = [] then Format.fprintf fmt "T"
          else
            List.iter
              (fun (v, b) ->
                Format.fprintf fmt "%s%s" (if b then "" else "~")
                  (Man.var_name man v))
              (List.rev prefix)
        end
        else if Repr.is_false e then ()
        else begin
          let v = Repr.level e in
          let e0, e1 = Repr.cofactors e v in
          paths ((v, false) :: prefix) e0;
          paths ((v, true) :: prefix) e1
        end
      in
      paths [] f
    end
  end
