(* Partitioned transition relations and the image operators of the
   paper's Section II (Definition 1).

   The machine is deterministic given its inputs: every state bit b has
   exactly one next-state function f_b over current-state and input
   levels, giving the conjunct (b' <-> f_b).  Nondeterminism comes from
   free input variables, optionally restricted by an input constraint
   C(state, inputs); C must leave at least one legal input in every
   state for the transition relation to be total (checked by
   [is_total]).

   Images never build the monolithic relation: they interleave
   conjunction with existential quantification (early quantification in
   the style of Burch-Clarke-Long), quantifying each variable right
   after the last conjunct mentioning it. *)

type conjunct = {
  relation : Bdd.t; (* next <-> f, or an extra relational constraint *)
  supp : int list;
}

type t = {
  space : Space.t;
  assigns : (Space.bit * Bdd.t) list; (* per-bit next-state functions *)
  conjuncts : conjunct list; (* in quantification-schedule order *)
  input_constraint : Bdd.t;
  forward_quant : Bdd.varset; (* current-state + input levels *)
  backward_quant : Bdd.varset; (* next-state + input levels *)
  input_quant : Bdd.varset;
  subst : Bdd.t option array; (* cur level -> its next-state function *)
  next_to_cur : int array;
  cur_to_next : int array;
}

type image_via = [ `Auto | `Compose | `Relational ]

let space t = t.space
let man t = Space.man t.space
let assigns t = t.assigns

let make ?input_constraint space ~assigns =
  let man = Space.man space in
  let declared = Space.state_bits space in
  let assigned = List.map (fun (b, _) -> b) assigns in
  if List.length declared <> List.length assigns
     || not (List.for_all (fun b -> List.memq b assigned) declared)
  then
    invalid_arg
      "Trans.make: every declared state bit needs exactly one next-state \
       function";
  let conjuncts =
    List.map
      (fun ((b : Space.bit), f) ->
        let relation = Bdd.biff man (Bdd.var man b.Space.next) f in
        { relation; supp = Bdd.support relation })
      assigns
  in
  let input_constraint =
    match input_constraint with None -> Bdd.tru man | Some c -> c
  in
  let subst = Array.make (max 1 (Bdd.num_vars man)) None in
  List.iter
    (fun ((b : Space.bit), f) -> subst.(b.Space.cur) <- Some f)
    assigns;
  {
    space;
    assigns;
    conjuncts;
    input_constraint;
    forward_quant =
      Bdd.varset man (Space.current_levels space @ Space.input_levels space);
    backward_quant =
      Bdd.varset man (Space.next_levels space @ Space.input_levels space);
    input_quant = Bdd.varset man (Space.input_levels space);
    subst;
    next_to_cur = Space.next_to_cur_perm space;
    cur_to_next = Space.cur_to_next_perm space;
  }

(* Conjoin [parts] with the transition conjuncts, existentially
   quantifying every level of [quant] as soon as no remaining conjunct
   mentions it. *)
let relational_product man ~quant ~conjuncts parts =
  let quantifiable = Hashtbl.create 64 in
  List.iter (fun l -> Hashtbl.replace quantifiable l 0) (Bdd.varset_levels quant);
  (* Last conjunct index (1-based) mentioning each quantifiable level. *)
  List.iteri
    (fun j c ->
      List.iter
        (fun l ->
          if Hashtbl.mem quantifiable l then Hashtbl.replace quantifiable l (j + 1))
        c.supp)
    conjuncts;
  let levels_due j =
    Hashtbl.fold (fun l last acc -> if last = j then l :: acc else acc)
      quantifiable []
  in
  let base = Bdd.conj man parts in
  let acc = ref (Bdd.exists man (Bdd.varset man (levels_due 0)) base) in
  List.iteri
    (fun j c ->
      let vs = Bdd.varset man (levels_due (j + 1)) in
      acc := Bdd.and_exists man vs !acc c.relation)
    conjuncts;
  !acc

(* [extra] lets callers conjoin additional constraints over current-state
   variables into the quantification schedule without ever building the
   full conjunction -- the functional-dependency method feeds its
   dependency relations (v <-> f_v) through here. *)
let image ?(extra = []) t z =
  let man = man t in
  let extra_conjuncts =
    List.map (fun f -> { relation = f; supp = Bdd.support f }) extra
  in
  let shifted =
    relational_product man ~quant:t.forward_quant
      ~conjuncts:(extra_conjuncts @ t.conjuncts)
      [ z; t.input_constraint ]
  in
  Bdd.rename man t.next_to_cur shifted

(* PreImage.  The [`Compose] path substitutes the next-state functions
   directly into Z ([Bdd.vector_compose]) and quantifies the inputs:
   PreImage(delta, Z) = exists inp [C /\ Z(f(s, inp))].  The
   [`Relational] path runs the early-quantification relational product.
   Neither dominates (composition wins on control-heavy machines,
   early quantification on wide-datapath sums), so the default [`Auto]
   tries composition under a node budget and falls back; all paths
   compute the same set (tested against each other and against
   explicit-state enumeration). *)
let pre_image_compose t z =
  let man = man t in
  let zf = Bdd.vector_compose man t.subst z in
  Bdd.and_exists man t.input_quant t.input_constraint zf

let pre_image_relational t z =
  let man = man t in
  let z' = Bdd.rename man t.cur_to_next z in
  (* Only the conjuncts for bits in the support of [z'] matter: the
     machine is deterministic and total per bit, so for any other bit
     exists n_i (n_i <-> f_i) is TRUE and the conjunct drops out.  This
     is what makes BackImage of a small conjunct cheap (Theorem 1's
     whole point). *)
  let support = Bdd.support z' in
  let conjuncts =
    (* assigns and conjuncts were built in the same order *)
    List.filter_map
      (fun (((b : Space.bit), _), c) ->
        if List.mem b.Space.next support then Some c else None)
      (List.combine t.assigns t.conjuncts)
  in
  relational_product man ~quant:t.backward_quant ~conjuncts
    [ z'; t.input_constraint ]

let pre_image ?(via = `Auto) t z =
  match via with
  | `Compose -> pre_image_compose t z
  | `Relational -> pre_image_relational t z
  | `Auto ->
    let node_budget = 1_000_000 + (64 * Bdd.size z) in
    let step_budget = 4_000_000 + (256 * Bdd.size z) in
    (match
       Bdd.with_node_budget (man t) ~max_new_nodes:node_budget
         ~max_steps:step_budget (fun () -> pre_image_compose t z)
     with
    | Some r -> r
    | None -> pre_image_relational t z)

(* BackImage(delta, Z) = not PreImage(delta, not Z): the states all of
   whose successors lie in Z (Definition 1 / Theorem 1 of the paper). *)
let back_image ?via t z =
  Bdd.bnot (man t) (pre_image ?via t (Bdd.bnot (man t) z))

(* Totality: every state admits at least one legal input.  Necessary for
   the PreImage/BackImage duality to mean what the paper intends. *)
let is_total t =
  let man = man t in
  let inputs = Bdd.varset man (Space.input_levels t.space) in
  Bdd.is_true (Bdd.exists man inputs t.input_constraint)

(* Successors of one concrete state: used for counterexample traces. *)
let successors_of_state t env =
  let man = man t in
  let cube =
    Bdd.conj man
      (List.map
         (fun l -> if env.(l) then Bdd.var man l else Bdd.nvar man l)
         (Space.current_levels t.space))
  in
  image t cube

let input_constraint t = t.input_constraint

(* Concrete simulation against the same next-state functions the
   symbolic images use: lets test suites and applications cross-check
   symbolic results against hand-written reference models. *)
let legal_input t env = Bdd.eval (man t) env t.input_constraint

let step t env =
  assert (legal_input t env);
  let man = man t in
  let env' = Array.copy env in
  List.iter
    (fun ((b : Space.bit), f) -> env'.(b.Space.cur) <- Bdd.eval man env f)
    t.assigns;
  (* Inputs and next-levels are dead in the successor assignment. *)
  List.iter (fun l -> env'.(l) <- false) (Space.input_levels t.space);
  env'
