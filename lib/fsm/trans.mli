(** Partitioned transition relations and image operators.

    A machine is specified by one next-state function per state bit
    (over current-state and input levels) plus an optional input
    constraint.  The monolithic transition relation is never built:
    [image] and [pre_image] interleave conjunction with early
    existential quantification; [back_image] is the universal image of
    the paper's Definition 1, computed as [not (pre_image (not z))]. *)

type t

val make :
  ?input_constraint:Bdd.t ->
  Space.t ->
  assigns:(Space.bit * Bdd.t) list ->
  t
(** Build a transition relation.  Every declared state bit must receive
    exactly one next-state function; raises [Invalid_argument]
    otherwise.  [input_constraint] restricts the legal inputs per state
    (default: true). *)

val space : t -> Space.t
val man : t -> Bdd.man

val assigns : t -> (Space.bit * Bdd.t) list
(** The per-bit next-state functions the relation was built from, in
    the order they were given to {!make} (used to reconstruct the
    machine in another manager). *)

val image : ?extra:Bdd.t list -> t -> Bdd.t -> Bdd.t
(** States reachable in one transition from [z].  [extra] conjoins
    further constraints on the source states into the quantification
    schedule without materialising the conjunction (used by the
    functional-dependency method). *)

type image_via = [ `Auto | `Compose | `Relational ]
(** Backward-image computation method: substitute the next-state
    functions into the target ([`Compose]) or run the
    early-quantification relational product ([`Relational]).  Neither
    dominates, so the default [`Auto] races composition under a node
    budget and falls back to the relational product; the ablation
    benchmark compares all three. *)

val pre_image : ?via:image_via -> t -> Bdd.t -> Bdd.t
(** States with at least one successor in [z]. *)

val back_image : ?via:image_via -> t -> Bdd.t -> Bdd.t
(** States all of whose successors are in [z]. *)

val is_total : t -> bool
(** Whether every state admits a legal input (required for the
    [back_image]/[pre_image] duality to be meaningful). *)

val successors_of_state : t -> bool array -> Bdd.t
(** Image of a single concrete state (assignment indexed by level);
    used when extracting counterexample traces. *)

val input_constraint : t -> Bdd.t

val legal_input : t -> bool array -> bool
(** Does the assignment (current-state + input levels) satisfy the
    input constraint? *)

val step : t -> bool array -> bool array
(** Concrete simulation step: evaluate every next-state function under
    the given current-state + input assignment and return the successor
    state (input levels cleared).  The assignment must be legal. *)
