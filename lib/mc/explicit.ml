(* Explicit-state verification: breadth-first search over concrete
   states stored in a hash table.

   This is the brute-force baseline of the paper's introduction ("a
   brute-force approach that stores states explicitly in a hash table
   [13] has generally out-performed BDD-based approaches" on industrial
   examples) -- the Murphi-style approach of Dill, Drexler, Hu and
   Yang.  It runs on the same machines as the symbolic methods, using
   [Fsm.Trans.step] over an enumeration of the legal inputs, so it both
   serves as a baseline in benchmarks and cross-checks the symbolic
   engines on models whose reachable state count is tractable.

   States are packed into byte strings (one bit per state bit) for
   compact hashing.  The input space is enumerated exhaustively per
   state, so the method suits models with few input bits; the [Limits]
   budgets guard the rest.  The report's "iterations" is the BFS depth
   reached, comparable to the symbolic methods' iteration counts. *)

type packed = Bytes.t

let pack levels env =
  let n = List.length levels in
  let b = Bytes.make ((n + 7) / 8) '\000' in
  List.iteri
    (fun i l ->
      if env.(l) then
        Bytes.set b (i / 8)
          (Char.chr (Char.code (Bytes.get b (i / 8)) lor (1 lsl (i mod 8)))))
    levels;
  b

let unpack levels ~size packed =
  let env = Array.make size false in
  List.iteri
    (fun i l ->
      env.(l) <-
        Char.code (Bytes.get packed (i / 8)) land (1 lsl (i mod 8)) <> 0)
    levels;
  env

let run_full ?(limits = fun man -> Limits.unlimited man) model =
  let man = Model.man model in
  let trans = model.Model.trans in
  let space = Fsm.Trans.space trans in
  let levels = Fsm.Space.current_levels space in
  let inputs = Fsm.Space.input_levels space in
  let property = Ici.Clist.of_list man (Model.property model) in
  let lim = limits man in
  let baseline = Bdd.created_nodes man in
  let peak = Report.fresh_peak () in
  let depth_reached = ref 0 in
  let size = max 1 (Bdd.num_vars man) in
  let seen : (packed, packed option) Hashtbl.t = Hashtbl.create 4096 in
  let finish status =
    ( Report.make ~model:model.Model.name ~method_name:"Expl" ~status
        ~iterations:!depth_reached ~peak ~man ~baseline
        ~time_s:(Limits.elapsed lim),
      Hashtbl.length seen )
  in
  let queue = Queue.create () in
  let n_inputs = List.length inputs in
  let trace_from packed_state =
    let rec back p acc =
      match Hashtbl.find_opt seen p with
      | Some (Some pred) -> back pred (unpack levels ~size p :: acc)
      | Some None | None -> unpack levels ~size p :: acc
    in
    back packed_state []
  in
  Limits.with_guard lim man (fun () ->
      try
        Seq.iter
          (fun env ->
            let p = pack levels env in
            if not (Hashtbl.mem seen p) then begin
              Hashtbl.replace seen p None;
              Queue.add (p, 0) queue
            end)
          (Bdd.minterms man ~vars:levels model.Model.init);
        let result = ref None in
        let checked = ref 0 in
        while !result = None && not (Queue.is_empty queue) do
          incr checked;
          if !checked land 0xFFF = 0 then Limits.check lim man;
          let p, depth = Queue.pop queue in
          if depth > !depth_reached then depth_reached := depth;
          let env = unpack levels ~size p in
          if not (Ici.Clist.eval man env property) then
            result := Some (Report.Violated (trace_from p))
          else
            for inp = 0 to (1 lsl n_inputs) - 1 do
              List.iteri
                (fun i l -> env.(l) <- (inp lsr i) land 1 = 1)
                inputs;
              if Fsm.Trans.legal_input trans env then begin
                let succ = Fsm.Trans.step trans env in
                let ps = pack levels succ in
                if not (Hashtbl.mem seen ps) then begin
                  Hashtbl.replace seen ps (Some p);
                  Queue.add (ps, depth + 1) queue
                end
              end
            done
        done;
        Log.iteration ~meth:"Expl" ~iteration:!depth_reached
          ~conjuncts:(Hashtbl.length seen) ~nodes:0
          ~elapsed_s:(Limits.elapsed lim) ~live_nodes:(Bdd.live_nodes man);
        match !result with
        | Some status -> finish status
        | None -> finish Report.Proved
      with Limits.Exceeded why -> finish (Report.Exceeded why))

let run ?limits model = fst (run_full ?limits model)
