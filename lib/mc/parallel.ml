(* Shared-nothing parallel verification on OCaml 5 domains.

   BDD managers are strictly single-domain (no locks anywhere near the
   unique/computed tables), so parallelism here never shares a manager:
   the model is FROZEN to an immutable string (declarations + one
   Bdd.Serialize block) and each worker domain THAWS its own private
   copy into a fresh manager.  Two modes:

   - [portfolio]: run N method/policy configurations concurrently; the
     first sound verdict (Proved/Violated) wins and the losers are
     cancelled through the existing fault-hook machinery (they raise
     [Limits.Exceeded "cancelled by portfolio"], which every method
     already converts into a clean Exceeded report).  All methods are
     sound, so whichever config wins the race carries the same verdict
     a sequential run would have produced.

   - [pair_evaluator]: the Figure-1 greedy conjunction evaluation fans
     its O(n^2) pairwise scoring out to scratch managers, one candidate
     list copy per worker per round, and ships only the winning pair's
     BDD back to the caller's manager.  Plugs into
     [Ici.Policy.improve]'s [evaluator] hook, so the XICI fixpoint
     itself stays sequential and deterministic. *)

exception Corrupt of string

let fail fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* --- model freeze / thaw --------------------------------------------- *)

(* The frozen form is one immutable string:

       frozen-model 1
       name <model name>
       decls <count>
       s <state bit name>          (one per declaration, in level order;
       i <input name>               a state bit owns levels L and L+1)
       counts <assigns> <good> <assisting>
       fd <level> ... <level>
       <Bdd.Serialize block: next-state functions (state-bit order),
        input constraint, init, good..., assisting...>

   Thawing replays the declarations into a fresh [Fsm.Space] -- in the
   same order, so every BDD lands on the same level it had -- then
   rebuilds the transition relation with [Fsm.Trans.make].  Strings are
   immutable, so a frozen model is safe to hand to any number of
   domains. *)
type frozen = string

let freeze (model : Model.t) : frozen =
  let sp = model.Model.space in
  let man = Model.man model in
  let trans = model.Model.trans in
  let bits = Fsm.Space.state_bits sp in
  let by_cur = Hashtbl.create 16 in
  List.iter
    (fun (bit : Fsm.Space.bit) -> Hashtbl.replace by_cur bit.Fsm.Space.cur bit)
    bits;
  let input_set = Hashtbl.create 16 in
  List.iter
    (fun l -> Hashtbl.replace input_set l ())
    (Fsm.Space.input_levels sp);
  let nvars = Bdd.num_vars man in
  let decls = Buffer.create 256 in
  let ndecls = ref 0 in
  let l = ref 0 in
  while !l < nvars do
    incr ndecls;
    match Hashtbl.find_opt by_cur !l with
    | Some (bit : Fsm.Space.bit) ->
      if bit.Fsm.Space.next <> !l + 1 then
        fail "freeze: state bit at level %d is not cur/next interleaved" !l;
      Buffer.add_string decls
        (Printf.sprintf "s %s\n" (Bdd.var_name man !l));
      l := !l + 2
    | None ->
      if not (Hashtbl.mem input_set !l) then
        fail "freeze: level %d is neither a state bit nor an input" !l;
      Buffer.add_string decls
        (Printf.sprintf "i %s\n" (Bdd.var_name man !l));
      incr l
  done;
  let assigns = Fsm.Trans.assigns trans in
  let fn_of (bit : Fsm.Space.bit) =
    match
      List.find_opt
        (fun ((a : Fsm.Space.bit), _) -> a.Fsm.Space.cur = bit.Fsm.Space.cur)
        assigns
    with
    | Some (_, f) -> f
    | None ->
      fail "freeze: state bit at level %d has no next-state function"
        bit.Fsm.Space.cur
  in
  let fns = List.map fn_of bits in
  let b = Buffer.create 4096 in
  Buffer.add_string b "frozen-model 1\n";
  Buffer.add_string b (Printf.sprintf "name %s\n" model.Model.name);
  Buffer.add_string b (Printf.sprintf "decls %d\n" !ndecls);
  Buffer.add_buffer b decls;
  Buffer.add_string b
    (Printf.sprintf "counts %d %d %d\n" (List.length fns)
       (List.length model.Model.good)
       (List.length model.Model.assisting));
  Buffer.add_string b
    (Printf.sprintf "fd %s\n"
       (String.concat " " (List.map string_of_int model.Model.fd_candidates)));
  let roots =
    fns
    @ [ Fsm.Trans.input_constraint trans; model.Model.init ]
    @ model.Model.good @ model.Model.assisting
  in
  Buffer.add_string b (Bdd.Serialize.to_string roots);
  Buffer.contents b

let int_field what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail "thaw: bad %s %S" what s

let rec take n xs =
  if n = 0 then ([], xs)
  else
    match xs with
    | [] -> fail "thaw: missing serialized roots"
    | x :: rest ->
      let front, back = take (n - 1) rest in
      (x :: front, back)

let thaw ?cache_budget ?on_manager (s : frozen) : Model.t =
  let pos = ref 0 in
  let len = String.length s in
  let next_line () =
    if !pos >= len then fail "thaw: truncated frozen model"
    else begin
      let nl = try String.index_from s !pos '\n' with Not_found -> len in
      let line = String.sub s !pos (nl - !pos) in
      pos := nl + 1;
      line
    end
  in
  let rest_after prefix line =
    let pl = String.length prefix in
    if String.length line > pl && String.sub line 0 pl = prefix then
      String.sub line pl (String.length line - pl)
    else fail "thaw: expected %S line, got %S" prefix line
  in
  (match next_line () with
  | "frozen-model 1" -> ()
  | l -> fail "thaw: bad header %S" l);
  let name = rest_after "name " (next_line ()) in
  let ndecls = int_field "decl count" (rest_after "decls " (next_line ())) in
  let sp = Fsm.Space.create ?cache_budget () in
  (* Hand the fresh manager to the caller before any reconstruction:
     rebuilding a large model (deserialize + transition relation) is
     real BDD work, and a supervised caller wants its liveness hooks
     beating during that stretch, not only once the run proper
     starts. *)
  (match on_manager with
  | Some f -> f (Fsm.Space.man sp)
  | None -> ());
  for _ = 1 to ndecls do
    let line = next_line () in
    if String.length line < 3 then fail "thaw: bad decl line %S" line;
    let bit_name = String.sub line 2 (String.length line - 2) in
    match (line.[0], line.[1]) with
    | 's', ' ' -> ignore (Fsm.Space.state_bit ~name:bit_name sp)
    | 'i', ' ' -> ignore (Fsm.Space.input_bit ~name:bit_name sp)
    | _ -> fail "thaw: bad decl line %S" line
  done;
  let n_fns, n_good, n_assisting =
    match
      String.split_on_char ' ' (rest_after "counts " (next_line ()))
    with
    | [ a; g; s ] ->
      ( int_field "assign count" a,
        int_field "good count" g,
        int_field "assisting count" s )
    | _ -> fail "thaw: bad counts line"
  in
  let fd_candidates =
    let line = next_line () in
    if line = "fd" || line = "fd " then []
    else
      List.map (int_field "fd level")
        (List.filter
           (fun f -> f <> "")
           (String.split_on_char ' ' (rest_after "fd " line)))
  in
  let man = Fsm.Space.man sp in
  let roots =
    try Bdd.Serialize.of_string man (String.sub s !pos (len - !pos))
    with Bdd.Serialize.Parse_error why -> fail "thaw: bad BDD block: %s" why
  in
  let bits = Fsm.Space.state_bits sp in
  if List.length bits <> n_fns then
    fail "thaw: %d state bits but %d next-state functions"
      (List.length bits) n_fns;
  let fns, rest = take n_fns roots in
  match rest with
  | input_constraint :: init :: rest ->
    let good, rest = take n_good rest in
    let assisting, rest = take n_assisting rest in
    if rest <> [] then fail "thaw: %d extra roots" (List.length rest);
    let trans =
      Fsm.Trans.make ~input_constraint sp ~assigns:(List.combine bits fns)
    in
    Model.make ~assisting ~fd_candidates ~name ~space:sp ~trans ~init ~good
      ()
  | _ -> fail "thaw: missing input constraint / init roots"

(* --- portfolio ------------------------------------------------------- *)

type config = {
  label : string;
  meth : Runner.meth;
  xici_cfg : Ici.Policy.config option;
  termination : Xici.termination option;
  var_choice : Ici.Tautology.var_choice option;
}

let config ?label ?xici_cfg ?termination ?var_choice meth =
  {
    label = (match label with Some l -> l | None -> Runner.name meth);
    meth;
    xici_cfg;
    termination;
    var_choice;
  }

(* Convergence-rate sensitivity is the whole premise of a portfolio:
   different policies/termination tests win on different models, so the
   default mixes the paper's XICI variants with the monolithic methods
   that beat it on small-reachable-set models. *)
let default_portfolio =
  [
    config Runner.Xici;
    config Runner.Backward;
    config ~label:"XICI-constrain"
      ~xici_cfg:{ Ici.Policy.default with Ici.Policy.simplifier = Ici.Policy.Constrain }
      Runner.Xici;
    config Runner.Fd;
    config ~label:"XICI-implication" ~termination:`Exact_implication
      Runner.Xici;
    config ~label:"XICI-lowest" ~var_choice:Ici.Tautology.Lowest_level
      Runner.Xici;
    config Runner.Forward;
    config ~label:"XICI-cover"
      ~xici_cfg:{ Ici.Policy.default with Ici.Policy.evaluation = Ici.Policy.Optimal_cover }
      Runner.Xici;
  ]

type result = {
  winner : (config * Report.t) option;
  reports : (config * Report.t) list;
  domains_used : int;
  wall_time_s : float;
}

let decided (r : Report.t) =
  match r.Report.status with
  | Report.Proved | Report.Violated _ -> true
  | Report.Exceeded _ -> false

module M = struct
  let reg = Obs.Registry.default
  let portfolio_runs = Obs.Registry.counter reg "parallel.portfolio_runs"
  let cancelled = Obs.Registry.counter reg "parallel.cancelled_configs"
  let crashed = Obs.Registry.counter reg "parallel.crashed_configs"
  let pair_rounds = Obs.Registry.counter reg "parallel.pair_rounds"
  let pairs_scored = Obs.Registry.counter reg "parallel.pairs_scored"
  let pair_merges = Obs.Registry.counter reg "parallel.pair_merges"
end

(* Join every domain even when one dies: a worker exception must not
   leak the others.  The first worker error is re-raised after the
   joins. *)
let join_all spawned =
  let outcomes = List.map Domain.join spawned in
  List.iter (function Error e -> raise e | Ok () -> ()) outcomes

let portfolio ?(domains = 2) ?(configs = default_portfolio) ?limits
    ?cache_budget ?should_cancel ?on_progress ?iter_sink model =
  if domains < 1 then invalid_arg "Parallel.portfolio: domains < 1";
  if configs = [] then invalid_arg "Parallel.portfolio: empty portfolio";
  Obs.Registry.incr M.portfolio_runs;
  let t0 = Monotonic.now () in
  (* The caller (e.g. a supervised pool worker) observes liveness
     through hooks on its own manager -- which this function never
     touches: all the work happens on private managers in child
     domains.  [should_cancel]/[on_progress]/[iter_sink] re-thread the
     caller's cancel signal and heartbeat into those domains, so a
     supervisor can both see a long portfolio run making progress and
     abort it. *)
  let externally_cancelled () =
    match should_cancel with Some f -> f () | None -> false
  in
  let frozen = freeze model in
  let arr = Array.of_list configs in
  let n = Array.length arr in
  let cancel = Atomic.make false in
  let next = Atomic.make 0 in
  let winner = Atomic.make (-1) in
  let results : Report.t option array = Array.make n None in
  let tracer = Obs.Tracer.global () in
  (* Tracer override and ambient attributes (e.g. a job's trace id) are
     domain-local, so child domains must re-install both — otherwise a
     supervised job's per-config spans would land on the process-wide
     tracer instead of the job's own trace. *)
  let span_attrs = Obs.Tracer.current_attrs () in
  let model_name = model.Model.name in
  (* An exception escaping one config -- a raising user hook, a thaw
     failure, an allocation blowup -- must lose that config, not tear
     the whole run down: the surviving configs are the robustness the
     portfolio exists to provide.  Anything that is not a clean budget
     abort becomes a structured per-config "worker crashed" report. *)
  let crash_report c why time_s =
    Obs.Registry.incr M.crashed;
    {
      Report.model = model_name;
      method_name = c.label;
      status = Report.Exceeded (Printf.sprintf "worker crashed: %s" why);
      iterations = 0;
      peak_set_nodes = 0;
      peak_conjuncts = [];
      nodes_created = 0;
      peak_live_nodes = 0;
      time_s;
    }
  in
  let abort_report c why time_s =
    {
      Report.model = model_name;
      method_name = c.label;
      status = Report.Exceeded why;
      iterations = 0;
      peak_set_nodes = 0;
      peak_conjuncts = [];
      nodes_created = 0;
      peak_live_nodes = 0;
      time_s;
    }
  in
  let run_config c =
    let t1 = Monotonic.now () in
    (* Hooks go onto the fresh manager before the model is rebuilt
       (via thaw's [on_manager]), so cancellation and heartbeats cover
       the thaw itself -- on a large model the rebuild is long enough
       to read as a hang otherwise.  The fault hook is consulted on
       every node creation, so a cancelled loser aborts within one BDD
       operation; the raise surfaces as a clean Exceeded report
       through the method's own Limits handling.  [Limits.with_guard]
       chains whatever progress hook is already installed, so
       per-config budgets keep working on top. *)
    let install man =
      Bdd.set_fault_hook man
        (Some
           (fun _ ->
             if Atomic.get cancel then
               raise (Limits.Exceeded "cancelled by portfolio");
             if externally_cancelled () then
               raise (Limits.Exceeded "cancelled")));
      match on_progress with
      | None -> ()
      | Some f ->
        Bdd.set_progress_hook man
          (Some (fun m -> f ~live:(Bdd.live_nodes m)))
    in
    match thaw ?cache_budget ~on_manager:install frozen with
    | exception Limits.Exceeded why ->
      (* Cancelled mid-thaw: an abort, not a crash. *)
      abort_report c why (Monotonic.now () -. t1)
    | exception e -> crash_report c (Printexc.to_string e) 0.0
    | m ->
      let man = Model.man m in
      let baseline = Bdd.created_nodes man in
      (try
         Obs.Tracer.with_span tracer ~cat:"parallel"
           ~args:(fun () -> [ ("config", Obs.Json.String c.label) ])
           "parallel.config"
           (fun () ->
             Runner.run ?limits ?xici_cfg:c.xici_cfg
               ?termination:c.termination ?var_choice:c.var_choice c.meth m)
       with
      | Limits.Exceeded why ->
        Report.make ~model:m.Model.name ~method_name:c.label
          ~status:(Report.Exceeded why) ~iterations:0
          ~peak:(Report.fresh_peak ()) ~man ~baseline
          ~time_s:(Monotonic.now () -. t1)
      | Bdd.Node_budget_exhausted ->
        Report.make ~model:m.Model.name ~method_name:c.label
          ~status:(Report.Exceeded "node budget exhausted") ~iterations:0
          ~peak:(Report.fresh_peak ()) ~man ~baseline
          ~time_s:(Monotonic.now () -. t1)
      | e -> crash_report c (Printexc.to_string e) (Monotonic.now () -. t1))
  in
  let worker () =
    (match iter_sink with
    | None -> ()
    | Some s -> Obs.Iterlog.set_sink (Some s));
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n && not (Atomic.get cancel) && not (externally_cancelled ())
      then begin
        let c = arr.(i) in
        let report = run_config c in
        let report = Report.relabel report ~method_name:c.label in
        results.(i) <- Some report;
        if decided report then begin
          if Atomic.compare_and_set winner (-1) i then Atomic.set cancel true
        end
        else if Atomic.get cancel then Obs.Registry.incr M.cancelled;
        loop ()
      end
    in
    Fun.protect ~finally:(fun () -> Obs.Iterlog.set_sink None) loop
  in
  let k = min domains n in
  let spawned =
    List.init k (fun _ ->
        Domain.spawn (fun () ->
            try
              Ok
                (Obs.Tracer.with_global tracer (fun () ->
                     Obs.Tracer.with_attrs span_attrs worker))
            with e -> Error e))
  in
  join_all spawned;
  let reports = ref [] in
  for i = n - 1 downto 0 do
    match results.(i) with
    | Some r -> reports := (arr.(i), r) :: !reports
    | None -> ()
  done;
  let winner =
    match Atomic.get winner with
    | -1 -> None
    | i -> Option.map (fun r -> (arr.(i), r)) results.(i)
  in
  {
    winner;
    reports = !reports;
    domains_used = k;
    wall_time_s = Monotonic.now () -. t0;
  }

(* --- parallel pair scoring ------------------------------------------- *)

(* Figure 1's O(n^2) pairwise scoring, fanned out: each round freezes
   the candidate list once, every worker thaws a private copy into a
   scratch manager and scores its share of the index pairs (pulled from
   an atomic counter), and only the winning pair's BDD is serialized
   back into the caller's manager.  Scoring is deterministic -- the
   merged pair minimises (ratio, i, j) exactly like the sequential
   loop's first-minimum rule -- so parallel and sequential XICI walk
   identical fixpoint trajectories.

   Returns [None] (declining, so [Ici.Policy.improve] falls back to the
   sequential greedy loop) for lists too short to amortise the
   per-round freeze/thaw. *)
let pair_evaluator ?(min_conjuncts = 6) ~domains () : Ici.Policy.evaluator =
 fun man ~pair_step_factor ~grow_threshold xs ->
  if domains < 2 || List.length xs < min_conjuncts then None
  else begin
    let nvars = Bdd.num_vars man in
    let rec round xs =
      let arr = Array.of_list xs in
      let n = Array.length arr in
      if n < 2 then xs
      else begin
        Obs.Registry.incr M.pair_rounds;
        let text = Bdd.Serialize.to_string (Array.to_list arr) in
        let npairs = n * (n - 1) / 2 in
        let pairs = Array.make npairs (0, 0) in
        let k = ref 0 in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            pairs.(!k) <- (i, j);
            incr k
          done
        done;
        let next = Atomic.make 0 in
        let bests = Array.make (min domains npairs) None in
        let worker slot () =
          let sman = Bdd.create () in
          for _ = 1 to nvars do
            ignore (Bdd.new_var sman)
          done;
          let local = Array.of_list (Bdd.Serialize.of_string sman text) in
          let best = ref None in
          let rec score () =
            let idx = Atomic.fetch_and_add next 1 in
            if idx < npairs then begin
              let i, j = pairs.(idx) in
              let a = local.(i) and b = local.(j) in
              Obs.Registry.incr M.pairs_scored;
              let p =
                match pair_step_factor with
                | None -> Some (Bdd.band sman a b)
                | Some factor ->
                  let max_steps = (factor * Bdd.size_list [ a; b ]) + 1024 in
                  Bdd.band_bounded sman ~max_steps a b
              in
              (match p with
              | None -> ()
              | Some p ->
                let ratio =
                  float_of_int (Bdd.size p)
                  /. float_of_int (Bdd.size_list [ a; b ])
                in
                let better =
                  match !best with
                  | Some (r, bi, bj, _) -> (ratio, i, j) < (r, bi, bj)
                  | None -> true
                in
                if better then best := Some (ratio, i, j, p));
              score ()
            end
          in
          score ();
          bests.(slot) <-
            Option.map
              (fun (r, i, j, p) -> (r, i, j, Bdd.Serialize.to_string [ p ]))
              !best
        in
        let spawned =
          List.init
            (Array.length bests)
            (fun slot ->
              Domain.spawn (fun () ->
                  try Ok (worker slot ()) with e -> Error e))
        in
        join_all spawned;
        let best =
          Array.fold_left
            (fun acc b ->
              match (acc, b) with
              | None, b -> b
              | acc, None -> acc
              | Some (r1, i1, j1, _), Some (r2, i2, j2, _) ->
                if (r1, i1, j1) <= (r2, i2, j2) then acc else b)
            None bests
        in
        match best with
        | Some (ratio, i, j, winner_text) when ratio <= grow_threshold ->
          Obs.Registry.incr M.pair_merges;
          let p =
            match Bdd.Serialize.of_string man winner_text with
            | [ p ] -> p
            | _ -> fail "pair_evaluator: bad winner transfer"
          in
          let rest =
            List.filteri (fun k _ -> k <> i && k <> j) (Array.to_list arr)
          in
          round (Ici.Clist.of_list man (p :: rest))
        | Some _ | None -> xs
      end
    in
    Some (round (Ici.Clist.of_list man xs))
  end
