(** Bridge from the BDD manager's always-on counters into
    [Obs.Registry.default], plus run-level snapshot helpers. *)

val publish : Bdd.man -> unit
(** Copy the manager's per-cache hit/miss counters, gc events and node
    accounting into ["bdd.*"] gauges (absolute values). *)

val snapshot_json : Bdd.man -> Obs.Json.t
(** [publish], then the registry snapshot and per-iteration log as one
    JSON object [{metrics, iterations}]. *)

val reset : unit -> unit
(** Zero the default registry and clear the iteration log (call between
    independent runs; manager-owned counters are untouched). *)

val print_summary : Bdd.man -> unit
(** [publish], then print the summary tables to stdout. *)
