(* Results of a verification run, carrying the measurements reported in
   the paper's tables: iterations, the largest R_i/G_i representation in
   BDD nodes (with the per-conjunct breakdown for implicit
   conjunctions), and node-creation counts as the memory proxy. *)

type trace = bool array list
(* A counterexample: a path of concrete states, assignments indexed by
   BDD level (current-state levels are meaningful). *)

type status =
  | Proved
  | Violated of trace
  | Exceeded of string

type t = {
  model : string;
  method_name : string;
  status : status;
  iterations : int;
  peak_set_nodes : int; (* largest representation of any R_i / G_i *)
  peak_conjuncts : int list; (* conjunct sizes at the peak (desc) *)
  nodes_created : int; (* BDD nodes created during the run *)
  peak_live_nodes : int;
  time_s : float;
}

let is_proved r = match r.status with Proved -> true | Violated _ | Exceeded _ -> false

let status_string r =
  match r.status with
  | Proved -> "proved"
  | Violated tr -> Printf.sprintf "violated (trace length %d)" (List.length tr)
  | Exceeded why -> Printf.sprintf "EXCEEDED: %s" why

(* Mirror the paper's "(i x j nodes)" / "(a, b, c)" annotations. *)
let conjuncts_string = function
  | [] | [ _ ] -> ""
  | sizes ->
    let uniform =
      match sizes with
      | s :: rest -> List.for_all (( = ) s) rest
      | [] -> false
    in
    if uniform then
      Printf.sprintf " (%d x %d nodes)" (List.length sizes) (List.hd sizes)
    else
      Printf.sprintf " (%s)" (String.concat ", " (List.map string_of_int sizes))

let pp_row fmt r =
  Format.fprintf fmt "%-8s %8.2fs %5d %10d %8d%s   %s" r.method_name r.time_s
    r.iterations r.nodes_created r.peak_set_nodes
    (conjuncts_string r.peak_conjuncts)
    (status_string r)

let header =
  Printf.sprintf "%-8s %9s %5s %10s %8s   %s" "Meth." "Time" "Iter"
    "NodesMade" "SetNodes" "Status"

(* Running maximum tracker for the per-iteration set sizes. *)
type peak = { mutable nodes : int; mutable conjuncts : int list }

let fresh_peak () = { nodes = 0; conjuncts = [] }

let observe_set peak (xs : Bdd.t list) =
  let n = Bdd.size_list xs in
  if n > peak.nodes then begin
    peak.nodes <- n;
    peak.conjuncts <-
      List.sort (fun a b -> compare b a) (List.map Bdd.size xs)
  end

(* Attempt logs (Resilient) tag rows with the attempt number/budget
   without rebuilding the report. *)
let relabel r ~method_name = { r with method_name }

(* Machine-readable form for BENCH_*.json rows; the status collapses to
   its verdict word (the trace itself stays out of artifacts). *)
let to_json r =
  let status =
    match r.status with
    | Proved -> "proved"
    | Violated _ -> "violated"
    | Exceeded why -> Printf.sprintf "exceeded: %s" why
  in
  Obs.Json.Obj
    [
      ("model", Obs.Json.String r.model);
      ("method", Obs.Json.String r.method_name);
      ("status", Obs.Json.String status);
      ("iterations", Obs.Json.Int r.iterations);
      ("peak_set_nodes", Obs.Json.Int r.peak_set_nodes);
      ( "peak_conjuncts",
        Obs.Json.List (List.map (fun n -> Obs.Json.Int n) r.peak_conjuncts) );
      ("nodes_created", Obs.Json.Int r.nodes_created);
      ("peak_live_nodes", Obs.Json.Int r.peak_live_nodes);
      ("wall_seconds", Obs.Json.Float r.time_s);
    ]

let make ~model ~method_name ~status ~iterations ~peak ~man ~baseline ~time_s =
  {
    model;
    method_name;
    status;
    iterations;
    peak_set_nodes = peak.nodes;
    peak_conjuncts = (match peak.conjuncts with [ _ ] -> [] | l -> l);
    nodes_created = Bdd.created_nodes man - baseline;
    peak_live_nodes = Bdd.peak_live_nodes man;
    time_s;
  }
