(* The original implicitly-conjoined-invariants method (Hu & Dill,
   CAV'93), reconstructed per its summary in Section II.C: the property
   must be supplied as an implicit conjunction; the list keeps its shape
   across iterations (conjunct j of G_{i+1} is G_0[j] /\
   BackImage(delta, G_i[j]), by Theorem 1), conjuncts are
   Restrict-simplified by each other, and termination is the fast but
   structure-dependent POINTWISE comparison the paper criticises: it can
   fail to detect convergence (we then report iteration-limit
   exhaustion rather than looping forever). *)

let run ?(limits = fun man -> Limits.unlimited man)
    ?(cfg =
      { Ici.Policy.default with evaluation = Ici.Policy.No_evaluation })
    model =
  let man = Model.man model in
  let trans = model.Model.trans in
  let lim = limits man in
  let baseline = Bdd.created_nodes man in
  let peak = Report.fresh_peak () in
  let iterations = ref 0 in
  let finish status =
    Report.make ~model:model.Model.name ~method_name:"ICI" ~status
      ~iterations:!iterations ~peak ~man ~baseline
      ~time_s:(Limits.elapsed lim)
  in
  Limits.with_guard lim man (fun () ->
    try
      let l0 = Ici.Clist.of_list man (Model.property model) in
      let rec iterate l gs =
        Limits.check_iteration lim man ~iteration:!iterations;
        Report.observe_set peak l;
        Log.iteration ~meth:"ICI" ~iteration:!iterations
          ~conjuncts:(Ici.Clist.length l)
          ~nodes:(Ici.Clist.shared_size l)
          ~elapsed_s:(Limits.elapsed lim) ~live_nodes:(Bdd.live_nodes man);
        match Ici.Clist.find_unimplied man model.Model.init l with
        | Some c ->
          let start =
            Trace.pick trans (Bdd.band man model.Model.init (Bdd.bnot man c))
          in
          finish
            (Report.Violated (Trace.backward trans ~gs:(List.rev gs) ~start))
        | None ->
          incr iterations;
          let back = List.map (Fsm.Trans.back_image trans) l in
          (* Simplify each BackImage by every property conjunct
             (smallest care sets first) before combining.  Sound: every
             G_0 conjunct is a factor of the new list, so it is a valid
             care set; a BackImage that coincides with (or is implied
             by) a property conjunct collapses to TRUE, which is what
             lets the shape-preserving policy reach a pointwise fixpoint
             on examples like the typed FIFO, where BackImage permutes
             the conjuncts, and the assisted moving-average filter,
             where the layer lemmas subsume the BackImages of the output
             bits. *)
          let l0_by_size =
            List.sort (fun a b -> compare (Bdd.size a) (Bdd.size b)) l0
          in
          let simplify_back b =
            List.fold_left
              (fun b g ->
                if
                  Bdd.is_const b || Bdd.is_const g
                  || cfg.Ici.Policy.simplifier = Ici.Policy.No_simplify
                then b
                else Bdd.restrict man b g)
              b l0_by_size
          in
          let back = List.map simplify_back back in
          (* Keep the list length fixed: AND conjunct j of G_0 with the
             (simplified) BackImage of conjunct j. *)
          let l' = Ici.Clist.band_pointwise man l0 back in
          if List.for_all2 Bdd.equal l' l then finish Report.Proved
          else iterate l' (l' :: gs)
      in
      (* The original method iterates the user-supplied conjunction
         as-is; the list keeps its shape throughout. *)
      iterate l0 [ l0 ]
    with Limits.Exceeded why -> finish (Report.Exceeded why))
