(* On-disk snapshots of XICI fixpoint state, so a run killed by a
   resource budget resumes at its last completed iteration instead of
   iteration 0 (the paper's "Exceeded 60MB" rows lose all G_i progress;
   this module is how the resilient driver keeps it).

   Format (text, versioned):

       icv-checkpoint 1
       model <%S-escaped name>
       nvars <n>
       iterations <k>
       termination <exact-equal|exact-implication|pointwise>
       policy <grow_threshold> <simplifier> <evaluation> <pair-factor|-1>
       current <conjunct count>
       gs <list count> <len_1> ... <len_m>
       <Bdd.Serialize block holding all conjuncts, fully shared>
       end

   The trailing "end" line makes truncation detectable; every field is
   parsed strictly and any failure (including a Serialize parse error or
   premature EOF) surfaces as [Corrupt], never as a silent wrong
   result.  Saves go through a temp file + rename so an interrupted
   write cannot destroy the previous good checkpoint. *)

type termination = [ `Exact_equal | `Exact_implication | `Pointwise ]

type t = {
  model_name : string;
  nvars : int;
  iterations : int;
  cfg : Ici.Policy.config;
  termination : termination;
  current : Ici.Clist.t;
  gs : Ici.Clist.t list;
}

exception Corrupt of string

let fail fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let version = 1

(* --- field encodings ------------------------------------------------ *)

let termination_string = function
  | `Exact_equal -> "exact-equal"
  | `Exact_implication -> "exact-implication"
  | `Pointwise -> "pointwise"

let termination_of_string = function
  | "exact-equal" -> `Exact_equal
  | "exact-implication" -> `Exact_implication
  | "pointwise" -> `Pointwise
  | s -> fail "bad termination %S" s

let simplifier_string = function
  | Ici.Policy.Restrict -> "restrict"
  | Ici.Policy.Constrain -> "constrain"
  | Ici.Policy.Multi_restrict -> "multi-restrict"
  | Ici.Policy.No_simplify -> "no-simplify"

let simplifier_of_string = function
  | "restrict" -> Ici.Policy.Restrict
  | "constrain" -> Ici.Policy.Constrain
  | "multi-restrict" -> Ici.Policy.Multi_restrict
  | "no-simplify" -> Ici.Policy.No_simplify
  | s -> fail "bad simplifier %S" s

let evaluation_string = function
  | Ici.Policy.Greedy -> "greedy"
  | Ici.Policy.Optimal_cover -> "optimal-cover"
  | Ici.Policy.No_evaluation -> "no-evaluation"

let evaluation_of_string = function
  | "greedy" -> Ici.Policy.Greedy
  | "optimal-cover" -> Ici.Policy.Optimal_cover
  | "no-evaluation" -> Ici.Policy.No_evaluation
  | s -> fail "bad evaluation %S" s

(* --- writing -------------------------------------------------------- *)

let write oc cp =
  Printf.fprintf oc "icv-checkpoint %d\n" version;
  Printf.fprintf oc "model %S\n" cp.model_name;
  Printf.fprintf oc "nvars %d\n" cp.nvars;
  Printf.fprintf oc "iterations %d\n" cp.iterations;
  Printf.fprintf oc "termination %s\n" (termination_string cp.termination);
  Printf.fprintf oc "policy %.17g %s %s %d\n" cp.cfg.Ici.Policy.grow_threshold
    (simplifier_string cp.cfg.Ici.Policy.simplifier)
    (evaluation_string cp.cfg.Ici.Policy.evaluation)
    (match cp.cfg.Ici.Policy.pair_step_factor with Some f -> f | None -> -1);
  Printf.fprintf oc "current %d\n" (List.length cp.current);
  Printf.fprintf oc "gs %d %s\n" (List.length cp.gs)
    (String.concat " " (List.map (fun l -> string_of_int (List.length l)) cp.gs));
  Bdd.Serialize.to_channel oc (cp.current @ List.concat cp.gs);
  output_string oc "end\n"

let save man path cp =
  ignore man;
  Obs.Tracer.with_span (Obs.Tracer.global ()) ~cat:"mc"
    ~args:(fun () ->
      [
        ("iteration", Obs.Json.Int cp.iterations);
        ("conjuncts", Obs.Json.Int (List.length cp.current));
      ])
    "checkpoint.save"
    (fun () ->
      let tmp = path ^ ".tmp" in
      let oc = open_out tmp in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc cp);
      Sys.rename tmp path)

(* --- reading -------------------------------------------------------- *)

let next_line ic =
  try input_line ic with End_of_file -> fail "truncated checkpoint"

let int_field what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail "bad %s %S" what s

let keyed key line =
  let prefix = key ^ " " in
  let n = String.length prefix in
  if String.length line >= n && String.sub line 0 n = prefix then
    String.sub line n (String.length line - n)
  else fail "expected %S field, got %S" key line

let rec split_at n xs =
  if n = 0 then ([], xs)
  else
    match xs with
    | [] -> fail "conjunct count mismatch"
    | x :: rest ->
      let a, b = split_at (n - 1) rest in
      (x :: a, b)

let read man ic =
  (match String.split_on_char ' ' (next_line ic) with
  | [ "icv-checkpoint"; v ] ->
    let v = int_field "version" v in
    if v <> version then fail "unsupported checkpoint version %d" v
  | _ -> fail "not a checkpoint file");
  let model_name =
    let raw = keyed "model" (next_line ic) in
    try Scanf.sscanf raw "%S" Fun.id
    with Scanf.Scan_failure _ | End_of_file -> fail "bad model name %S" raw
  in
  let nvars = int_field "nvars" (keyed "nvars" (next_line ic)) in
  let iterations =
    int_field "iterations" (keyed "iterations" (next_line ic))
  in
  if nvars < 0 || iterations < 0 then fail "negative count";
  let termination =
    termination_of_string (keyed "termination" (next_line ic))
  in
  let cfg =
    match String.split_on_char ' ' (keyed "policy" (next_line ic)) with
    | [ thr; simp; eval; pair ] ->
      let grow_threshold =
        match float_of_string_opt thr with
        | Some f -> f
        | None -> fail "bad grow threshold %S" thr
      in
      let pair = int_field "pair factor" pair in
      {
        Ici.Policy.grow_threshold;
        simplifier = simplifier_of_string simp;
        evaluation = evaluation_of_string eval;
        pair_step_factor = (if pair < 0 then None else Some pair);
      }
    | _ -> fail "bad policy line"
  in
  let n_current = int_field "current" (keyed "current" (next_line ic)) in
  let gs_lens =
    match String.split_on_char ' ' (keyed "gs" (next_line ic)) with
    | count :: lens ->
      let count = int_field "gs count" count in
      let lens = List.map (int_field "gs length") lens in
      if List.length lens <> count then fail "gs length list mismatch";
      lens
    | [] -> fail "bad gs line"
  in
  if n_current < 0 || List.exists (fun l -> l < 0) gs_lens then
    fail "negative conjunct count";
  let roots =
    try Bdd.Serialize.of_channel man ic
    with Bdd.Serialize.Parse_error why -> fail "bad BDD payload: %s" why
  in
  let expected = n_current + List.fold_left ( + ) 0 gs_lens in
  if List.length roots <> expected then
    fail "root count %d does not match conjunct counts (%d)"
      (List.length roots) expected;
  (match next_line ic with
  | "end" -> ()
  | s -> fail "bad trailer %S" s);
  let current, rest = split_at n_current roots in
  let gs, rest =
    List.fold_left
      (fun (acc, rest) len ->
        let l, rest = split_at len rest in
        (l :: acc, rest))
      ([], rest) gs_lens
  in
  assert (rest = []);
  { model_name; nvars; iterations; cfg; termination; current;
    gs = List.rev gs }

let load man path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read man ic)

(* Resumption must never be worse than a cold start: a checkpoint file
   that is truncated (the writer died mid-rename-window on a weird
   filesystem), corrupt, or unreadable is treated exactly like an
   absent one.  [load] keeps raising -- callers asking for a specific
   file still get the diagnosis -- but the opportunistic path degrades
   with a logged warning. *)
let load_opt man path =
  if not (Sys.file_exists path) then None
  else
    match load man path with
    | cp -> Some cp
    | exception Corrupt why ->
      Log.degraded ~what:"checkpoint"
        ~detail:(Printf.sprintf "%s is corrupt (%s); starting cold" path why);
      None
    | exception Sys_error why ->
      Log.degraded ~what:"checkpoint"
        ~detail:(Printf.sprintf "%s is unreadable (%s); starting cold" path why);
      None

(* A checkpoint only makes sense against the model that produced it:
   conjunct BDDs mention that model's variable levels. *)
let check_compatible cp model =
  let man = Model.man model in
  if cp.model_name <> model.Model.name then
    fail "checkpoint is for model %S, not %S" cp.model_name
      model.Model.name;
  if cp.nvars <> Bdd.num_vars man then
    fail "checkpoint has %d variables, model has %d" cp.nvars
      (Bdd.num_vars man)
