(* Conventional forward traversal (Section II.B): R_0 = S,
   R_{i+1} = R_i \/ Image(delta, R_i), with the violation check
   decomposed over the property conjuncts.  The image is computed from
   the frontier (new states only), a standard optimisation that does not
   change R_i or the iteration count. *)

let run ?(limits = fun man -> Limits.unlimited man) model =
  let man = Model.man model in
  let trans = model.Model.trans in
  let property = Ici.Clist.of_list man (Model.property model) in
  let lim = limits man in
  let baseline = Bdd.created_nodes man in
  let peak = Report.fresh_peak () in
  let iterations = ref 0 in
  let finish status =
    Report.make ~model:model.Model.name ~method_name:"Fwd" ~status
      ~iterations:!iterations ~peak ~man ~baseline
      ~time_s:(Limits.elapsed lim)
  in
  let violation reached rings =
    match Ici.Clist.find_unimplied man reached property with
    | None -> None
    | Some c ->
      let bad = Trace.pick trans (Bdd.band man reached (Bdd.bnot man c)) in
      Some (Trace.forward trans ~rings:(List.rev rings) ~bad)
  in
  let rec iterate reached frontier rings =
    Limits.check_iteration lim man ~iteration:!iterations;
    Report.observe_set peak [ reached ];
    Log.iteration ~meth:"Fwd" ~iteration:!iterations ~conjuncts:1
      ~nodes:(Bdd.size reached) ~elapsed_s:(Limits.elapsed lim)
      ~live_nodes:(Bdd.live_nodes man);
    match violation frontier rings with
    | Some tr -> finish (Report.Violated tr)
    | None ->
      let img =
        Obs.Tracer.with_span (Obs.Tracer.global ()) ~cat:"mc"
          ~args:(fun () -> [ ("iteration", Obs.Json.Int !iterations) ])
          "fwd.image"
          (fun () -> Fsm.Trans.image trans frontier)
      in
      let reached' = Bdd.bor man reached img in
      if Bdd.equal reached' reached then finish Report.Proved
      else begin
        incr iterations;
        let frontier' = Bdd.band man img (Bdd.bnot man reached) in
        iterate reached' frontier' (reached' :: rings)
      end
  in
  Limits.with_guard lim man (fun () ->
    try iterate model.Model.init model.Model.init [ model.Model.init ]
    with Limits.Exceeded why -> finish (Report.Exceeded why))
