(** The paper's extended method ("XICI"): backward traversal over
    implicit conjunctions with the automatic evaluation-and-
    simplification policy (Figure 1) and the exact termination test of
    Section III.B.

    Checkpoint/resume: with [checkpoint_path] the fixpoint state
    (current implicit conjunction, G history, iteration count, policy)
    is snapshotted every [checkpoint_every] iterations (default 1) via
    {!Checkpoint}, at the top of the iteration -- so a run killed by a
    budget loses at most the iteration in flight.  With [resume_from]
    the traversal restarts from the snapshot instead of from G_0; [cfg]
    and [termination] then default to the checkpointed values. *)

type termination = [ `Exact_equal | `Exact_implication | `Pointwise ]

val run :
  ?limits:(Bdd.man -> Limits.t) ->
  ?cfg:Ici.Policy.config ->
  ?termination:termination ->
  ?var_choice:Ici.Tautology.var_choice ->
  ?tautology_stats:Ici.Tautology.stats ->
  ?evaluator:Ici.Policy.evaluator ->
  ?checkpoint_path:string ->
  ?checkpoint_every:int ->
  ?resume_from:Checkpoint.t ->
  Model.t ->
  Report.t

val run_full :
  ?limits:(Bdd.man -> Limits.t) ->
  ?cfg:Ici.Policy.config ->
  ?termination:termination ->
  ?var_choice:Ici.Tautology.var_choice ->
  ?tautology_stats:Ici.Tautology.stats ->
  ?evaluator:Ici.Policy.evaluator ->
  ?checkpoint_path:string ->
  ?checkpoint_every:int ->
  ?resume_from:Checkpoint.t ->
  Model.t ->
  Report.t * Ici.Clist.t option
(** Like {!run}, additionally returning the converged implicit
    conjunction -- the automatically derived invariants -- when the
    property was proved by reaching a fixpoint. *)
