(* Shim over Obs.Clock, which owns the CLOCK_MONOTONIC C stub (the
   telemetry tracer needs the clock below the mc layer).  Kept so
   existing callers of Mc.Monotonic keep working. *)

let now_ns = Obs.Clock.now_ns
let now = Obs.Clock.now
