(** Resilient verification driver: retry with escalating budgets,
    portfolio fallback across methods, and checkpoint-aware XICI
    restarts -- structured outcomes instead of bare exceptions.

    Each method in the [fallback] portfolio is attempted up to [retries]
    times, the node budget multiplied by [budget_escalation] (capped at
    [budget_cap]) after every failed attempt.  A [Proved] or [Violated]
    verdict ends the run immediately; only [Exceeded] escalates.  When
    [checkpoint] is given, XICI attempts snapshot their fixpoint state
    there and later attempts resume from it, so retries keep the
    progress the failed attempt already paid for (a corrupt checkpoint
    degrades to a cold start).  Exceptions escaping a method --
    [Limits.Exceeded] from a hook, [Bdd.Node_budget_exhausted] from a
    fault-injection hook -- are converted into [Exceeded] attempts
    rather than killing the job. *)

type attempt = {
  meth : Runner.meth;
  index : int;  (** 1-based attempt number across the whole portfolio *)
  max_created_nodes : int option;  (** node budget of this attempt *)
  resumed_at : int option;
      (** checkpoint iteration the attempt resumed from, if any *)
  report : Report.t;
}

type outcome = {
  final : Report.t;
      (** the deciding attempt's report, or the last failure *)
  attempts : attempt list;  (** chronological attempt log *)
  total_time_s : float;  (** cumulative wall time across attempts *)
  total_nodes_created : int;  (** cumulative node creations *)
}

val default_fallback : Runner.meth list
(** [XICI -> ICI -> FD]. *)

val attempt_label : attempt -> string
(** ["XICI#2/100k"]-style row label: method, attempt number, budget. *)

val pp_attempt : Format.formatter -> attempt -> unit
(** One {!Report.pp_row}-formatted line, labelled by {!attempt_label}. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** The full attempt log followed by a cumulative summary row. *)

val run :
  ?retries:int ->
  ?budget_escalation:float ->
  ?max_created_nodes:int ->
  ?budget_cap:int ->
  ?max_seconds:float ->
  ?max_live_nodes:int ->
  ?max_iterations:int ->
  ?fallback:Runner.meth list ->
  ?checkpoint:string ->
  ?xici_cfg:Ici.Policy.config ->
  ?termination:Xici.termination ->
  ?domains:int ->
  ?portfolio_configs:Parallel.config list ->
  Model.t ->
  outcome
(** Defaults: [retries = 3], [budget_escalation = 2.0], no initial node
    budget (methods then get one attempt each unless a checkpoint makes
    an XICI retry meaningful), [fallback = default_fallback].
    [max_seconds]/[max_live_nodes]/[max_iterations] apply per attempt,
    unescalated.  Raises [Invalid_argument] on an empty portfolio,
    [retries < 1] or [budget_escalation < 1.0].

    With [domains > 1] the portfolio (as [portfolio_configs], or
    [fallback] lifted into {!Parallel.config}s) first runs CONCURRENTLY
    via {!Parallel.portfolio}, each config on its own thawed copy of
    the model under the un-escalated budgets; the sequential escalating
    path only runs if no parallel config decides.  Parallel attempts
    appear in the log, but their node costs accrue in worker managers,
    outside [total_nodes_created]. *)
