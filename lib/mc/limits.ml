(* Resource budgets, used to reproduce the paper's "Exceeded 60MB" /
   "Exceeded 40 minutes" rows without actually burning the machine. *)

exception Exceeded of string

type t = {
  max_created_nodes : int option;
  max_live_nodes : int option;
  max_seconds : float option;
  max_iterations : int option;
  baseline_nodes : int;
  started_at : float;
}

(* [started_at] is a monotonic-clock reading: wall-clock (gettimeofday)
   budgets are vulnerable to NTP steps, which can spuriously kill or
   indefinitely extend a run.  [elapsed] keeps its seconds-since-start
   semantics for reports. *)
let start ?max_created_nodes ?max_live_nodes ?max_seconds ?max_iterations man
    =
  {
    max_created_nodes;
    max_live_nodes;
    max_seconds;
    max_iterations;
    baseline_nodes = Bdd.created_nodes man;
    started_at = Monotonic.now ();
  }

let unlimited man = start man

let check t man =
  (match t.max_created_nodes with
  | Some n when Bdd.created_nodes man - t.baseline_nodes > n ->
    raise (Exceeded (Printf.sprintf "exceeded %d BDD nodes" n))
  | Some _ | None -> ());
  (* Live nodes are the analog of the paper's resident-memory limit.
     The unique table maintains the count in O(1) (an upper bound
     between sweeps, which is the conservative direction for a
     budget). *)
  (match t.max_live_nodes with
  | Some n when Bdd.live_nodes man > n ->
    raise (Exceeded (Printf.sprintf "exceeded %d live BDD nodes" n))
  | Some _ | None -> ());
  match t.max_seconds with
  | Some s when Monotonic.now () -. t.started_at > s ->
    raise (Exceeded (Printf.sprintf "exceeded %.0f seconds" s))
  | Some _ | None -> ()

let check_iteration t man ~iteration =
  check t man;
  match t.max_iterations with
  | Some n when iteration > n ->
    raise (Exceeded (Printf.sprintf "no convergence after %d iterations" n))
  | Some _ | None -> ()

let elapsed t = Monotonic.now () -. t.started_at

(* Install the manager progress hook for the duration of [f], so node
   and time budgets interrupt even a single blown-up BDD operation.
   Any previously installed hook keeps running (chained) and is
   restored afterwards -- including when [f] escapes by exception, which
   is the normal exit path for a blown budget. *)
let with_guard t man f =
  let old = Bdd.progress_hook man in
  let hook m =
    (match old with Some h -> h m | None -> ());
    check t m
  in
  Bdd.set_progress_hook man (Some hook);
  Fun.protect ~finally:(fun () -> Bdd.set_progress_hook man old) f
