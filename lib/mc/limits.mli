(** Resource budgets for verification runs, reproducing the paper's
    "Exceeded 60MB" / "Exceeded 40 minutes" rows.  Node budgets count
    BDD nodes created since the run started (the machine-independent
    memory proxy). *)

exception Exceeded of string

type t

val start :
  ?max_created_nodes:int ->
  ?max_live_nodes:int ->
  ?max_seconds:float ->
  ?max_iterations:int ->
  Bdd.man ->
  t

val unlimited : Bdd.man -> t

val check : t -> Bdd.man -> unit
(** Raises [Exceeded] when a budget is blown. *)

val check_iteration : t -> Bdd.man -> iteration:int -> unit
val elapsed : t -> float

val with_guard : t -> Bdd.man -> (unit -> 'a) -> 'a
(** Run [f] with the manager's progress hook checking these budgets, so
    [Exceeded] can interrupt even a single blown-up image computation
    (the paper's "Exceeded 60MB" rows).  Any previously installed hook
    keeps running and is restored afterwards, also when [f] raises. *)
