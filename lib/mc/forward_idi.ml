(* Forward traversal over implicitly DISJOINED reachable sets: the dual
   extension the paper points at in Section II.A ("dually, we can
   compute the Image and PreImage of implicit disjunctions without
   building the BDD for the entire disjunction").

   The reachable set R_i is a list [r1; ...; rn] denoting r1 \/ ... \/
   rn.  Image distributes over disjunction, the violation check
   decomposes both ways (every part against every property conjunct),
   and the whole XICI toolbox transfers by De Morgan duality: running
   the evaluation/simplification policy on the complemented list
   preserves /\ not r_j, i.e. preserves R; subsumption and termination
   reduce to the Section III.B tautology test on complemented lists. *)

let dual_improve man cfg parts =
  let complemented = List.map (Bdd.bnot man) parts in
  let improved = Ici.Policy.improve man cfg complemented in
  List.map (Bdd.bnot man) improved

(* Is the state set [p] subsumed by the implicit disjunction [parts]?
   Exactly: not p \/ r1 \/ ... \/ rn must be a tautology. *)
let subsumed ?stats man p parts =
  Ici.Tautology.check ?stats man (Bdd.bnot man p :: parts)

let find_violation man parts property =
  List.fold_left
    (fun acc p ->
      match acc with
      | Some _ -> acc
      | None -> (
        match Ici.Clist.find_unimplied man p property with
        | Some g -> Some (Bdd.band man p (Bdd.bnot man g))
        | None -> None))
    None parts

(* Counterexample: rings are disjunction lists; walk back from the bad
   state picking predecessors inside ever-earlier rings. *)
let trace_of trans rings bad_set =
  let man = Fsm.Trans.man trans in
  let levels = Fsm.Space.current_levels (Fsm.Trans.space trans) in
  let rings = Array.of_list (List.rev rings) in
  let bad = Trace.pick trans bad_set in
  let member ring env = List.exists (fun p -> Bdd.eval man env p) ring in
  let rec first_ring i = if member rings.(i) bad then i else first_ring (i + 1) in
  let rec walk i state acc =
    if i = 0 then state :: acc
    else begin
      let cube = Trace.state_cube man levels state in
      let preds = Fsm.Trans.pre_image trans cube in
      let inside =
        List.find_map
          (fun p ->
            let s = Bdd.band man preds p in
            if Bdd.is_false s then None else Some s)
          rings.(i - 1)
      in
      match inside with
      | Some s -> walk (i - 1) (Trace.pick trans s) (state :: acc)
      | None -> invalid_arg "Forward_idi.trace_of: broken rings"
    end
  in
  walk (first_ring 0) bad []

let run ?(limits = fun man -> Limits.unlimited man)
    ?(cfg = Ici.Policy.default) ?tautology_stats model =
  let man = Model.man model in
  let trans = model.Model.trans in
  let property = Ici.Clist.of_list man (Model.property model) in
  let lim = limits man in
  let baseline = Bdd.created_nodes man in
  let peak = Report.fresh_peak () in
  let iterations = ref 0 in
  let stats =
    match tautology_stats with
    | Some s -> s
    | None -> Ici.Tautology.fresh_stats ()
  in
  let finish status =
    Report.make ~model:model.Model.name ~method_name:"IDI" ~status
      ~iterations:!iterations ~peak ~man ~baseline
      ~time_s:(Limits.elapsed lim)
  in
  Limits.with_guard lim man (fun () ->
      try
        let rec iterate parts frontier rings =
          Limits.check_iteration lim man ~iteration:!iterations;
          Report.observe_set peak parts;
          Log.iteration ~meth:"IDI" ~iteration:!iterations
            ~conjuncts:(List.length parts)
            ~nodes:(Bdd.size_list parts)
            ~elapsed_s:(Limits.elapsed lim) ~live_nodes:(Bdd.live_nodes man);
          match find_violation man frontier property with
          | Some bad -> finish (Report.Violated (trace_of trans rings bad))
          | None ->
            let images = List.map (Fsm.Trans.image trans) frontier in
            let fresh =
              List.filter
                (fun p ->
                  (not (Bdd.is_false p)) && not (subsumed ~stats man p parts))
                images
            in
            if fresh = [] then finish Report.Proved
            else begin
              incr iterations;
              let parts' = dual_improve man cfg (parts @ fresh) in
              iterate parts' fresh (parts' :: rings)
            end
        in
        let start = dual_improve man cfg [ model.Model.init ] in
        iterate start start [ start ]
      with Limits.Exceeded why -> finish (Report.Exceeded why))
