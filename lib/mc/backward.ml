(* Conventional backward traversal (Section II.B): G_0 = G (one
   monolithic BDD -- this is where the exponential blowups of Tables 1-3
   come from), G_{i+1} = G_0 /\ BackImage(delta, G_i); violation when the
   start states escape G_i, convergence when G_{i+1} = G_i (constant-time
   by canonicity). *)

let run ?(limits = fun man -> Limits.unlimited man) ?image_via model =
  let man = Model.man model in
  let trans = model.Model.trans in
  let lim = limits man in
  let baseline = Bdd.created_nodes man in
  let peak = Report.fresh_peak () in
  let iterations = ref 0 in
  let finish status =
    Report.make ~model:model.Model.name ~method_name:"Bkwd" ~status
      ~iterations:!iterations ~peak ~man ~baseline
      ~time_s:(Limits.elapsed lim)
  in
  Limits.with_guard lim man (fun () ->
    try
      let g0 = Bdd.conj man (Model.property model) in
      Limits.check lim man;
      let rec iterate g gs =
        Limits.check_iteration lim man ~iteration:!iterations;
        Report.observe_set peak [ g ];
        Log.iteration ~meth:"Bkwd" ~iteration:!iterations ~conjuncts:1
          ~nodes:(Bdd.size g) ~elapsed_s:(Limits.elapsed lim)
          ~live_nodes:(Bdd.live_nodes man);
        if not (Bdd.implies man model.Model.init g) then begin
          let start =
            Trace.pick trans (Bdd.band man model.Model.init (Bdd.bnot man g))
          in
          let gs_clists = List.rev_map (fun x -> [ x ]) gs in
          finish (Report.Violated (Trace.backward trans ~gs:gs_clists ~start))
        end
        else begin
          incr iterations;
          let g' =
            Obs.Tracer.with_span (Obs.Tracer.global ()) ~cat:"mc"
              ~args:(fun () -> [ ("iteration", Obs.Json.Int !iterations) ])
              "bkwd.back_image"
              (fun () ->
                Bdd.band man g0 (Fsm.Trans.back_image ?via:image_via trans g))
          in
          if Bdd.equal g' g then begin
            (* Converged: the last BackImage did not shrink the set. *)
            finish Report.Proved
          end
          else iterate g' (g' :: gs)
        end
      in
      iterate g0 [ g0 ]
    with Limits.Exceeded why -> finish (Report.Exceeded why))
