(* Bridge between the BDD manager's always-on counters and the obs
   registry.  The manager counts into plain record fields (keeping the
   bdd package free of any obs dependency); [publish] copies those
   absolute values into "bdd.*" gauges, so a registry snapshot taken
   after a run carries the full per-cache breakdown next to the taut.*
   and policy.* counters that accumulate live. *)

let reg = Obs.Registry.default

let publish man =
  let g name v = Obs.Registry.set (Obs.Registry.gauge reg name) (float_of_int v) in
  List.iter
    (fun (name, hits, misses) ->
      g (Printf.sprintf "bdd.cache.%s.hits" name) hits;
      g (Printf.sprintf "bdd.cache.%s.misses" name) misses)
    (Bdd.cache_stats man);
  List.iter
    (fun (name, v) -> g (Printf.sprintf "bdd.computed.%s" name) v)
    (Bdd.computed_table_stats man);
  List.iter
    (fun (name, v) -> g (Printf.sprintf "bdd.unique.%s" name) v)
    (Bdd.unique_table_stats man);
  g "bdd.gc_events" (Bdd.gc_events man);
  g "bdd.nodes_created" (Bdd.created_nodes man);
  g "bdd.live_nodes" (Bdd.live_nodes man);
  g "bdd.peak_live_nodes" (Bdd.peak_live_nodes man);
  g "bdd.steps" (Bdd.steps man)

(* Registry + iteration log as one JSON object, for bench rows and the
   fuzz losslessness target. *)
let snapshot_json man =
  publish man;
  Obs.Json.Obj
    [
      ("metrics", Obs.Registry.to_json reg);
      ("iterations", Obs.Iterlog.to_json ());
    ]

(* Zero the run-scoped telemetry (between bench rows / CLI runs).  The
   manager's own counters are per-manager and not reset here. *)
let reset () =
  Obs.Registry.reset reg;
  Obs.Iterlog.clear ()

(* The post-run [icv --stats] report. *)
let print_summary man =
  publish man;
  Obs.Summary.print reg (Obs.Iterlog.rows ())
