(* Resilient verification driver: structured outcomes instead of bare
   exceptions.

   Resource exhaustion is the *expected* failure mode of monolithic-BDD
   verification (the paper's tables are full of "Exceeded 60MB" rows),
   so a production runner must treat a blown budget as a scheduling
   event, not a fatal error.  This driver wraps the methods behind

   - retry with escalating node budgets (doubling by default, capped),
   - portfolio fallback across methods (XICI -> ICI -> FD by default),
   - XICI checkpoint/resume, so retries keep the fixpoint progress the
     failed attempt already paid for,

   and emits a per-attempt [Report.t] log so bench tables can show
   which attempt succeeded and at what cumulative cost. *)

type attempt = {
  meth : Runner.meth;
  index : int; (* 1-based attempt number across the whole portfolio *)
  max_created_nodes : int option; (* node budget this attempt ran under *)
  resumed_at : int option; (* checkpoint iteration the attempt resumed at *)
  report : Report.t;
}

type outcome = {
  final : Report.t; (* the deciding (or last failing) attempt's report *)
  attempts : attempt list; (* chronological *)
  total_time_s : float;
  total_nodes_created : int;
}

let default_fallback = [ Runner.Xici; Runner.Ici; Runner.Fd ]

let decided (r : Report.t) =
  match r.Report.status with
  | Report.Proved | Report.Violated _ -> true
  | Report.Exceeded _ -> false

let attempt_label a =
  let budget =
    match a.max_created_nodes with
    | Some n when n >= 10_000 -> Printf.sprintf "/%dk" (n / 1000)
    | Some n -> Printf.sprintf "/%d" n
    | None -> ""
  in
  Printf.sprintf "%s#%d%s" (Runner.name a.meth) a.index budget

let pp_attempt fmt a =
  Report.pp_row fmt (Report.relabel a.report ~method_name:(attempt_label a))

let pp_outcome fmt o =
  List.iter (fun a -> Format.fprintf fmt "%a@," pp_attempt a) o.attempts;
  Format.fprintf fmt "%-8s %8.2fs %5s %10d %8s   %s" "total" o.total_time_s
    "-" o.total_nodes_created "-"
    (Report.status_string o.final)

let run ?(retries = 3) ?(budget_escalation = 2.0) ?max_created_nodes
    ?(budget_cap = max_int) ?max_seconds ?max_live_nodes ?max_iterations
    ?(fallback = default_fallback) ?checkpoint ?xici_cfg ?termination
    ?(domains = 1) ?portfolio_configs model =
  if fallback = [] then invalid_arg "Resilient.run: empty fallback portfolio";
  if retries < 1 then invalid_arg "Resilient.run: retries < 1";
  if budget_escalation < 1.0 then
    invalid_arg "Resilient.run: escalation < 1.0";
  let man = Model.man model in
  let started = Monotonic.now () in
  let first_baseline = Bdd.created_nodes man in
  let attempts = ref [] in
  let index = ref 0 in
  (* A failed attempt that died inside an operation (fault hook, budget
     abort) reports what the attempt actually consumed. *)
  let synthesized_report why baseline time_s =
    Report.make ~model:model.Model.name ~method_name:"?"
      ~status:(Report.Exceeded why) ~iterations:0 ~peak:(Report.fresh_peak ())
      ~man ~baseline ~time_s
  in
  let run_attempt meth budget =
    incr index;
    let limits m =
      Limits.start ?max_created_nodes:budget ?max_seconds ?max_live_nodes
        ?max_iterations m
    in
    let resume_from =
      (* A corrupt checkpoint degrades to a cold start inside
         [load_opt] itself (resilience is the whole point). *)
      match (meth, checkpoint) with
      | Runner.Xici, Some path -> Checkpoint.load_opt man path
      | _ -> None
    in
    let baseline = Bdd.created_nodes man in
    let t0 = Monotonic.now () in
    let report =
      try
        Runner.run ~limits ?xici_cfg ?termination
          ?checkpoint_path:(if meth = Runner.Xici then checkpoint else None)
          ?resume_from meth model
      with
      | Limits.Exceeded why ->
        synthesized_report why baseline (Monotonic.now () -. t0)
      | Bdd.Node_budget_exhausted ->
        synthesized_report "node budget exhausted" baseline
          (Monotonic.now () -. t0)
    in
    let a =
      {
        meth;
        index = !index;
        max_created_nodes = budget;
        resumed_at =
          Option.map (fun cp -> cp.Checkpoint.iterations) resume_from;
        report;
      }
    in
    attempts := a :: !attempts;
    Log.attempt ~label:(attempt_label a)
      ~detail:(Report.status_string report);
    report
  in
  let escalate budget =
    Option.map
      (fun b ->
        min budget_cap
          (max (b + 1) (int_of_float (float_of_int b *. budget_escalation))))
      budget
  in
  let rec try_method meth budget attempt_no =
    let report = run_attempt meth budget in
    if decided report then Some report
    else if
      (* Without a node budget there is nothing to escalate, and an
         identical retry would fail identically -- unless a checkpoint
         lets XICI continue past where the last attempt died. *)
      attempt_no < retries
      && (budget <> None || (meth = Runner.Xici && checkpoint <> None))
    then try_method meth (escalate budget) (attempt_no + 1)
    else None
  in
  let rec portfolio = function
    | [] ->
      (match !attempts with
      | last :: _ -> last.report
      | [] -> assert false)
    | meth :: rest -> (
      match try_method meth max_created_nodes 1 with
      | Some report -> report
      | None -> portfolio rest)
  in
  (* With [domains > 1] the whole portfolio runs CONCURRENTLY first
     (every config under the un-escalated budget, each on its own
     thawed model copy); only if no config decides does the driver fall
     back to the sequential escalating-retry path on this manager,
     where checkpoints can resume.  Parallel attempts are logged like
     sequential ones, but their node costs live in worker managers and
     are not part of [total_nodes_created]. *)
  let parallel_stage () =
    if domains < 2 then None
    else begin
      let configs =
        match portfolio_configs with
        | Some cs -> cs
        | None ->
          List.map
            (fun m -> Parallel.config ?xici_cfg ?termination m)
            fallback
      in
      let limits m =
        Limits.start ?max_created_nodes ?max_seconds ?max_live_nodes
          ?max_iterations m
      in
      let res = Parallel.portfolio ~domains ~configs ~limits model in
      List.iter
        (fun ((c : Parallel.config), report) ->
          incr index;
          let a =
            {
              meth = c.Parallel.meth;
              index = !index;
              max_created_nodes;
              resumed_at = None;
              report;
            }
          in
          attempts := a :: !attempts;
          Log.attempt ~label:c.Parallel.label
            ~detail:(Report.status_string report))
        res.Parallel.reports;
      Option.map snd res.Parallel.winner
    end
  in
  let final =
    match parallel_stage () with
    | Some report -> report
    | None -> portfolio fallback
  in
  {
    final;
    attempts = List.rev !attempts;
    total_time_s = Monotonic.now () -. started;
    total_nodes_created = Bdd.created_nodes man - first_baseline;
  }
