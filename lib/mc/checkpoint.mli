(** On-disk snapshots of XICI fixpoint state.

    A budgeted XICI run that dies with "Exceeded ..." loses the implicit
    conjunction [G_i] it had converged towards; a checkpoint preserves
    it, so a retry (possibly with a bigger budget) resumes at the last
    completed iteration instead of iteration 0.

    The format is versioned text over {!Bdd.Serialize} with a trailing
    end marker; any corruption -- truncation, bad fields, dangling node
    references, count mismatches -- raises {!Corrupt} on read.  Saves
    are atomic (temp file + rename), so an interrupted write never
    destroys the previous good checkpoint. *)

type termination = [ `Exact_equal | `Exact_implication | `Pointwise ]
(** Structurally equal to {!Xici.termination}. *)

type t = {
  model_name : string;
  nvars : int;  (** variable count of the producing manager *)
  iterations : int;  (** completed XICI iterations *)
  cfg : Ici.Policy.config;
  termination : termination;
  current : Ici.Clist.t;  (** the implicit conjunction G_i *)
  gs : Ici.Clist.t list;  (** the G history, most recent first *)
}

exception Corrupt of string

val save : Bdd.man -> string -> t -> unit
(** Atomic write (temp file + rename). *)

val load : Bdd.man -> string -> t
(** Raises {!Corrupt} on any malformed input; conjunct BDDs are rebuilt
    through the manager's unique table. *)

val load_opt : Bdd.man -> string -> t option
(** [None] when the file does not exist, is truncated, corrupt or
    unreadable (the latter cases log a warning) -- opportunistic
    resumption degrades to a cold start instead of failing.  Use
    {!load} to diagnose a specific file. *)

val check_compatible : t -> Model.t -> unit
(** Raises {!Corrupt} when the checkpoint's model name or variable count
    does not match (its conjuncts would be meaningless over a different
    variable allocation). *)
