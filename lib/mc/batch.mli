(** Multi-property ("batch") verification with speculative invariant
    sharing.

    A batch verifies properties [P1..Pn] against one model in a single
    orchestrated run, instead of [n] independent runs.  Three sharing
    channels make the batch cheaper than its sequential unrolling:

    - {b Shared image computations.}  Every property is checked on the
      same manager, space and transition relation, so the computed-table
      entries built by one property's traversal (back images in
      particular) are hits for the next.
    - {b Proven invariants.}  Whatever a property run establishes
      unconditionally — its own good conjuncts once finally proved, and
      the converged XICI conjunction ({!Xici.run_full}'s derived
      invariants, which are inductive and implied by init regardless of
      what property seeded the traversal) — enters a per-model pool that
      later runs receive as {!Model.t.assisting} conjuncts.
    - {b Speculative assumptions} (opt-in).  The goods of properties
      not yet decided are assumed known ("the benefit of wrong
      assumptions"): property [Pi]'s goods are transformed to
      [AS => g] where [AS] is the conjunction of the assumed
      conjuncts.

    {b Soundness.}  A [Violated] verdict under the transform is always
    genuine: the counterexample's end state violates some [AS => g], so
    it satisfies [AS] and violates the original [g] — the trace replays
    against the untransformed property.  (It cannot instead violate a
    pooled assisting conjunct, because those are true invariants and the
    trace only visits reachable states.)  A [Proved] verdict with a
    nonempty assumption set is only {e conditional}: it is recorded with
    the set of property indices its assumptions came from.  After the
    first sweep, conditional verdicts are resolved to a fixpoint:
    a conditional whose dependencies all ended finally proved is
    discharged as-is; one with a refuted (violated or exceeded)
    dependency is tainted and {e rechecked} — re-run with no speculation,
    proven-pool assisting only — as is one conditional of any residual
    dependency cycle.  Every resolution step finalises at least one
    property, so at most [n] rechecks run and every returned verdict is
    unconditional.

    Counters under [batch.*] in {!Obs.Registry.default}:
    [invariants_shared] (pool conjuncts injected as assisting, summed
    over runs), [invariants_speculated] (assumed conjuncts, summed over
    runs), [speculations_refuted] (refuted dependency edges of tainted
    proofs) and [rechecks]. *)

type property = {
  pname : string;
  goods : Bdd.t list;  (** implicit conjunction, over the model's manager *)
}

val of_goods : ?names:string list -> Model.t -> property list
(** One property per conjunct of [model.good], named ["p0".."p{n-1}"]
    unless [names] supplies better ones (missing tail entries fall back
    to the positional names). *)

type item = {
  prop : property;
  report : Report.t;
      (** the final (unconditional) verdict; violation traces are valid
          for the untransformed property *)
  speculative : Report.t option;
      (** the speculative report this property held before a recheck
          replaced it; [None] unless [rechecked] *)
  assumed : int list;
      (** indices (into the batch's property list) whose goods this
          property's first run assumed *)
  rechecked : bool;
}

type stats = {
  invariants_shared : int;
  invariants_speculated : int;
  speculations_refuted : int;
  rechecks : int;
}

type result = {
  items : item list;  (** in the order the properties were given *)
  stats : stats;
  domains_used : int;
  wall_time_s : float;
}

val run :
  ?limits:(Bdd.man -> Limits.t) ->
  ?meth:Runner.meth ->
  ?xici_cfg:Ici.Policy.config ->
  ?termination:Xici.termination ->
  ?var_choice:Ici.Tautology.var_choice ->
  ?speculate:bool ->
  ?domains:int ->
  Model.t ->
  property list ->
  result
(** Verify every property against [model] (whose own [good] list is
    ignored in favour of the given properties; its [assisting] conjuncts
    apply to every run).  [meth] defaults to [Xici] — the only method
    that harvests derived invariants into the pool; any method still
    gets assisting injection.  [speculate] (default [false]) enables
    the assumption channel on top of pool sharing.  It is opt-in
    because the transformed good [¬AS ∨ g] is one monolithic BDD over
    every assumed property's variables, so a backward traversal must
    track all of them at once: on the paper's example families that
    consistently costs more than the assumptions save (fifo-10 runs
    ~200s speculative against ~0.01s pooled-only), while pool sharing
    alone already beats the sequential unrolling.

    [domains > 1] splits the properties round-robin across that many
    worker domains, each verifying its share on a private thawed copy of
    the model ({!Parallel.freeze}); sharing is then intra-domain only,
    and reported traces are valid for the original manager because thaw
    preserves levels exactly. *)
