(* Multi-property verification with speculative invariant sharing.

   One model, properties P1..Pn, three sharing channels (see the .mli
   for the soundness argument):

   - all runs share the model's manager, so computed-table entries
     (back images above all) carry across properties;
   - everything established unconditionally -- finally-proved goods and
     converged XICI conjunctions, which are inductive and implied by
     init no matter what property seeded them -- pools up and reaches
     later runs as assisting conjuncts;
   - goods of not-yet-decided properties are speculatively assumed
     (opt-in): Pi's goods become AS => g, and a Proved under a nonempty
     AS is only conditional, tracked by the indices its assumptions
     came from.  Speculation is off by default: the transformed good
     ¬AS \/ g is a monolithic BDD over every assumed property's
     variables, so a backward traversal must track all of them at once
     -- on the example families that costs far more than the
     assumptions save (fifo-10: ~200s speculative vs ~0.01s pooled).

   Resolution after the sweep: discharge conditionals whose
   dependencies all proved; recheck (re-run, no speculation) any
   conditional with a refuted dependency, or one member of a residual
   dependency cycle.  Each step finalises a property, so this
   terminates in at most n rechecks. *)

type property = { pname : string; goods : Bdd.t list }

let of_goods ?(names = []) (model : Model.t) =
  List.mapi
    (fun i g ->
      let pname =
        match List.nth_opt names i with
        | Some n -> n
        | None -> Printf.sprintf "p%d" i
      in
      { pname; goods = [ g ] })
    model.Model.good

type item = {
  prop : property;
  report : Report.t;
  speculative : Report.t option;
  assumed : int list;
  rechecked : bool;
}

type stats = {
  invariants_shared : int;
  invariants_speculated : int;
  speculations_refuted : int;
  rechecks : int;
}

let zero_stats =
  {
    invariants_shared = 0;
    invariants_speculated = 0;
    speculations_refuted = 0;
    rechecks = 0;
  }

let add_stats a b =
  {
    invariants_shared = a.invariants_shared + b.invariants_shared;
    invariants_speculated = a.invariants_speculated + b.invariants_speculated;
    speculations_refuted = a.speculations_refuted + b.speculations_refuted;
    rechecks = a.rechecks + b.rechecks;
  }

type result = {
  items : item list;
  stats : stats;
  domains_used : int;
  wall_time_s : float;
}

let bump name k =
  if k > 0 then Obs.Registry.add (Obs.Registry.counter Obs.Registry.default name) k

(* The assisting pool is re-proved by every run it is injected into, so
   an unbounded pool would eventually drown the traversal in conjuncts;
   keep the oldest (most battle-tested) prefix. *)
let max_pool = 64

type verdict =
  | Pending
  | Conditional of Report.t * int list  (* transitive dependency indices *)
  | Final of Report.t

(* Verify one subset of the batch sequentially on [model]'s manager.
   [props] pairs each property with its index in the caller's original
   list; dependency tracking uses positions in [props] internally and
   translates back on the way out. *)
let run_seq ?limits ~meth ?xici_cfg ?termination ?var_choice ~speculate
    (model : Model.t) (props : (int * property) array) =
  let man = Model.man model in
  let n = Array.length props in
  let shared = ref 0
  and speculated = ref 0
  and refuted = ref 0
  and rechecks = ref 0 in
  let pool = ref [] in
  let pool_add gs =
    pool := Ici.Clist.of_list man (!pool @ gs);
    if List.length !pool > max_pool then
      pool := List.filteri (fun k _ -> k < max_pool) !pool
  in
  let harvest = function
    | Some derived -> pool_add (Ici.Clist.to_list derived)
    | None -> ()
  in
  let status = Array.make n Pending in
  let speculative = Array.make n None in
  let assumed = Array.make n [] in
  let was_rechecked = Array.make n false in
  let run_one i ~goods =
    let extra = !pool in
    shared := !shared + List.length extra;
    let sub =
      Model.make
        ~assisting:(model.Model.assisting @ extra)
        ~fd_candidates:model.Model.fd_candidates ~name:model.Model.name
        ~space:model.Model.space ~trans:model.Model.trans
        ~init:model.Model.init ~good:goods ()
    in
    let report, derived =
      match meth with
      | Runner.Xici ->
        Xici.run_full ?limits ?cfg:xici_cfg ?termination ?var_choice sub
      | m -> (Runner.run ?limits ?xici_cfg ?termination m sub, None)
    in
    ( Report.relabel report
        ~method_name:(Runner.name meth ^ "@" ^ (snd props.(i)).pname),
      derived )
  in
  (* First sweep, in the given order. *)
  for i = 0 to n - 1 do
    let asm =
      if not speculate then []
      else
        List.concat
          (List.init n (fun j ->
               if j = i then []
               else
                 match status.(j) with
                 | Pending -> [ ([ j ], (snd props.(j)).goods) ]
                 | Conditional (_, deps) when not (List.mem i (j :: deps)) ->
                   (* assuming a conditionally-proved good inherits its
                      dependencies; the guard keeps i out of its own
                      transitive closure *)
                   [ (j :: deps, (snd props.(j)).goods) ]
                 | Conditional _ | Final _ -> []))
    in
    let as_bdds = List.concat_map snd asm in
    let deps = List.sort_uniq compare (List.concat_map fst asm) in
    speculated := !speculated + List.length as_bdds;
    assumed.(i) <- deps;
    let goods =
      if as_bdds = [] then (snd props.(i)).goods
      else
        let nasb = Bdd.bnot man (Bdd.conj man as_bdds) in
        List.map (fun g -> Bdd.bor man nasb g) (snd props.(i)).goods
    in
    let report, derived = run_one i ~goods in
    match report.Report.status with
    | Report.Proved ->
      harvest derived;
      if deps = [] then begin
        status.(i) <- Final report;
        pool_add (snd props.(i)).goods
      end
      else status.(i) <- Conditional (report, deps)
    | Report.Violated _ | Report.Exceeded _ ->
      (* Genuine even under speculation: the end state violates some
         AS => g, hence the original g. *)
      status.(i) <- Final report
  done;
  (* Resolve conditional verdicts to a fixpoint. *)
  let finally_proved j =
    match status.(j) with Final r -> Report.is_proved r | _ -> false
  in
  let finally_decided j =
    match status.(j) with Final _ -> true | _ -> false
  in
  let refuted_deps deps =
    List.filter (fun j -> finally_decided j && not (finally_proved j)) deps
  in
  let recheck i =
    (match status.(i) with
    | Conditional (r, _) -> speculative.(i) <- Some r
    | Pending | Final _ -> ());
    was_rechecked.(i) <- true;
    incr rechecks;
    let report, derived = run_one i ~goods:(snd props.(i)).goods in
    (match report.Report.status with
    | Report.Proved ->
      harvest derived;
      pool_add (snd props.(i)).goods
    | Report.Violated _ | Report.Exceeded _ -> ());
    status.(i) <- Final report
  in
  let conditionals () =
    List.filter
      (fun i -> match status.(i) with Conditional _ -> true | _ -> false)
      (List.init n Fun.id)
  in
  let rec resolve () =
    match conditionals () with
    | [] -> ()
    | conds ->
      let dischargeable =
        List.filter
          (fun i ->
            match status.(i) with
            | Conditional (_, deps) -> List.for_all finally_proved deps
            | _ -> false)
          conds
      in
      if dischargeable <> [] then begin
        List.iter
          (fun i ->
            match status.(i) with
            | Conditional (r, _) ->
              status.(i) <- Final r;
              pool_add (snd props.(i)).goods
            | Pending | Final _ -> ())
          dischargeable;
        resolve ()
      end
      else begin
        let tainted =
          List.filter
            (fun i ->
              match status.(i) with
              | Conditional (_, deps) -> refuted_deps deps <> []
              | _ -> false)
            conds
        in
        let victim =
          (* no taint and no discharge means every remaining dependency
             is itself conditional: a cycle.  Recheck its first member;
             the rerun's unconditional verdict unblocks the rest. *)
          match tainted with i :: _ -> i | [] -> List.hd conds
        in
        (match status.(victim) with
        | Conditional (_, deps) ->
          refuted := !refuted + List.length (refuted_deps deps)
        | Pending | Final _ -> ());
        recheck victim;
        resolve ()
      end
  in
  resolve ();
  bump "batch.invariants_shared" !shared;
  bump "batch.invariants_speculated" !speculated;
  bump "batch.speculations_refuted" !refuted;
  bump "batch.rechecks" !rechecks;
  let items =
    List.init n (fun i ->
        let idx, prop = props.(i) in
        let report =
          match status.(i) with
          | Final r -> r
          | Pending | Conditional _ -> assert false
        in
        ( idx,
          {
            prop;
            report;
            speculative = speculative.(i);
            assumed = List.map (fun k -> fst props.(k)) assumed.(i);
            rechecked = was_rechecked.(i);
          } ))
  in
  ( items,
    {
      invariants_shared = !shared;
      invariants_speculated = !speculated;
      speculations_refuted = !refuted;
      rechecks = !rechecks;
    } )

let run ?limits ?(meth = Runner.Xici) ?xici_cfg ?termination ?var_choice
    ?(speculate = false) ?(domains = 1) (model : Model.t) props =
  let t0 = Unix.gettimeofday () in
  let finish ~domains_used items stats =
    { items; stats; domains_used; wall_time_s = Unix.gettimeofday () -. t0 }
  in
  let n = List.length props in
  if n = 0 then finish ~domains_used:0 [] zero_stats
  else if domains <= 1 || n = 1 then begin
    let indexed = Array.of_list (List.mapi (fun i p -> (i, p)) props) in
    let items, stats =
      run_seq ?limits ~meth ?xici_cfg ?termination ?var_choice ~speculate
        model indexed
    in
    finish ~domains_used:1 (List.map snd items) stats
  end
  else begin
    (* Ship the whole batch as one frozen model whose good list
       concatenates every property's conjuncts (freeze/thaw preserves
       the list exactly), and let each worker domain slice its share
       back out of its private thawed copy. *)
    let lens = List.map (fun p -> List.length p.goods) props in
    let names = List.map (fun p -> p.pname) props in
    let combined =
      Model.make ~assisting:model.Model.assisting
        ~fd_candidates:model.Model.fd_candidates ~name:model.Model.name
        ~space:model.Model.space ~trans:model.Model.trans
        ~init:model.Model.init
        ~good:(List.concat_map (fun p -> p.goods) props)
        ()
    in
    let frozen = Parallel.freeze combined in
    let d = min domains n in
    let buckets = Array.make d [] in
    List.iteri (fun i _ -> buckets.(i mod d) <- i :: buckets.(i mod d)) props;
    let work bucket () =
      let local = Parallel.thaw frozen in
      let local_props =
        let rec split goods lens names acc =
          match (lens, names) with
          | [], [] -> List.rev acc
          | l :: lens, pname :: names ->
            let rec take k gs acc' =
              if k = 0 then (List.rev acc', gs)
              else
                match gs with
                | g :: tl -> take (k - 1) tl (g :: acc')
                | [] -> invalid_arg "Batch: thawed good list too short"
            in
            let mine, rest = take l goods [] in
            split rest lens names ({ pname; goods = mine } :: acc)
          | _ -> invalid_arg "Batch: length mismatch"
        in
        Array.of_list (split local.Model.good lens names [])
      in
      let subset =
        Array.of_list (List.map (fun i -> (i, local_props.(i))) bucket)
      in
      run_seq ?limits ~meth ?xici_cfg ?termination ?var_choice ~speculate
        local subset
    in
    (* Re-install the spawning domain's tracer and ambient attributes
       (domain-local state) so batch-worker spans keep their job's
       trace id — see the matching note in Parallel.portfolio. *)
    let tracer = Obs.Tracer.global () in
    let span_attrs = Obs.Tracer.current_attrs () in
    let doms =
      Array.map
        (fun b ->
          Domain.spawn (fun () ->
              Obs.Tracer.with_global tracer (fun () ->
                  Obs.Tracer.with_attrs span_attrs (work (List.rev b)))))
        buckets
    in
    let parts = Array.to_list (Array.map Domain.join doms) in
    let items =
      List.concat_map fst parts
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.map snd
    in
    let stats = List.fold_left add_stats zero_stats (List.map snd parts) in
    finish ~domains_used:d items stats
  end
