(** Log source for the verification methods ("mc"). *)

val src : Logs.src

val iteration :
  meth:string -> iteration:int -> conjuncts:int -> nodes:int -> unit
(** Debug-level per-iteration report. *)

val attempt : label:string -> detail:string -> unit
(** Info-level resilient-driver attempt report. *)
