(** Log source for the verification methods ("mc"). *)

val src : Logs.src

val iteration :
  meth:string ->
  iteration:int ->
  conjuncts:int ->
  nodes:int ->
  elapsed_s:float ->
  live_nodes:int ->
  unit
(** Debug-level per-iteration report.  [elapsed_s] is monotonic time
    since the method started, [live_nodes] the manager's live-node count
    at the top of the iteration.  Also appends an [Obs.Iterlog] row and
    bumps the ["mc.iterations"] registry counter, so telemetry consumers
    see the same record. *)

val attempt : label:string -> detail:string -> unit
(** Info-level resilient-driver attempt report. *)

val degraded : what:string -> detail:string -> unit
(** Warning-level report that a recovery path degraded gracefully
    (e.g. a corrupt checkpoint was ignored and the run started cold). *)
