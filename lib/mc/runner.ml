(* Uniform dispatch over the five verification methods compared in the
   paper's tables. *)

type meth = Forward | Backward | Fd | Ici | Xici | Idi | Explicit

let all = [ Forward; Backward; Fd; Ici; Xici; Idi; Explicit ]

(* The methods the paper's tables compare (IDI is this library's
   extension). *)
let paper_methods = [ Forward; Backward; Fd; Ici; Xici ]

let name = function
  | Forward -> "Fwd"
  | Backward -> "Bkwd"
  | Fd -> "FD"
  | Ici -> "ICI"
  | Xici -> "XICI"
  | Idi -> "IDI"
  | Explicit -> "Expl"

let of_name s =
  match String.lowercase_ascii s with
  | "fwd" | "forward" -> Some Forward
  | "bkwd" | "backward" -> Some Backward
  | "fd" -> Some Fd
  | "ici" -> Some Ici
  | "xici" -> Some Xici
  | "idi" -> Some Idi
  | "expl" | "explicit" -> Some Explicit
  | _ -> None

(* The checkpoint/resume options only apply to XICI (the only method
   with serializable fixpoint state); other methods ignore them, as
   they do the XICI-only [var_choice]/[evaluator] knobs. *)
let run ?limits ?xici_cfg ?termination ?var_choice ?evaluator
    ?checkpoint_path ?checkpoint_every ?resume_from meth model =
  match meth with
  | Forward -> Forward.run ?limits model
  | Backward -> Backward.run ?limits model
  | Fd -> Fd.run ?limits model
  | Ici -> Ici_method.run ?limits model
  | Xici ->
    Xici.run ?limits ?cfg:xici_cfg ?termination ?var_choice ?evaluator
      ?checkpoint_path ?checkpoint_every ?resume_from model
  | Idi -> Forward_idi.run ?limits ?cfg:xici_cfg model
  | Explicit -> Explicit.run ?limits model
