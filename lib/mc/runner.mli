(** Uniform dispatch over the five methods of the paper's tables. *)

type meth = Forward | Backward | Fd | Ici | Xici | Idi | Explicit

val all : meth list

val paper_methods : meth list
(** The five methods of the paper's tables ([Idi] and [Explicit] are
    extensions: the De Morgan dual and the Murphi-style hash-table
    baseline of the paper's introduction). *)

val name : meth -> string
val of_name : string -> meth option

val run :
  ?limits:(Bdd.man -> Limits.t) ->
  ?xici_cfg:Ici.Policy.config ->
  ?termination:Xici.termination ->
  ?var_choice:Ici.Tautology.var_choice ->
  ?evaluator:Ici.Policy.evaluator ->
  ?checkpoint_path:string ->
  ?checkpoint_every:int ->
  ?resume_from:Checkpoint.t ->
  meth ->
  Model.t ->
  Report.t
(** The checkpoint/resume options apply to [Xici] only (the only method
    with serializable fixpoint state); other methods ignore them, as
    they do the XICI-only [var_choice] and [evaluator] knobs. *)
