(** Shared-nothing parallel verification on OCaml 5 domains.

    BDD managers are single-domain, so nothing here ever shares one:
    models are shipped between domains as immutable frozen strings
    (declaration replay + a {!Bdd.Serialize} block) and every worker
    rebuilds its own private copy.

    Observability: workers report into the (domain-safe)
    [Obs.Registry.default] under ["parallel.*"], and each portfolio
    config runs inside a ["parallel.config"] trace span tagged with the
    domain that ran it. *)

exception Corrupt of string
(** A frozen model failed to parse (freeze/thaw version skew or
    in-memory corruption). *)

(** {1 Model freeze / thaw} *)

type frozen = string
(** An immutable, domain-shareable snapshot of a {!Model.t} (strings
    are immutable, so any number of domains may thaw the same one; it
    can also be written to disk and thawed in another process). *)

val freeze : Model.t -> frozen

val thaw : ?cache_budget:int -> ?on_manager:(Bdd.man -> unit) -> frozen -> Model.t
(** Rebuild the model in a fresh manager (fresh space, fresh transition
    relation).  Levels, variable names, conjunct structure and
    fd-candidates are preserved exactly; [cache_budget] is forwarded to
    the new manager.  [on_manager] is called with the fresh manager
    {e before} any reconstruction, so supervised callers can install
    progress/fault hooks that fire during the rebuild itself (on a
    large model, deserialization plus the transition relation is long
    enough to read as a hang otherwise); a hook that raises aborts the
    thaw with that exception. *)

(** {1 Portfolio mode} *)

type config = {
  label : string;
  meth : Runner.meth;
  xici_cfg : Ici.Policy.config option;
  termination : Xici.termination option;
  var_choice : Ici.Tautology.var_choice option;
}
(** One portfolio entry: a method plus its XICI-only knobs. *)

val config :
  ?label:string ->
  ?xici_cfg:Ici.Policy.config ->
  ?termination:Xici.termination ->
  ?var_choice:Ici.Tautology.var_choice ->
  Runner.meth ->
  config
(** [label] defaults to the method name. *)

val default_portfolio : config list
(** XICI policy/termination variants mixed with the monolithic methods;
    ordered so the first few domains grab the usually-best configs. *)

type result = {
  winner : (config * Report.t) option;
      (** the first config to reach a sound verdict, with its report *)
  reports : (config * Report.t) list;
      (** every config that ran, in portfolio order; losers cancelled
          mid-run carry [Exceeded "cancelled by portfolio"], and a
          config whose worker died of an unexpected exception carries
          [Exceeded "worker crashed: ..."] (one crashing config never
          tears down the others) *)
  domains_used : int;
  wall_time_s : float;
}

val decided : Report.t -> bool
(** Proved or Violated (a sound verdict, as opposed to Exceeded). *)

val portfolio :
  ?domains:int ->
  ?configs:config list ->
  ?limits:(Bdd.man -> Limits.t) ->
  ?cache_budget:int ->
  ?should_cancel:(unit -> bool) ->
  ?on_progress:(live:int -> unit) ->
  ?iter_sink:(Obs.Iterlog.row -> unit) ->
  Model.t ->
  result
(** Run [configs] (default {!default_portfolio}) concurrently on
    [domains] worker domains (default 2), each on a private thawed copy
    of the model.  The first sound verdict wins; the rest are cancelled
    via each worker manager's fault hook.  Every config is sound, so
    the winning verdict equals what a sequential run of any deciding
    config would return.  [limits] builds per-worker budgets against
    the worker's own manager.

    The work happens entirely in child domains on private managers, so
    hooks the caller installed on its own manager never fire during a
    portfolio run.  Supervised callers re-thread their liveness
    machinery with the three optional callbacks, each invoked {e from
    the worker domains} (so they must be domain-safe and must not
    raise): [should_cancel] is polled on every kernel step and between
    configs — once it returns [true], running configs abort with
    [Exceeded "cancelled"] and no further config starts;
    [on_progress ~live] fires at the kernel progress-hook cadence with
    the reporting worker's live-node count (a heartbeat);
    [iter_sink] receives every per-iteration {!Obs.Iterlog} row the
    workers record. *)

(** {1 Parallel pair scoring} *)

val pair_evaluator :
  ?min_conjuncts:int -> domains:int -> unit -> Ici.Policy.evaluator
(** An {!Ici.Policy.evaluator} that fans the Figure-1 O(n^2) pairwise
    scoring out to [domains] scratch-manager workers per merge round,
    transferring only the winning pair's BDD back.  Deterministic: the
    merged pair minimises (ratio, i, j) exactly like the sequential
    first-minimum rule, so the fixpoint trajectory is unchanged.
    Declines lists shorter than [min_conjuncts] (default 6) -- the
    freeze/thaw overhead needs a quadratic's worth of pairs to pay off
    -- letting {!Ici.Policy.improve} fall back to the sequential
    loop. *)
