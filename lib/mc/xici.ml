(* The extended ICI method of the paper (Section III): backward
   traversal over implicit conjunctions with

   - the automatic evaluation-and-simplification policy (Figure 1)
     applied to the concatenated list G_0 @ BackImages, so good
     conjunctions are found without user-supplied assisting invariants;
   - the exact termination test (implicit-disjunction tautology with
     Theorem-3 filtering and Shannon expansion).

   [termination] selects the test for the ablation benchmarks:
   - [`Exact_equal]   mutual implication (the paper's default);
   - [`Exact_implication] one-sided G_i => G_{i+1}, sufficient because
     the G_i are monotonically decreasing (noted but not exploited in
     the paper's implementation);
   - [`Pointwise]     the original ICI test (fast, may fail to detect). *)

type termination = [ `Exact_equal | `Exact_implication | `Pointwise ]

let lists_pointwise_equal a b =
  List.length a = List.length b && List.for_all2 Bdd.equal a b

(* [run_full] also returns the converged implicit conjunction (the
   automatically derived invariants) when the run proves the property.

   With [checkpoint_path] the fixpoint state is snapshotted every
   [checkpoint_every] iterations (at the top of the iteration, before
   any budget check, so a kill at any point loses at most the current
   iteration); with [resume_from] the traversal restarts from a
   snapshot instead of from G_0.  When resuming, [cfg] and
   [termination] default to the checkpointed values so the continued
   run uses the policy that produced the snapshot. *)
let run_full ?(limits = fun man -> Limits.unlimited man) ?cfg ?termination
    ?(var_choice = Ici.Tautology.First_top) ?tautology_stats ?evaluator
    ?checkpoint_path ?(checkpoint_every = 1) ?resume_from model =
  let cfg =
    match (cfg, resume_from) with
    | Some c, _ -> c
    | None, Some (cp : Checkpoint.t) -> cp.Checkpoint.cfg
    | None, None -> Ici.Policy.default
  in
  let termination =
    match (termination, resume_from) with
    | Some t, _ -> t
    | None, Some cp -> cp.Checkpoint.termination
    | None, None -> `Exact_equal
  in
  (match resume_from with
  | Some cp -> Checkpoint.check_compatible cp model
  | None -> ());
  let man = Model.man model in
  let trans = model.Model.trans in
  let lim = limits man in
  let baseline = Bdd.created_nodes man in
  let peak = Report.fresh_peak () in
  let iterations = ref 0 in
  let taut_stats =
    match tautology_stats with
    | Some s -> s
    | None -> Ici.Tautology.fresh_stats ()
  in
  let finish status =
    Report.make ~model:model.Model.name ~method_name:"XICI" ~status
      ~iterations:!iterations ~peak ~man ~baseline
      ~time_s:(Limits.elapsed lim)
  in
  (* Run-scoped caches: the policy's pair table survives across
     traversal iterations (pairs of unchanged conjuncts keep their
     scored conjunction), and the tautology memo accumulates verdicts
     across every termination test of the run. *)
  let policy_state = Ici.Policy.create_state () in
  let taut_memo = Ici.Tautology.create_memo () in
  let improve l = Ici.Policy.improve man ~state:policy_state ?evaluator cfg l in
  let converged l l' =
    match termination with
    | `Pointwise -> lists_pointwise_equal l l'
    | `Exact_implication ->
      Ici.Tautology.implies ~var_choice ~memo_table:taut_memo
        ~stats:taut_stats man l l'
    | `Exact_equal ->
      Ici.Tautology.equal ~var_choice ~memo_table:taut_memo ~stats:taut_stats
        man l l'
  in
  let final = ref None in
  let maybe_checkpoint l gs =
    match checkpoint_path with
    | Some path when !iterations mod max 1 checkpoint_every = 0 ->
      Checkpoint.save man path
        {
          Checkpoint.model_name = model.Model.name;
          nvars = Bdd.num_vars man;
          iterations = !iterations;
          cfg;
          termination;
          current = l;
          gs;
        }
    | Some _ | None -> ()
  in
  let tracer = Obs.Tracer.global () in
  Limits.with_guard lim man (fun () ->
    try
      let l0 = Ici.Clist.of_list man (Model.property model) in
      (* Each fixpoint iteration runs inside a span; the recursive call
         happens outside it (the step returns `Continue), so spans are
         siblings on the trace timeline rather than a nest as deep as
         the iteration count. *)
      let step l gs =
        maybe_checkpoint l gs;
        Limits.check_iteration lim man ~iteration:!iterations;
        Report.observe_set peak l;
        Log.iteration ~meth:"XICI" ~iteration:!iterations
          ~conjuncts:(Ici.Clist.length l)
          ~nodes:(Ici.Clist.shared_size l)
          ~elapsed_s:(Limits.elapsed lim) ~live_nodes:(Bdd.live_nodes man);
        match Ici.Clist.find_unimplied man model.Model.init l with
        | Some c ->
          let start =
            Trace.pick trans (Bdd.band man model.Model.init (Bdd.bnot man c))
          in
          `Done
            (finish
               (Report.Violated
                  (Trace.backward trans ~gs:(List.rev gs) ~start)))
        | None ->
          incr iterations;
          let back =
            Obs.Tracer.with_span tracer ~cat:"mc" "xici.back_image"
              (fun () -> List.map (Fsm.Trans.back_image trans) l)
          in
          let l' = improve (l0 @ back) in
          if Ici.Clist.is_false l' then begin
            (* Good states form an empty inductive core; any start state
               is a violation unless init is empty. *)
            match Ici.Clist.find_unimplied man model.Model.init l' with
            | Some c ->
              let start =
                Trace.pick trans
                  (Bdd.band man model.Model.init (Bdd.bnot man c))
              in
              `Done
                (finish
                   (Report.Violated
                      (Trace.backward trans ~gs:(List.rev (l' :: gs)) ~start)))
            | None -> `Done (finish Report.Proved)
          end
          else if converged l l' then begin
            final := Some l';
            `Done (finish Report.Proved)
          end
          else `Continue (l', l' :: gs)
      in
      let rec iterate l gs =
        let i = !iterations in
        match
          Obs.Tracer.with_span tracer ~cat:"mc"
            ~args:(fun () ->
              (* Evaluated at span close, so live_nodes reflects the
                 manager after the step — the number a post-mortem
                 wants when attributing a blowup to an iteration. *)
              [
                ("iteration", Obs.Json.Int i);
                ("conjuncts", Obs.Json.Int (Ici.Clist.length l));
                ("live_nodes", Obs.Json.Int (Bdd.live_nodes man));
              ])
            "xici.iteration"
            (fun () -> step l gs)
        with
        | `Done report -> report
        | `Continue (l', gs') -> iterate l' gs'
      in
      let report =
        match resume_from with
        | Some cp ->
          iterations := cp.Checkpoint.iterations;
          iterate cp.Checkpoint.current cp.Checkpoint.gs
        | None ->
          let start_list = improve l0 in
          iterate start_list [ start_list ]
      in
      (report, !final)
    with Limits.Exceeded why -> (finish (Report.Exceeded why), None))

let run ?limits ?cfg ?termination ?var_choice ?tautology_stats ?evaluator
    ?checkpoint_path ?checkpoint_every ?resume_from model =
  fst
    (run_full ?limits ?cfg ?termination ?var_choice ?tautology_stats
       ?evaluator ?checkpoint_path ?checkpoint_every ?resume_from model)
