(** Verification results with the measurements the paper tabulates:
    iterations to convergence, largest per-iteration set representation
    in BDD nodes (with the per-conjunct breakdown for implicit
    conjunctions), node-creation counts, wall time. *)

type trace = bool array list
(** A counterexample path; each state is an assignment indexed by BDD
    level (current-state levels are meaningful). *)

type status = Proved | Violated of trace | Exceeded of string

type t = {
  model : string;
  method_name : string;
  status : status;
  iterations : int;
  peak_set_nodes : int;
  peak_conjuncts : int list;
  nodes_created : int;
  peak_live_nodes : int;
  time_s : float;
}

val is_proved : t -> bool
val status_string : t -> string

val conjuncts_string : int list -> string
(** The paper's "(i x j nodes)" / "(a, b, c)" annotation. *)

val pp_row : Format.formatter -> t -> unit
val header : string

val relabel : t -> method_name:string -> t
(** The same report under a different method label (attempt logs tag
    rows with the attempt number and budget). *)

val to_json : t -> Obs.Json.t
(** Machine-readable row [{model, method, status, iterations,
    peak_set_nodes, peak_conjuncts, nodes_created, peak_live_nodes,
    wall_seconds}]; the status collapses to its verdict word (traces
    stay out of artifacts). *)

(** {1 Peak tracking used by the method implementations} *)

type peak

val fresh_peak : unit -> peak

val observe_set : peak -> Bdd.t list -> unit
(** Record a per-iteration set representation (singleton list for
    monolithic methods). *)

val make :
  model:string ->
  method_name:string ->
  status:status ->
  iterations:int ->
  peak:peak ->
  man:Bdd.man ->
  baseline:int ->
  time_s:float ->
  t
