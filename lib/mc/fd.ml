(* Forward traversal exploiting functional dependencies (the "FD" rows
   of Table 1), after Hu & Dill, DAC'93 [16].

   The reachable set R is stored as a reduced BDD r over the independent
   variables plus a list of dependencies v <-> f_v(others), so
   R = r /\ D.  The dependency conjuncts join the image computation's
   early-quantification schedule ([Fsm.Trans.image ~extra]), so the full
   R is never built.  Candidate dependent variables are user-specified
   (as in [16]); a candidate becomes dependent when
   r|v=1 /\ r|v=0 = false, with f_v = Restrict(r|v=1, r|v=1 \/ r|v=0).
   If a later image violates a recorded dependency it is folded back
   into r and may be re-detected with an updated function. *)

type dep = { lvl : int; func : Bdd.t }

let dep_conjunct man d = Bdd.biff man (Bdd.var man d.lvl) d.func

(* Detect new dependencies among [candidates] in the reduced set [r];
   returns the further-reduced set and the extended dependency list.
   A new dependency function must not mention an already-dependent
   variable: this keeps the dependency system acyclic, so together with
   the independent variables it determines every dependent variable
   uniquely (needed for the reduced union step to be exact). *)
let detect man r deps candidates =
  List.fold_left
    (fun (r, deps) v ->
      if List.exists (fun d -> d.lvl = v) deps || Bdd.is_false r then (r, deps)
      else begin
        let r1 = Bdd.cofactor man ~lvl:v ~value:true r in
        let r0 = Bdd.cofactor man ~lvl:v ~value:false r in
        if Bdd.is_false (Bdd.band man r1 r0) then begin
          let care = Bdd.bor man r0 r1 in
          let func =
            if Bdd.is_false care then Bdd.fls man else Bdd.restrict man r1 care
          in
          let mentions_dep f =
            List.exists
              (fun l -> List.exists (fun d -> d.lvl = l) deps)
              (Bdd.support f)
          in
          if mentions_dep func || mentions_dep care then (r, deps)
          else (care, { lvl = v; func } :: deps)
        end
        else (r, deps)
      end)
    (r, deps) candidates

(* R /\ extra-conjuncts /\ not c, built with early bail-out; used for the
   violation check and for trace reconstruction. *)
let conjoin_with_deps man parts =
  List.fold_left
    (fun acc p -> if Bdd.is_false acc then acc else Bdd.band man acc p)
    (Bdd.tru man) parts

let run ?(limits = fun man -> Limits.unlimited man) model =
  let man = Model.man model in
  let trans = model.Model.trans in
  let property = Ici.Clist.of_list man (Model.property model) in
  let lim = limits man in
  let baseline = Bdd.created_nodes man in
  let peak = Report.fresh_peak () in
  let iterations = ref 0 in
  let finish status =
    Report.make ~model:model.Model.name ~method_name:"FD" ~status
      ~iterations:!iterations ~peak ~man ~baseline
      ~time_s:(Limits.elapsed lim)
  in
  let find_violation r dconjs =
    List.fold_left
      (fun acc c ->
        match acc with
        | Some _ -> acc
        | None ->
          let bad =
            conjoin_with_deps man ((Bdd.bnot man c) :: r :: dconjs)
          in
          if Bdd.is_false bad then None else Some bad)
      None
      (Ici.Clist.to_list property)
  in
  (* rings: (reduced set, dependency conjuncts) per iteration, oldest
     first once reversed; trace walk mirrors Trace.forward with the
     membership test done against reduced set + dependencies. *)
  let trace_of rings bad_set =
    let levels = Fsm.Space.current_levels (Fsm.Trans.space trans) in
    let rings = Array.of_list (List.rev rings) in
    let bad = Trace.pick trans bad_set in
    let member (r, dconjs) env =
      Bdd.eval man env r && List.for_all (Bdd.eval man env) dconjs
    in
    let rec first_ring i = if member rings.(i) bad then i else first_ring (i + 1) in
    let rec walk i state acc =
      if i = 0 then state :: acc
      else begin
        let cube = Trace.state_cube man levels state in
        let r, dconjs = rings.(i - 1) in
        let preds =
          conjoin_with_deps man (Fsm.Trans.pre_image trans cube :: r :: dconjs)
        in
        let p = Trace.pick trans preds in
        walk (i - 1) p (state :: acc)
      end
    in
    walk (first_ring 0) bad []
  in
  Limits.with_guard lim man (fun () ->
    try
      let r0, deps0 = detect man model.Model.init [] model.Model.fd_candidates in
      let rec iterate r deps rings =
        Limits.check_iteration lim man ~iteration:!iterations;
        Log.iteration ~meth:"FD" ~iteration:!iterations
          ~conjuncts:(1 + List.length deps)
          ~nodes:(Bdd.size_list (r :: List.map (fun d -> d.func) deps))
          ~elapsed_s:(Limits.elapsed lim) ~live_nodes:(Bdd.live_nodes man);
        let dconjs = List.map (dep_conjunct man) deps in
        Report.observe_set peak (r :: List.map (fun d -> d.func) deps);
        match find_violation r dconjs with
        | Some bad -> finish (Report.Violated (trace_of ((r, dconjs) :: rings) bad))
        | None ->
          incr iterations;
          let img = Fsm.Trans.image ~extra:dconjs trans r in
          (* Keep only the dependencies the new states still respect. *)
          let kept, broken =
            List.partition
              (fun d -> Bdd.implies man img (dep_conjunct man d))
              deps
          in
          let r =
            List.fold_left
              (fun r d -> Bdd.band man r (dep_conjunct man d))
              r broken
          in
          let kept_levels = Bdd.varset man (List.map (fun d -> d.lvl) kept) in
          let img_red = Bdd.exists man kept_levels img in
          let r' = Bdd.bor man r img_red in
          if Bdd.equal r' r && broken = [] then finish Report.Proved
          else begin
            let r'', deps' = detect man r' kept model.Model.fd_candidates in
            iterate r'' deps' ((r, dconjs) :: rings)
          end
      in
      iterate r0 deps0 []
    with Limits.Exceeded why -> finish (Report.Exceeded why))
