(* Shared log source for the verification methods: per-iteration debug
   lines (set level Debug, e.g. via icv --verbose, to watch set sizes
   evolve).  Every iteration is also recorded into Obs.Iterlog so the
   post-run summary and bench snapshots can render the per-iteration
   breakdown, and counted into the "mc.iterations" registry metric. *)

let src = Logs.Src.create "mc" ~doc:"icbdd verification methods"

module L = (val Logs.src_log src : Logs.LOG)

let m_iterations = Obs.Registry.counter Obs.Registry.default "mc.iterations"
let g_live = Obs.Registry.gauge Obs.Registry.default "mc.peak_live_nodes"

let iteration ~meth ~iteration ~conjuncts ~nodes ~elapsed_s ~live_nodes =
  Obs.Registry.incr m_iterations;
  Obs.Registry.set_max g_live (float_of_int live_nodes);
  Obs.Iterlog.record
    { Obs.Iterlog.meth; iteration; conjuncts; nodes; elapsed_s; live_nodes };
  L.debug (fun m ->
      m "%s iteration %d: %d conjunct(s), %d shared nodes, %.3fs, %d live"
        meth iteration conjuncts nodes elapsed_s live_nodes)

let attempt ~label ~detail =
  L.info (fun m -> m "attempt %s: %s" label detail)

let degraded ~what ~detail =
  L.warn (fun m -> m "%s degraded: %s" what detail)
