(* Shared log source for the verification methods: per-iteration debug
   lines (set level Debug, e.g. via icv --verbose, to watch set sizes
   evolve). *)

let src = Logs.Src.create "mc" ~doc:"icbdd verification methods"

module L = (val Logs.src_log src : Logs.LOG)

let iteration ~meth ~iteration ~conjuncts ~nodes =
  L.debug (fun m ->
      m "%s iteration %d: %d conjunct(s), %d shared nodes" meth iteration
        conjuncts nodes)

let attempt ~label ~detail =
  L.info (fun m -> m "attempt %s: %s" label detail)
