(* Span-based structured tracer.  [with_span] times a region on the
   monotonic clock and reports a completed span to every installed
   sink; [instant] reports a point event.  With no sinks installed the
   cost is two physical-equality checks, so instrumentation can stay in
   the fixpoint loops unconditionally.

   Two sinks ship: a JSONL writer (one event object per line, trivially
   greppable and machine-parseable) and a Chrome trace_event exporter
   ("ph":"X" complete events, microsecond timestamps) that loads
   directly in chrome://tracing and Perfetto. *)

type span = {
  name : string;
  cat : string;
  dom : int;  (* id of the domain that ran the region *)
  ts_ns : int64;  (* start, monotonic *)
  dur_ns : int64;
  args : (string * Json.t) list;
}

type instant = {
  i_name : string;
  i_cat : string;
  i_dom : int;
  i_ts_ns : int64;
  i_args : (string * Json.t) list;
}

type sink = {
  on_span : span -> unit;
  on_instant : instant -> unit;
  flush : unit -> unit;
}

(* Sinks write to shared out_channels, so event emission and flushing
   are serialised by [mu]: spans from parallel worker domains interleave
   whole events, never bytes.  The sinkless fast path stays lock-free
   (reading [sinks] unlocked is a benign race: sinks are installed
   before domains are spawned). *)
type t = { mutable sinks : sink list; epoch_ns : int64; mu : Mutex.t }

(* [epoch_ns] lets several tracers share one timeline: the daemon's
   per-job trace files are appended to across retry attempts, each
   attempt with a fresh tracer, and a shared epoch (the job's admission
   time) keeps timestamps monotonic across the whole file. *)
let create ?epoch_ns () =
  let epoch_ns =
    match epoch_ns with Some e -> e | None -> Clock.now_ns ()
  in
  { sinks = []; epoch_ns; mu = Mutex.create () }

let self_dom () = (Domain.self () :> int)

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* The disabled tracer: shared, sinkless, and the default global. *)
let disabled = create ()

let add_sink t sink = t.sinks <- t.sinks @ [ sink ]
let enabled t = t.sinks <> []

(* The process-wide tracer is what built-in instrumentation reports to
   by default, from every domain (so portfolio worker spans land on the
   main trace, one Perfetto row per domain).  [with_global] installs a
   *domain-local* override on top: a worker swapping tracers (e.g. the
   fuzz telemetry oracle, whose sink channel it also owns and closes)
   must not redirect the other domains' spans, or restore a tracer
   whose channel another domain has since closed. *)
let the_tracer = ref disabled
let override : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let global () =
  match Domain.DLS.get override with Some t -> t | None -> !the_tracer

let set_global t = the_tracer := t

let with_global t f =
  let saved = Domain.DLS.get override in
  Domain.DLS.set override (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set override saved) f

(* Ambient attributes: a domain-local key/value context appended to
   every span and instant emitted while the scope is active.  This is
   how a correlation id set once at job dispatch reaches spans emitted
   deep inside the fixpoint loops without threading a parameter through
   every layer.  Like [override] it is domain-local, so child domains
   must re-install it (see Mc.Parallel / Mc.Batch). *)
let ambient : (string * Json.t) list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let current_attrs () = Domain.DLS.get ambient

let with_attrs attrs f =
  let saved = Domain.DLS.get ambient in
  Domain.DLS.set ambient (saved @ attrs);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient saved) f

let no_args () = []

(* Explicit args first: Json.member returns the first match, so a span
   can shadow an ambient key. *)
let merged_args args =
  match Domain.DLS.get ambient with [] -> args () | amb -> args () @ amb

let emit_span t ~name ~cat ~args ~ts_ns ~dur_ns =
  let span =
    { name; cat; dom = self_dom (); ts_ns; dur_ns; args = merged_args args }
  in
  locked t (fun () -> List.iter (fun s -> s.on_span span) t.sinks)

(* Report a region that was timed externally (e.g. a job's queue wait,
   measured between two threads of control).  [ts_ns] is on the same
   monotonic clock as [Clock.now_ns], so the span lands at the right
   place on the timeline relative to live spans. *)
let span_at t ?(cat = "icv") ?(args = no_args) name ~ts_ns ~dur_ns =
  if t.sinks != [] then emit_span t ~name ~cat ~args ~ts_ns ~dur_ns

let with_span t ?(cat = "icv") ?(args = no_args) name f =
  if t.sinks == [] then f ()
  else begin
    let ts_ns = Clock.now_ns () in
    (* Fun.protect: a span that ends by exception (budget exceeded,
       fuel exhausted) still closes, so traces of killed runs load. *)
    Fun.protect
      ~finally:(fun () ->
        let dur_ns = Int64.sub (Clock.now_ns ()) ts_ns in
        emit_span t ~name ~cat ~args ~ts_ns ~dur_ns)
      f
  end

let instant t ?(cat = "icv") ?(args = no_args) name =
  if t.sinks != [] then begin
    let ev =
      {
        i_name = name;
        i_cat = cat;
        i_dom = self_dom ();
        i_ts_ns = Clock.now_ns ();
        i_args = merged_args args;
      }
    in
    locked t (fun () -> List.iter (fun s -> s.on_instant ev) t.sinks)
  end

let flush t = locked t (fun () -> List.iter (fun s -> s.flush ()) t.sinks)

(* Microseconds relative to the tracer's epoch, as a float to keep
   sub-microsecond resolution in Perfetto's timeline. *)
let rel_us epoch ns = Int64.to_float (Int64.sub ns epoch) /. 1e3

let args_json = function
  | [] -> []
  | args -> [ ("args", Json.Obj args) ]

(* --- JSONL sink ------------------------------------------------------ *)

let flush_out oc = try Stdlib.flush oc with Sys_error _ -> ()

let jsonl_sink t oc =
  let line j =
    output_string oc (Json.to_string j);
    output_char oc '\n'
  in
  {
    on_span =
      (fun s ->
        line
          (Json.Obj
             ([
                ("type", Json.String "span");
                ("name", Json.String s.name);
                ("cat", Json.String s.cat);
                ("dom", Json.Int s.dom);
                ("ts_us", Json.Float (rel_us t.epoch_ns s.ts_ns));
                ("dur_us", Json.Float (Int64.to_float s.dur_ns /. 1e3));
              ]
             @ args_json s.args)));
    on_instant =
      (fun i ->
        line
          (Json.Obj
             ([
                ("type", Json.String "instant");
                ("name", Json.String i.i_name);
                ("cat", Json.String i.i_cat);
                ("dom", Json.Int i.i_dom);
                ("ts_us", Json.Float (rel_us t.epoch_ns i.i_ts_ns));
              ]
             @ args_json i.i_args)));
    flush = (fun () -> flush_out oc);
  }

(* --- Chrome trace_event sink ----------------------------------------- *)

(* Streams a JSON array of trace events.  Events are written as they
   complete ("ph":"X" with ts+dur), so nesting is reconstructed by the
   viewer from timestamps; [flush] closes the array. *)
let chrome_sink t oc =
  let first = ref true in
  let closed = ref false in
  output_string oc "[\n";
  let event fields =
    if not !closed then begin
      if !first then first := false else output_string oc ",\n";
      output_string oc (Json.to_string (Json.Obj fields))
    end
  in
  (* By default the originating domain becomes the trace thread id, so
     Perfetto lays parallel workers out as separate tracks.  Events
     carrying a "job" attribute (set ambiently by the daemon's worker
     pool) instead get a per-job track: every span of one job lines up
     on one named row even when retries land on different domains. *)
  let job_tids : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let tid_of args dom =
    match List.assoc_opt "job" args with
    | Some (Json.String j) ->
        (match Hashtbl.find_opt job_tids j with
        | Some tid -> tid
        | None ->
            let tid = 1000 + Hashtbl.length job_tids in
            Hashtbl.add job_tids j tid;
            event
              [
                ("name", Json.String "thread_name");
                ("ph", Json.String "M");
                ("pid", Json.Int 1);
                ("tid", Json.Int tid);
                ("args", Json.Obj [ ("name", Json.String ("job " ^ j)) ]);
              ];
            tid)
    | _ -> dom
  in
  let common name cat tid ts_ns =
    [
      ("name", Json.String name);
      ("cat", Json.String cat);
      ("ts", Json.Float (rel_us t.epoch_ns ts_ns));
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
    ]
  in
  {
    on_span =
      (fun s ->
        event
          (common s.name s.cat (tid_of s.args s.dom) s.ts_ns
          @ [
              ("ph", Json.String "X");
              ("dur", Json.Float (Int64.to_float s.dur_ns /. 1e3));
            ]
          @ args_json s.args));
    on_instant =
      (fun i ->
        event
          (common i.i_name i.i_cat (tid_of i.i_args i.i_dom) i.i_ts_ns
          @ [ ("ph", Json.String "i"); ("s", Json.String "t") ]
          @ args_json i.i_args));
    flush =
      (fun () ->
        if not !closed then begin
          closed := true;
          output_string oc "\n]\n";
          flush_out oc
        end);
  }
