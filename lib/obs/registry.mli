(** Metrics registry: named counters, gauges and log2-bucketed
    histograms, safe to update from any domain (counters and gauges are
    atomic cells; histograms, interning, snapshots and resets are
    mutex-guarded).

    Handles are interned by name — [counter reg "x"] always returns the
    same cell — so instrument sites may re-resolve by name instead of
    threading handles.  [reset] zeroes values but keeps cells valid. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val default : t
(** The process-wide registry every built-in instrument reports into;
    [icv --stats] and the bench snapshots read it back out. *)

(** {2 Handles} *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

(** {2 Updates — hot-path safe} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Raise the gauge to [v] if below it (peak tracking). *)

val observe : histogram -> int -> unit
(** Record a nonnegative sample into its log2 bucket: bucket [i] counts
    samples in [2^(i-1), 2^i); negatives clamp to 0. *)

(** {2 Reads} *)

val count : counter -> int
val counter_name : counter -> string
val value : gauge -> float
val gauge_name : gauge -> string
val histogram_name : histogram -> string
val histogram_count : histogram -> int
val histogram_sum : histogram -> int
val histogram_max : histogram -> int
val histogram_mean : histogram -> float

val histogram_buckets : histogram -> (int * int) list
(** Nonzero [(bucket_upper_bound, count)] pairs, ascending. *)

val histogram_stats : histogram -> int * int * int * (int * int) list
(** [(count, sum, max, buckets)] read under a single lock acquisition —
    the only way to get a consistent view against concurrent [observe]
    or [reset]; composing the individual accessors can tear. *)

val histogram_percentile : histogram -> float -> float
(** [histogram_percentile h q] estimates the [q]-quantile (0..1) by
    linear interpolation within the log2 bucket holding the q-th
    sample; the top bucket is clamped to the observed max.  Error is
    bounded by the bucket width.  0.0 on an empty histogram. *)

(** {2 Snapshots} *)

type entry =
  | Counter of string * int
  | Gauge of string * float
  | Histogram of string * int * int * int * (int * int) list
      (** name, count, sum, max, buckets *)

val snapshot : t -> entry list
(** All entries in first-registration order. *)

val to_json : t -> Json.t
(** Snapshot as one JSON object keyed by metric name. *)

val reset : t -> unit
(** Zero every metric; existing handles remain valid. *)
