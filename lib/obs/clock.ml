(* Monotonic wall-clock readings; see the stub in monotonic_stubs.c.
   The epoch is arbitrary (boot time on Linux), so readings are only
   meaningful as differences. *)

external now_ns : unit -> int64 = "icv_monotonic_now_ns"

let now () = Int64.to_float (now_ns ()) /. 1e9
