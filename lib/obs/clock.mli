(** Monotonic clock (CLOCK_MONOTONIC), immune to NTP steps and manual
    clock changes.  The epoch is arbitrary: readings are only meaningful
    as differences. *)

val now_ns : unit -> int64
(** Nanoseconds since an arbitrary fixed epoch; never decreases. *)

val now : unit -> float
(** Seconds since an arbitrary fixed epoch; never decreases. *)
