(** Per-iteration fixpoint records, fed by [Mc.Log.iteration] and read
    back by the post-run summary and bench snapshots.  One global run
    buffer; the caller clears it between runs. *)

type row = {
  meth : string;
  iteration : int;
  conjuncts : int;
  nodes : int;
  elapsed_s : float;  (** since the method's own start, monotonic *)
  live_nodes : int;  (** manager live-node peak when the row was taken *)
}

val record : row -> unit
val rows : unit -> row list
(** In recording order. *)

val clear : unit -> unit
val to_json : unit -> Json.t
