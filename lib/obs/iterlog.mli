(** Per-iteration fixpoint records, fed by [Mc.Log.iteration] and read
    back by the post-run summary and bench snapshots.  One run buffer
    {e per domain} (worker domains do not interleave rows into the main
    domain's buffer); the caller clears its own domain's buffer between
    runs. *)

type row = {
  meth : string;
  iteration : int;
  conjuncts : int;
  nodes : int;
  elapsed_s : float;  (** since the method's own start, monotonic *)
  live_nodes : int;  (** manager live-node peak when the row was taken *)
}

val record : row -> unit
(** Append to the calling domain's buffer, and feed the domain's sink
    first, if one is installed. *)

val rows : unit -> row list
(** The calling domain's rows, in recording order. *)

val clear : unit -> unit

val set_sink : (row -> unit) option -> unit
(** Install (or remove) a streaming callback for the calling domain:
    every subsequent {!record} in this domain calls it before
    buffering.  Used by resident workers to stream per-iteration
    progress while the run is still going.  The sink must not raise. *)

val to_json : unit -> Json.t
