(* Minimal JSON values for telemetry artifacts: the trace sinks, the
   metrics snapshots and the bench JSON tables all go through this one
   printer, and the fuzz losslessness oracle and the bench-regression
   checker go through the parser.  Deliberately tiny (no external
   dependency): objects are association lists in insertion order,
   integers and floats are kept distinct so a parse of printed output
   reproduces the original value exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- printing -------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats print at full precision; a fractionless rendering gets a
   trailing ".0" so the value parses back as a Float, not an Int (the
   losslessness contract).  Non-finite floats have no JSON encoding and
   degrade to null. *)
let float_to buf f =
  match Float.classify_float f with
  | FP_infinite | FP_nan -> Buffer.add_string buf "null"
  | _ ->
    let s = Printf.sprintf "%.17g" f in
    Buffer.add_string buf s;
    if String.for_all (fun c -> c <> '.' && c <> 'e' && c <> 'E') s then
      Buffer.add_string buf ".0"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> float_to buf f
  | String s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* --- parsing --------------------------------------------------------- *)

type cursor = { src : string; mutable pos : int }

let fail cur fmt =
  Printf.ksprintf
    (fun s -> raise (Parse_error (Printf.sprintf "%s at offset %d" s cur.pos)))
    fmt

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance cur;
    skip_ws cur
  | _ -> ()

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | Some c' -> fail cur "expected %C, found %C" c c'
  | None -> fail cur "expected %C, found end of input" c

let literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.src
    && String.sub cur.src cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur "bad literal"

(* UTF-8 encode a \uXXXX escape (surrogate pairs are not combined: the
   printer never emits them, so the parser only needs the BMP). *)
let add_codepoint buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' ->
      advance cur;
      Buffer.contents buf
    | Some '\\' -> (
      advance cur;
      match peek cur with
      | None -> fail cur "unterminated escape"
      | Some c ->
        advance cur;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if cur.pos + 4 > String.length cur.src then
            fail cur "truncated \\u escape";
          let hex = String.sub cur.src cur.pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some cp ->
            cur.pos <- cur.pos + 4;
            add_codepoint buf cp
          | None -> fail cur "bad \\u escape %S" hex)
        | c -> fail cur "bad escape \\%C" c);
        go ())
    | Some c ->
      advance cur;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let parse_number cur =
  let start = cur.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek cur with Some c -> is_num_char c | None -> false) do
    advance cur
  done;
  let s = String.sub cur.src start (cur.pos - start) in
  let floaty = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s in
  if floaty then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail cur "bad number %S" s
  else
    match int_of_string_opt s with
    | Some n -> Int n
    | None -> (
      (* Integers beyond OCaml's int range degrade to floats. *)
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail cur "bad number %S" s)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> String (parse_string cur)
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      List []
    end
    else begin
      let rec elems acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          elems (v :: acc)
        | Some ']' ->
          advance cur;
          List.rev (v :: acc)
        | _ -> fail cur "expected ',' or ']'"
      in
      List (elems [])
    end
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let field () =
        skip_ws cur;
        let k = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          fields (kv :: acc)
        | Some '}' ->
          advance cur;
          List.rev (kv :: acc)
        | _ -> fail cur "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur "unexpected character %C" c

let of_string s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

(* --- structural equality and accessors ------------------------------- *)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b || (Float.is_nan a && Float.is_nan b)
  | String a, String b -> a = b
  | List a, List b -> (
    try List.for_all2 equal a b with Invalid_argument _ -> false)
  | Obj a, Obj b -> (
    try List.for_all2 (fun (k, v) (k', v') -> k = k' && equal v v') a b
    with Invalid_argument _ -> false)
  | (Null | Bool _ | Int _ | Float _ | String _ | List _ | Obj _), _ -> false

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let to_int = function Int n -> Some n | _ -> None
let to_float = function Float f -> Some f | Int n -> Some (float_of_int n) | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None
