(** Span-based structured tracer with pluggable sinks.

    [with_span] times a region on the monotonic clock and reports a
    completed span to every sink; with no sinks installed the overhead
    is a physical-equality check, so instrumentation stays in hot loops
    unconditionally.  Spans close even when the region raises.

    Domain-safety: event emission and flushing are serialised by a
    per-tracer mutex (sinks share out_channels), and each event records
    the domain it came from.  Install sinks before spawning domains --
    the sinkless fast path reads the sink list without the lock. *)

type t

type span = {
  name : string;
  cat : string;
  dom : int;  (** id of the domain that ran the region *)
  ts_ns : int64;  (** start, monotonic *)
  dur_ns : int64;
  args : (string * Json.t) list;
}

type instant = {
  i_name : string;
  i_cat : string;
  i_dom : int;
  i_ts_ns : int64;
  i_args : (string * Json.t) list;
}

type sink = {
  on_span : span -> unit;
  on_instant : instant -> unit;
  flush : unit -> unit;
}

val create : ?epoch_ns:int64 -> unit -> t
(** A fresh tracer; its epoch (timestamp zero for sinks) is now unless
    [epoch_ns] pins it — pass the same epoch to successive tracers
    appending to one trace file (e.g. a job's retry attempts) so their
    timestamps share a timeline. *)

val disabled : t
(** The shared sinkless tracer; [with_span disabled _ f] is just [f ()]. *)

val add_sink : t -> sink -> unit
val enabled : t -> bool

val global : unit -> t
(** The tracer built-in instrumentation reports to: the calling
    domain's [with_global] override if one is active, else the
    process-wide tracer ([disabled] until [set_global]). *)

val set_global : t -> unit
(** Install the process-wide tracer (seen by every domain without an
    override).  Call from the main domain before spawning workers. *)

val with_global : t -> (unit -> 'a) -> 'a
(** Run the thunk with [t] as this domain's tracer ([global ()] returns
    [t] on this domain only, restored on exit even on raise).  Use this
    for scoped tracer swaps in code that may run on a worker domain --
    unlike [set_global] it cannot redirect other domains' spans or
    leave them pointing at a tracer whose sink channel was closed. *)

val with_attrs : (string * Json.t) list -> (unit -> 'a) -> 'a
(** Run the thunk with extra ambient attributes appended to every span
    and instant emitted from this domain while it runs (restored on
    exit, nests).  This is how a correlation id set once at dispatch
    reaches spans deep inside the fixpoint loops.  Domain-local: child
    domains must re-install the context (capture [current_attrs]). *)

val current_attrs : unit -> (string * Json.t) list
(** The calling domain's active ambient attributes (outermost first). *)

val with_span :
  t -> ?cat:string -> ?args:(unit -> (string * Json.t) list) -> string ->
  (unit -> 'a) -> 'a
(** Run the thunk inside a named span.  [args] is only evaluated when a
    sink is installed, so argument construction is free when tracing is
    off. *)

val span_at :
  t -> ?cat:string -> ?args:(unit -> (string * Json.t) list) -> string ->
  ts_ns:int64 -> dur_ns:int64 -> unit
(** Report a region that was timed externally, e.g. a queue wait
    measured between submission and dispatch.  [ts_ns] must come from
    the same monotonic clock as [Clock.now_ns]. *)

val instant :
  t -> ?cat:string -> ?args:(unit -> (string * Json.t) list) -> string -> unit
(** Report a point event (e.g. a GC cache trim). *)

val flush : t -> unit
(** Flush every sink; the Chrome sink closes its JSON array here, so
    call this before exiting. *)

val jsonl_sink : t -> out_channel -> sink
(** One JSON object per line: [{"type":"span"|"instant","name":…,"cat":…,
    "ts_us":…,"dur_us":…,"args":{…}}].  Timestamps are microseconds
    relative to the tracer's epoch. *)

val chrome_sink : t -> out_channel -> sink
(** Chrome [trace_event] array ("ph":"X" complete events, microsecond
    timestamps) loadable in chrome://tracing and Perfetto.  [flush]
    closes the array.  Events carrying a ["job"] attribute are laid out
    on a per-job named track instead of their domain's track, so one
    job's spans line up even across retries on different workers. *)
