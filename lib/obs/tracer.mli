(** Span-based structured tracer with pluggable sinks.

    [with_span] times a region on the monotonic clock and reports a
    completed span to every sink; with no sinks installed the overhead
    is a physical-equality check, so instrumentation stays in hot loops
    unconditionally.  Spans close even when the region raises. *)

type t

type span = {
  name : string;
  cat : string;
  ts_ns : int64;  (** start, monotonic *)
  dur_ns : int64;
  args : (string * Json.t) list;
}

type instant = {
  i_name : string;
  i_cat : string;
  i_ts_ns : int64;
  i_args : (string * Json.t) list;
}

type sink = {
  on_span : span -> unit;
  on_instant : instant -> unit;
  flush : unit -> unit;
}

val create : unit -> t
(** A fresh tracer; its epoch (timestamp zero for sinks) is now. *)

val disabled : t
(** The shared sinkless tracer; [with_span disabled _ f] is just [f ()]. *)

val add_sink : t -> sink -> unit
val enabled : t -> bool

val global : unit -> t
(** The process-wide tracer used by built-in instrumentation;
    [disabled] until [set_global]. *)

val set_global : t -> unit

val with_span :
  t -> ?cat:string -> ?args:(unit -> (string * Json.t) list) -> string ->
  (unit -> 'a) -> 'a
(** Run the thunk inside a named span.  [args] is only evaluated when a
    sink is installed, so argument construction is free when tracing is
    off. *)

val instant :
  t -> ?cat:string -> ?args:(unit -> (string * Json.t) list) -> string -> unit
(** Report a point event (e.g. a GC cache trim). *)

val flush : t -> unit
(** Flush every sink; the Chrome sink closes its JSON array here, so
    call this before exiting. *)

val jsonl_sink : t -> out_channel -> sink
(** One JSON object per line: [{"type":"span"|"instant","name":…,"cat":…,
    "ts_us":…,"dur_us":…,"args":{…}}].  Timestamps are microseconds
    relative to the tracer's epoch. *)

val chrome_sink : t -> out_channel -> sink
(** Chrome [trace_event] array ("ph":"X" complete events, microsecond
    timestamps) loadable in chrome://tracing and Perfetto.  [flush]
    closes the array. *)
