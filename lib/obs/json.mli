(** Minimal JSON for telemetry artifacts: a printer whose output the
    parser reproduces exactly (Int and Float stay distinct; Float
    prints with enough digits to round-trip), with no dependency
    outside the stdlib.  Objects are association lists in insertion
    order. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
val to_buffer : Buffer.t -> t -> unit

val of_string : string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

val equal : t -> t -> bool
(** Structural equality; Obj fields compare in order; NaN = NaN. *)

(** {2 Accessors} — shallow, [None] on shape mismatch *)

val member : string -> t -> t option
val to_int : t -> int option

val to_float : t -> float option
(** Also accepts Int (common for whole-valued measurements). *)

val to_str : t -> string option
val to_list : t -> t list option
