(* Metrics registry: named counters, gauges and log2-bucketed
   histograms.  Updates are plain mutable-field writes — the whole
   system is single-domain, so there is no atomics tax on the hot
   paths that report into it (BDD cache lookups, policy scoring,
   tautology filters).

   Handles are interned by name: [counter reg "x"] always returns the
   same cell, so instrument sites can re-resolve by name without
   threading handles around.  A handle stays valid across [reset]
   (reset zeroes values, it does not drop cells). *)

type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable value : float }

(* Histogram of nonnegative ints, bucketed by bit length: bucket [i]
   counts observations [v] with [2^(i-1) <= v < 2^i] (bucket 0 counts
   v = 0).  63 buckets cover the whole OCaml int range. *)
type histogram = {
  h_name : string;
  buckets : int array;
  mutable h_count : int;
  mutable sum : int;
  mutable max : int;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  (* Names in first-registration order, so snapshots render stably. *)
  mutable order : string list;
}

let create () =
  {
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    order = [];
  }

(* The process-wide default registry.  Everything instruments against
   this unless handed an explicit registry; [icv --stats] and the bench
   JSON snapshots read it back out. *)
let default = create ()

let intern reg tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some cell -> cell
  | None ->
    let cell = make name in
    Hashtbl.replace tbl name cell;
    reg.order <- name :: reg.order;
    cell

let counter reg name =
  intern reg reg.counters name (fun c_name -> { c_name; count = 0 })

let gauge reg name =
  intern reg reg.gauges name (fun g_name -> { g_name; value = 0.0 })

let histogram reg name =
  intern reg reg.histograms name (fun h_name ->
      { h_name; buckets = Array.make 63 0; h_count = 0; sum = 0; max = 0 })

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let count c = c.count
let counter_name c = c.c_name

let set g v = g.value <- v
let set_max g v = if v > g.value then g.value <- v
let value g = g.value
let gauge_name g = g.g_name

(* Bit length of [v]: bucket [i] covers [2^(i-1), 2^i). *)
let bucket_of v =
  let b = ref 0 and v = ref v in
  while !v > 0 do
    b := !b + 1;
    v := !v lsr 1
  done;
  !b

let observe h v =
  let v = if v < 0 then 0 else v in
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1;
  h.h_count <- h.h_count + 1;
  h.sum <- h.sum + v;
  if v > h.max then h.max <- v

let histogram_name h = h.h_name
let histogram_count h = h.h_count
let histogram_sum h = h.sum
let histogram_max h = h.max

let histogram_mean h =
  if h.h_count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.h_count

(* Nonzero (bucket-upper-bound, count) pairs, low to high. *)
let histogram_buckets h =
  let acc = ref [] in
  for i = Array.length h.buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then
      let upper = if i = 0 then 0 else 1 lsl i in
      acc := (upper, h.buckets.(i)) :: !acc
  done;
  !acc

let reset reg =
  Hashtbl.iter (fun _ c -> c.count <- 0) reg.counters;
  Hashtbl.iter (fun _ g -> g.value <- 0.0) reg.gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 (Array.length h.buckets) 0;
      h.h_count <- 0;
      h.sum <- 0;
      h.max <- 0)
    reg.histograms

type entry =
  | Counter of string * int
  | Gauge of string * float
  | Histogram of string * int * int * int * (int * int) list
      (** name, count, sum, max, buckets *)

let snapshot reg =
  List.filter_map
    (fun name ->
      match Hashtbl.find_opt reg.counters name with
      | Some c -> Some (Counter (name, c.count))
      | None -> (
        match Hashtbl.find_opt reg.gauges name with
        | Some g -> Some (Gauge (name, g.value))
        | None ->
          Hashtbl.find_opt reg.histograms name
          |> Option.map (fun h ->
                 Histogram (name, h.h_count, h.sum, h.max, histogram_buckets h))))
    (List.rev reg.order)

let to_json reg =
  Json.Obj
    (List.map
       (function
         | Counter (name, n) -> (name, Json.Int n)
         | Gauge (name, v) -> (name, Json.Float v)
         | Histogram (name, count, sum, max, buckets) ->
           ( name,
             Json.Obj
               [
                 ("count", Json.Int count);
                 ("sum", Json.Int sum);
                 ("max", Json.Int max);
                 ( "buckets",
                   Json.List
                     (List.map
                        (fun (upper, n) ->
                          Json.List [ Json.Int upper; Json.Int n ])
                        buckets) );
               ] ))
       (snapshot reg))
