(* Metrics registry: named counters, gauges and log2-bucketed
   histograms.

   Domain-safety contract: counters and gauges are [Atomic] cells
   (lock-free updates from any domain); histograms take a per-histogram
   mutex on [observe] (they sit on cold paths -- once per improve call,
   not per cache lookup); interning, snapshots and resets take the
   registry mutex.  Parallel workers in Mc.Parallel therefore report
   into [default] concurrently without tearing, at the cost of one
   atomic RMW per counter bump on the hot paths.

   Handles are interned by name: [counter reg "x"] always returns the
   same cell, so instrument sites can re-resolve by name without
   threading handles around.  A handle stays valid across [reset]
   (reset zeroes values, it does not drop cells). *)

type counter = { c_name : string; count : int Atomic.t }
type gauge = { g_name : string; value : float Atomic.t }

(* Histogram of nonnegative ints, bucketed by bit length: bucket [i]
   counts observations [v] with [2^(i-1) <= v < 2^i] (bucket 0 counts
   v = 0).  63 buckets cover the whole OCaml int range. *)
type histogram = {
  h_name : string;
  h_mu : Mutex.t;
  buckets : int array;
  mutable h_count : int;
  mutable sum : int;
  mutable max : int;
}

type t = {
  mu : Mutex.t;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  (* Names in first-registration order, so snapshots render stably. *)
  mutable order : string list;
}

let create () =
  {
    mu = Mutex.create ();
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    order = [];
  }

(* The process-wide default registry.  Everything instruments against
   this unless handed an explicit registry; [icv --stats] and the bench
   JSON snapshots read it back out. *)
let default = create ()

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let intern reg tbl name make =
  locked reg.mu (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some cell -> cell
      | None ->
        let cell = make name in
        Hashtbl.replace tbl name cell;
        reg.order <- name :: reg.order;
        cell)

let counter reg name =
  intern reg reg.counters name (fun c_name ->
      { c_name; count = Atomic.make 0 })

let gauge reg name =
  intern reg reg.gauges name (fun g_name ->
      { g_name; value = Atomic.make 0.0 })

let histogram reg name =
  intern reg reg.histograms name (fun h_name ->
      {
        h_name;
        h_mu = Mutex.create ();
        buckets = Array.make 63 0;
        h_count = 0;
        sum = 0;
        max = 0;
      })

let incr c = Atomic.incr c.count
let add c n = ignore (Atomic.fetch_and_add c.count n)
let count c = Atomic.get c.count
let counter_name c = c.c_name

let set g v = Atomic.set g.value v

(* Peak tracking needs a CAS loop: two domains racing to raise the
   gauge must both land at the true maximum. *)
let rec set_max g v =
  let cur = Atomic.get g.value in
  if v > cur && not (Atomic.compare_and_set g.value cur v) then set_max g v

let value g = Atomic.get g.value
let gauge_name g = g.g_name

(* Bit length of [v]: bucket [i] covers [2^(i-1), 2^i). *)
let bucket_of v =
  let b = ref 0 and v = ref v in
  while !v > 0 do
    b := !b + 1;
    v := !v lsr 1
  done;
  !b

let observe h v =
  let v = if v < 0 then 0 else v in
  let b = bucket_of v in
  locked h.h_mu (fun () ->
      h.buckets.(b) <- h.buckets.(b) + 1;
      h.h_count <- h.h_count + 1;
      h.sum <- h.sum + v;
      if v > h.max then h.max <- v)

let histogram_name h = h.h_name
let histogram_count h = locked h.h_mu (fun () -> h.h_count)
let histogram_sum h = locked h.h_mu (fun () -> h.sum)
let histogram_max h = locked h.h_mu (fun () -> h.max)

let histogram_mean h =
  locked h.h_mu (fun () ->
      if h.h_count = 0 then 0.0
      else float_of_int h.sum /. float_of_int h.h_count)

(* Nonzero (bucket-upper-bound, count) pairs, low to high. *)
let histogram_buckets_unlocked h =
  let acc = ref [] in
  for i = Array.length h.buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then
      let upper = if i = 0 then 0 else 1 lsl i in
      acc := (upper, h.buckets.(i)) :: !acc
  done;
  !acc

let histogram_buckets h = locked h.h_mu (fun () -> histogram_buckets_unlocked h)

(* Count, sum, max and buckets read under one lock acquisition.
   Composing the individual accessors instead (count, then sum) can
   interleave with a concurrent [reset] or [observe] and return a torn
   pair -- e.g. the old count with the new sum -- which breaks any
   invariant checking sum against count.  Renderers must use this. *)
let histogram_stats h =
  locked h.h_mu (fun () ->
      (h.h_count, h.sum, h.max, histogram_buckets_unlocked h))

(* Percentile estimate from the log2 buckets: walk to the bucket
   containing the q-th sample and interpolate linearly within its
   [2^(i-1), 2^i) range.  Error is bounded by the bucket width (a
   factor of 2), which is plenty for latency triage; the top bucket is
   clamped to the observed max so p99 of a skewed histogram cannot
   exceed any real sample. *)
let histogram_percentile h q =
  let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
  locked h.h_mu (fun () ->
      if h.h_count = 0 then 0.0
      else begin
        let target = Float.max 1.0 (q *. float_of_int h.h_count) in
        let cum = ref 0.0 in
        let res = ref (float_of_int h.max) in
        (try
           for i = 0 to Array.length h.buckets - 1 do
             let n = h.buckets.(i) in
             if n > 0 then begin
               let prev = !cum in
               cum := prev +. float_of_int n;
               if !cum >= target then begin
                 let lower =
                   if i = 0 then 0.0 else float_of_int (1 lsl (i - 1))
                 in
                 let upper =
                   if i = 0 then 0.0
                   else Float.min (float_of_int (1 lsl i)) (float_of_int h.max)
                 in
                 let frac = (target -. prev) /. float_of_int n in
                 res := lower +. ((upper -. lower) *. frac);
                 raise Exit
               end
             end
           done
         with Exit -> ());
        !res
      end)

let reset reg =
  locked reg.mu (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.count 0) reg.counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.value 0.0) reg.gauges;
      Hashtbl.iter
        (fun _ h ->
          locked h.h_mu (fun () ->
              Array.fill h.buckets 0 (Array.length h.buckets) 0;
              h.h_count <- 0;
              h.sum <- 0;
              h.max <- 0))
        reg.histograms)

type entry =
  | Counter of string * int
  | Gauge of string * float
  | Histogram of string * int * int * int * (int * int) list
      (** name, count, sum, max, buckets *)

(* The whole walk happens under the registry mutex so concurrent
   interning (a Hashtbl resize mid-read) cannot corrupt it; the
   per-histogram mutex nests inside (same order as [reset]). *)
let snapshot reg =
  locked reg.mu (fun () ->
      List.filter_map
        (fun name ->
          match Hashtbl.find_opt reg.counters name with
          | Some c -> Some (Counter (name, count c))
          | None -> (
            match Hashtbl.find_opt reg.gauges name with
            | Some g -> Some (Gauge (name, value g))
            | None ->
              Hashtbl.find_opt reg.histograms name
              |> Option.map (fun h ->
                     locked h.h_mu (fun () ->
                         Histogram
                           ( name,
                             h.h_count,
                             h.sum,
                             h.max,
                             histogram_buckets_unlocked h )))))
        (List.rev reg.order))

let to_json reg =
  Json.Obj
    (List.map
       (function
         | Counter (name, n) -> (name, Json.Int n)
         | Gauge (name, v) -> (name, Json.Float v)
         | Histogram (name, count, sum, max, buckets) ->
           ( name,
             Json.Obj
               [
                 ("count", Json.Int count);
                 ("sum", Json.Int sum);
                 ("max", Json.Int max);
                 ( "buckets",
                   Json.List
                     (List.map
                        (fun (upper, n) ->
                          Json.List [ Json.Int upper; Json.Int n ])
                        buckets) );
               ] ))
       (snapshot reg))
