(* Per-iteration fixpoint records.  Every method's iteration logging
   (via Mc.Log.iteration) lands here so the post-run summary can print
   a per-iteration breakdown without re-running anything.  One global
   run buffer: methods run sequentially, and the CLI clears it between
   runs. *)

type row = {
  meth : string;
  iteration : int;
  conjuncts : int;
  nodes : int;
  elapsed_s : float;  (* since the method's own start, monotonic *)
  live_nodes : int;  (* manager live-node peak when the row was taken *)
}

let buffer : row list ref = ref []

let record row = buffer := row :: !buffer

let rows () = List.rev !buffer

let clear () = buffer := []

let to_json () =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("method", Json.String r.meth);
             ("iteration", Json.Int r.iteration);
             ("conjuncts", Json.Int r.conjuncts);
             ("nodes", Json.Int r.nodes);
             ("elapsed_s", Json.Float r.elapsed_s);
             ("live_nodes", Json.Int r.live_nodes);
           ])
       (rows ()))
