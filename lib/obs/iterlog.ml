(* Per-iteration fixpoint records.  Every method's iteration logging
   (via Mc.Log.iteration) lands here so the post-run summary can print
   a per-iteration breakdown without re-running anything.  The buffer
   is domain-local: methods racing on worker domains (parallel
   portfolio, daemon workers) each accumulate their own rows instead of
   interleaving into one shared list, and the main domain's sequential
   semantics (record, read back, clear between runs) are unchanged.

   A domain-local sink lets a resident worker stream rows out as they
   are produced (e.g. per-iteration progress events back to a daemon
   client) without waiting for the run to finish; the buffer still
   fills, so post-run consumers keep working. *)

type row = {
  meth : string;
  iteration : int;
  conjuncts : int;
  nodes : int;
  elapsed_s : float;  (* since the method's own start, monotonic *)
  live_nodes : int;  (* manager live-node peak when the row was taken *)
}

let buffer_key : row list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let sink_key : (row -> unit) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let record row =
  (match !(Domain.DLS.get sink_key) with Some f -> f row | None -> ());
  let buffer = Domain.DLS.get buffer_key in
  buffer := row :: !buffer

let rows () = List.rev !(Domain.DLS.get buffer_key)

let clear () = Domain.DLS.get buffer_key := []

let set_sink f = Domain.DLS.get sink_key := f

let to_json () =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("method", Json.String r.meth);
             ("iteration", Json.Int r.iteration);
             ("conjuncts", Json.Int r.conjuncts);
             ("nodes", Json.Int r.nodes);
             ("elapsed_s", Json.Float r.elapsed_s);
             ("live_nodes", Json.Int r.live_nodes);
           ])
       (rows ()))
