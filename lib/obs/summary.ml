(* Post-run summary rendering: a table of the registry's top counters
   and a per-iteration breakdown from the iteration log.  Pure
   formatting — no state of its own. *)

let hr ppf width = Format.fprintf ppf "%s@." (String.make width '-')

(* Group metric names by their first dotted component so related
   counters ("bdd.cache", "taut", "policy" families) print together. *)
let group_of name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let pp_entry ppf = function
  | Registry.Counter (name, n) -> Format.fprintf ppf "  %-42s %12d@." name n
  | Registry.Gauge (name, v) ->
    if Float.is_integer v && Float.abs v < 1e15 then
      Format.fprintf ppf "  %-42s %12.0f@." name v
    else Format.fprintf ppf "  %-42s %12.3f@." name v
  | Registry.Histogram (name, count, sum, max, _) ->
    let mean = if count = 0 then 0.0 else float_of_int sum /. float_of_int count in
    Format.fprintf ppf "  %-42s %12d  mean %.1f  max %d@." name count mean max

let entry_is_zero = function
  | Registry.Counter (_, 0) -> true
  | Registry.Gauge (_, v) -> v = 0.0
  | Registry.Histogram (_, 0, _, _, _) -> true
  | Registry.Counter _ | Registry.Histogram _ -> false

let entry_name = function
  | Registry.Counter (name, _)
  | Registry.Gauge (name, _)
  | Registry.Histogram (name, _, _, _, _) -> name

let pp ?(max_rows = 60) ppf reg =
  let entries =
    Registry.snapshot reg |> List.filter (fun e -> not (entry_is_zero e))
  in
  if entries = [] then Format.fprintf ppf "telemetry: no metrics recorded@."
  else begin
    Format.fprintf ppf "@.telemetry summary@.";
    hr ppf 70;
    (* Stable sort by group keeps registration order within a group. *)
    let entries =
      List.stable_sort
        (fun a b -> compare (group_of (entry_name a)) (group_of (entry_name b)))
        entries
    in
    let shown = ref 0 in
    let last_group = ref "" in
    List.iter
      (fun e ->
        if !shown < max_rows then begin
          let g = group_of (entry_name e) in
          if g <> !last_group then begin
            if !last_group <> "" then Format.fprintf ppf "@.";
            last_group := g
          end;
          pp_entry ppf e;
          incr shown
        end)
      entries;
    let total = List.length entries in
    if total > max_rows then
      Format.fprintf ppf "  ... %d more (all appear in JSON snapshots)@."
        (total - max_rows);
    hr ppf 70
  end

let pp_iterations ppf rows =
  match rows with
  | [] -> ()
  | rows ->
    Format.fprintf ppf "@.per-iteration breakdown@.";
    hr ppf 70;
    Format.fprintf ppf "  %-6s %5s %9s %10s %10s %11s@." "meth" "iter"
      "conjuncts" "nodes" "elapsed_s" "live_nodes";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-6s %5d %9d %10d %10.3f %11d@."
          r.Iterlog.meth r.Iterlog.iteration r.Iterlog.conjuncts
          r.Iterlog.nodes r.Iterlog.elapsed_s r.Iterlog.live_nodes)
      rows;
    hr ppf 70

let print ?max_rows reg rows =
  let ppf = Format.std_formatter in
  pp ?max_rows ppf reg;
  pp_iterations ppf rows;
  Format.pp_print_flush ppf ()

(* --- Prometheus text exposition -------------------------------------- *)

(* Metric names allow [a-zA-Z0-9_:]; dots and dashes become
   underscores.  Everything is prefixed "icv_" to namespace the scrape. *)
let prom_name name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9') || c = '_'
      in
      if not ok then Bytes.set b i '_')
    b;
  "icv_" ^ Bytes.to_string b

let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let to_prometheus reg =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s;
                                   Buffer.add_char buf '\n') fmt in
  List.iter
    (function
      | Registry.Counter (name, n) ->
        let pn = prom_name name in
        line "# TYPE %s counter" pn;
        line "%s %d" pn n
      | Registry.Gauge (name, v) ->
        let pn = prom_name name in
        line "# TYPE %s gauge" pn;
        line "%s %s" pn (prom_float v)
      | Registry.Histogram (name, count, sum, _max, buckets) ->
        let pn = prom_name name in
        line "# TYPE %s histogram" pn;
        (* Prometheus buckets are cumulative; ours are per-bucket
           counts with only nonzero buckets listed, so accumulate. *)
        let cum = ref 0 in
        List.iter
          (fun (upper, n) ->
            cum := !cum + n;
            line "%s_bucket{le=\"%d\"} %d" pn upper !cum)
          buckets;
        line "%s_bucket{le=\"+Inf\"} %d" pn count;
        line "%s_sum %d" pn sum;
        line "%s_count %d" pn count)
    (Registry.snapshot reg);
  Buffer.contents buf
