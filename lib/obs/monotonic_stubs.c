/* Monotonic clock for telemetry timestamps and resource budgets:
   CLOCK_MONOTONIC is immune to NTP steps and manual clock changes,
   which would otherwise spuriously kill (or indefinitely extend) a
   budgeted verification run and scramble span durations. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value icv_monotonic_now_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
