(** Post-run summary rendering: top-counter table grouped by metric
    prefix, and a per-iteration breakdown table. *)

val pp : ?max_rows:int -> Format.formatter -> Registry.t -> unit
(** Render nonzero metrics grouped by their first dotted name component
    (at most [max_rows], default 60). *)

val pp_iterations : Format.formatter -> Iterlog.row list -> unit
(** Render the per-iteration breakdown; prints nothing for []. *)

val print : ?max_rows:int -> Registry.t -> Iterlog.row list -> unit
(** Both tables to stdout. *)
