(** Post-run summary rendering: top-counter table grouped by metric
    prefix, and a per-iteration breakdown table. *)

val pp : ?max_rows:int -> Format.formatter -> Registry.t -> unit
(** Render nonzero metrics grouped by their first dotted name component
    (at most [max_rows], default 60). *)

val pp_iterations : Format.formatter -> Iterlog.row list -> unit
(** Render the per-iteration breakdown; prints nothing for []. *)

val print : ?max_rows:int -> Registry.t -> Iterlog.row list -> unit
(** Both tables to stdout. *)

val to_prometheus : Registry.t -> string
(** Render the whole registry in Prometheus text exposition format:
    every metric gets a [# TYPE] line; names are sanitised
    ([a-zA-Z0-9_] only, dots become underscores) and prefixed [icv_];
    histograms emit cumulative [_bucket{le="…"}] series (log2 upper
    bounds) plus [_sum] and [_count].  Reads one consistent snapshot. *)
