(* icv: command-line driver for the implicitly-conjoined-BDD verifier.

   Runs any of the paper's example models (or their planted-bug
   variants) under any verification method, prints the paper-style
   result row, and optionally a decoded counterexample trace.

     icv --model fifo --depth 10 --method xici
     icv --model cpu --regs 2 --width 2 --bug --method xici --trace
     icv --model filter --depth 8 --method all *)

open Cmdliner

let build_model name depth width procs regs bound assisted bug =
  match String.lowercase_ascii name with
  | "fifo" ->
    Models.Typed_fifo.make { Models.Typed_fifo.depth; width; bound; bug }
  | "network" -> Models.Network.make { Models.Network.procs; bug }
  | "filter" ->
    Models.Avg_filter.make
      { Models.Avg_filter.depth; sample_width = width; assisted; bug }
  | "cpu" ->
    Models.Pipeline_cpu.make { Models.Pipeline_cpu.regs; width; assisted; bug }
  | "abp" ->
    Models.Abp.make { Models.Abp.width; bug }
  | other -> failwith (Printf.sprintf "unknown model %S" other)

let print_trace model trace =
  let man = Mc.Model.man model in
  let levels = Fsm.Space.current_levels model.Mc.Model.space in
  List.iteri
    (fun i state ->
      let bits =
        List.filter_map
          (fun l ->
            if state.(l) then Some (Bdd.var_name man l) else None)
          levels
      in
      Format.printf "  step %d: {%s}@." i
        (if bits = [] then "all zero" else String.concat ", " bits))
    trace

let parse_fallback spec =
  List.map
    (fun s ->
      match Mc.Runner.of_name (String.trim s) with
      | Some m -> m
      | None -> failwith (Printf.sprintf "unknown fallback method %S" s))
    (String.split_on_char ',' spec)

(* Install a structured tracer writing to [path] for the duration of
   [f]; the returned cleanup closes the sink (the Chrome exporter needs
   the closing bracket even when the run dies by exception). *)
let with_tracing trace_out trace_format f =
  match trace_out with
  | None -> f ()
  | Some path ->
    let tracer = Obs.Tracer.create () in
    let oc = open_out path in
    let sink =
      match trace_format with
      | `Jsonl -> Obs.Tracer.jsonl_sink tracer oc
      | `Chrome -> Obs.Tracer.chrome_sink tracer oc
    in
    Obs.Tracer.add_sink tracer sink;
    Obs.Tracer.set_global tracer;
    Fun.protect
      ~finally:(fun () ->
        Obs.Tracer.flush tracer;
        close_out_noerr oc;
        Obs.Tracer.set_global Obs.Tracer.disabled)
      f

let run_checked model_name depth width procs regs bound assisted bug meth_name
    trace max_seconds max_live grow_threshold parallel batch props speculate
    portfolio resilient retries budget_escalation max_created checkpoint checkpoint_every
    resume fallback stats trace_out trace_format verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  let model = build_model model_name depth width procs regs bound assisted bug in
  let limits man =
    Mc.Limits.start ~max_seconds ~max_live_nodes:max_live ~max_iterations:200
      man
  in
  let xici_cfg = { Ici.Policy.default with grow_threshold } in
  (* --parallel N without --portfolio parallelises the Figure-1 pair
     scoring inside XICI instead of racing whole configurations. *)
  let evaluator =
    if parallel >= 2 && not portfolio then
      Some (Mc.Parallel.pair_evaluator ~domains:parallel ())
    else None
  in
  let show_trace label r =
    match r.Mc.Report.status with
    | Mc.Report.Violated tr when trace ->
      let validated =
        Mc.Trace.validate model.Mc.Model.trans ~init:model.Mc.Model.init
          ~good:
            (Ici.Clist.of_list (Mc.Model.man model) (Mc.Model.property model))
          tr
      in
      Format.printf "counterexample from %s (%s):@." label
        (if validated then "validated" else "NOT VALID");
      print_trace model tr
    | Mc.Report.Violated _ | Mc.Report.Proved | Mc.Report.Exceeded _ -> ()
  in
  Format.printf "model: %s@." model.Mc.Model.name;
  with_tracing trace_out trace_format (fun () ->
  if batch then begin
    (* Batch mode: verify the model's property conjuncts as separate
       properties in one orchestrated run (shared images, pooled
       invariants, speculative assumptions with a soundness recheck). *)
    let meth =
      match Mc.Runner.of_name meth_name with
      | Some m -> m
      | None ->
        failwith
          (Printf.sprintf "--batch needs a single --method, not %S" meth_name)
    in
    let all_props = Mc.Batch.of_goods model in
    let selected =
      if props = [] then all_props
      else
        List.map
          (fun s ->
            let s = String.trim s in
            let found =
              match int_of_string_opt s with
              | Some i -> List.nth_opt all_props i
              | None ->
                List.find_opt (fun p -> p.Mc.Batch.pname = s) all_props
            in
            match found with
            | Some p -> p
            | None ->
              failwith
                (Printf.sprintf
                   "unknown property %S (the model has %d conjuncts, p0..p%d)"
                   s (List.length all_props)
                   (List.length all_props - 1)))
          props
    in
    let res =
      Mc.Batch.run ~limits ~meth ~xici_cfg ~speculate
        ~domains:(max 1 parallel) model selected
    in
    Format.printf "batch: %d propertie(s) on %d domain(s), %.2fs wall@."
      (List.length selected) res.Mc.Batch.domains_used
      res.Mc.Batch.wall_time_s;
    Format.printf "%s@." Mc.Report.header;
    List.iter
      (fun (it : Mc.Batch.item) ->
        Format.printf "%a@." Mc.Report.pp_row it.Mc.Batch.report;
        if it.Mc.Batch.rechecked then
          Format.printf "  %s rechecked after a refuted speculation@."
            it.Mc.Batch.prop.Mc.Batch.pname;
        show_trace it.Mc.Batch.prop.Mc.Batch.pname it.Mc.Batch.report)
      res.Mc.Batch.items;
    let s = res.Mc.Batch.stats in
    Format.printf
      "invariants shared %d, speculated %d, refuted %d, rechecks %d@."
      s.Mc.Batch.invariants_shared s.Mc.Batch.invariants_speculated
      s.Mc.Batch.speculations_refuted s.Mc.Batch.rechecks
  end
  else if portfolio then begin
    (* Portfolio mode: race the default configuration mix on worker
       domains; first sound verdict wins, losers are cancelled. *)
    let domains = max 2 parallel in
    let res = Mc.Parallel.portfolio ~domains ~limits model in
    Format.printf "portfolio: %d configs on %d domains, %.2fs wall@."
      (List.length res.Mc.Parallel.reports)
      res.Mc.Parallel.domains_used res.Mc.Parallel.wall_time_s;
    Format.printf "%s@." Mc.Report.header;
    List.iter
      (fun (_, r) -> Format.printf "%a@." Mc.Report.pp_row r)
      res.Mc.Parallel.reports;
    match res.Mc.Parallel.winner with
    | Some (c, r) ->
      Format.printf "winner: %s (%s)@." c.Mc.Parallel.label
        (Mc.Report.status_string r);
      show_trace c.Mc.Parallel.label r
    | None -> Format.printf "no configuration decided@."
  end
  else if resilient || fallback <> "" then begin
    (* Resilient mode: escalating-budget retries + portfolio fallback,
       with the per-attempt log in place of a single result row. *)
    let meths =
      if fallback = "" then
        match Mc.Runner.of_name meth_name with
        | Some m when m <> Mc.Runner.Xici -> [ m ] @ Mc.Resilient.default_fallback
        | _ -> Mc.Resilient.default_fallback
      else parse_fallback fallback
    in
    let outcome =
      Mc.Resilient.run ~retries ~budget_escalation
        ?max_created_nodes:max_created ~max_seconds ~max_live_nodes:max_live
        ~max_iterations:200 ~fallback:meths ?checkpoint ~xici_cfg
        ~domains:parallel model
    in
    Format.printf "%s@." Mc.Report.header;
    Format.printf "@[<v>%a@]@." Mc.Resilient.pp_outcome outcome;
    show_trace outcome.Mc.Resilient.final.Mc.Report.method_name
      outcome.Mc.Resilient.final
  end
  else begin
    let methods =
      if String.lowercase_ascii meth_name = "all" then Mc.Runner.all
      else
        match Mc.Runner.of_name meth_name with
        | Some m -> [ m ]
        | None -> failwith (Printf.sprintf "unknown method %S" meth_name)
    in
    let resume_from =
      (* A missing/truncated/corrupt checkpoint degrades to a cold
         start (with a warning): --resume is opportunistic, and failing
         the whole run over an unusable snapshot would make resumption
         strictly worse than never checkpointing. *)
      Option.bind resume (fun path ->
          match Mc.Checkpoint.load_opt (Mc.Model.man model) path with
          | Some cp -> Some cp
          | None ->
            Format.eprintf
              "icv: checkpoint %s missing or unusable; starting cold@." path;
            None)
    in
    Format.printf "%s@." Mc.Report.header;
    List.iter
      (fun meth ->
        let r =
          Mc.Runner.run ~limits ~xici_cfg ?evaluator
            ?checkpoint_path:checkpoint ~checkpoint_every ?resume_from meth
            model
        in
        Format.printf "%a@." Mc.Report.pp_row r;
        show_trace (Mc.Runner.name meth) r)
      methods
  end);
  if stats then Mc.Telemetry.print_summary (Mc.Model.man model)

let run model_name depth width procs regs bound assisted bug meth_name trace
    max_seconds max_live grow_threshold parallel batch props speculate
    portfolio resilient retries budget_escalation max_created checkpoint
    checkpoint_every resume fallback stats trace_out trace_format verbose =
  try
    run_checked model_name depth width procs regs bound assisted bug meth_name
      trace max_seconds max_live grow_threshold parallel batch props speculate
      portfolio resilient retries budget_escalation max_created checkpoint
      checkpoint_every resume fallback stats trace_out trace_format verbose
  with
  | Failure msg
  | Sys_error msg
  | Invalid_argument msg
  | Mc.Checkpoint.Corrupt msg ->
    (* User errors (unknown model/method, bad flag values, missing or
       corrupt checkpoint files), not internal ones: print and fail. *)
    Format.eprintf "icv: %s@." msg;
    exit 2

(* --- explain: slow-job post-mortem from a daemon trace file ----------- *)

(* Rebuild the span tree of a per-job JSONL trace (icvd jobs submitted
   with "trace": true) from timestamp containment: spans are emitted at
   close, so the file order is children-first, but (ts ascending, dur
   descending) puts every parent before its children and a stack walk
   recovers the nesting.  Domains are kept separate — a portfolio
   child's spans root under their own domain — and a retried job's
   attempts share the file and the timeline, so each attempt's phases
   form their own roots. *)

type espan = {
  e_name : string;
  e_dom : int;
  e_ts : float;  (* us, relative to the job's admission *)
  e_dur : float;
  e_args : (string * Obs.Json.t) list;
  mutable e_children : espan list;  (* built newest-first, reversed later *)
  mutable e_self : float;
}

let parse_trace_spans path =
  let ic = open_in path in
  let spans = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          if String.trim line <> "" then
            match Obs.Json.of_string line with
            | exception Obs.Json.Parse_error why ->
              failwith (Printf.sprintf "%s: bad trace line: %s" path why)
            | j when
                Option.bind (Obs.Json.member "type" j) Obs.Json.to_str
                = Some "span" ->
              let str f = Option.bind (Obs.Json.member f j) Obs.Json.to_str in
              let num f =
                Option.value ~default:0.0
                  (Option.bind (Obs.Json.member f j) Obs.Json.to_float)
              in
              let args =
                match Obs.Json.member "args" j with
                | Some (Obs.Json.Obj kvs) -> kvs
                | _ -> []
              in
              spans :=
                {
                  e_name = Option.value ~default:"?" (str "name");
                  e_dom =
                    Option.value ~default:0
                      (Option.bind (Obs.Json.member "dom" j) Obs.Json.to_int);
                  e_ts = num "ts_us";
                  e_dur = num "dur_us";
                  e_args = args;
                  e_children = [];
                  e_self = 0.0;
                }
                :: !spans
            | _ -> ()
        done
      with End_of_file -> ());
  List.rev !spans

let build_forest spans =
  let doms = List.sort_uniq compare (List.map (fun s -> s.e_dom) spans) in
  let forest = ref [] in
  List.iter
    (fun dom ->
      let mine = List.filter (fun s -> s.e_dom = dom) spans in
      let ordered =
        List.sort
          (fun a b ->
            match compare a.e_ts b.e_ts with
            | 0 -> compare b.e_dur a.e_dur
            | c -> c)
          mine
      in
      (* 1us of float fuzz: a child closing on its parent's boundary
         must still nest. *)
      let contains p s =
        s.e_ts >= p.e_ts -. 1.0 && s.e_ts +. s.e_dur <= p.e_ts +. p.e_dur +. 1.0
      in
      let stack = ref [] in
      List.iter
        (fun s ->
          while !stack <> [] && not (contains (List.hd !stack) s) do
            stack := List.tl !stack
          done;
          (match !stack with
          | p :: _ -> p.e_children <- s :: p.e_children
          | [] -> forest := s :: !forest);
          stack := s :: !stack)
        ordered)
    doms;
  let rec finish s =
    s.e_children <- List.rev s.e_children;
    List.iter finish s.e_children;
    s.e_self <-
      Float.max 0.0
        (s.e_dur
        -. List.fold_left (fun acc c -> acc +. c.e_dur) 0.0 s.e_children)
  in
  let roots =
    List.sort
      (fun a b ->
        match compare a.e_dom b.e_dom with
        | 0 -> compare a.e_ts b.e_ts
        | c -> c)
      !forest
  in
  List.iter finish roots;
  roots

let human_count n =
  if n >= 1_000_000 then Printf.sprintf "%.1fM" (float_of_int n /. 1e6)
  else if n >= 1_000 then Printf.sprintf "%.1fk" (float_of_int n /. 1e3)
  else string_of_int n

(* Render the forest with same-named siblings merged (a fixpoint trace
   has one xici.iteration span per iteration; the tree view wants one
   line saying "×12", not twelve lines), self-time per line, and
   percentages against the whole trace. *)
let render_forest roots ~total =
  let buf = Buffer.create 4096 in
  let pct v = if total <= 0.0 then 0.0 else 100.0 *. v /. total in
  let rec render indent nodes =
    (* group same-named siblings, preserving first-appearance order *)
    let order = ref [] in
    let groups : (string, espan list ref) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun s ->
        match Hashtbl.find_opt groups s.e_name with
        | Some g -> g := s :: !g
        | None ->
          Hashtbl.add groups s.e_name (ref [ s ]);
          order := s.e_name :: !order)
      nodes;
    List.iter
      (fun name ->
        let group = List.rev !(Hashtbl.find groups name) in
        let n = List.length group in
        let dur = List.fold_left (fun a s -> a +. s.e_dur) 0.0 group in
        let self = List.fold_left (fun a s -> a +. s.e_self) 0.0 group in
        let label = if n > 1 then Printf.sprintf "%s ×%d" name n else name in
        Buffer.add_string buf
          (Printf.sprintf "%s%-*s %9.1fms  self %9.1fms  %5.1f%%\n"
             (String.make indent ' ')
             (max 1 (34 - indent))
             label (dur /. 1e3) (self /. 1e3) (pct self));
        render (indent + 2) (List.concat_map (fun s -> s.e_children) group))
      (List.rev !order)
  in
  render 2 roots;
  Buffer.contents buf

(* The dominant phase: the span name with the largest aggregate
   self-time, located at its single heaviest occurrence — "83% in
   back_image at iteration 12, live nodes 9.1M" is the line that tells
   you where a slow job went. *)
let dominant_phase roots ~total =
  let agg : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let rec walk s =
    Hashtbl.replace agg s.e_name
      (Option.value ~default:0.0 (Hashtbl.find_opt agg s.e_name) +. s.e_self);
    List.iter walk s.e_children
  in
  List.iter walk roots;
  let best =
    Hashtbl.fold
      (fun name self acc ->
        match acc with
        | Some (_, s) when s >= self -> acc
        | _ -> Some (name, self))
      agg None
  in
  match best with
  | None -> "empty trace"
  | Some (name, self) ->
    (* heaviest single occurrence, with its enclosing iteration context *)
    let heaviest = ref None in
    let rec locate iter_ctx s =
      let iter_ctx =
        if s.e_name = "xici.iteration" then Some s.e_args else iter_ctx
      in
      (if s.e_name = name then
         match !heaviest with
         | Some (h, _) when h.e_self >= s.e_self -> ()
         | _ -> heaviest := Some (s, iter_ctx));
      List.iter (locate iter_ctx) s.e_children
    in
    List.iter (locate None) roots;
    let where =
      match !heaviest with
      | Some (_, Some args) ->
        let iter =
          Option.bind (List.assoc_opt "iteration" args) Obs.Json.to_int
        in
        let live =
          Option.bind (List.assoc_opt "live_nodes" args) Obs.Json.to_int
        in
        (match (iter, live) with
        | Some i, Some l ->
          Printf.sprintf " at iteration %d, live nodes %s" i (human_count l)
        | Some i, None -> Printf.sprintf " at iteration %d" i
        | _ -> "")
      | _ -> ""
    in
    let p = if total <= 0.0 then 0.0 else 100.0 *. self /. total in
    Printf.sprintf "%.0f%% in %s%s" p name where

let run_explain path =
  let spans = parse_trace_spans path in
  if spans = [] then begin
    Format.eprintf "icv: %s contains no spans@." path;
    exit 2
  end;
  let roots = build_forest spans in
  let total = List.fold_left (fun a s -> a +. s.e_dur) 0.0 roots in
  let arg_of f s = Option.bind (List.assoc_opt f s.e_args) Obs.Json.to_str in
  let first_some f =
    List.find_map f spans
  in
  let trace_id = Option.value ~default:"?" (first_some (arg_of "trace_id")) in
  let job = Option.value ~default:"?" (first_some (arg_of "job")) in
  let attempts =
    List.sort_uniq compare
      (List.filter_map
         (fun s -> Option.bind (List.assoc_opt "attempt" s.e_args) Obs.Json.to_int)
         spans)
  in
  Format.printf "trace %s: job %s, trace id %s, %d span(s), %d attempt(s), %.1fms total@."
    (Filename.basename path) job trace_id (List.length spans)
    (max 1 (List.length attempts))
    (total /. 1e3);
  print_string (render_forest roots ~total);
  Format.printf "dominant phase: %s@." (dominant_phase roots ~total)

let run_explain_checked path =
  try run_explain path with
  | Failure msg | Sys_error msg ->
    Format.eprintf "icv: %s@." msg;
    exit 2

let () =
  let model =
    Arg.(
      value & opt string "fifo"
      & info [ "model" ] ~doc:"Model: fifo, network, filter, cpu or abp.")
  in
  let depth =
    Arg.(value & opt int 5 & info [ "depth" ] ~doc:"FIFO/filter depth.")
  in
  let width =
    Arg.(
      value & opt int 8
      & info [ "width" ] ~doc:"Item/sample/datapath width in bits.")
  in
  let procs =
    Arg.(value & opt int 4 & info [ "procs" ] ~doc:"Network processors.")
  in
  let regs =
    Arg.(value & opt int 2 & info [ "regs" ] ~doc:"Processor registers.")
  in
  let bound =
    Arg.(value & opt int 128 & info [ "bound" ] ~doc:"FIFO type bound.")
  in
  let assisted =
    Arg.(
      value & flag
      & info [ "assisted" ] ~doc:"Add user-supplied assisting invariants.")
  in
  let bug =
    Arg.(value & flag & info [ "bug" ] ~doc:"Use the planted-bug variant.")
  in
  let meth =
    Arg.(
      value & opt string "xici"
      & info [ "method" ] ~doc:"fwd, bkwd, fd, ici, xici, idi, explicit or all.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ] ~doc:"Print a decoded counterexample trace.")
  in
  let max_seconds =
    Arg.(value & opt float 600.0 & info [ "max-seconds" ] ~doc:"Time budget.")
  in
  let max_live =
    Arg.(
      value & opt int 10_000_000
      & info [ "max-live-nodes" ] ~doc:"Live BDD node budget.")
  in
  let grow =
    Arg.(
      value & opt float 1.5
      & info [ "grow-threshold" ] ~doc:"XICI GrowThreshold (Figure 1).")
  in
  let parallel =
    Arg.(
      value & opt int 1
      & info [ "parallel" ] ~docv:"N"
          ~doc:
            "Worker domains.  With --portfolio, race configurations on \
             $(docv) domains; without it, parallelise the XICI pairwise \
             scoring across $(docv) scratch managers.")
  in
  let batch =
    Arg.(
      value & flag
      & info [ "batch" ]
          ~doc:
            "Verify the model's property conjuncts as separate properties in \
             one batch: shared image computations and a pooled invariant \
             store (add --speculate for cross-property assumptions).  With \
             --parallel N, properties are scheduled onto $(i,N) worker \
             domains.")
  in
  let props =
    Arg.(
      value & opt_all string []
      & info [ "prop" ] ~docv:"P"
          ~doc:
            "Verify only property $(docv) (an index or a name like p2; \
             repeatable).  Only meaningful with --batch; default: all \
             conjuncts.")
  in
  let speculate =
    Arg.(
      value & flag
      & info [ "speculate" ]
          ~doc:
            "In --batch mode, speculatively assume the goods of undecided \
             properties while verifying each property (verdicts stay sound: \
             conditional proofs are discharged or rechecked).  Off by \
             default: the assumption conjunction is a monolithic BDD over \
             every property's variables, which usually costs more than it \
             saves.")
  in
  let portfolio =
    Arg.(
      value & flag
      & info [ "portfolio" ]
          ~doc:
            "Race the default configuration portfolio (methods x policies x \
             termination tests) on worker domains; the first sound verdict \
             wins and the losers are cancelled.")
  in
  let resilient =
    Arg.(
      value & flag
      & info [ "resilient" ]
          ~doc:
            "Run under the resilient driver: escalating-budget retries and \
             portfolio fallback, printing the per-attempt log.")
  in
  let retries =
    Arg.(
      value & opt int 3
      & info [ "retries" ] ~doc:"Attempts per method (resilient mode).")
  in
  let budget_escalation =
    Arg.(
      value & opt float 2.0
      & info [ "budget-escalation" ]
          ~doc:"Node-budget multiplier between attempts (resilient mode).")
  in
  let max_created =
    Arg.(
      value & opt (some int) None
      & info [ "max-created-nodes" ]
          ~doc:
            "Initial created-node budget; escalated between resilient \
             attempts.")
  in
  let checkpoint =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Snapshot XICI fixpoint state to $(docv) every \
             --checkpoint-every iterations; resilient retries resume from \
             it.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 1
      & info [ "checkpoint-every" ] ~doc:"Iterations between checkpoints.")
  in
  let resume =
    Arg.(
      value & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:"Resume an XICI run from a checkpoint written by --checkpoint.")
  in
  let fallback =
    Arg.(
      value & opt string ""
      & info [ "fallback" ] ~docv:"M1,M2,..."
          ~doc:
            "Portfolio for resilient mode (comma-separated method names, \
             tried in order).  Implies --resilient.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print the post-run telemetry summary: top registry counters \
             (BDD cache hit rates, policy and tautology filter breakdowns) \
             and the per-iteration table.")
  in
  let trace_out =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a structured execution trace (fixpoint iterations, \
             policy phases, tautology checks) to $(docv).")
  in
  let trace_format =
    Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
      & info [ "trace-format" ] ~docv:"FORMAT"
          ~doc:
            "Trace format: $(b,jsonl) (one event per line) or $(b,chrome) \
             (trace_event JSON for chrome://tracing / Perfetto).")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ] ~doc:"Per-iteration debug logging.")
  in
  let verify_term =
    Term.(
      const run $ model $ depth $ width $ procs $ regs $ bound $ assisted
      $ bug $ meth $ trace $ max_seconds $ max_live $ grow $ parallel
      $ batch $ props $ speculate $ portfolio $ resilient
      $ retries $ budget_escalation $ max_created $ checkpoint
      $ checkpoint_every $ resume $ fallback $ stats $ trace_out
      $ trace_format $ verbose)
  in
  let explain_cmd =
    (* a plain string, not Arg.file: a missing path must follow the
       icv error contract (one "icv: ..." line, exit 2) instead of
       cmdliner's usage dump *)
    let file =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"TRACE"
            ~doc:
              "A per-job JSONL span file written by icvd for a job \
               submitted with \"trace\": true.")
    in
    Cmd.v
      (Cmd.info "explain"
         ~doc:
           "Render a daemon job trace as a span tree with self-times and \
            name the dominant phase (the slow-job post-mortem).")
      Term.(const run_explain_checked $ file)
  in
  let cmd =
    Cmd.group ~default:verify_term
      (Cmd.info "icv" ~doc:"Verify the paper's example models")
      [ explain_cmd ]
  in
  exit (Cmd.eval cmd)
