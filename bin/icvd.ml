(* icvd: resident verification daemon.

   Server mode (default): serve newline-JSON jobs over a Unix-domain
   socket (--socket) and/or stdin (--stdio), on a supervised pool of
   worker domains.  See Srv.Daemon for the drain/overload contract.

   Client mode (--connect SOCK): submit job lines from a file or
   stdin to a running daemon, print every event received, and exit
   once all submitted jobs have resolved -- the shape the CI smoke
   script and the throughput bench both use. *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

(* --- client mode ----------------------------------------------------- *)

let read_job_lines = function
  | None ->
    let rec go acc =
      match input_line stdin with
      | line -> go (line :: acc)
      | exception End_of_file -> List.rev acc
    in
    go []
  | Some file ->
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])

let submit_id line =
  match Obs.Json.of_string line with
  | exception Obs.Json.Parse_error _ -> None
  | json -> (
    match Option.bind (Obs.Json.member "type" json) Obs.Json.to_str with
    | Some t when t <> "submit" -> None
    | _ -> Option.bind (Obs.Json.member "id" json) Obs.Json.to_str)

let run_client socket jobs_file timeout =
  let lines =
    List.filter (fun l -> String.trim l <> "") (read_job_lines jobs_file)
  in
  let pending = Hashtbl.create 16 in
  List.iter
    (fun l ->
      match submit_id l with
      | Some id -> Hashtbl.replace pending id ()
      | None -> ())
    lines;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let out = Unix.out_channel_of_descr fd in
  List.iter
    (fun l ->
      output_string out l;
      output_char out '\n')
    lines;
  flush out;
  let buf = Buffer.create 4096 in
  let bytes = Bytes.create 65536 in
  let deadline = Unix.gettimeofday () +. timeout in
  let handle_event line =
    print_endline line;
    match Obs.Json.of_string line with
    | exception Obs.Json.Parse_error _ -> ()
    | json -> (
      match Option.bind (Obs.Json.member "type" json) Obs.Json.to_str with
      | Some ("result" | "rejected") -> (
        match Option.bind (Obs.Json.member "id" json) Obs.Json.to_str with
        | Some id -> Hashtbl.remove pending id
        | None -> ())
      | _ -> ())
  in
  let consume () =
    let data = Buffer.contents buf in
    Buffer.clear buf;
    let parts = String.split_on_char '\n' data in
    let rec go = function
      | [] -> ()
      | [ tail ] -> Buffer.add_string buf tail
      | line :: rest ->
        handle_event line;
        go rest
    in
    go parts
  in
  let rec loop () =
    if Hashtbl.length pending = 0 then 0
    else begin
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then begin
        Format.eprintf "icvd: timed out with %d jobs unresolved@."
          (Hashtbl.length pending);
        1
      end
      else begin
        let ready, _, _ =
          match Unix.select [ fd ] [] [] (Float.min remaining 1.0) with
          | r -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        match ready with
        | [] -> loop ()
        | _ -> (
          match Unix.read fd bytes 0 (Bytes.length bytes) with
          | 0 ->
            if Hashtbl.length pending > 0 then begin
              Format.eprintf
                "icvd: daemon closed the connection with %d jobs unresolved@."
                (Hashtbl.length pending);
              1
            end
            else 0
          | n ->
            Buffer.add_subbytes buf bytes 0 n;
            consume ();
            loop ())
      end
    end
  in
  let rc = loop () in
  (try Unix.close fd with _ -> ());
  exit rc

(* --- introspection client --------------------------------------------- *)

(* One-shot or streaming query against a running daemon: stats (JSON or
   Prometheus text), health, ping, or a metrics watch stream.  The prom
   format unwraps the exposition text from its JSON envelope so the
   output is directly scrapeable:
     icvd --connect SOCK --client stats --format prom  *)
let run_query socket cmd format interval timeout =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let out = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  let req =
    match cmd with
    | `Stats when format = `Prom -> {|{"type":"stats","format":"prom"}|}
    | `Stats -> {|{"type":"stats"}|}
    | `Health -> {|{"type":"health"}|}
    | `Ping -> {|{"type":"ping"}|}
    | `Watch -> Printf.sprintf {|{"type":"watch","interval_s":%g}|} interval
  in
  output_string out (req ^ "\n");
  flush out;
  let print_event line =
    match (cmd, format) with
    | `Stats, `Prom -> (
      match Obs.Json.of_string line with
      | exception Obs.Json.Parse_error _ -> print_endline line
      | json -> (
        match Option.bind (Obs.Json.member "prom" json) Obs.Json.to_str with
        | Some text -> print_string text
        | None -> print_endline line))
    | _ -> print_endline line
  in
  let rc =
    match cmd with
    | `Watch ->
      (* Stream frames until the daemon closes or the timeout ends the
         session; each frame is one JSON line on stdout. *)
      let deadline = Unix.gettimeofday () +. timeout in
      let rec go () =
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then 0
        else
          match Unix.select [ fd ] [] [] (Float.min remaining 1.0) with
          | [], _, _ -> go ()
          | _ -> (
            match input_line ic with
            | line ->
              print_event line;
              flush stdout;
              go ()
            | exception End_of_file -> 0)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      in
      go ()
    | _ -> (
      match input_line ic with
      | line ->
        print_event line;
        0
      | exception End_of_file ->
        Format.eprintf "icvd: daemon closed the connection without replying@.";
        1)
  in
  (try Unix.close fd with _ -> ());
  exit rc

(* --- entry point ------------------------------------------------------ *)

let run connect socket stdio workers queue_capacity checkpoint_dir trace_dir
    deadline hang_timeout max_total_live max_attempts portfolio_domains
    jobs_file client_timeout client_cmd format interval verbose =
  setup_logs verbose;
  match (connect, client_cmd) with
  | Some sock, Some cmd -> run_query sock cmd format interval client_timeout
  | None, Some _ ->
    Format.eprintf "icvd: --client requires --connect SOCK@.";
    exit 2
  | Some sock, None -> run_client sock jobs_file client_timeout
  | None, None ->
    if socket = None && not stdio then begin
      Format.eprintf "icvd: nothing to serve; pass --socket PATH or --stdio@.";
      exit 2
    end;
    let cfg =
      {
        Srv.Daemon.default_config with
        socket_path = socket;
        stdio;
        workers;
        queue_capacity;
        checkpoint_dir;
        trace_dir;
        default_deadline_s = deadline;
        hang_timeout_s = hang_timeout;
        max_total_live;
        max_attempts;
        portfolio_domains;
      }
    in
    (try Srv.Daemon.run cfg with
    | Unix.Unix_error (e, fn, arg) ->
      Format.eprintf "icvd: %s(%s): %s@." fn arg (Unix.error_message e);
      exit 2
    | Sys_error msg ->
      Format.eprintf "icvd: %s@." msg;
      exit 2);
    exit 0

let () =
  let connect =
    Arg.(
      value & opt (some string) None
      & info [ "connect" ] ~docv:"SOCK"
          ~doc:
            "Client mode: submit job lines (from --jobs or stdin) to the \
             daemon at $(docv), print every event, exit when all submitted \
             jobs have resolved.")
  in
  let socket =
    Arg.(
      value & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen for clients on a Unix-domain socket at $(docv).")
  in
  let stdio =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:
            "Serve stdin/stdout as a client: read job lines from stdin, \
             write events to stdout, drain and exit on EOF.")
  in
  let workers =
    Arg.(value & opt int 2 & info [ "workers" ] ~doc:"Worker domains.")
  in
  let queue_capacity =
    Arg.(
      value & opt int 16
      & info [ "queue-capacity" ]
          ~doc:"Admission queue bound; submissions beyond it are rejected.")
  in
  let checkpoint_dir =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:
            "Write per-job XICI checkpoints under $(docv) so retried jobs \
             resume instead of restarting.")
  in
  let trace_dir =
    Arg.(
      value & opt (some string) None
      & info [ "trace-dir" ] ~docv:"DIR"
          ~doc:
            "Write per-job span-tree JSONL files for jobs submitted with \
             \"trace\": true under $(docv) (default: the checkpoint dir, \
             else the system temp dir).  Render one with icv explain.")
  in
  let deadline =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Default per-job deadline for jobs that do not set one.")
  in
  let hang_timeout =
    Arg.(
      value & opt float 10.0
      & info [ "hang-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Heartbeat silence after which a busy worker is cancelled; \
             twice this and its slot is abandoned and replaced.")
  in
  let max_total_live =
    Arg.(
      value & opt (some int) None
      & info [ "max-total-live" ] ~docv:"NODES"
          ~doc:
            "Soft cap on live BDD nodes across all workers; approaching it \
             degrades cache budgets and portfolio width, reaching it \
             rejects new work.")
  in
  let max_attempts =
    Arg.(
      value & opt int 2
      & info [ "max-attempts" ]
          ~doc:"Total attempts per job (crash/hang retries included).")
  in
  let portfolio_domains =
    Arg.(
      value & opt int 2
      & info [ "portfolio-domains" ]
          ~doc:"Domains for portfolio-method jobs.")
  in
  let jobs_file =
    Arg.(
      value & opt (some string) None
      & info [ "jobs" ] ~docv:"FILE"
          ~doc:"Client mode: read job lines from $(docv) instead of stdin.")
  in
  let client_timeout =
    Arg.(
      value & opt float 120.0
      & info [ "client-timeout" ] ~docv:"SECONDS"
          ~doc:"Client mode: give up if jobs are still unresolved.")
  in
  let client_cmd =
    let kinds =
      [
        ("stats", `Stats); ("health", `Health); ("watch", `Watch);
        ("ping", `Ping);
      ]
    in
    Arg.(
      value & opt (some (enum kinds)) None
      & info [ "client" ] ~docv:"CMD"
          ~doc:
            "With --connect: query the daemon instead of submitting jobs. \
             $(docv) is one of stats (registry snapshot; see --format), \
             health (queue depth, inflight, per-worker liveness, memory \
             pressure, uptime), watch (stream metric deltas until \
             --client-timeout), or ping.")
  in
  let format =
    Arg.(
      value & opt (enum [ ("json", `Json); ("prom", `Prom) ]) `Json
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format for --client stats: json (one event line) or \
             prom (Prometheus text exposition, directly scrapeable).")
  in
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Frame interval for --client watch.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Debug logging.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "icvd" ~doc:"Resident verification daemon")
      Term.(
        const run $ connect $ socket $ stdio $ workers $ queue_capacity
        $ checkpoint_dir $ trace_dir $ deadline $ hang_timeout
        $ max_total_live $ max_attempts $ portfolio_domains $ jobs_file
        $ client_timeout $ client_cmd $ format $ interval $ verbose)
  in
  exit (Cmd.eval cmd)
